/**
 * @file
 * Machine-learning scenario: a training step is a sequence of layer
 * kernels with very different frequency sensitivities (GEMMs are
 * compute bound; normalization/pooling layers are bandwidth bound).
 * A single static clock is wrong for most of the step.
 *
 * This example builds a composite "training step" from the MI suite
 * (dgemm + BwdBN + BwdPool + BwdSoft), runs it under per-CU PCSTALL
 * DVFS optimizing EDP, and reports per-design energy/time plus the
 * frequency residency that shows PCSTALL shifting clocks per layer.
 *
 * Usage: ml_training_power [--cus N] [--epoch-us E]
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "common/cli.hh"
#include "core/pcstall_controller.hh"
#include "models/reactive_controller.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

int
main(int argc, char **argv)
try {
    CliOptions cli(argc, argv);
    const auto cus = static_cast<std::uint32_t>(cli.getInt("cus", 8));

    // Compose one training step from MI layer kernels.
    workloads::WorkloadParams wp;
    wp.numCus = cus;
    wp.scale = 0.5;
    isa::Application step;
    step.name = "training_step";
    for (const char *layer : {"dgemm", "BwdBN", "BwdPool", "BwdSoft"}) {
        isa::Application layer_app = workloads::makeWorkload(layer, wp);
        for (auto &k : layer_app.launches)
            step.launches.push_back(std::move(k));
    }
    step.assignCodeBases();
    auto app = std::make_shared<const isa::Application>(std::move(step));

    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.epochLen = static_cast<Tick>(
        cli.getDouble("epoch-us", 1.0) * static_cast<double>(tickUs));
    cfg.objective = dvfs::Objective::Edp;
    cfg.scaled();
    sim::ExperimentDriver driver(cfg);

    std::printf("ML training step (%zu kernel launches) on %u CUs, "
                "EDP objective\n\n", app->launches.size(), cus);
    std::printf("%-14s %10s %12s %12s %10s\n", "design", "time us",
                "energy mJ", "EDP", "accuracy");

    auto report = [&](dvfs::DvfsController &c) {
        const sim::RunResult r = driver.run(app, c);
        std::printf("%-14s %10.1f %12.4f %12.4e %9.1f%%\n",
                    r.controller.c_str(), r.seconds() * 1e6,
                    r.energy * 1e3, r.edp(),
                    r.predictionAccuracy * 100.0);
        return r;
    };

    dvfs::StaticController nominal(driver.nominalState());
    report(nominal);
    models::ReactiveController crisp(models::EstimationKind::Crisp);
    report(crisp);
    core::PcstallController pcstall(
        core::PcstallConfig::forEpoch(cfg.epochLen), cus);
    const sim::RunResult pc = report(pcstall);

    std::printf("\nPCSTALL frequency residency across the step:\n ");
    for (std::size_t s = 0; s < pc.freqTimeShare.size(); ++s) {
        std::printf(" %.1fGHz:%4.1f%%",
                    freqGHzD(driver.table().state(s).freq),
                    pc.freqTimeShare[s] * 100.0);
    }
    std::printf("\n\nThe residency spread shows the controller "
                "re-clocking per layer: GEMM phases ride the upper "
                "states while normalization/pooling layers drop to "
                "the bottom of the V/f range.\n");
    return 0;
}
catch (const FatalError &)
{
    return 1; // fatal() already printed the diagnostic
}
catch (const std::exception &e)
{
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
