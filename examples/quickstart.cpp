/**
 * @file
 * Quickstart: build a small GPU, run one workload under the PCSTALL
 * DVFS controller, and compare its energy efficiency against a static
 * nominal-frequency run.
 *
 * Usage: quickstart [--cus N] [--epoch-us E] [--workload name]
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "common/cli.hh"
#include "core/pcstall_controller.hh"
#include "dvfs/controller.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

int
main(int argc, char **argv)
try {
    CliOptions cli(argc, argv);

    // 1. Configure the experiment: GPU size, DVFS epoch, objective.
    sim::RunConfig cfg;
    cfg.gpu.numCus = static_cast<std::uint32_t>(cli.getInt("cus", 8));
    cfg.epochLen = static_cast<Tick>(
        cli.getDouble("epoch-us", 1.0) * static_cast<double>(tickUs));
    cfg.cusPerDomain = 1;
    cfg.objective = dvfs::Objective::Ed2p;
    cfg.scaled(); // size the memory system to the CU count

    // 2. Pick a workload from the Table II suite.
    workloads::WorkloadParams wparams;
    wparams.numCus = cfg.gpu.numCus;
    const std::string name = cli.get("workload", "BwdBN");
    auto app = std::make_shared<const isa::Application>(
        workloads::makeWorkload(name, wparams));

    std::printf("PCSTALL quickstart: workload '%s' on a %u-CU GPU, "
                "%.1f us DVFS epochs, objective %s\n\n",
                name.c_str(), cfg.gpu.numCus,
                static_cast<double>(cfg.epochLen) /
                    static_cast<double>(tickUs),
                dvfs::objectiveName(cfg.objective));

    sim::ExperimentDriver driver(cfg);

    // 3. Static baseline at the nominal 1.7 GHz.
    dvfs::StaticController static_nominal(driver.nominalState());
    const sim::RunResult base = driver.run(app, static_nominal);

    // 4. The same run under PCSTALL.
    core::PcstallController pcstall(
        core::PcstallConfig::forEpoch(cfg.epochLen,
                                      cfg.gpu.waveSlotsPerCu),
        cfg.gpu.numCus);
    const sim::RunResult dvfs_run = driver.run(app, pcstall);

    auto report = [](const char *label, const sim::RunResult &r) {
        std::printf("%-22s time %8.1f us  energy %8.3f mJ  "
                    "avg power %6.1f W  ED2P %.3e\n",
                    label, r.seconds() * 1e6, r.energy * 1e3,
                    r.avgPower(), r.ed2p());
    };
    report("static 1.7 GHz:", base);
    report("PCSTALL DVFS:", dvfs_run);

    std::printf("\nPCSTALL ED2P improvement: %.1f%%  "
                "(prediction accuracy %.1f%%, PC-table hit ratio "
                "%.1f%%)\n",
                (1.0 - dvfs_run.ed2p() / base.ed2p()) * 100.0,
                dvfs_run.predictionAccuracy * 100.0,
                pcstall.tableHitRatio() * 100.0);
    return 0;
}
catch (const FatalError &)
{
    return 1; // fatal() already printed the diagnostic
}
catch (const std::exception &e)
{
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
