/**
 * @file
 * Extending the library: implement a custom DVFS controller against
 * the public dvfs::DvfsController interface and evaluate it with the
 * stock driver. The example controller is a "hysteresis band"
 * policy: it uses PCSTALL's PC-table prediction but only moves the
 * frequency when the predicted optimum differs from the current state
 * by more than one step, trading a little efficiency for far fewer
 * V/f transitions (an IVR-wear / guard-band concern the paper's
 * Section 5.4 hierarchy would care about).
 *
 * Usage: custom_policy [--cus N] [--workload name]
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "common/cli.hh"
#include "core/pcstall_controller.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

namespace
{

/** PCSTALL with a one-step hysteresis band on frequency moves. */
class HysteresisPcstall : public dvfs::DvfsController
{
  public:
    HysteresisPcstall(const core::PcstallConfig &cfg,
                      std::uint32_t num_cus, std::size_t initial_state)
        : inner(cfg, num_cus)
    {
        last.assign(num_cus, initial_state);
        transitions_ = 0;
    }

    std::string name() const override { return "PCSTALL+HYST"; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override
    {
        auto decisions = inner.decide(ctx);
        if (last.size() != decisions.size())
            last.assign(decisions.size(), ctx.nominalState);
        for (std::size_t d = 0; d < decisions.size(); ++d) {
            const std::size_t want = decisions[d].state;
            const std::size_t cur = last[d];
            const std::size_t dist = want > cur ? want - cur
                                                : cur - want;
            if (dist <= 1) {
                decisions[d].state = cur; // inside the band: hold
            } else {
                // Move one step toward the predicted optimum.
                decisions[d].state = want > cur ? cur + 1 : cur - 1;
            }
            if (decisions[d].state != last[d])
                ++transitions_;
            last[d] = decisions[d].state;
        }
        return decisions;
    }

    std::uint64_t transitions() const { return transitions_; }

  private:
    core::PcstallController inner;
    std::vector<std::size_t> last;
    std::uint64_t transitions_ = 0;
};

/** Count transitions a plain controller makes (for comparison). */
class TransitionCounter : public dvfs::DvfsController
{
  public:
    explicit TransitionCounter(dvfs::DvfsController &inner)
        : inner(inner)
    {}

    std::string name() const override { return inner.name(); }
    dvfs::SweepNeed sweepNeed() const override
    {
        return inner.sweepNeed();
    }
    bool needsWaveLevel() const override
    {
        return inner.needsWaveLevel();
    }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override
    {
        auto decisions = inner.decide(ctx);
        if (last.size() != decisions.size())
            last.assign(decisions.size(), ctx.nominalState);
        for (std::size_t d = 0; d < decisions.size(); ++d) {
            if (decisions[d].state != last[d])
                ++transitions_;
            last[d] = decisions[d].state;
        }
        return decisions;
    }

    std::uint64_t transitions() const { return transitions_; }

  private:
    dvfs::DvfsController &inner;
    std::vector<std::size_t> last;
    std::uint64_t transitions_ = 0;
};

} // namespace

int
main(int argc, char **argv)
try {
    CliOptions cli(argc, argv);
    const auto cus = static_cast<std::uint32_t>(cli.getInt("cus", 8));
    const std::string workload = cli.get("workload", "BwdBN");

    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.scaled();
    sim::ExperimentDriver driver(cfg);

    workloads::WorkloadParams wp;
    wp.numCus = cus;
    auto app = std::make_shared<const isa::Application>(
        workloads::makeWorkload(workload, wp));

    std::printf("Custom controller demo on '%s' (%u CUs)\n\n",
                workload.c_str(), cus);

    core::PcstallController plain(
        core::PcstallConfig::forEpoch(cfg.epochLen), cus);
    TransitionCounter counted(plain);
    const sim::RunResult base = driver.run(app, counted);

    HysteresisPcstall hyst(core::PcstallConfig::forEpoch(cfg.epochLen),
                           cus, driver.nominalState());
    const sim::RunResult hr = driver.run(app, hyst);

    std::printf("%-14s ED2P %.4e  energy %.4f mJ  transitions %llu\n",
                base.controller.c_str(), base.ed2p(),
                base.energy * 1e3,
                static_cast<unsigned long long>(counted.transitions()));
    std::printf("%-14s ED2P %.4e  energy %.4f mJ  transitions %llu\n",
                hr.controller.c_str(), hr.ed2p(), hr.energy * 1e3,
                static_cast<unsigned long long>(hyst.transitions()));

    std::printf("\nThe hysteresis band cuts V/f transitions by %.0f%% "
                "at an ED2P cost of %.1f%% - the kind of trade a "
                "product team can explore by subclassing "
                "dvfs::DvfsController.\n",
                100.0 * (1.0 - static_cast<double>(hyst.transitions()) /
                         static_cast<double>(
                             std::max<std::uint64_t>(
                                 counted.transitions(), 1))),
                (hr.ed2p() / base.ed2p() - 1.0) * 100.0);
    return 0;
}
catch (const FatalError &)
{
    return 1; // fatal() already printed the diagnostic
}
catch (const std::exception &e)
{
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
