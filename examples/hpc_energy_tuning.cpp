/**
 * @file
 * HPC scenario: an operator wants to run ECP-style simulation codes
 * under an energy budget without giving up more than a fixed amount
 * of performance (the paper's Section 6.4 use case).
 *
 * This example runs three HPC workloads under PCSTALL with the
 * EnergyUnderPerfBound objective at 5% and 10% degradation limits and
 * reports the achieved energy savings and actual slowdown versus the
 * static nominal clock, comparing against the CRISP reactive
 * baseline.
 *
 * Usage: hpc_energy_tuning [--cus N] [--epoch-us E]
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "common/cli.hh"
#include "core/pcstall_controller.hh"
#include "models/reactive_controller.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

namespace
{

struct Outcome
{
    double savings;
    double slowdown;
};

Outcome
measure(sim::ExperimentDriver &driver,
        std::shared_ptr<const isa::Application> app,
        dvfs::DvfsController &controller)
{
    dvfs::StaticController nominal(driver.nominalState());
    const sim::RunResult base = driver.run(app, nominal);
    const sim::RunResult r = driver.run(app, controller);
    return {1.0 - r.energy / base.energy,
            r.seconds() / base.seconds() - 1.0};
}

} // namespace

int
main(int argc, char **argv)
try {
    CliOptions cli(argc, argv);
    const auto cus = static_cast<std::uint32_t>(cli.getInt("cus", 8));

    std::printf("HPC energy tuning under performance bounds "
                "(%u CUs)\n\n", cus);
    std::printf("%-10s %-6s %-9s %10s %10s %10s %10s\n", "workload",
                "limit", "", "PCSTALL", "", "CRISP", "");
    std::printf("%-10s %-6s %-9s %10s %10s %10s %10s\n", "", "", "",
                "saved", "slowdown", "saved", "slowdown");

    for (const char *name : {"comd", "xsbench", "hacc"}) {
        for (const double limit : {0.05, 0.10}) {
            sim::RunConfig cfg;
            cfg.gpu.numCus = cus;
            cfg.epochLen = static_cast<Tick>(
                cli.getDouble("epoch-us", 1.0) *
                static_cast<double>(tickUs));
            cfg.objective = dvfs::Objective::EnergyUnderPerfBound;
            cfg.perfDegradationLimit = limit;
            cfg.scaled();
            sim::ExperimentDriver driver(cfg);

            workloads::WorkloadParams wp;
            wp.numCus = cus;
            auto app = std::make_shared<const isa::Application>(
                workloads::makeWorkload(name, wp));

            core::PcstallController pcstall(
                core::PcstallConfig::forEpoch(cfg.epochLen), cus);
            const Outcome pc = measure(driver, app, pcstall);

            models::ReactiveController crisp(
                models::EstimationKind::Crisp);
            const Outcome cr = measure(driver, app, crisp);

            std::printf("%-10s %-6.0f%% %-9s %9.1f%% %9.1f%% "
                        "%9.1f%% %9.1f%%\n",
                        name, limit * 100.0, "",
                        pc.savings * 100.0, pc.slowdown * 100.0,
                        cr.savings * 100.0, cr.slowdown * 100.0);
        }
    }
    std::printf("\nPCSTALL converts the slack allowed by the bound "
                "into energy savings; the reactive baseline wastes "
                "part of it on mispredicted epochs (paper Fig 18a).\n");
    return 0;
}
catch (const FatalError &)
{
    return 1; // fatal() already printed the diagnostic
}
catch (const std::exception &e)
{
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
