/**
 * @file
 * Bring-your-own-workload: author a kernel in the text format, run it
 * under PCSTALL, and export per-epoch traces as CSV for plotting.
 *
 * Usage:
 *   custom_workload                          # built-in demo kernel
 *   custom_workload --file my.kernel         # your own description
 *   custom_workload --trace-csv /tmp/run.csv # export the trace
 *   custom_workload --export comd            # dump a Table II app as
 *                                            # editable text and exit
 */

#include <cstdio>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/cli.hh"
#include "core/pcstall_controller.hh"
#include "sim/experiment.hh"
#include "sim/trace_export.hh"
#include "workloads/kernel_parser.hh"
#include "workloads/kernel_writer.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

namespace
{

/** A two-phase demo kernel in the text format. */
const char *demo_kernel = R"(
# Demo: an iterative stencil with a gather phase and a compute phase,
# launched four times (each launch is a timestep).
kernel stencil
  grid 80 4
  seed 11
  region grid_in 24M
  region table 2M
  loop 12
    load grid_in stream 16
    load table sharedhot
    waitcnt 0
    valu 2 2
  endloop
  loop 60
    valu 4 4
    lds 8 1
  endloop
  loop 8
    store grid_in stream 16
  endloop
endkernel

app demo = stencil stencil stencil stencil
)";

} // namespace

int
main(int argc, char **argv)
try {
    CliOptions cli(argc, argv);

    const std::string export_name = cli.get("export", "");
    if (!export_name.empty()) {
        if (!workloads::isWorkload(export_name)) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         export_name.c_str());
            return 1;
        }
        workloads::WorkloadParams wp;
        wp.numCus =
            static_cast<std::uint32_t>(cli.getInt("cus", 8));
        std::printf("%s", workloads::applicationToText(
                              workloads::makeWorkload(export_name,
                                                      wp)).c_str());
        return 0;
    }

    workloads::ParseResult parsed;
    const std::string file = cli.get("file", "");
    if (!file.empty()) {
        parsed = workloads::parseApplicationFile(file);
    } else {
        parsed = workloads::parseApplication(std::string(demo_kernel));
    }
    if (!parsed.ok()) {
        std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
        return 1;
    }
    auto app = std::make_shared<const isa::Application>(
        std::move(*parsed.app));

    sim::RunConfig cfg;
    cfg.gpu.numCus = static_cast<std::uint32_t>(cli.getInt("cus", 8));
    cfg.collectTrace = true;
    cfg.scaled();
    sim::ExperimentDriver driver(cfg);

    std::printf("Running '%s' (%zu launches) under PCSTALL on %u "
                "CUs...\n",
                app->name.c_str(), app->launches.size(), cfg.gpu.numCus);

    dvfs::StaticController nominal(driver.nominalState());
    const sim::RunResult base = driver.run(app, nominal);

    core::PcstallController pcstall(
        core::PcstallConfig::forEpoch(cfg.epochLen), cfg.gpu.numCus);
    const sim::RunResult r = driver.run(app, pcstall);

    std::printf("  static 1.7 GHz: %7.1f us, %8.4f mJ (ED2P %.3e)\n",
                base.seconds() * 1e6, base.energy * 1e3, base.ed2p());
    std::printf("  PCSTALL:        %7.1f us, %8.4f mJ (ED2P %.3e, "
                "%llu transitions)\n",
                r.seconds() * 1e6, r.energy * 1e3, r.ed2p(),
                static_cast<unsigned long long>(r.transitions));
    std::printf("  ED2P improvement: %.1f%%\n",
                (1.0 - r.ed2p() / base.ed2p()) * 100.0);

    const std::string csv = cli.get("trace-csv", "");
    if (!csv.empty()) {
        if (sim::writeRunTraceCsvFile(csv, r, driver.table()))
            std::printf("  trace written to %s\n", csv.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n", csv.c_str());
    } else {
        // Show the first few trace rows inline.
        std::ostringstream os;
        sim::writeRunTraceCsv(os, r, driver.table());
        std::istringstream is(os.str());
        std::string line;
        std::printf("\ntrace preview (--trace-csv FILE for all):\n");
        for (int i = 0; i < 6 && std::getline(is, line); ++i)
            std::printf("  %s\n", line.c_str());
    }
    return 0;
}
catch (const FatalError &)
{
    return 1; // fatal() already printed the diagnostic
}
catch (const std::exception &e)
{
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
