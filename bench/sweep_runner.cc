#include "sweep_runner.hh"

#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/rng.hh"
#include "obs/context.hh"

namespace pcstall::bench
{

namespace
{

/**
 * Serialize every BenchOptions field that changes the simulated run
 * (not the output paths). Cells agreeing on this key plus (workload,
 * design) are true repeats and get distinct run indices; the same key
 * also identifies shareable application builds and baseline runs.
 */
std::string
configKey(const BenchOptions &opts)
{
    std::ostringstream key;
    key << opts.cus << '|' << opts.scale << '|' << opts.epochLen << '|'
        << opts.cusPerDomain << '|' << opts.seed << '|'
        << static_cast<int>(opts.objective) << '|'
        << opts.perfDegradationLimit << '|' << opts.collectTrace << '|'
        << opts.watchdog << '|' << opts.ecc << '|' << opts.faults.seed
        << '|' << opts.faults.telemetry.sigma << '|'
        << opts.faults.telemetry.dropoutProb << '|'
        << opts.faults.dvfs.transitionFailProb << '|'
        << opts.faults.dvfs.extraSwitchLatency << '|'
        << opts.faults.dvfs.granularity << '|'
        << opts.faults.storage.upsetsPerEpoch;
    return key.str();
}

/** Application builds depend on this subset of the options only. */
std::string
appKey(const std::string &workload, const BenchOptions &opts)
{
    std::ostringstream key;
    key << workload << '|' << opts.cus << '|' << opts.scale << '|'
        << opts.seed;
    return key.str();
}

std::string
cellLabel(const std::string &workload, const std::string &design)
{
    return workload + " x " + design;
}

} // namespace

SweepRunner::SweepRunner(const BenchOptions &opts)
    : defaults(opts), pool(opts.threads)
{
    // A sweep whose *shared* configuration is invalid would fail in
    // every cell; fail fast here instead so the user gets one
    // "fatal: run config: ..." line (and exit 1 via guardedMain)
    // before any simulation time is spent. Cell-local overrides are
    // still validated - and contained - per cell.
    const std::string err =
        sim::validateRunConfig(defaults.runConfig());
    fatalIf(!err.empty(), err);
}

SweepRunner::AppPtr
SweepRunner::appFor(const std::string &workload,
                    const BenchOptions &opts)
{
    const std::string key = appKey(workload, opts);
    std::shared_future<AppPtr> fut;
    std::shared_ptr<std::promise<AppPtr>> mine;
    {
        const std::lock_guard<std::mutex> lock(appMutex);
        const auto it = apps.find(key);
        if (it != apps.end()) {
            fut = it->second;
        } else {
            mine = std::make_shared<std::promise<AppPtr>>();
            fut = mine->get_future().share();
            apps.emplace(key, fut);
        }
    }
    if (mine != nullptr) {
        // We won the race: build on this thread; waiters block on the
        // future. Failures become a null app (makeApp already warned)
        // so the future never carries an exception.
        AppPtr app;
        try {
            app = makeApp(workload, opts);
        } catch (const FatalError &e) {
            warn("workload '" + workload + "': " +
                 std::string(e.what()));
        }
        mine->set_value(std::move(app));
    }
    return fut.get();
}

RunOutcome
SweepRunner::staticBaseline(const std::string &workload,
                            const BenchOptions &opts)
{
    const std::string key = workload + '|' + configKey(opts);
    std::shared_future<RunOutcome> fut;
    std::shared_ptr<std::promise<RunOutcome>> mine;
    {
        const std::lock_guard<std::mutex> lock(baselineMutex);
        const auto it = baselines.find(key);
        if (it != baselines.end()) {
            fut = it->second;
        } else {
            mine = std::make_shared<std::promise<RunOutcome>>();
            fut = mine->get_future().share();
            baselines.emplace(key, fut);
        }
    }
    if (mine != nullptr) {
        RunOutcome out;
        try {
            sim::RunConfig cfg = opts.runConfig();
            const std::string err = sim::validateRunConfig(cfg);
            if (!err.empty()) {
                out.error = err;
            } else if (AppPtr app = appFor(workload, opts)) {
                // The baseline's stream derives from the same pure
                // key scheme as cells, with the design slot pinned,
                // so it is identical however many cells share it.
                cfg.gpu.seed =
                    Rng::split(opts.seed, workload, "STATIC").next();
                sim::ExperimentDriver driver(cfg);
                dvfs::StaticController nominal(driver.nominalState());
                out.result = driver.run(app, nominal);
                out.result.workload = workload;
                out.ok = true;
            } else {
                out.error =
                    "workload '" + workload + "' failed to build";
            }
        } catch (const FatalError &e) {
            out.error = e.what();
        } catch (const std::exception &e) {
            out.error = e.what();
        }
        if (!out.ok) {
            noteSweepFailure();
            warn("static baseline for " + workload +
                 " failed: " + out.error);
        }
        mine->set_value(std::move(out));
    }
    return fut.get();
}

CellOutcome
SweepRunner::runCell(const SweepCell &cell)
{
    CellOutcome out;
    if (cell.wantBaseline)
        out.baseline = staticBaseline(cell.workload, cell.opts);

    RunOutcome &run = out.run;
    try {
        sim::RunConfig cfg = cell.opts.runConfig();
        const std::string err = sim::validateRunConfig(cfg);
        if (err.empty()) {
            if (AppPtr app = appFor(cell.workload, cell.opts)) {
                // The determinism keystone: the cell's RNG stream is
                // a pure function of its identity, never of which
                // thread runs it or in what order.
                cfg.gpu.seed = Rng::split(cell.opts.seed,
                                          cell.workload, cell.design,
                                          cell.runIndex).next();
                sim::ExperimentDriver driver(cfg);
                std::unique_ptr<dvfs::DvfsController> controller =
                    cell.factory != nullptr
                        ? cell.factory(cfg)
                        : makeController(cell.design, cfg);
                fatalIf(controller == nullptr,
                        "cell factory returned no controller");
                run.result =
                    runTraced(driver, app, *controller, cell.opts,
                              cell.workload, cell.runIndex);
                run.result.workload = cell.workload;
                if (cell.inspect != nullptr)
                    cell.inspect(*controller);
                run.ok = true;
            } else {
                run.error =
                    "workload '" + cell.workload + "' failed to build";
            }
        } else {
            run.error = err;
        }
    } catch (const FatalError &e) {
        run.error = e.what();
    } catch (const std::exception &e) {
        run.error = e.what();
    }
    if (!run.ok) {
        // The one-line diagnostic; the rest of the sweep completes
        // and guardedMain turns the tally into a non-zero exit.
        noteSweepFailure();
        warn("sweep cell " + cellLabel(cell.workload, cell.design) +
             " failed: " + run.error);
    }
    return out;
}

std::vector<CellOutcome>
SweepRunner::run(std::vector<SweepCell> cells)
{
    // Repeat indices are assigned here, in submission order, before
    // anything executes - the only place cell identity is decided.
    std::map<std::string, std::size_t> repeats;
    for (SweepCell &cell : cells) {
        const std::string key = cell.workload + '\x1f' + cell.design +
            '\x1f' + configKey(cell.opts);
        cell.runIndex = repeats[key]++;
    }

    const bool observing =
        obs::metricsEnabled() || obs::timelineEnabled();

    // Warm the shared inputs with their own parallel prepasses so the
    // cell phase never serializes behind a popular app or baseline.
    std::set<std::string> seen;
    std::vector<const SweepCell *> appWork;
    for (const SweepCell &cell : cells) {
        if (seen.insert(appKey(cell.workload, cell.opts)).second)
            appWork.push_back(&cell);
    }
    pool.forEach(appWork.size(), [&](std::size_t i) {
        appFor(appWork[i]->workload, appWork[i]->opts);
    });

    seen.clear();
    std::vector<const SweepCell *> baselineWork;
    for (const SweepCell &cell : cells) {
        if (cell.wantBaseline &&
            seen.insert(cell.workload + '|' + configKey(cell.opts))
                .second) {
            baselineWork.push_back(&cell);
        }
    }
    // Metric sharding (see src/obs/context.hh): every baseline and
    // every cell records into a private run context; the shards are
    // collected below in submission order - baselines first, then
    // cells - so the merged snapshot and timeline are byte-identical
    // for every --threads value. The baseline prepass is a barrier:
    // by the cell phase every shared baseline is memoized, so no
    // baseline work can leak into (and nondeterministically inflate)
    // a cell's shard.
    std::vector<std::unique_ptr<obs::RunContext>> baselineCtx;
    for (const SweepCell *cell : baselineWork) {
        baselineCtx.push_back(std::make_unique<obs::RunContext>(
            "baseline: " + cell->workload));
    }
    pool.forEach(baselineWork.size(), [&](std::size_t i) {
        const obs::ScopedContext scope(*baselineCtx[i]);
        staticBaseline(baselineWork[i]->workload,
                       baselineWork[i]->opts);
    });

    std::vector<std::unique_ptr<obs::RunContext>> cellCtx;
    for (const SweepCell &cell : cells) {
        std::string label = cellLabel(cell.workload, cell.design);
        if (cell.runIndex > 0)
            label += " r" + std::to_string(cell.runIndex);
        cellCtx.push_back(
            std::make_unique<obs::RunContext>(std::move(label)));
    }

    const std::int64_t queued_ns = obs::nowNsIfEnabled();
    std::vector<CellOutcome> out(cells.size());
    pool.forEach(cells.size(), [&](std::size_t i) {
        const obs::ScopedContext scope(*cellCtx[i]);
        obs::Registry &registry = cellCtx[i]->registry;
        obs::recordSinceNs(
            registry.histogram("sweep.queue_wait_ns",
                               obs::MetricKind::Timing),
            queued_ns);
        const obs::ScopedTimer wall(&registry.histogram(
            "sweep.cell_wall_ns", obs::MetricKind::Timing));
        out[i] = runCell(cells[i]);
    });

    if (observing) {
        for (const auto &ctx : baselineCtx)
            obs::collectContext(*ctx);
        for (const auto &ctx : cellCtx)
            obs::collectContext(*ctx);
        obs::reg()
            .gauge("sweep.threads", obs::MetricKind::Timing)
            .set(static_cast<double>(pool.threadCount()));
    }
    return out;
}

} // namespace pcstall::bench
