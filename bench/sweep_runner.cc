#include "sweep_runner.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <utility>

#include "common/rng.hh"
#include "obs/context.hh"
#include "store/cell_codec.hh"
#include "store/result_store.hh"
#include "zoo/registry.hh"

namespace pcstall::bench
{

std::string
simConfigFingerprint(const BenchOptions &opts)
{
    std::ostringstream key;
    key << opts.cus << '|' << opts.scale << '|' << opts.epochLen << '|'
        << opts.cusPerDomain << '|' << opts.seed << '|'
        << static_cast<int>(opts.objective) << '|'
        << opts.perfDegradationLimit << '|' << opts.collectTrace << '|'
        << opts.watchdog << '|' << opts.ecc << '|' << opts.faults.seed
        << '|' << opts.faults.telemetry.enabled << '|'
        << opts.faults.telemetry.sigma << '|'
        << opts.faults.telemetry.dropoutProb << '|'
        << opts.faults.dvfs.enabled << '|'
        << opts.faults.dvfs.transitionFailProb << '|'
        << opts.faults.dvfs.extraSwitchLatency << '|'
        << opts.faults.dvfs.granularity << '|'
        << opts.faults.storage.enabled << '|'
        << opts.faults.storage.upsetsPerEpoch;
    return key.str();
}

namespace
{

/** Cells agreeing on the fingerprint plus (workload, design) are true
 *  repeats and get distinct run indices; the same key also identifies
 *  shareable application builds and baseline runs. */
std::string
configKey(const BenchOptions &opts)
{
    return simConfigFingerprint(opts);
}

/** Application builds depend on this subset of the options only. */
std::string
appKey(const std::string &workload, const BenchOptions &opts)
{
    std::ostringstream key;
    key << workload << '|' << opts.cus << '|' << opts.scale << '|'
        << opts.seed;
    return key.str();
}

std::string
cellLabel(const std::string &workload, const std::string &design)
{
    return workload + " x " + design;
}

/** Pseudo-design the shared static-nominal baselines are stored as. */
constexpr const char *baselineDesign = "__static_baseline__";

/** Steady-clock now in ns (the watchdog's clock; independent of the
 *  metrics-enabled gating of obs::nowNsIfEnabled). */
std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The store identity of one run. The fingerprint extends configKey()
 * with the inputs it deliberately leaves out of repeat-keying but
 * which do change results or stored content: a PC-table warm-start
 * file and whether metrics were recorded (entries written without
 * metrics carry an empty shard and must not satisfy a metrics run).
 */
store::CellKey
storeKeyFor(const std::string &harness, const std::string &workload,
            const std::string &design, const BenchOptions &opts,
            std::size_t run_index)
{
    store::CellKey key;
    key.harness = harness;
    key.workload = workload;
    key.design = design;
    // The config suffix also gets its own key slot (and with it the
    // digest), so "REGR:hist=4" and "REGR:hist=8" cells can never
    // collide even if a future harness normalizes design labels.
    key.controllerConfig = dvfs::splitDesign(design).config;
    key.fingerprint = configKey(opts);
    key.fingerprint += '\x1f';
    key.fingerprint += obs::metricsEnabled() ? "m1" : "m0";
    key.fingerprint += '\x1f';
    // Entries written without regret auditing carry an empty
    // RunResult::regret and must not satisfy an audited run.
    key.fingerprint += opts.auditRegret ? "a1" : "a0";
    key.fingerprint += '\x1f';
    key.fingerprint += opts.pcSnapshotIn;
    key.runIndex = run_index;
    return key;
}

/** True when a cell's run cannot be satisfied from the store: it has
 *  side effects (inspect callbacks, trace/snapshot captures) or an
 *  input (replay) the checkpoint does not model. */
bool
storeBypassed(const SweepCell &cell)
{
    return cell.inspect != nullptr || !cell.opts.traceOut.empty() ||
           !cell.opts.pcSnapshotOut.empty() ||
           !cell.opts.replayTrace.empty() ||
           !cell.opts.provenanceOut.empty();
}

/**
 * True when a cell must not route through the trace library: explicit
 * trace I/O flags own the trace lifecycle themselves. Everything else
 * is replay-eligible - a cached replay drives the real controller
 * through the real epochs, so inspect callbacks, PC-snapshot exports
 * and provenance sidecars all come out byte-identical to a live run
 * (docs/replay_studies.md).
 */
bool
cacheBypassed(const SweepCell &cell)
{
    return !cell.opts.traceOut.empty() ||
           !cell.opts.replayTrace.empty();
}

std::uint64_t
fnv1aBytes(const std::string &text, std::uint64_t basis)
{
    std::uint64_t h = basis;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::string
baselineMemoKey(const std::string &workload, const BenchOptions &opts)
{
    return workload + '|' + configKey(opts);
}

} // namespace

/** One cell's watchdog slot. Workers publish a deadline at attempt
 *  start and clear it at attempt end; the monitor thread flips
 *  `cancel` when the deadline passes, and the experiment loop notices
 *  at its next epoch boundary. */
struct SweepRunner::CellWatch
{
    std::atomic<bool> cancel{false};
    /** Absolute steady-clock deadline in ns; 0 = no attempt active. */
    std::atomic<std::int64_t> deadline{0};
};

SweepRunner::SweepRunner(const BenchOptions &opts)
    : defaults(opts), pool(opts.threads)
{
    // A sweep whose *shared* configuration is invalid would fail in
    // every cell; fail fast here instead so the user gets one
    // "fatal: run config: ..." line (and exit 1 via guardedMain)
    // before any simulation time is spent. Cell-local overrides are
    // still validated - and contained - per cell.
    const std::string err =
        sim::validateRunConfig(defaults.runConfig());
    fatalIf(!err.empty(), err);

    if (!defaults.storeDir.empty()) {
        auto rs = std::make_unique<store::ResultStore>(
            defaults.storeDir);
        if (rs->ok()) {
            resultStore = std::move(rs);
            debug("results store at '" + defaults.storeDir + "' (" +
                  std::to_string(resultStore->entryCount()) +
                  " entries)");
        } else {
            // Recoverable by design: a bad store means recomputing
            // everything, not losing the sweep.
            warn(rs->error() + " (continuing without checkpointing)");
        }
    }

    if (!defaults.traceCacheDir.empty()) {
        auto lib = std::make_unique<trace::TraceLibrary>(
            defaults.traceCacheDir);
        if (lib->ok()) {
            traceLibrary = std::move(lib);
            debug("trace library at '" + defaults.traceCacheDir +
                  "' (" + std::to_string(traceLibrary->entryCount()) +
                  " entries)");
        } else {
            // Recoverable like the store: a bad library means
            // simulating everything live, not losing the sweep.
            warn(lib->error() + " (continuing without replay caching)");
        }
    }
}

SweepRunner::~SweepRunner() = default;

SweepRunner::AppPtr
SweepRunner::appFor(const std::string &workload,
                    const BenchOptions &opts)
{
    const std::string key = appKey(workload, opts);
    std::shared_future<AppPtr> fut;
    std::shared_ptr<std::promise<AppPtr>> mine;
    {
        const std::lock_guard<std::mutex> lock(appMutex);
        const auto it = apps.find(key);
        if (it != apps.end()) {
            fut = it->second;
        } else {
            mine = std::make_shared<std::promise<AppPtr>>();
            fut = mine->get_future().share();
            apps.emplace(key, fut);
        }
    }
    if (mine != nullptr) {
        // We won the race: build on this thread; waiters block on the
        // future. Failures become a null app (makeApp already warned)
        // so the future never carries an exception.
        AppPtr app;
        try {
            app = makeApp(workload, opts);
        } catch (const FatalError &e) {
            warn("workload '" + workload + "': " +
                 std::string(e.what()));
        }
        mine->set_value(std::move(app));
    }
    return fut.get();
}

std::string
SweepRunner::workloadDigestFor(const std::string &workload)
{
    // Named Table II workloads are immutable generator programs: the
    // name (plus the config fingerprint's cus/scale/seed) is their
    // whole identity. Kernel-script paths can be re-edited in place,
    // so their bytes join the key.
    const bool is_path = workload.find('/') != std::string::npos ||
        workload.find('.') != std::string::npos;
    if (!is_path)
        return "";
    const std::lock_guard<std::mutex> lock(digestMutex);
    const auto it = workloadDigests.find(workload);
    if (it != workloadDigests.end())
        return it->second;
    std::string digest;
    std::ifstream is(workload, std::ios::binary);
    if (is) {
        const std::string bytes(
            (std::istreambuf_iterator<char>(is)),
            std::istreambuf_iterator<char>());
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(fnv1aBytes(
                          bytes, 0xCBF29CE484222325ULL)));
        digest = buf;
    } else {
        // Unreadable now => never a hit (and the cell itself will
        // fail to build, with its own diagnostic).
        digest = "unreadable";
    }
    workloadDigests.emplace(workload, digest);
    return digest;
}

trace::LibraryKey
SweepRunner::libraryKeyFor(const std::string &workload,
                           const std::string &design,
                           const BenchOptions &opts,
                           std::size_t run_index, bool shared)
{
    trace::LibraryKey key;
    key.harness = defaults.harnessId;
    key.workload = workload;
    key.workloadDigest = workloadDigestFor(workload);
    key.design = design;
    key.runIndex = run_index;
    key.fingerprint = simConfigFingerprint(opts);
    key.pcSnapshotIn = opts.pcSnapshotIn;
    key.shared = shared;
    return key;
}

bool
SweepRunner::storeProbablyHas(const SweepCell &cell) const
{
    if (resultStore == nullptr || storeBypassed(cell))
        return false;
    std::error_code ec;
    const bool cell_present = std::filesystem::exists(
        resultStore->entryPath(storeKeyFor(
            defaults.harnessId, cell.workload, cell.design, cell.opts,
            cell.runIndex)),
        ec);
    if (!cell_present)
        return false;
    if (!cell.wantBaseline)
        return true;
    return std::filesystem::exists(
        resultStore->entryPath(storeKeyFor(
            defaults.harnessId, cell.workload, baselineDesign,
            cell.opts, 0)),
        ec);
}

RunOutcome
SweepRunner::computeBaseline(const std::string &workload,
                             const BenchOptions &opts,
                             ShardArtifact &art)
{
    RunOutcome out;
    store::ResultStore *rs = resultStore.get();
    store::CellKey key;
    if (rs != nullptr) {
        key = storeKeyFor(defaults.harnessId, workload, baselineDesign,
                          opts, 0);
        store::ResultStore::GetResult got = rs->get(key);
        if (got.status == store::ResultStore::GetStatus::Corrupt) {
            obs::reg()
                .counter("farm.cells.quarantined",
                         obs::MetricKind::Timing)
                .add(1);
            warn(got.error + " (quarantined; recomputing)");
        }
        if (got.status == store::ResultStore::GetStatus::Hit) {
            store::StoredCell stored;
            std::string derr;
            if (store::decodeStoredCell(got.payload, stored, derr)) {
                obs::reg()
                    .counter("farm.cells.hit", obs::MetricKind::Timing)
                    .add(1);
                debug("store hit: baseline " + workload);
                out.result = std::move(stored.run.result);
                out.ok = stored.run.ok;
                out.error = std::move(stored.run.error);
                art.snap = std::move(stored.metrics);
                art.valid = true;
                return out;
            }
            warn("store entry for baseline " + workload + ": " + derr +
                 " (recomputing)");
        }
        obs::reg()
            .counter("farm.cells.miss", obs::MetricKind::Timing)
            .add(1);
    }

    // Live compute in a private context so the baseline's metrics
    // shard is exactly this run's recording - cleanly snapshottable
    // for the store and for submission-order collection.
    obs::RunContext attempt_ctx("baseline: " + workload);
    {
        const obs::ScopedContext scope(attempt_ctx);
        try {
            sim::RunConfig cfg = opts.runConfig();
            const std::string err = sim::validateRunConfig(cfg);
            if (!err.empty()) {
                out.error = err;
            } else if (AppPtr app = appFor(workload, opts)) {
                // The baseline's stream derives from the same pure
                // key scheme as cells, with the design slot pinned,
                // so it is identical however many cells share it.
                cfg.gpu.seed =
                    Rng::split(opts.seed, workload, "STATIC").next();
                sim::ExperimentDriver driver(cfg);
                dvfs::StaticController nominal(driver.nominalState());
                bool produced = false;
                if (traceLibrary != nullptr && traceLibrary->ok()) {
                    // Baselines always key exact (the shared what-if
                    // tier addresses cell streams; a baseline's
                    // STATIC-seeded stream is its own). PC warm-start
                    // paths are irrelevant to a static controller, so
                    // the slot stays blank for maximal reuse.
                    TraceCacheContext cctx;
                    cctx.library = traceLibrary.get();
                    cctx.key = libraryKeyFor(workload, baselineDesign,
                                             opts, 0, false);
                    cctx.key.pcSnapshotIn.clear();
                    cctx.freshController = [&driver]()
                        -> std::unique_ptr<dvfs::DvfsController> {
                        return std::make_unique<dvfs::StaticController>(
                            driver.nominalState());
                    };
                    dvfs::DvfsController *ctrl = &nominal;
                    produced = resolveTraceCache(driver, app, ctrl,
                                                 opts, workload, cctx,
                                                 nullptr, out.result);
                }
                if (!produced)
                    out.result = driver.run(app, nominal);
                out.result.workload = workload;
                out.ok = true;
            } else {
                out.error =
                    "workload '" + workload + "' failed to build";
            }
        } catch (const FatalError &e) {
            out.error = e.what();
        } catch (const std::exception &e) {
            out.error = e.what();
        }
    }
    art.snap = attempt_ctx.registry.snapshot();
    art.timeline = std::move(attempt_ctx.timeline);
    art.valid = true;

    if (!out.ok) {
        noteSweepFailure();
        warn("static baseline for " + workload +
             " failed: " + out.error);
    } else if (rs != nullptr) {
        store::StoredCell stored;
        stored.run.result = out.result;
        stored.run.ok = true;
        stored.metrics = art.snap;
        const std::string perr =
            rs->put(key, store::encodeStoredCell(stored));
        if (!perr.empty())
            debug("store put (baseline " + workload + "): " + perr);
    }
    return out;
}

RunOutcome
SweepRunner::staticBaseline(const std::string &workload,
                            const BenchOptions &opts)
{
    const std::string key = baselineMemoKey(workload, opts);
    std::shared_future<RunOutcome> fut;
    std::shared_ptr<std::promise<RunOutcome>> mine;
    {
        const std::lock_guard<std::mutex> lock(baselineMutex);
        const auto it = baselines.find(key);
        if (it != baselines.end()) {
            fut = it->second;
        } else {
            mine = std::make_shared<std::promise<RunOutcome>>();
            fut = mine->get_future().share();
            baselines.emplace(key, fut);
        }
    }
    if (mine != nullptr) {
        ShardArtifact art;
        RunOutcome out = computeBaseline(workload, opts, art);
        {
            const std::lock_guard<std::mutex> lock(artifactMutex);
            baselineArtifacts[key] = std::move(art);
        }
        mine->set_value(std::move(out));
    }
    return fut.get();
}

SweepRunner::FailureKind
SweepRunner::attemptCell(const SweepCell &cell,
                         const std::atomic<bool> *cancel,
                         RunOutcome &run, const CacheRouting &routing)
{
    try {
        sim::RunConfig cfg = cell.opts.runConfig();
        const std::string err = sim::validateRunConfig(cfg);
        if (!err.empty()) {
            run.error = err;
            return FailureKind::Config;
        }
        AppPtr app = appFor(cell.workload, cell.opts);
        if (app == nullptr) {
            run.error =
                "workload '" + cell.workload + "' failed to build";
            return FailureKind::Config;
        }
        // The determinism keystone: the cell's RNG stream is a pure
        // function of its identity, never of which thread runs it or
        // in what order.
        cfg.gpu.seed = Rng::split(cell.opts.seed, cell.workload,
                                  cell.design, cell.runIndex).next();
        cfg.cancel = cancel;
        sim::ExperimentDriver driver(cfg);
        std::unique_ptr<dvfs::DvfsController> controller =
            cell.factory != nullptr
                ? cell.factory(cfg)
                : makeController(cell.design, cfg, app.get());
        fatalIf(controller == nullptr,
                "cell factory returned no controller");
        TraceCacheContext cacheCtx;
        if (routing.enabled && traceLibrary != nullptr &&
            traceLibrary->ok()) {
            cacheCtx.library = traceLibrary.get();
            cacheCtx.key =
                libraryKeyFor(cell.workload, cell.design, cell.opts,
                              cell.runIndex, defaults.traceWhatIf);
            cacheCtx.captureOnMiss = routing.captureOnMiss;
            cacheCtx.freshController = [&cell, &cfg, &app]()
                -> std::unique_ptr<dvfs::DvfsController> {
                return cell.factory != nullptr
                    ? cell.factory(cfg)
                    : makeController(cell.design, cfg, app.get());
            };
        }
        run.result = runTraced(driver, app, *controller, cell.opts,
                               cell.workload, cell.runIndex, &cacheCtx);
        run.result.workload = cell.workload;
        // A stale-entry heal swaps in a fresh controller mid-run; the
        // rebuilt one carries the live run's final state, so inspect
        // callbacks must see it instead of the abandoned original.
        if (cacheCtx.rebuilt != nullptr)
            controller = std::move(cacheCtx.rebuilt);
        if (cell.inspect != nullptr)
            cell.inspect(*controller);
        run.ok = true;
        return FailureKind::None;
    } catch (const FatalError &e) {
        run.error = e.what();
        // A FatalError after the watchdog flipped the flag is the
        // cancellation surfacing, not an independent defect.
        if (cancel != nullptr &&
            cancel->load(std::memory_order_relaxed)) {
            return FailureKind::Timeout;
        }
        return FailureKind::Fatal;
    } catch (const std::exception &e) {
        run.error = e.what();
        return FailureKind::Transient;
    }
}

CellOutcome
SweepRunner::executeCell(const SweepCell &cell, CellWatch *watch,
                         obs::Registry &farm, ShardArtifact &art,
                         const CacheRouting &routing)
{
    CellOutcome out;
    if (cell.wantBaseline)
        out.baseline = staticBaseline(cell.workload, cell.opts);

    const std::string label = cellLabel(cell.workload, cell.design);
    store::ResultStore *rs =
        storeBypassed(cell) ? nullptr : resultStore.get();
    store::CellKey key;
    if (rs != nullptr) {
        key = storeKeyFor(defaults.harnessId, cell.workload,
                          cell.design, cell.opts, cell.runIndex);
        store::ResultStore::GetResult got = rs->get(key);
        if (got.status == store::ResultStore::GetStatus::Corrupt) {
            farm.counter("farm.cells.quarantined",
                         obs::MetricKind::Timing)
                .add(1);
            warn(got.error + " (quarantined; recomputing)");
        }
        if (got.status == store::ResultStore::GetStatus::Hit) {
            store::StoredCell stored;
            std::string derr;
            if (store::decodeStoredCell(got.payload, stored, derr)) {
                farm.counter("farm.cells.hit", obs::MetricKind::Timing)
                    .add(1);
                debug("store hit: " + label);
                out.run.result = std::move(stored.run.result);
                out.run.ok = stored.run.ok;
                out.run.error = std::move(stored.run.error);
                art.snap = std::move(stored.metrics);
                art.valid = true;
                return out;
            }
            warn("store entry for " + label + ": " + derr +
                 " (recomputing)");
        }
        farm.counter("farm.cells.miss", obs::MetricKind::Timing)
            .add(1);
    }

    const std::int64_t budget_ns = static_cast<std::int64_t>(
        defaults.cellTimeoutSec * 1e9);
    const unsigned max_attempts = 1 + defaults.cellRetries;
    std::string ctx_label = label;
    if (cell.runIndex > 0)
        ctx_label += " r" + std::to_string(cell.runIndex);
    for (unsigned attempt = 0;; ++attempt) {
        if (watch != nullptr && budget_ns > 0) {
            watch->cancel.store(false, std::memory_order_relaxed);
            watch->deadline.store(steadyNowNs() + budget_ns,
                                  std::memory_order_release);
        }
        obs::RunContext attempt_ctx(ctx_label);
        FailureKind kind;
        {
            const obs::ScopedContext scope(attempt_ctx);
            out.run = RunOutcome{};
            kind = attemptCell(
                cell, watch != nullptr ? &watch->cancel : nullptr,
                out.run, routing);
        }
        if (watch != nullptr)
            watch->deadline.store(0, std::memory_order_release);
        // Per-attempt contexts keep abandoned attempts' metrics out of
        // the merge: only the final attempt's shard is collected.
        art.snap = attempt_ctx.registry.snapshot();
        art.timeline = std::move(attempt_ctx.timeline);
        art.valid = true;
        if (out.run.ok)
            break;
        if (kind == FailureKind::Timeout) {
            farm.counter("farm.cells.timeout", obs::MetricKind::Timing)
                .add(1);
            break;
        }
        if (kind == FailureKind::Transient &&
            attempt + 1 < max_attempts) {
            farm.counter("farm.cells.retried", obs::MetricKind::Timing)
                .add(1);
            warn("sweep cell " + label + " attempt " +
                 std::to_string(attempt + 1) + " failed: " +
                 out.run.error + " (retrying)");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20 * (attempt + 1)));
            continue;
        }
        break;
    }

    if (out.run.ok) {
        if (rs != nullptr) {
            store::StoredCell stored;
            stored.run.result = out.run.result;
            stored.run.ok = true;
            stored.metrics = art.snap;
            const std::string perr =
                rs->put(key, store::encodeStoredCell(stored));
            if (!perr.empty())
                debug("store put (" + label + "): " + perr);
        }
    } else {
        // The one-line diagnostic; the rest of the sweep completes
        // and guardedMain turns the tally into a non-zero exit.
        noteSweepFailure();
        warn("sweep cell " + label + " failed: " + out.run.error);
    }
    return out;
}

std::vector<CellOutcome>
SweepRunner::run(std::vector<SweepCell> cells)
{
    // Repeat indices are assigned here, in submission order, on the
    // FULL list before any shard filtering - the only place cell
    // identity is decided, and deliberately independent of the shard
    // layout so every worker and the merge pass agree on RNG streams
    // and store keys.
    std::map<std::string, std::size_t> repeats;
    for (SweepCell &cell : cells) {
        const std::string key = cell.workload + '\x1f' + cell.design +
            '\x1f' + configKey(cell.opts);
        cell.runIndex = repeats[key]++;
    }

    const unsigned shard_n =
        defaults.shardCount > 1 ? defaults.shardCount : 1;
    const unsigned shard_i =
        shard_n > 1 ? defaults.shardIndex % shard_n : 0;
    const auto owned = [&](std::size_t i) {
        return shard_n <= 1 || i % shard_n == shard_i;
    };

    // Replay-cache routing (see docs/replay_studies.md). Cells that
    // already drive trace I/O themselves (--trace-out / --replay)
    // bypass the library; everything else is replay-eligible. In
    // shared what-if mode, cells collapsing onto one shared key form a
    // group: the first submission index is the owner (it captures on
    // miss), later ones are waiters (they block on the owner's future,
    // then replay its entry; never capture, so an owner's published
    // trace is never clobbered). ParallelExecutor claims indices in
    // increasing order, so an owner is always scheduled no later than
    // its waiters and the waits cannot deadlock.
    const bool cache_on = traceLibrary != nullptr && traceLibrary->ok();
    std::vector<CacheRouting> routing(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        routing[i].enabled = cache_on && !cacheBypassed(cells[i]);
    std::vector<std::shared_future<void>> cellWaits(cells.size());
    std::vector<std::shared_ptr<std::promise<void>>> cellSignals(
        cells.size());
    if (cache_on && defaults.traceWhatIf) {
        std::map<std::string, std::shared_future<void>> groupFuture;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!owned(i) || !routing[i].enabled)
                continue;
            const std::string digest =
                libraryKeyFor(cells[i].workload, cells[i].design,
                              cells[i].opts, cells[i].runIndex, true)
                    .digest();
            const auto it = groupFuture.find(digest);
            if (it == groupFuture.end()) {
                auto signal = std::make_shared<std::promise<void>>();
                groupFuture.emplace(digest,
                                    signal->get_future().share());
                cellSignals[i] = std::move(signal);
            } else {
                routing[i].captureOnMiss = false;
                cellWaits[i] = it->second;
            }
        }
    }

    const bool observing =
        obs::metricsEnabled() || obs::timelineEnabled();

    // Warm the shared inputs with their own parallel prepasses so the
    // cell phase never serializes behind a popular app or baseline.
    // Cells another shard owns - or whose results (and baselines) are
    // already checkpointed - need no inputs here; a racing corrupt
    // entry just falls back to the memoized appFor() in the cell.
    std::set<std::string> seen;
    std::vector<const SweepCell *> appWork;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!owned(i) || storeProbablyHas(cells[i]))
            continue;
        if (seen.insert(appKey(cells[i].workload, cells[i].opts))
                .second) {
            appWork.push_back(&cells[i]);
        }
    }
    pool.forEach(appWork.size(), [&](std::size_t i) {
        appFor(appWork[i]->workload, appWork[i]->opts);
    });

    seen.clear();
    std::vector<const SweepCell *> baselineWork;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        if (owned(i) && cell.wantBaseline &&
            seen.insert(baselineMemoKey(cell.workload, cell.opts))
                .second) {
            baselineWork.push_back(&cell);
        }
    }
    // Metric sharding (see src/obs/context.hh): every baseline and
    // every cell records into a private run context; the shards are
    // collected below in submission order - baselines first, then
    // cells - so the merged snapshot and timeline are byte-identical
    // for every --threads value. The baseline prepass is a barrier:
    // by the cell phase every shared baseline is memoized, so no
    // baseline work can leak into (and nondeterministically inflate)
    // a cell's shard.
    std::vector<std::unique_ptr<obs::RunContext>> baselineCtx;
    for (const SweepCell *cell : baselineWork) {
        baselineCtx.push_back(std::make_unique<obs::RunContext>(
            "baseline: " + cell->workload));
    }
    pool.forEach(baselineWork.size(), [&](std::size_t i) {
        const obs::ScopedContext scope(*baselineCtx[i]);
        staticBaseline(baselineWork[i]->workload,
                       baselineWork[i]->opts);
    });

    std::vector<std::unique_ptr<obs::RunContext>> cellCtx;
    for (const SweepCell &cell : cells) {
        std::string label = cellLabel(cell.workload, cell.design);
        if (cell.runIndex > 0)
            label += " r" + std::to_string(cell.runIndex);
        cellCtx.push_back(
            std::make_unique<obs::RunContext>(std::move(label)));
    }
    std::vector<ShardArtifact> cellArt(cells.size());

    // The cell watchdog: workers publish per-attempt deadlines; the
    // monitor flips the cancel flag when one passes, and the run stops
    // cooperatively at its next epoch boundary. The monitor never
    // touches threads or results - enforcement is entirely in-band.
    const bool watchdog_on = defaults.cellTimeoutSec > 0.0;
    std::vector<std::unique_ptr<CellWatch>> watches;
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (watchdog_on) {
        watches.resize(cells.size());
        for (auto &watch : watches)
            watch = std::make_unique<CellWatch>();
        monitor = std::thread([&] {
            while (!monitor_stop.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                const std::int64_t now = steadyNowNs();
                for (auto &watch : watches) {
                    const std::int64_t deadline =
                        watch->deadline.load(std::memory_order_acquire);
                    if (deadline != 0 && now > deadline) {
                        watch->cancel.store(
                            true, std::memory_order_relaxed);
                    }
                }
            }
        });
    }

    // --progress: a rate-limited status line on stderr, fed by the
    // completion counter below. The display is wall-clock cosmetics
    // only - results, metrics and store contents are untouched - and
    // it disables itself when stderr is not a TTY (logs, CI).
    std::size_t owned_total = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (owned(i))
            ++owned_total;
    }
    std::atomic<std::size_t> cells_done{0};
    const bool progress_on = defaults.progress && owned_total > 0 &&
        isatty(fileno(stderr)) != 0;
    std::atomic<bool> progress_stop{false};
    std::thread progress_thread;
    if (progress_on) {
        progress_thread = std::thread([&, owned_total] {
            const std::int64_t start = steadyNowNs();
            std::size_t last_done = static_cast<std::size_t>(-1);
            std::int64_t last_print = 0;
            for (;;) {
                const bool stopping =
                    progress_stop.load(std::memory_order_acquire);
                const std::size_t done =
                    cells_done.load(std::memory_order_relaxed);
                const std::int64_t now = steadyNowNs();
                // Redraw at most ~4x/s, and once more when stopping.
                if (stopping ||
                    (done != last_done &&
                     now - last_print > 250'000'000)) {
                    const double secs =
                        static_cast<double>(now - start) / 1e9;
                    const double rate =
                        secs > 0.0 ? static_cast<double>(done) / secs
                                   : 0.0;
                    const double eta = rate > 0.0
                        ? static_cast<double>(owned_total - done) / rate
                        : 0.0;
                    std::fprintf(stderr,
                                 "\r[sweep] %zu/%zu cells "
                                 "(%.1f cells/s, ETA %.0fs)   ",
                                 done, owned_total, rate, eta);
                    std::fflush(stderr);
                    last_done = done;
                    last_print = now;
                }
                if (stopping) {
                    std::fputc('\n', stderr);
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        });
    }

    const std::int64_t queued_ns = obs::nowNsIfEnabled();
    std::vector<CellOutcome> out(cells.size());
    pool.forEach(cells.size(), [&](std::size_t i) {
        if (!owned(i)) {
            out[i].run.skipped = true;
            out[i].run.error = "skipped: shard " +
                std::to_string(shard_i) + "/" +
                std::to_string(shard_n) + " does not own cell " +
                std::to_string(i);
            out[i].baseline.skipped = cells[i].wantBaseline;
            return;
        }
        if (cellWaits[i].valid())
            cellWaits[i].wait();
        const obs::ScopedContext scope(*cellCtx[i]);
        obs::Registry &registry = cellCtx[i]->registry;
        obs::recordSinceNs(
            registry.histogram("sweep.queue_wait_ns",
                               obs::MetricKind::Timing),
            queued_ns);
        const obs::ScopedTimer wall(&registry.histogram(
            "sweep.cell_wall_ns", obs::MetricKind::Timing));
        out[i] = executeCell(
            cells[i], watchdog_on ? watches[i].get() : nullptr,
            registry, cellArt[i], routing[i]);
        if (cellSignals[i] != nullptr)
            cellSignals[i]->set_value();
        cells_done.fetch_add(1, std::memory_order_relaxed);
    });

    if (progress_on) {
        progress_stop.store(true, std::memory_order_release);
        progress_thread.join();
    }
    if (watchdog_on) {
        monitor_stop.store(true, std::memory_order_release);
        monitor.join();
    }

    if (observing) {
        // Submission-order collection. Each run slot contributes its
        // run shard (live snapshot, or the shard replayed from the
        // store) followed by its farm-level context; the sources have
        // disjoint deterministic names, so resumed and uninterrupted
        // sweeps merge byte-identically.
        for (std::size_t i = 0; i < baselineWork.size(); ++i) {
            ShardArtifact art;
            {
                const std::lock_guard<std::mutex> lock(artifactMutex);
                const auto it = baselineArtifacts.find(baselineMemoKey(
                    baselineWork[i]->workload, baselineWork[i]->opts));
                if (it != baselineArtifacts.end()) {
                    art = std::move(it->second);
                    baselineArtifacts.erase(it);
                }
            }
            if (art.valid) {
                obs::collectShard(
                    "baseline: " + baselineWork[i]->workload,
                    std::move(art.snap), std::move(art.timeline));
            }
            obs::collectContext(*baselineCtx[i]);
        }
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cellArt[i].valid) {
                obs::collectShard(cellCtx[i]->label,
                                  std::move(cellArt[i].snap),
                                  std::move(cellArt[i].timeline));
            }
            obs::collectContext(*cellCtx[i]);
        }
        obs::reg()
            .gauge("sweep.threads", obs::MetricKind::Timing)
            .set(static_cast<double>(pool.threadCount()));
    }
    return out;
}

} // namespace pcstall::bench
