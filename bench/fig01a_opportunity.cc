/**
 * @file
 * Figure 1(a): the ED^2P improvement opportunity versus DVFS epoch
 * duration - geomean ED^2P (normalized to static 1.7 GHz) of ORACLE,
 * PCSTALL and CRISP at several epoch lengths. The paper's headline:
 * fine-grain (1 us) DVFS exposes ~30% more ED^2P reduction than
 * coarse epochs, and only predictive mechanisms harvest it.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 1(a)",
                      "ED2P opportunity vs DVFS epoch duration", opts);

        const std::vector<double> epochs = {1.0, 10.0, 100.0};
        const std::vector<std::string> designs =
            opts.designList({"CRISP", "PCSTALL", "ORACLE"});
        const std::vector<std::string> names =
            opts.sweepWorkloadNames();

        // Every epoch row's grid goes into one sweep.
        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const double us : epochs) {
            const auto epoch_opts = opts.sizedForEpoch(us);
            for (const std::string &name : names) {
                for (const std::string &design : designs) {
                    bench::SweepCell c =
                        runner.cell(name, design, true);
                    c.opts = epoch_opts;
                    cells.push_back(std::move(c));
                }
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"epoch"};
        for (const auto &d : designs)
            headers.push_back(d);
        TableWriter table(headers);

        for (std::size_t e = 0; e < epochs.size(); ++e) {
            std::map<std::string, std::vector<double>> norm;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::size_t row =
                    (e * names.size() + w) * designs.size();
                if (!outcomes[row].baseline.ok)
                    continue;
                const double base =
                    outcomes[row].baseline.result.ed2p();
                for (std::size_t d = 0; d < designs.size(); ++d) {
                    const bench::RunOutcome &run =
                        outcomes[row + d].run;
                    if (run.ok) {
                        norm[designs[d]].push_back(
                            run.result.ed2p() / base);
                    }
                }
            }
            table.beginRow().cell(formatFixed(epochs[e], 0) + "us");
            for (const std::string &design : designs)
                table.cell(geomean(norm[design]), 3);
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("\n(normalized geomean ED2P vs static 1.7 GHz; "
                    "the ORACLE row is the opportunity curve of paper "
                    "Fig 1a - it should improve as epochs shrink)\n");
        return 0;
    });
}
