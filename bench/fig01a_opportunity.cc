/**
 * @file
 * Figure 1(a): the ED^2P improvement opportunity versus DVFS epoch
 * duration - geomean ED^2P (normalized to static 1.7 GHz) of ORACLE,
 * PCSTALL and CRISP at several epoch lengths. The paper's headline:
 * fine-grain (1 us) DVFS exposes ~30% more ED^2P reduction than
 * coarse epochs, and only predictive mechanisms harvest it.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 1(a)",
                  "ED2P opportunity vs DVFS epoch duration", opts);

    const std::vector<std::string> designs = {"CRISP", "PCSTALL",
                                              "ORACLE"};
    std::vector<std::string> headers = {"epoch"};
    for (const auto &d : designs)
        headers.push_back(d);
    TableWriter table(headers);

    for (const double us : {1.0, 10.0, 100.0}) {
        const auto epoch_opts = opts.sizedForEpoch(us);
        const auto cfg = epoch_opts.runConfig();
        sim::ExperimentDriver driver(cfg);

        std::map<std::string, std::vector<double>> norm;
        for (const std::string &name :
                 epoch_opts.sweepWorkloadNames()) {
            const auto app = bench::makeApp(name, epoch_opts);
            if (!app)
                continue;
            dvfs::StaticController nominal(driver.nominalState());
            const sim::RunResult base = driver.run(app, nominal);
            for (const std::string &design : designs) {
                const auto controller =
                    bench::makeController(design, cfg);
                const sim::RunResult r = driver.run(app, *controller);
                norm[design].push_back(r.ed2p() / base.ed2p());
            }
        }
        table.beginRow().cell(formatFixed(us, 0) + "us");
        for (const std::string &design : designs)
            table.cell(geomean(norm[design]), 3);
        table.endRow();
    }
    bench::emit(opts, table);
    std::printf("\n(normalized geomean ED2P vs static 1.7 GHz; the "
                "ORACLE row is the opportunity curve of paper "
                "Fig 1a - it should improve as epochs shrink)\n");
    return 0;
}
