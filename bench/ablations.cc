/**
 * @file
 * Ablation study of PCSTALL's design choices (DESIGN.md section 5):
 * each row disables or varies one mechanism and reports geomean
 * normalized ED^2P and mean prediction accuracy over a workload
 * subset:
 *
 *  - adaptive age-contention learning vs the static linear model;
 *  - the per-entry level (I0) field vs a slope-only table;
 *  - region-change-gated lookups vs always-lookup;
 *  - 8-bit quantization vs full precision;
 *  - update blending factor;
 *  - reactive fallback on table miss;
 *  - table sharing granularity (CUs per table).
 *
 * Replay-first iteration (docs/replay_studies.md): pass
 * --trace-cache DIR and the first run captures every cell's epoch
 * trace into a content-addressed library; subsequent runs replay
 * from it - byte-identical stdout and canonical metrics, at a
 * fraction of the simulation cost. Add --trace-what-if to collapse
 * all ten variants onto one shared capture per workload (open-loop
 * comparison; see the tier caveats in the doc).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "core/pcstall_controller.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

struct Variant
{
    std::string name;
    core::PcstallConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("ABLATIONS", "PCSTALL design-choice ablations",
                      opts);

        std::vector<std::string> names = {"comd", "hacc", "BwdBN",
                                          "xsbench", "dgemm", "lulesh"};
        if (!opts.workloads.empty())
            names = opts.workloads;

        const auto cfg = opts.runConfig();
        const auto base_pcfg = core::PcstallConfig::forEpoch(
            cfg.epochLen, cfg.gpu.waveSlotsPerCu);

        std::vector<Variant> variants;
        variants.push_back({"baseline", base_pcfg});
        {
            auto v = base_pcfg;
            v.adaptiveContention = false;
            variants.push_back({"static linear contention", v});
        }
        {
            auto v = base_pcfg;
            v.estimator.normalizeAge = false;
            v.adaptiveContention = false;
            variants.push_back({"no age normalization", v});
        }
        {
            auto v = base_pcfg;
            v.table.storeLevel = false;
            variants.push_back({"slope-only table (paper Table I)", v});
        }
        {
            auto v = base_pcfg;
            v.lookupOnRegionChange = false;
            variants.push_back({"always lookup (no region gate)", v});
        }
        {
            auto v = base_pcfg;
            v.table.quantize = false;
            variants.push_back({"no 8-bit quantization", v});
        }
        {
            auto v = base_pcfg;
            v.table.updateBlend = 1.0;
            variants.push_back({"no update blending", v});
        }
        {
            auto v = base_pcfg;
            v.reactiveFallback = false;
            variants.push_back({"no reactive fallback on miss", v});
        }
        {
            auto v = base_pcfg;
            v.cusPerTable = cfg.gpu.numCus;
            variants.push_back({"one table shared by all CUs", v});
        }
        {
            auto v = base_pcfg;
            v.table.entries = 32;
            variants.push_back({"32-entry table", v});
        }

        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const Variant &variant : variants) {
            for (const std::string &name : names) {
                bench::SweepCell c =
                    runner.cell(name, "PCSTALL:" + variant.name, true);
                const core::PcstallConfig pcfg = variant.cfg;
                c.factory = [pcfg](const sim::RunConfig &rc) {
                    return std::make_unique<core::PcstallController>(
                        pcfg, rc.gpu.numCus);
                };
                cells.push_back(std::move(c));
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        TableWriter table({"variant", "geomean ED2P vs 1.7GHz",
                           "mean accuracy", "storage B/instance"});
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const Variant &variant = variants[v];
            std::vector<double> norm;
            std::vector<double> acc;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const bench::CellOutcome &cell =
                    outcomes[v * names.size() + w];
                if (!cell.run.ok || !cell.baseline.ok)
                    continue;
                norm.push_back(cell.run.result.ed2p() /
                               cell.baseline.result.ed2p());
                acc.push_back(cell.run.result.predictionAccuracy);
            }
            // Storage is a static property of the variant's geometry.
            core::PcstallController probe(variant.cfg, cfg.gpu.numCus);
            const std::uint64_t storage = probe.storageBytes() /
                (cfg.gpu.numCus / variant.cfg.cusPerTable);
            table.beginRow()
                .cell(variant.name)
                .cell(geomean(norm), 3)
                .cell(formatPercent(mean(acc)))
                .cell(static_cast<long long>(storage));
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("\n(each variant changes exactly one mechanism "
                    "relative to the baseline; see DESIGN.md "
                    "section 5)\n");
        return 0;
    });
}
