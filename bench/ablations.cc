/**
 * @file
 * Ablation study of PCSTALL's design choices (DESIGN.md section 5):
 * each row disables or varies one mechanism and reports geomean
 * normalized ED^2P and mean prediction accuracy over a workload
 * subset:
 *
 *  - adaptive age-contention learning vs the static linear model;
 *  - the per-entry level (I0) field vs a slope-only table;
 *  - region-change-gated lookups vs always-lookup;
 *  - 8-bit quantization vs full precision;
 *  - update blending factor;
 *  - reactive fallback on table miss;
 *  - table sharing granularity (CUs per table).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "core/pcstall_controller.hh"
#include "harness.hh"

using namespace pcstall;

namespace
{

struct Variant
{
    std::string name;
    core::PcstallConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("ABLATIONS", "PCSTALL design-choice ablations", opts);

    std::vector<std::string> names = {"comd", "hacc", "BwdBN",
                                      "xsbench", "dgemm", "lulesh"};
    if (!opts.workloads.empty())
        names = opts.workloads;

    const auto cfg = opts.runConfig();
    const auto base_pcfg = core::PcstallConfig::forEpoch(
        cfg.epochLen, cfg.gpu.waveSlotsPerCu);

    std::vector<Variant> variants;
    variants.push_back({"baseline", base_pcfg});
    {
        auto v = base_pcfg;
        v.adaptiveContention = false;
        variants.push_back({"static linear contention", v});
    }
    {
        auto v = base_pcfg;
        v.estimator.normalizeAge = false;
        v.adaptiveContention = false;
        variants.push_back({"no age normalization", v});
    }
    {
        auto v = base_pcfg;
        v.table.storeLevel = false;
        variants.push_back({"slope-only table (paper Table I)", v});
    }
    {
        auto v = base_pcfg;
        v.lookupOnRegionChange = false;
        variants.push_back({"always lookup (no region gate)", v});
    }
    {
        auto v = base_pcfg;
        v.table.quantize = false;
        variants.push_back({"no 8-bit quantization", v});
    }
    {
        auto v = base_pcfg;
        v.table.updateBlend = 1.0;
        variants.push_back({"no update blending", v});
    }
    {
        auto v = base_pcfg;
        v.reactiveFallback = false;
        variants.push_back({"no reactive fallback on miss", v});
    }
    {
        auto v = base_pcfg;
        v.cusPerTable = cfg.gpu.numCus;
        variants.push_back({"one table shared by all CUs", v});
    }
    {
        auto v = base_pcfg;
        v.table.entries = 32;
        variants.push_back({"32-entry table", v});
    }

    sim::ExperimentDriver driver(cfg);

    TableWriter table({"variant", "geomean ED2P vs 1.7GHz",
                       "mean accuracy", "storage B/instance"});
    for (const Variant &variant : variants) {
        std::vector<double> norm;
        std::vector<double> acc;
        std::uint64_t storage = 0;
        for (const std::string &name : names) {
            const auto app = bench::makeApp(name, opts);
            if (!app)
                continue;
            dvfs::StaticController nominal(driver.nominalState());
            const sim::RunResult base = driver.run(app, nominal);
            core::PcstallController c(variant.cfg, cfg.gpu.numCus);
            const sim::RunResult r = driver.run(app, c);
            norm.push_back(r.ed2p() / base.ed2p());
            acc.push_back(r.predictionAccuracy);
            storage = c.storageBytes() /
                (cfg.gpu.numCus / variant.cfg.cusPerTable);
        }
        table.beginRow()
            .cell(variant.name)
            .cell(geomean(norm), 3)
            .cell(formatPercent(mean(acc)))
            .cell(static_cast<long long>(storage));
        table.endRow();
    }
    bench::emit(opts, table);
    std::printf("\n(each variant changes exactly one mechanism "
                "relative to the baseline; see DESIGN.md section 5)\n");
    return 0;
}
