/**
 * @file
 * Figure 7: (a) average relative change in per-domain sensitivity
 * across consecutive 1 us epochs, per workload (the paper reports a
 * 37% suite average); (b) the same metric versus epoch duration
 * (paper: 12% at 100 us rising to 37% at 1 us).
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

double
variabilityOf(const std::string &name, const bench::BenchOptions &opts,
              Tick epoch_len, std::size_t max_epochs)
{
    sim::ProfileConfig pcfg = opts.profileConfig();
    pcfg.epochLen = epoch_len;
    pcfg.waveLevel = false;
    pcfg.maxEpochs = max_epochs;
    pcfg.maxSimTime = 200 * tickMs;
    // Non-shuffled sweeps: cross-domain interference noise would be
    // conflated with the workload's own variability.
    pcfg.shuffle = false;
    sim::SensitivityProfiler profiler(pcfg);

    // Longer epochs need proportionally more work so the series still
    // spans several epochs of steady execution.
    auto sized = opts;
    const double epoch_us = static_cast<double>(epoch_len) /
        static_cast<double>(tickUs);
    sized.scale = opts.scale * std::max(1.0, epoch_us / 2.0);
    const auto app = bench::makeApp(name, sized);
    if (!app)
        return 0.0;
    const sim::ProfileResult profile = profiler.profile(app);

    std::vector<double> changes;
    for (std::uint32_t d = 0; d < profile.epochs.front().domains.size();
         ++d) {
        auto series = profile.domainSeries(d);
        // Guard the final drain epochs (work ramp-down at the end of
        // the application), which are artefacts of run length rather
        // than phase behaviour.
        while (series.size() > 2 &&
               std::abs(series.back()) < 0.05 * mean(series)) {
            series.pop_back();
        }
        if (series.size() >= 2)
            changes.push_back(avgRelativeChange(series));
    }
    return mean(changes);
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner(
            "FIGURE 7",
            "Sensitivity variability across consecutive epochs", opts);

        bench::SweepRunner runner(opts);

        // (a) per-workload at the configured epoch (default 1 us).
        const std::vector<std::string> names = opts.workloadNames();
        const std::vector<double> all = runner.map<double>(
            names.size(), [&](std::size_t i) {
                return variabilityOf(names[i], opts, opts.epochLen,
                                     40);
            });
        TableWriter per_workload({"workload", "avg relative change"});
        for (std::size_t i = 0; i < names.size(); ++i) {
            per_workload.beginRow()
                .cell(names[i])
                .cell(formatPercent(all[i]));
            per_workload.endRow();
        }
        per_workload.beginRow().cell("AVERAGE")
            .cell(formatPercent(mean(all)));
        per_workload.endRow();
        bench::emit(opts, per_workload);
        std::printf("\n(paper Fig 7a: ~37%% average at 1 us)\n\n");

        // (b) average across a few representative workloads vs epoch.
        const std::vector<std::string> reps = {"comd", "hacc", "BwdBN",
                                               "xsbench"};
        const std::vector<double> epochs_us = {1.0, 5.0, 10.0, 50.0,
                                               100.0};
        const std::vector<double> grid = runner.map<double>(
            epochs_us.size() * reps.size(), [&](std::size_t i) {
                const double us = epochs_us[i / reps.size()];
                return variabilityOf(
                    reps[i % reps.size()], opts,
                    static_cast<Tick>(us * tickUs), 12);
            });
        TableWriter vs_epoch({"epoch", "avg relative change"});
        for (std::size_t e = 0; e < epochs_us.size(); ++e) {
            std::vector<double> vals(
                grid.begin() +
                    static_cast<std::ptrdiff_t>(e * reps.size()),
                grid.begin() +
                    static_cast<std::ptrdiff_t>((e + 1) * reps.size()));
            vs_epoch.beginRow()
                .cell(formatFixed(epochs_us[e], 0) + "us")
                .cell(formatPercent(mean(vals)));
            vs_epoch.endRow();
        }
        bench::emit(opts, vs_epoch);
        std::printf("\n(paper Fig 7b: 37%% at 1us falling to 12%% at "
                    "100us)\n");
        return 0;
    });
}
