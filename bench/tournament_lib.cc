#include "tournament_lib.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/stats_util.hh"
#include "obs/context.hh"

namespace pcstall::bench
{

namespace
{

constexpr double nan = std::numeric_limits<double>::quiet_NaN();

/** Fixed-point decimal for JSON emission ("null" for NaN) so the
 *  document is byte-stable across platforms and thread counts. */
std::string
jsonNumber(double value, int precision)
{
    if (!std::isfinite(value))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::vector<TournamentObjective>
tournamentObjectives(const std::string &list)
{
    static const std::vector<TournamentObjective> all = {
        {"edp", dvfs::Objective::Edp},
        {"ed2p", dvfs::Objective::Ed2p},
        {"energy-bound", dvfs::Objective::EnergyUnderPerfBound},
    };
    if (list.empty())
        return all;
    std::vector<TournamentObjective> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto known = std::find_if(
            all.begin(), all.end(),
            [&](const TournamentObjective &o) {
                return o.name == item;
            });
        if (known == all.end()) {
            warn("--objectives: unknown objective '" + item +
                 "' (known: edp, ed2p, energy-bound)");
            continue;
        }
        const bool dup = std::any_of(
            out.begin(), out.end(),
            [&](const TournamentObjective &o) {
                return o.name == item;
            });
        if (!dup)
            out.push_back(*known);
    }
    if (out.empty()) {
        warn("--objectives selected nothing; running all objectives");
        return all;
    }
    return out;
}

double
tournamentScore(const sim::RunResult &run, const sim::RunResult &base,
                dvfs::Objective objective, double perf_limit)
{
    switch (objective) {
    case dvfs::Objective::Edp:
        return base.edp() > 0.0 ? run.edp() / base.edp() : nan;
    case dvfs::Objective::Ed2p:
        return base.ed2p() > 0.0 ? run.ed2p() / base.ed2p() : nan;
    case dvfs::Objective::EnergyUnderPerfBound: {
        if (base.energy <= 0.0 || base.seconds() <= 0.0)
            return nan;
        // Energy ratio, scaled by any overshoot of the allowed
        // slowdown: missing the bound cannot buy a better score.
        const double slowdown = run.seconds() / base.seconds();
        const double allowed = 1.0 + std::max(perf_limit, 0.0);
        const double penalty = std::max(1.0, slowdown / allowed);
        return (run.energy / base.energy) * penalty;
    }
    default:
        // The marginal/ED^3P objectives still optimize energy-delay
        // products; score them as what they optimize most directly.
        return base.ed2p() > 0.0 ? run.ed2p() / base.ed2p() : nan;
    }
}

Leaderboard
runTournament(SweepRunner &runner,
              const std::vector<std::string> &designs,
              const std::vector<std::string> &workloads,
              const std::vector<TournamentObjective> &objectives)
{
    Leaderboard board;
    board.objectives = objectives;
    board.workloads = workloads;

    // The grid, objective-major: cell index recovers its coordinates
    // as ((o * workloads + w) * designs + d).
    std::vector<SweepCell> cells;
    cells.reserve(objectives.size() * workloads.size() *
                  designs.size());
    for (const TournamentObjective &obj : objectives) {
        BenchOptions obj_opts = runner.options();
        obj_opts.objective = obj.objective;
        // Regret auditing feeds the leaderboard's regret columns;
        // summary-only, so cells retain no per-epoch records.
        obj_opts.auditRegret = true;
        for (const std::string &workload : workloads) {
            for (const std::string &design : designs) {
                SweepCell cell = runner.cell(workload, design, true);
                cell.opts = obj_opts;
                cells.push_back(std::move(cell));
            }
        }
    }
    const std::vector<CellOutcome> outcomes =
        runner.run(std::move(cells));

    board.rows.resize(designs.size());
    // scores[d][o] collects the per-workload ratios of one column.
    std::vector<std::vector<std::vector<double>>> scores(
        designs.size(),
        std::vector<std::vector<double>>(objectives.size()));
    for (std::size_t d = 0; d < designs.size(); ++d)
        board.rows[d].design = designs[d];

    const double perf_limit = runner.options().perfDegradationLimit;
    for (std::size_t o = 0; o < objectives.size(); ++o) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            double best = nan;
            std::size_t best_d = designs.size();
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const std::size_t i =
                    (o * workloads.size() + w) * designs.size() + d;
                const CellOutcome &out = outcomes[i];
                TournamentRow &row = board.rows[d];
                if (!out.run.skipped)
                    ++row.cellsTotal;
                if (out.run.ok)
                    row.regret.merge(out.run.result.regret);
                if (!out.run.ok || !out.baseline.ok)
                    continue;
                const double score = tournamentScore(
                    out.run.result, out.baseline.result,
                    objectives[o].objective, perf_limit);
                if (!std::isfinite(score))
                    continue;
                ++row.cellsOk;
                scores[d][o].push_back(score);
                // Strict less keeps the first (registration-order)
                // design on ties, independent of thread count.
                if (!std::isfinite(best) || score < best) {
                    best = score;
                    best_d = d;
                }
            }
            if (best_d < designs.size())
                ++board.rows[best_d].wins;
        }
    }

    for (std::size_t d = 0; d < designs.size(); ++d) {
        TournamentRow &row = board.rows[d];
        std::vector<double> finite_columns;
        for (std::size_t o = 0; o < objectives.size(); ++o) {
            const double column = scores[d][o].empty()
                ? nan : geomean(scores[d][o]);
            row.scores.push_back(column);
            if (std::isfinite(column))
                finite_columns.push_back(column);
        }
        row.overall =
            finite_columns.empty() ? nan : geomean(finite_columns);
    }

    std::sort(board.rows.begin(), board.rows.end(),
              [](const TournamentRow &a, const TournamentRow &b) {
                  const bool fa = std::isfinite(a.overall);
                  const bool fb = std::isfinite(b.overall);
                  if (fa != fb)
                      return fa; // scoreless rows sink to the bottom
                  if (fa && a.overall != b.overall)
                      return a.overall < b.overall;
                  return a.design < b.design;
              });
    return board;
}

TableWriter
leaderboardTable(const Leaderboard &board)
{
    std::vector<std::string> headers = {"rank", "controller"};
    for (const TournamentObjective &obj : board.objectives)
        headers.push_back(obj.name);
    headers.insert(headers.end(),
                   {"overall", "regret", "regret-p95", "wins",
                    "cells"});
    TableWriter table(headers);
    for (std::size_t r = 0; r < board.rows.size(); ++r) {
        const TournamentRow &row = board.rows[r];
        table.beginRow()
            .cell(static_cast<long long>(r + 1))
            .cell(row.design);
        for (const double score : row.scores) {
            if (std::isfinite(score))
                table.cell(score, 3);
            else
                table.cell("-");
        }
        if (std::isfinite(row.overall))
            table.cell(row.overall, 3);
        else
            table.cell("-");
        if (row.regret.empty()) {
            table.cell("-").cell("-");
        } else {
            table.cell(row.regret.meanOracle(), 4)
                .cell(row.regret.percentile(0.95), 4);
        }
        table.cell(static_cast<long long>(row.wins))
            .cell(std::to_string(row.cellsOk) + "/" +
                  std::to_string(row.cellsTotal));
        table.endRow();
    }
    return table;
}

std::string
leaderboardJson(const Leaderboard &board)
{
    std::string out = "{\n  \"schema\": \"pcstall-leaderboard-v2\",\n";
    out += "  \"objectives\": [";
    for (std::size_t o = 0; o < board.objectives.size(); ++o) {
        out += (o != 0 ? ", " : "") +
            jsonString(board.objectives[o].name);
    }
    out += "],\n  \"workloads\": [";
    for (std::size_t w = 0; w < board.workloads.size(); ++w)
        out += (w != 0 ? ", " : "") + jsonString(board.workloads[w]);
    out += "],\n  \"rows\": [\n";
    for (std::size_t r = 0; r < board.rows.size(); ++r) {
        const TournamentRow &row = board.rows[r];
        out += "    {\"rank\": " + std::to_string(r + 1) +
            ", \"design\": " + jsonString(row.design) +
            ", \"overall\": " + jsonNumber(row.overall, 6) +
            ", \"wins\": " + std::to_string(row.wins) +
            ", \"cells_ok\": " + std::to_string(row.cellsOk) +
            ", \"cells_total\": " + std::to_string(row.cellsTotal) +
            ", \"regret_mean\": " +
            jsonNumber(row.regret.empty() ? nan
                                          : row.regret.meanOracle(),
                       6) +
            ", \"regret_p95\": " +
            jsonNumber(row.regret.empty()
                           ? nan
                           : row.regret.percentile(0.95),
                       6) +
            ", \"regret_decisions\": " +
            std::to_string(row.regret.count) + ", \"scores\": {";
        for (std::size_t o = 0; o < board.objectives.size(); ++o) {
            out += (o != 0 ? ", " : "") +
                jsonString(board.objectives[o].name) + ": " +
                jsonNumber(row.scores[o], 6);
        }
        out += "}}";
        out += r + 1 != board.rows.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
publishTournamentMetrics(const Leaderboard &board)
{
    obs::Registry &registry = obs::reg();
    registry.gauge("tournament.controllers")
        .set(static_cast<double>(board.rows.size()));
    registry.gauge("tournament.workloads")
        .set(static_cast<double>(board.workloads.size()));
    registry.gauge("tournament.objectives")
        .set(static_cast<double>(board.objectives.size()));
    std::size_t ok = 0;
    std::size_t total = 0;
    for (const TournamentRow &row : board.rows) {
        ok += row.cellsOk;
        total += row.cellsTotal;
    }
    registry.counter("tournament.cells.scored")
        .add(static_cast<std::uint64_t>(ok));
    registry.counter("tournament.cells.unscored")
        .add(static_cast<std::uint64_t>(total - ok));
    if (!board.rows.empty() &&
        std::isfinite(board.rows.front().overall)) {
        registry.gauge("tournament.winner.overall")
            .set(board.rows.front().overall);
        registry.gauge("tournament.winner.wins")
            .set(static_cast<double>(board.rows.front().wins));
    }
    // Regret rollup across the whole board, plus the winner's columns
    // (docs/observability.md, docs/provenance.md).
    obs::RegretSummary all;
    for (const TournamentRow &row : board.rows)
        all.merge(row.regret);
    registry.counter("tournament.regret.decisions").add(all.count);
    if (!all.empty()) {
        registry.gauge("tournament.regret.mean")
            .set(all.meanOracle());
        registry.gauge("tournament.regret.p95")
            .set(all.percentile(0.95));
    }
    if (!board.rows.empty() && !board.rows.front().regret.empty()) {
        registry.gauge("tournament.regret.winner.mean")
            .set(board.rows.front().regret.meanOracle());
        registry.gauge("tournament.regret.winner.p95")
            .set(board.rows.front().regret.percentile(0.95));
    }
}

} // namespace pcstall::bench
