/**
 * @file
 * Figure 18(a): average energy savings under fixed performance-
 * degradation limits (5% and 10%) for PCSTALL, CRISP and ORACLE,
 * using the EnergyUnderPerfBound objective. Savings are relative to
 * static nominal (1.7 GHz) execution. The paper: PCSTALL saves 9.6%
 * at the 5% limit and 19.9% at 10%, versus 2.1% / 4.7% for CRISP.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 18(a)",
                      "Energy savings under performance bounds", opts);

        const std::vector<double> limits = {0.05, 0.10};
        const std::vector<std::string> designs =
            opts.designList({"CRISP", "PCSTALL", "ORACLE"});
        const std::vector<std::string> names =
            opts.sweepWorkloadNames();

        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const double limit : limits) {
            auto limit_opts = opts;
            limit_opts.objective =
                dvfs::Objective::EnergyUnderPerfBound;
            limit_opts.perfDegradationLimit = limit;
            for (const std::string &design : designs) {
                for (const std::string &name : names) {
                    bench::SweepCell c =
                        runner.cell(name, design, true);
                    c.opts = limit_opts;
                    cells.push_back(std::move(c));
                }
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        TableWriter table({"perf limit", "design", "energy savings",
                           "slowdown vs nominal"});
        std::size_t at = 0;
        for (const double limit : limits) {
            for (const std::string &design : designs) {
                std::vector<double> savings;
                std::vector<double> slowdowns;
                for (std::size_t w = 0; w < names.size(); ++w, ++at) {
                    const bench::CellOutcome &cell = outcomes[at];
                    if (!cell.run.ok || !cell.baseline.ok)
                        continue;
                    const sim::RunResult &r = cell.run.result;
                    const sim::RunResult &base =
                        cell.baseline.result;
                    savings.push_back(1.0 - r.energy / base.energy);
                    slowdowns.push_back(
                        r.seconds() / base.seconds() - 1.0);
                }
                table.beginRow()
                    .cell(formatPercent(limit, 0))
                    .cell(design)
                    .cell(formatPercent(mean(savings)))
                    .cell(formatPercent(mean(slowdowns)));
                table.endRow();
            }
        }
        bench::emit(opts, table);
        std::printf("\n(paper Fig 18a: PCSTALL 9.6%% @5%% and 19.9%% "
                    "@10%%; CRISP 2.1%% / 4.7%%)\n");
        return 0;
    });
}
