/**
 * @file
 * Figure 18(a): average energy savings under fixed performance-
 * degradation limits (5% and 10%) for PCSTALL, CRISP and ORACLE,
 * using the EnergyUnderPerfBound objective. Savings are relative to
 * static nominal (1.7 GHz) execution. The paper: PCSTALL saves 9.6%
 * at the 5% limit and 19.9% at 10%, versus 2.1% / 4.7% for CRISP.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 18(a)",
                  "Energy savings under performance bounds", opts);

    const std::vector<std::string> designs = {"CRISP", "PCSTALL",
                                              "ORACLE"};
    TableWriter table({"perf limit", "design", "energy savings",
                       "slowdown vs nominal"});

    for (const double limit : {0.05, 0.10}) {
        auto cfg = opts.runConfig();
        cfg.objective = dvfs::Objective::EnergyUnderPerfBound;
        cfg.perfDegradationLimit = limit;
        sim::ExperimentDriver driver(cfg);

        for (const std::string &design : designs) {
            std::vector<double> savings;
            std::vector<double> slowdowns;
            for (const std::string &name : opts.sweepWorkloadNames()) {
                const auto app = bench::makeApp(name, opts);
                if (!app)
                    continue;
                dvfs::StaticController nominal(driver.nominalState());
                const sim::RunResult base = driver.run(app, nominal);
                const auto controller =
                    bench::makeController(design, cfg);
                const sim::RunResult r = driver.run(app, *controller);
                savings.push_back(1.0 - r.energy / base.energy);
                slowdowns.push_back(r.seconds() / base.seconds() - 1.0);
            }
            table.beginRow()
                .cell(formatPercent(limit, 0))
                .cell(design)
                .cell(formatPercent(mean(savings)))
                .cell(formatPercent(mean(slowdowns)));
            table.endRow();
        }
    }
    bench::emit(opts, table);
    std::printf("\n(paper Fig 18a: PCSTALL 9.6%% @5%% and 19.9%% "
                "@10%%; CRISP 2.1%% / 4.7%%)\n");
    return 0;
}
