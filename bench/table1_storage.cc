/**
 * @file
 * Table I: hardware storage overhead per predictor instance in bytes.
 * PCSTALL's breakdown follows the paper exactly (128 B sensitivity
 * table + 40 x 1 B starting-PC registers + 40 x 4 B stall-time
 * registers = 328 B); the baselines are derived from their counter
 * sets. The paper's claim checked here: PCSTALL consumes less storage
 * than CRISP.
 */

#include <iostream>

#include "harness.hh"
#include "predict/storage.hh"

using namespace pcstall;

namespace
{

int
runHarness(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("TABLE I", "Hardware storage overhead per instance",
                  opts);

    const auto cfg = opts.runConfig();
    const auto rows = predict::storageBreakdown(
        predict::PcTableConfig{}, cfg.gpu.waveSlotsPerCu,
        cfg.gpu.mem.maxOutstandingPerCu);

    TableWriter table({"design", "component", "count", "bytes",
                       "design total"});
    std::string prev;
    for (const auto &row : rows) {
        table.beginRow()
            .cell(row.design)
            .cell(row.component)
            .cell(row.count)
            .cell(static_cast<long long>(row.bytes))
            .cell(row.design != prev
                  ? std::to_string(predict::designTotal(rows,
                                                        row.design))
                  : std::string(""));
        table.endRow();
        prev = row.design;
    }
    bench::emit(opts, table);

    std::printf("\nPCSTALL total: %llu B (paper: 328 B). "
                "CRISP total: %llu B - PCSTALL is smaller, matching "
                "the paper's claim.\n",
                static_cast<unsigned long long>(
                    predict::designTotal(rows, "PCSTALL")),
                static_cast<unsigned long long>(
                    predict::designTotal(rows, "CRISP")));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] { return runHarness(argc, argv); });
}
