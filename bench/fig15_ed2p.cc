/**
 * @file
 * Figure 15: ED^2P of every workload under every Table III design,
 * normalized to static 1.7 GHz execution, at 1 us epochs. Includes
 * the three static baselines (1.3 / 1.7 / 2.2 GHz). Lower is better.
 * The paper's shape: ORACLE best (up to 54% improvement), ACCPC ~51%,
 * PCSTALL ~48%, reactive designs trailing (CRISP ~23%).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 15",
                      "ED2P normalized to static 1.7 GHz", opts);

        std::vector<std::string> designs = {"ST1.3", "ST2.2"};
        for (const std::string &d : bench::designNames())
            designs.push_back(d);
        designs = opts.designList(std::move(designs));

        bench::SweepRunner runner(opts);
        const std::vector<std::string> names = opts.workloadNames();
        std::vector<bench::SweepCell> cells;
        for (const std::string &name : names) {
            for (const std::string &design : designs) {
                bench::SweepCell c = runner.cell(name, design, true);
                if (design == "ST1.3" || design == "ST2.2") {
                    const std::size_t state = design == "ST1.3" ? 0 : 9;
                    c.factory = [state](const sim::RunConfig &) {
                        return std::make_unique<dvfs::StaticController>(
                            state);
                    };
                }
                cells.push_back(std::move(c));
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"workload"};
        for (const auto &d : designs)
            headers.push_back(d);
        TableWriter table(headers);

        std::map<std::string, std::vector<double>> norm;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::size_t row = w * designs.size();
            if (!outcomes[row].baseline.ok)
                continue;
            const double base = outcomes[row].baseline.result.ed2p();
            table.beginRow().cell(names[w]);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const bench::RunOutcome &run = outcomes[row + d].run;
                if (!run.ok) {
                    table.cell("-");
                    continue;
                }
                const double v = run.result.ed2p() / base;
                norm[designs[d]].push_back(v);
                table.cell(v, 3);
            }
            table.endRow();
        }
        table.beginRow().cell("GEOMEAN");
        for (const std::string &design : designs)
            table.cell(geomean(norm[design]), 3);
        table.endRow();
        bench::emit(opts, table);

        std::printf("\n(values < 1 improve on static 1.7 GHz; paper: "
                    "ORACLE up to 0.46, ACCPC 0.49, PCSTALL 0.52, "
                    "CRISP 0.77)\n");
        return 0;
    });
}
