/**
 * @file
 * Figure 15: ED^2P of every workload under every Table III design,
 * normalized to static 1.7 GHz execution, at 1 us epochs. Includes
 * the three static baselines (1.3 / 1.7 / 2.2 GHz). Lower is better.
 * The paper's shape: ORACLE best (up to 54% improvement), ACCPC ~51%,
 * PCSTALL ~48%, reactive designs trailing (CRISP ~23%).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 15",
                  "ED2P normalized to static 1.7 GHz", opts);

    const auto cfg = opts.runConfig();
    sim::ExperimentDriver driver(cfg);

    std::vector<std::string> designs = {"ST1.3", "ST2.2"};
    for (const std::string &d : bench::designNames())
        designs.push_back(d);

    std::vector<std::string> headers = {"workload"};
    for (const auto &d : designs)
        headers.push_back(d);
    TableWriter table(headers);

    std::map<std::string, std::vector<double>> norm;
    for (const std::string &name : opts.workloadNames()) {
        const auto app = bench::makeApp(name, opts);
        if (!app)
            continue;
        dvfs::StaticController nominal(driver.nominalState());
        const sim::RunResult base =
            bench::runTraced(driver, app, nominal, opts, name);

        table.beginRow().cell(name);
        for (const std::string &design : designs) {
            std::unique_ptr<dvfs::DvfsController> controller;
            if (design == "ST1.3")
                controller = std::make_unique<dvfs::StaticController>(0);
            else if (design == "ST2.2")
                controller = std::make_unique<dvfs::StaticController>(9);
            else
                controller = bench::makeController(design, cfg);
            const sim::RunResult r =
                bench::runTraced(driver, app, *controller, opts, name);
            const double v = r.ed2p() / base.ed2p();
            norm[design].push_back(v);
            table.cell(v, 3);
        }
        table.endRow();
    }
    table.beginRow().cell("GEOMEAN");
    for (const std::string &design : designs)
        table.cell(geomean(norm[design]), 3);
    table.endRow();
    bench::emit(opts, table);

    std::printf("\n(values < 1 improve on static 1.7 GHz; paper: "
                "ORACLE up to 0.46, ACCPC 0.49, PCSTALL 0.52, "
                "CRISP 0.77)\n");
    return 0;
}
