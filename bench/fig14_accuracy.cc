/**
 * @file
 * Figure 14: prediction accuracy of every Table III design at 1 us
 * epochs, measured as the paper does (Section 6.1): predicted
 * instructions for the chosen state vs instructions actually
 * committed, averaged over domains and epochs. ORACLE is ~100% by
 * construction; the paper reports reactive models at ~45-63%,
 * PCSTALL at up to 81% and ACCPC at ~90%.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 14", "Prediction accuracy at 1 us epochs",
                  opts);

    const auto cfg = opts.runConfig();
    sim::ExperimentDriver driver(cfg);

    std::vector<std::string> headers = {"workload"};
    for (const std::string &d : bench::designNames())
        headers.push_back(d);
    TableWriter table(headers);

    std::map<std::string, std::vector<double>> acc;
    for (const std::string &name : opts.workloadNames()) {
        const auto app = bench::makeApp(name, opts);
        if (!app)
            continue;
        table.beginRow().cell(name);
        for (const std::string &design : bench::designNames()) {
            const auto controller = bench::makeController(design, cfg);
            const sim::RunResult r =
                bench::runTraced(driver, app, *controller, opts, name);
            acc[design].push_back(r.predictionAccuracy);
            table.cell(formatPercent(r.predictionAccuracy));
        }
        table.endRow();
    }
    table.beginRow().cell("AVERAGE");
    for (const std::string &design : bench::designNames())
        table.cell(formatPercent(mean(acc[design])));
    table.endRow();
    bench::emit(opts, table);

    std::printf("\n(paper Fig 14: STALL/LEAD lowest, CRIT/CRISP ~60%%, "
                "ACCREAC 63%%, PCSTALL up to 81%%, ACCPC ~90%%, "
                "ORACLE 100%%)\n");
    return 0;
}
