/**
 * @file
 * Figure 14: prediction accuracy of every Table III design at 1 us
 * epochs, measured as the paper does (Section 6.1): predicted
 * instructions for the chosen state vs instructions actually
 * committed, averaged over domains and epochs. ORACLE is ~100% by
 * construction; the paper reports reactive models at ~45-63%,
 * PCSTALL at up to 81% and ACCPC at ~90%.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 14",
                      "Prediction accuracy at 1 us epochs", opts);

        bench::SweepRunner runner(opts);
        const std::vector<std::string> names = opts.workloadNames();
        const std::vector<std::string> designs =
            opts.designList(bench::designNames());
        std::vector<bench::SweepCell> cells;
        for (const std::string &name : names)
            for (const std::string &design : designs)
                cells.push_back(runner.cell(name, design));
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"workload"};
        for (const std::string &d : designs)
            headers.push_back(d);
        TableWriter table(headers);

        std::map<std::string, std::vector<double>> acc;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::size_t row = w * designs.size();
            if (!outcomes[row].run.ok)
                continue;
            table.beginRow().cell(names[w]);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const bench::RunOutcome &run = outcomes[row + d].run;
                if (!run.ok) {
                    table.cell("-");
                    continue;
                }
                acc[designs[d]].push_back(
                    run.result.predictionAccuracy);
                table.cell(
                    formatPercent(run.result.predictionAccuracy));
            }
            table.endRow();
        }
        table.beginRow().cell("AVERAGE");
        for (const std::string &design : designs)
            table.cell(formatPercent(mean(acc[design])));
        table.endRow();
        bench::emit(opts, table);

        std::printf("\n(paper Fig 14: STALL/LEAD lowest, CRIT/CRISP "
                    "~60%%, ACCREAC 63%%, PCSTALL up to 81%%, ACCPC "
                    "~90%%, ORACLE 100%%)\n");
        return 0;
    });
}
