/**
 * @file
 * Fault-resilience study: how gracefully does each controller degrade
 * when the idealized stack turns hostile?
 *
 *  (1) telemetry noise sweep - relative Gaussian noise on every epoch
 *      counter, sigma 0 -> 20%, for reactive STALL, plain PCSTALL and
 *      PCSTALL with the divergence watchdog. Reports EDP degradation
 *      against each controller's own fault-free run, the fraction of
 *      epochs the watchdog spent in its STALL fallback, and a legality
 *      check over every V/f state the run emitted.
 *  (2) predictor-storage upsets - bit flips in the PC tables with and
 *      without the parity scrub.
 *  (3) DVFS transition faults - transient failures, extra settle
 *      latency and frequency-grid quantization.
 *
 * All injections are deterministic in --fault-seed, so every row is
 * reproducible; every (workload, variant, fault config) cell runs
 * through the parallel SweepRunner.
 */

#include <cstdio>
#include <memory>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

struct Variant
{
    const char *label;
    const char *design;
    bool watchdog;
};

constexpr Variant kVariants[] = {
    {"STALL", "STALL", false},
    {"PCSTALL", "PCSTALL", false},
    {"PCSTALL+WD", "PCSTALL", true},
};

/** A sweep cell for one (variant, fault config) with trace on. */
bench::SweepCell
faultCell(const bench::SweepRunner &runner, const std::string &name,
          const Variant &variant, const faults::FaultConfig &faults)
{
    bench::SweepCell c = runner.cell(name, variant.design);
    c.opts.faults = faults;
    c.opts.watchdog = variant.watchdog;
    c.opts.collectTrace = true;
    return c;
}

/** Every V/f state a run's trace emitted is a legal table index. */
bool
statesLegal(const sim::RunResult &r, std::size_t num_states)
{
    for (const sim::EpochTraceEntry &e : r.trace) {
        for (const std::uint8_t s : e.domainState) {
            if (s >= num_states)
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FAULT RESILIENCE",
                      "EDP degradation under injected faults", opts);

        std::vector<std::string> names = {"hacc", "xsbench"};
        if (!opts.workloads.empty())
            names = opts.workloads;

        const std::size_t num_states =
            sim::ExperimentDriver(opts.runConfig()).table().numStates();
        bool states_legal = true;
        bench::SweepRunner runner(opts);

        const auto check = [&](const bench::CellOutcome &cell) {
            if (cell.run.ok &&
                !statesLegal(cell.run.result, num_states))
                states_legal = false;
        };

        // ------------------------------------------------------------
        // 1. Telemetry noise sweep.
        // ------------------------------------------------------------
        std::printf("--- (1) telemetry noise (relative sigma on every "
                    "counter) ---\n");
        const std::vector<double> sigmas = {0.0, 0.02, 0.05, 0.10,
                                            0.20};
        {
            // Per workload: 3 fault-free reference cells, then one
            // cell per (sigma, variant).
            const std::size_t block = 3 + sigmas.size() * 3;
            std::vector<bench::SweepCell> cells;
            for (const std::string &name : names) {
                for (const Variant &v : kVariants) {
                    cells.push_back(faultCell(runner, name, v,
                                              faults::FaultConfig{}));
                }
                for (const double sigma : sigmas) {
                    faults::FaultConfig fc = opts.faults;
                    fc.telemetry.sigma = sigma;
                    fc.telemetry.enabled = sigma > 0.0;
                    for (const Variant &v : kVariants)
                        cells.push_back(
                            faultCell(runner, name, v, fc));
                }
            }
            const std::vector<bench::CellOutcome> outcomes =
                runner.run(std::move(cells));
            for (const bench::CellOutcome &cell : outcomes)
                check(cell);

            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::size_t at = w * block;
                if (!outcomes[at].run.ok)
                    continue;
                double base_edp[3];
                for (std::size_t v = 0; v < 3; ++v) {
                    base_edp[v] = outcomes[at + v].run.ok
                        ? outcomes[at + v].run.result.edp() : 0.0;
                }

                TableWriter table({"sigma", "STALL EDPx",
                                   "PCSTALL EDPx", "PCSTALL acc",
                                   "+WD EDPx", "+WD acc",
                                   "+WD fallback%", "+WD trips"});
                for (std::size_t s = 0; s < sigmas.size(); ++s) {
                    table.beginRow().cell(sigmas[s], 2);
                    for (std::size_t v = 0; v < 3; ++v) {
                        const bench::RunOutcome &run =
                            outcomes[at + 3 + s * 3 + v].run;
                        if (!run.ok || base_edp[v] <= 0.0) {
                            table.cell("-");
                            if (v >= 1)
                                table.cell("-");
                            if (v == 2)
                                table.cell("-").cell("-");
                            continue;
                        }
                        const sim::RunResult &r = run.result;
                        table.cell(r.edp() / base_edp[v], 3);
                        if (v == 1) {
                            table.cell(r.predictionAccuracy, 3);
                        } else if (v == 2) {
                            const double fallback_share =
                                r.epochs == 0 ? 0.0
                                : 100.0 *
                                  static_cast<double>(
                                      r.faults.fallbackEpochs) /
                                  static_cast<double>(r.epochs);
                            table.cell(r.predictionAccuracy, 3)
                                .cell(fallback_share, 1)
                                .cell(static_cast<long long>(
                                    r.faults.watchdogTrips));
                        }
                    }
                    table.endRow();
                }
                std::printf("%s:\n", names[w].c_str());
                bench::emit(opts, table);
                std::printf("\n");
            }
        }

        // ------------------------------------------------------------
        // 2. Predictor-storage upsets (PC-table bit flips).
        // ------------------------------------------------------------
        std::printf("--- (2) PC-table bit flips (PCSTALL, 2 "
                    "upsets/epoch) ---\n");
        {
            std::vector<bench::SweepCell> cells;
            for (const std::string &name : names) {
                cells.push_back(faultCell(runner, name, kVariants[1],
                                          faults::FaultConfig{}));
                for (const bool ecc : {false, true}) {
                    faults::FaultConfig fc = opts.faults;
                    fc.storage.enabled = true;
                    fc.storage.upsetsPerEpoch = 2.0;
                    bench::SweepCell c =
                        faultCell(runner, name, kVariants[1], fc);
                    c.opts.ecc = ecc;
                    cells.push_back(std::move(c));
                }
            }
            const std::vector<bench::CellOutcome> outcomes =
                runner.run(std::move(cells));
            for (const bench::CellOutcome &cell : outcomes)
                check(cell);

            TableWriter table({"workload", "ecc", "bit flips",
                               "scrubs", "accuracy", "EDPx"});
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::size_t at = w * 3;
                if (!outcomes[at].run.ok)
                    continue;
                const double base_edp =
                    outcomes[at].run.result.edp();
                for (std::size_t i = 0; i < 2; ++i) {
                    const bench::RunOutcome &run =
                        outcomes[at + 1 + i].run;
                    if (!run.ok)
                        continue;
                    const sim::RunResult &r = run.result;
                    table.beginRow()
                        .cell(names[w])
                        .cell(i == 0 ? "off" : "on")
                        .cell(static_cast<long long>(
                            r.faults.tableBitFlips))
                        .cell(static_cast<long long>(
                            r.faults.tableScrubs))
                        .cell(r.predictionAccuracy, 3)
                        .cell(r.edp() / base_edp, 3);
                    table.endRow();
                }
            }
            bench::emit(opts, table);
            std::printf("\n");
        }

        // ------------------------------------------------------------
        // 3. DVFS transition faults.
        // ------------------------------------------------------------
        std::printf("--- (3) V/f transition faults (25%% transient "
                    "fails, +1 us settle, 200 MHz grid) ---\n");
        {
            faults::FaultConfig fc = opts.faults;
            fc.dvfs.enabled = true;
            fc.dvfs.transitionFailProb = 0.25;
            fc.dvfs.extraSwitchLatency = tickUs;
            fc.dvfs.granularity = 200 * freqMHz;

            std::vector<bench::SweepCell> cells;
            for (const std::string &name : names) {
                for (const std::size_t v : {std::size_t{0},
                                            std::size_t{1}}) {
                    cells.push_back(faultCell(
                        runner, name, kVariants[v],
                        faults::FaultConfig{}));
                    cells.push_back(
                        faultCell(runner, name, kVariants[v], fc));
                }
            }
            const std::vector<bench::CellOutcome> outcomes =
                runner.run(std::move(cells));
            for (const bench::CellOutcome &cell : outcomes)
                check(cell);

            TableWriter table({"workload", "design", "transitions",
                               "failed", "EDPx"});
            for (std::size_t w = 0; w < names.size(); ++w) {
                for (std::size_t v = 0; v < 2; ++v) {
                    const std::size_t at = (w * 2 + v) * 2;
                    if (!outcomes[at].run.ok ||
                        !outcomes[at + 1].run.ok)
                        continue;
                    const double base_edp =
                        outcomes[at].run.result.edp();
                    const sim::RunResult &r =
                        outcomes[at + 1].run.result;
                    table.beginRow()
                        .cell(names[w])
                        .cell(kVariants[v].label)
                        .cell(static_cast<long long>(r.transitions))
                        .cell(static_cast<long long>(
                            r.faults.transitionFailures))
                        .cell(r.edp() / base_edp, 3);
                    table.endRow();
                }
            }
            bench::emit(opts, table);
            std::printf("\n");
        }

        std::printf("all emitted V/f states legal: %s\n",
                    states_legal ? "yes" : "NO - BUG");
        return states_legal ? 0 : 1;
    });
}
