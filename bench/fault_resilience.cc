/**
 * @file
 * Fault-resilience study: how gracefully does each controller degrade
 * when the idealized stack turns hostile?
 *
 *  (1) telemetry noise sweep - relative Gaussian noise on every epoch
 *      counter, sigma 0 -> 20%, for reactive STALL, plain PCSTALL and
 *      PCSTALL with the divergence watchdog. Reports EDP degradation
 *      against each controller's own fault-free run, the fraction of
 *      epochs the watchdog spent in its STALL fallback, and a legality
 *      check over every V/f state the run emitted.
 *  (2) predictor-storage upsets - bit flips in the PC tables with and
 *      without the parity scrub.
 *  (3) DVFS transition faults - transient failures, extra settle
 *      latency and frequency-grid quantization.
 *
 * All injections are deterministic in --fault-seed, so every row is
 * reproducible.
 */

#include <cstdio>
#include <memory>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

namespace
{

struct Variant
{
    const char *label;
    const char *design;
    bool watchdog;
};

constexpr Variant kVariants[] = {
    {"STALL", "STALL", false},
    {"PCSTALL", "PCSTALL", false},
    {"PCSTALL+WD", "PCSTALL", true},
};

/** Run one (variant, fault config) cell and sanity-check its trace. */
sim::RunResult
runCell(const bench::BenchOptions &opts, const Variant &variant,
        const faults::FaultConfig &faults,
        std::shared_ptr<const isa::Application> app,
        bool *states_legal)
{
    bench::BenchOptions cell = opts;
    cell.faults = faults;
    cell.watchdog = variant.watchdog;
    sim::RunConfig cfg = cell.runConfig();
    cfg.collectTrace = true;
    sim::ExperimentDriver driver(cfg);
    const auto controller = bench::makeController(variant.design, cfg);
    const sim::RunResult r = driver.run(app, *controller);
    for (const sim::EpochTraceEntry &e : r.trace) {
        for (const std::uint8_t s : e.domainState) {
            if (s >= driver.table().numStates())
                *states_legal = false;
        }
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FAULT RESILIENCE",
                  "EDP degradation under injected faults", opts);

    std::vector<std::string> names = {"hacc", "xsbench"};
    if (!opts.workloads.empty())
        names = opts.workloads;

    bool states_legal = true;

    // ----------------------------------------------------------------
    // 1. Telemetry noise sweep.
    // ----------------------------------------------------------------
    std::printf("--- (1) telemetry noise (relative sigma on every "
                "counter) ---\n");
    const double sigmas[] = {0.0, 0.02, 0.05, 0.10, 0.20};
    for (const std::string &name : names) {
        const auto app = bench::makeApp(name, opts);
        if (!app)
            continue;

        std::vector<double> base_edp;
        for (const Variant &v : kVariants) {
            const sim::RunResult r = runCell(
                opts, v, faults::FaultConfig{}, app, &states_legal);
            base_edp.push_back(r.edp());
        }

        TableWriter table({"sigma", "STALL EDPx", "PCSTALL EDPx",
                           "PCSTALL acc", "+WD EDPx", "+WD acc",
                           "+WD fallback%", "+WD trips"});
        for (const double sigma : sigmas) {
            faults::FaultConfig fc = opts.faults;
            fc.telemetry.sigma = sigma;
            fc.telemetry.enabled = sigma > 0.0;

            table.beginRow().cell(sigma, 2);
            double pc_acc = 0.0, wd_acc = 0.0;
            double fallback_share = 0.0;
            std::uint64_t trips = 0;
            for (std::size_t i = 0; i < 3; ++i) {
                const sim::RunResult r = runCell(
                    opts, kVariants[i], fc, app, &states_legal);
                table.cell(r.edp() / base_edp[i], 3);
                if (i == 1)
                    pc_acc = r.predictionAccuracy;
                if (i == 2) {
                    wd_acc = r.predictionAccuracy;
                    fallback_share = r.epochs == 0 ? 0.0
                        : 100.0 *
                          static_cast<double>(r.faults.fallbackEpochs) /
                          static_cast<double>(r.epochs);
                    trips = r.faults.watchdogTrips;
                }
                if (i == 1) {
                    table.cell(pc_acc, 3);
                } else if (i == 2) {
                    table.cell(wd_acc, 3)
                        .cell(fallback_share, 1)
                        .cell(static_cast<long long>(trips));
                }
            }
            table.endRow();
        }
        std::printf("%s:\n", name.c_str());
        bench::emit(opts, table);
        std::printf("\n");
    }

    // ----------------------------------------------------------------
    // 2. Predictor-storage upsets (PC-table bit flips).
    // ----------------------------------------------------------------
    std::printf("--- (2) PC-table bit flips (PCSTALL, 2 upsets/epoch) "
                "---\n");
    {
        TableWriter table({"workload", "ecc", "bit flips", "scrubs",
                           "accuracy", "EDPx"});
        for (const std::string &name : names) {
            const auto app = bench::makeApp(name, opts);
            if (!app)
                continue;
            const Variant pc = kVariants[1];
            const sim::RunResult base = runCell(
                opts, pc, faults::FaultConfig{}, app, &states_legal);
            for (const bool ecc : {false, true}) {
                faults::FaultConfig fc = opts.faults;
                fc.storage.enabled = true;
                fc.storage.upsetsPerEpoch = 2.0;
                bench::BenchOptions cell = opts;
                cell.faults = fc;
                cell.ecc = ecc;
                sim::RunConfig cfg = cell.runConfig();
                cfg.collectTrace = true;
                sim::ExperimentDriver driver(cfg);
                const auto controller =
                    bench::makeController("PCSTALL", cfg);
                const sim::RunResult r = driver.run(app, *controller);
                table.beginRow()
                    .cell(name)
                    .cell(ecc ? "on" : "off")
                    .cell(static_cast<long long>(
                        r.faults.tableBitFlips))
                    .cell(static_cast<long long>(r.faults.tableScrubs))
                    .cell(r.predictionAccuracy, 3)
                    .cell(r.edp() / base.edp(), 3);
                table.endRow();
            }
        }
        bench::emit(opts, table);
        std::printf("\n");
    }

    // ----------------------------------------------------------------
    // 3. DVFS transition faults.
    // ----------------------------------------------------------------
    std::printf("--- (3) V/f transition faults (25%% transient fails, "
                "+1 us settle, 200 MHz grid) ---\n");
    {
        TableWriter table({"workload", "design", "transitions",
                           "failed", "EDPx"});
        for (const std::string &name : names) {
            const auto app = bench::makeApp(name, opts);
            if (!app)
                continue;
            for (const std::size_t i : {std::size_t{0},
                                        std::size_t{1}}) {
                const Variant &v = kVariants[i];
                const sim::RunResult base = runCell(
                    opts, v, faults::FaultConfig{}, app,
                    &states_legal);
                faults::FaultConfig fc = opts.faults;
                fc.dvfs.enabled = true;
                fc.dvfs.transitionFailProb = 0.25;
                fc.dvfs.extraSwitchLatency = tickUs;
                fc.dvfs.granularity = 200 * freqMHz;
                const sim::RunResult r =
                    runCell(opts, v, fc, app, &states_legal);
                table.beginRow()
                    .cell(name)
                    .cell(v.label)
                    .cell(static_cast<long long>(r.transitions))
                    .cell(static_cast<long long>(
                        r.faults.transitionFailures))
                    .cell(r.edp() / base.edp(), 3);
                table.endRow();
            }
        }
        bench::emit(opts, table);
        std::printf("\n");
    }

    std::printf("all emitted V/f states legal: %s\n",
                states_legal ? "yes" : "NO - BUG");
    return states_legal ? 0 : 1;
}
