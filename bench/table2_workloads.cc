/**
 * @file
 * Table II: the workload suite. Prints each application with its
 * suite, unique-kernel count (the braces column) and basic static
 * properties of the generated programs.
 */

#include <iostream>

#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("TABLE II", "HPC and MI workloads used for evaluation",
                  opts);

    TableWriter table({"workload", "suite", "description",
                       "unique kernels", "launches", "instructions/wave",
                       "total waves"});
    for (const auto &info : workloads::workloadTable()) {
        const auto app = bench::makeApp(info.name, opts);
        if (!app)
            continue;
        std::uint64_t code = 0;
        std::uint64_t waves = 0;
        for (const auto &k : app->launches) {
            code += k.code.size();
            waves += k.totalWaves();
        }
        table.beginRow()
            .cell(info.name)
            .cell(info.suite)
            .cell(info.description)
            .cell(static_cast<long long>(info.uniqueKernels))
            .cell(static_cast<long long>(app->launches.size()))
            .cell(static_cast<long long>(code))
            .cell(static_cast<long long>(waves));
        table.endRow();
    }
    bench::emit(opts, table);
    return 0;
}
