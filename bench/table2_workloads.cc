/**
 * @file
 * Table II: the workload suite. Prints each application with its
 * suite, unique-kernel count (the braces column) and basic static
 * properties of the generated programs.
 */

#include <iostream>

#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        const auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("TABLE II",
                      "HPC and MI workloads used for evaluation",
                      opts);

        struct Row
        {
            bool ok = false;
            std::uint64_t launches = 0;
            std::uint64_t code = 0;
            std::uint64_t waves = 0;
        };

        const auto &infos = workloads::workloadTable();
        bench::SweepRunner runner(opts);
        const std::vector<Row> rows = runner.map<Row>(
            infos.size(), [&](std::size_t i) {
                Row row;
                const auto app = bench::makeApp(infos[i].name, opts);
                if (!app)
                    return row;
                for (const auto &k : app->launches) {
                    row.code += k.code.size();
                    row.waves += k.totalWaves();
                }
                row.launches = app->launches.size();
                row.ok = true;
                return row;
            });

        TableWriter table({"workload", "suite", "description",
                           "unique kernels", "launches",
                           "instructions/wave", "total waves"});
        for (std::size_t i = 0; i < infos.size(); ++i) {
            if (!rows[i].ok)
                continue;
            table.beginRow()
                .cell(infos[i].name)
                .cell(infos[i].suite)
                .cell(infos[i].description)
                .cell(static_cast<long long>(infos[i].uniqueKernels))
                .cell(static_cast<long long>(rows[i].launches))
                .cell(static_cast<long long>(rows[i].code))
                .cell(static_cast<long long>(rows[i].waves));
            table.endRow();
        }
        bench::emit(opts, table);
        return 0;
    });
}
