/**
 * @file
 * Figure 8: how individual wavefronts' sensitivities compose a CU's
 * total sensitivity over time (BwdBN). Prints, per epoch, CU 0's
 * total wavefront-STALL sensitivity and the contribution of its
 * largest wave-level contributors, demonstrating that CU-level
 * variation is the (commutative) sum of drifting wavefront-level
 * phases - the observation behind aggregating per-wave estimates
 * (paper Section 4.2).
 */

#include <algorithm>
#include <iostream>

#include "common/stats_util.hh"
#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "models/wave_estimator.hh"

using namespace pcstall;

namespace
{

int
runHarness(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 8",
                  "Wavefront contribution to CU sensitivity (BwdBN)",
                  opts);

    const std::string workload = opts.firstWorkload("BwdBN");
    const auto app = bench::makeApp(workload, opts);
    if (!app)
        return 1;
    gpu::GpuConfig gcfg = opts.runConfig().gpu;
    gpu::GpuChip chip(gcfg, app);
    models::WaveEstimatorConfig est;
    est.waveSlots = gcfg.waveSlotsPerCu;

    TableWriter table({"epoch@us", "CU total", "top wave", "2nd wave",
                       "3rd wave", "others", "active waves"});
    Tick t = 0;
    for (int e = 0; e < 40; ++e) {
        const bool done = chip.runUntil(t + opts.epochLen);
        const gpu::EpochRecord rec = chip.harvestEpoch(t);
        t += opts.epochLen;

        std::vector<double> contributions;
        for (const auto &w : rec.waves) {
            if (w.cu != 0 || !w.active)
                continue;
            contributions.push_back(models::waveSensitivity(
                w, est, opts.epochLen, rec.cus[0].freq));
        }
        std::sort(contributions.rbegin(), contributions.rend());
        double total = 0.0;
        for (double c : contributions)
            total += c;
        auto at = [&](std::size_t i) {
            return i < contributions.size() ? contributions[i] : 0.0;
        };
        const double others =
            std::max(total - at(0) - at(1) - at(2), 0.0);
        table.beginRow()
            .cell(static_cast<long long>((t - opts.epochLen) / tickUs))
            .cell(total, 1)
            .cell(at(0), 1)
            .cell(at(1), 1)
            .cell(at(2), 1)
            .cell(others, 1)
            .cell(static_cast<long long>(contributions.size()));
        table.endRow();
        if (done)
            break;
    }
    bench::emit(opts, table);
    std::printf("\nThe CU total is the (commutative) sum of per-wave "
                "sensitivities; waves move through phases at "
                "different times (paper Fig 8).\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] { return runHarness(argc, argv); });
}
