/**
 * @file
 * Figure 18(b): geomean normalized ED^2P at different V/f-domain
 * granularities (CUs per domain) for CRISP, PCSTALL and ORACLE.
 * Coarser domains mean fewer IVRs and shared PC tables but less
 * opportunity; the paper: PCSTALL still achieves 18% improvement at
 * 32-CU domains where CRISP manages only 4%.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 18(b)",
                      "ED2P vs V/f domain granularity", opts);

        const std::vector<std::string> designs =
            opts.designList({"CRISP", "PCSTALL", "ORACLE"});
        const std::vector<std::string> names =
            opts.sweepWorkloadNames();

        std::vector<std::uint32_t> grans;
        for (std::uint32_t gran = 1; gran <= opts.cus; gran *= 2) {
            if (opts.cus % gran == 0)
                grans.push_back(gran);
        }

        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const std::uint32_t gran : grans) {
            auto gran_opts = opts;
            gran_opts.cusPerDomain = gran;
            for (const std::string &name : names) {
                for (const std::string &design : designs) {
                    bench::SweepCell c =
                        runner.cell(name, design, true);
                    c.opts = gran_opts;
                    cells.push_back(std::move(c));
                }
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"CUs/domain"};
        for (const auto &d : designs)
            headers.push_back(d);
        TableWriter table(headers);

        for (std::size_t g = 0; g < grans.size(); ++g) {
            std::map<std::string, std::vector<double>> norm;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::size_t row =
                    (g * names.size() + w) * designs.size();
                if (!outcomes[row].baseline.ok)
                    continue;
                const double base =
                    outcomes[row].baseline.result.ed2p();
                for (std::size_t d = 0; d < designs.size(); ++d) {
                    const bench::RunOutcome &run =
                        outcomes[row + d].run;
                    if (run.ok) {
                        norm[designs[d]].push_back(
                            run.result.ed2p() / base);
                    }
                }
            }
            table.beginRow().cell(
                static_cast<long long>(grans[g]));
            for (const std::string &design : designs)
                table.cell(geomean(norm[design]), 3);
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("\n(normalized geomean ED2P vs static 1.7 GHz; "
                    "paper Fig 18b: the DVFS benefit shrinks with "
                    "domain size but PCSTALL keeps most of ORACLE's "
                    "win while CRISP loses it)\n");
        return 0;
    });
}
