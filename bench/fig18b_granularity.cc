/**
 * @file
 * Figure 18(b): geomean normalized ED^2P at different V/f-domain
 * granularities (CUs per domain) for CRISP, PCSTALL and ORACLE.
 * Coarser domains mean fewer IVRs and shared PC tables but less
 * opportunity; the paper: PCSTALL still achieves 18% improvement at
 * 32-CU domains where CRISP manages only 4%.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 18(b)", "ED2P vs V/f domain granularity",
                  opts);

    const std::vector<std::string> designs = {"CRISP", "PCSTALL",
                                              "ORACLE"};
    std::vector<std::string> headers = {"CUs/domain"};
    for (const auto &d : designs)
        headers.push_back(d);
    TableWriter table(headers);

    for (std::uint32_t gran = 1; gran <= opts.cus; gran *= 2) {
        if (opts.cus % gran != 0)
            continue;
        auto gran_opts = opts;
        gran_opts.cusPerDomain = gran;
        const auto cfg = gran_opts.runConfig();
        sim::ExperimentDriver driver(cfg);

        std::map<std::string, std::vector<double>> norm;
        for (const std::string &name :
             gran_opts.sweepWorkloadNames()) {
            const auto app = bench::makeApp(name, gran_opts);
            if (!app)
                continue;
            dvfs::StaticController nominal(driver.nominalState());
            const sim::RunResult base = driver.run(app, nominal);
            for (const std::string &design : designs) {
                const auto controller =
                    bench::makeController(design, cfg);
                const sim::RunResult r = driver.run(app, *controller);
                norm[design].push_back(r.ed2p() / base.ed2p());
            }
        }
        table.beginRow().cell(static_cast<long long>(gran));
        for (const std::string &design : designs)
            table.cell(geomean(norm[design]), 3);
        table.endRow();
    }
    bench::emit(opts, table);
    std::printf("\n(normalized geomean ED2P vs static 1.7 GHz; paper "
                "Fig 18b: the DVFS benefit shrinks with domain size "
                "but PCSTALL keeps most of ORACLE's win while CRISP "
                "loses it)\n");
    return 0;
}
