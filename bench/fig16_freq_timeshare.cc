/**
 * @file
 * Figure 16: the share of time CUs spend at each V/f state while
 * PCSTALL optimizes ED^2P at 1 us epochs. Compute-intensive apps
 * (dgemm, hacc) should live in the upper states; memory-intensive
 * apps (hpgmg, xsbench) in the lower states; BwdPool settles on a
 * single state.
 */

#include <iostream>

#include "core/pcstall_controller.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 16",
                      "Frequency residency under PCSTALL (ED2P)", opts);

        // One driver only for the V/f table the headers print.
        sim::ExperimentDriver meta(opts.runConfig());

        bench::SweepRunner runner(opts);
        const std::vector<std::string> names = opts.workloadNames();
        std::vector<bench::SweepCell> cells;
        for (const std::string &name : names)
            cells.push_back(runner.cell(name, "PCSTALL"));
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"workload"};
        for (std::size_t s = 0; s < meta.table().numStates(); ++s) {
            headers.push_back(formatFixed(
                freqGHzD(meta.table().state(s).freq), 1));
        }
        headers.push_back("mean GHz");
        TableWriter table(headers);

        for (std::size_t w = 0; w < names.size(); ++w) {
            if (!outcomes[w].run.ok)
                continue;
            const sim::RunResult &r = outcomes[w].run.result;
            table.beginRow().cell(names[w]);
            double mean_ghz = 0.0;
            for (std::size_t s = 0; s < r.freqTimeShare.size(); ++s) {
                table.cell(formatPercent(r.freqTimeShare[s], 0));
                mean_ghz += r.freqTimeShare[s] *
                    freqGHzD(meta.table().state(s).freq);
            }
            table.cell(mean_ghz, 2);
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("\n(paper Fig 16: dgemm/hacc high, hpgmg/xsbench "
                    "low, BwdPool single state)\n");
        return 0;
    });
}
