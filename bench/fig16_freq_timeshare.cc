/**
 * @file
 * Figure 16: the share of time CUs spend at each V/f state while
 * PCSTALL optimizes ED^2P at 1 us epochs. Compute-intensive apps
 * (dgemm, hacc) should live in the upper states; memory-intensive
 * apps (hpgmg, xsbench) in the lower states; BwdPool settles on a
 * single state.
 */

#include <iostream>

#include "core/pcstall_controller.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 16",
                  "Frequency residency under PCSTALL (ED2P)", opts);

    const auto cfg = opts.runConfig();
    sim::ExperimentDriver driver(cfg);

    std::vector<std::string> headers = {"workload"};
    for (std::size_t s = 0; s < driver.table().numStates(); ++s) {
        headers.push_back(formatFixed(
            freqGHzD(driver.table().state(s).freq), 1));
    }
    headers.push_back("mean GHz");
    TableWriter table(headers);

    for (const std::string &name : opts.workloadNames()) {
        const auto app = bench::makeApp(name, opts);
        if (!app)
            continue;
        const auto controller = bench::makeController("PCSTALL", cfg);
        const sim::RunResult r =
            bench::runTraced(driver, app, *controller, opts, name);

        table.beginRow().cell(name);
        double mean_ghz = 0.0;
        for (std::size_t s = 0; s < r.freqTimeShare.size(); ++s) {
            table.cell(formatPercent(r.freqTimeShare[s], 0));
            mean_ghz += r.freqTimeShare[s] *
                freqGHzD(driver.table().state(s).freq);
        }
        table.cell(mean_ghz, 2);
        table.endRow();
    }
    bench::emit(opts, table);
    std::printf("\n(paper Fig 16: dgemm/hacc high, hpgmg/xsbench low, "
                "BwdPool single state)\n");
    return 0;
}
