/**
 * @file
 * Table III: the DVFS prediction designs evaluated, with their
 * estimation model, control mechanism, sweep requirements, and
 * replay-cache eligibility (docs/replay_studies.md): which cached
 * traces a --trace-cache sweep can serve the design from.
 */

#include <iostream>

#include "harness.hh"

using namespace pcstall;

namespace
{

const char *
estimationOf(const std::string &name)
{
    if (name == "STALL") return "Stall model";
    if (name == "LEAD") return "Leading load";
    if (name == "CRIT") return "Critical path";
    if (name == "CRISP") return "CRISP GPU model";
    if (name == "ACCREAC") return "Accurate estimate";
    if (name == "PCSTALL") return "Stall - wavefront";
    if (name == "ACCPC") return "Accurate estimate";
    if (name == "ORACLE") return "Accurate estimate";
    return "?";
}

const char *
mechanismOf(const std::string &name)
{
    if (name == "PCSTALL" || name == "ACCPC") return "PC-based";
    if (name == "ORACLE") return "Oracle";
    return "Reactive";
}

int
runHarness(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("TABLE III", "DVFS prediction designs evaluated", opts);

    const auto cfg = opts.runConfig();
    TableWriter table({"name", "estimation model", "control mechanism",
                       "implementable", "fork sweeps",
                       "replay eligibility"});
    for (const std::string &name :
         opts.designList(bench::designNames())) {
        const auto controller = bench::makeController(name, cfg);
        const auto need = controller->sweepNeed();
        table.beginRow()
            .cell(name)
            .cell(estimationOf(name))
            .cell(mechanismOf(name))
            .cell(need == dvfs::SweepNeed::None ? "yes" : "no")
            .cell(need == dvfs::SweepNeed::None ? "none"
                  : need == dvfs::SweepNeed::Elapsed ? "elapsed epoch"
                                                     : "upcoming epoch")
            // The replay-eligibility taxonomy of
            // docs/replay_studies.md: a sweep-free design replays
            // from any cached trace of the cell's config; a
            // sweep-needing one only from traces whose frames carry
            // the recorded fork-pre-execute sweeps.
            .cell(need == dvfs::SweepNeed::None
                      ? "any cached trace"
                      : "sweep-captured traces only");
        table.endRow();
    }
    bench::emit(opts, table);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] { return runHarness(argc, argv); });
}
