/**
 * @file
 * Figure 1(b): program-behaviour prediction accuracy versus DVFS
 * epoch duration for CRISP (state of the art), ACCREAC (a perfect
 * reactive estimator - the theoretical reactive bound) and PCSTALL.
 * The paper: reactive accuracy decays toward fine epochs while
 * PCSTALL stays high (32% average improvement at 1 us).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 1(b)", "Prediction accuracy vs epoch", opts);

    const std::vector<std::string> designs = {"CRISP", "ACCREAC",
                                              "PCSTALL"};
    std::vector<std::string> headers = {"epoch"};
    for (const auto &d : designs)
        headers.push_back(d);
    TableWriter table(headers);

    for (const double us : {1.0, 10.0, 50.0}) {
        const auto epoch_opts = opts.sizedForEpoch(us);
        const auto cfg = epoch_opts.runConfig();
        sim::ExperimentDriver driver(cfg);

        std::map<std::string, std::vector<double>> acc;
        for (const std::string &name :
                 epoch_opts.sweepWorkloadNames()) {
            const auto app = bench::makeApp(name, epoch_opts);
            if (!app)
                continue;
            for (const std::string &design : designs) {
                const auto controller =
                    bench::makeController(design, cfg);
                const sim::RunResult r = driver.run(app, *controller);
                acc[design].push_back(r.predictionAccuracy);
            }
        }
        table.beginRow().cell(formatFixed(us, 0) + "us");
        for (const std::string &design : designs)
            table.cell(formatPercent(mean(acc[design])));
        table.endRow();
    }
    bench::emit(opts, table);
    std::printf("\n(paper Fig 1b: PCSTALL above ACCREAC above CRISP, "
                "with the gap widening toward 1 us)\n");
    return 0;
}
