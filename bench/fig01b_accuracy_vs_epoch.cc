/**
 * @file
 * Figure 1(b): program-behaviour prediction accuracy versus DVFS
 * epoch duration for CRISP (state of the art), ACCREAC (a perfect
 * reactive estimator - the theoretical reactive bound) and PCSTALL.
 * The paper: reactive accuracy decays toward fine epochs while
 * PCSTALL stays high (32% average improvement at 1 us).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 1(b)", "Prediction accuracy vs epoch",
                      opts);

        const std::vector<double> epochs = {1.0, 10.0, 50.0};
        const std::vector<std::string> designs =
            opts.designList({"CRISP", "ACCREAC", "PCSTALL"});
        const std::vector<std::string> names =
            opts.sweepWorkloadNames();

        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const double us : epochs) {
            const auto epoch_opts = opts.sizedForEpoch(us);
            for (const std::string &name : names) {
                for (const std::string &design : designs) {
                    bench::SweepCell c = runner.cell(name, design);
                    c.opts = epoch_opts;
                    cells.push_back(std::move(c));
                }
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"epoch"};
        for (const auto &d : designs)
            headers.push_back(d);
        TableWriter table(headers);

        for (std::size_t e = 0; e < epochs.size(); ++e) {
            std::map<std::string, std::vector<double>> acc;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::size_t row =
                    (e * names.size() + w) * designs.size();
                for (std::size_t d = 0; d < designs.size(); ++d) {
                    const bench::RunOutcome &run =
                        outcomes[row + d].run;
                    if (run.ok) {
                        acc[designs[d]].push_back(
                            run.result.predictionAccuracy);
                    }
                }
            }
            table.beginRow().cell(formatFixed(epochs[e], 0) + "us");
            for (const std::string &design : designs)
                table.cell(formatPercent(mean(acc[design])));
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("\n(paper Fig 1b: PCSTALL above ACCREAC above "
                    "CRISP, with the gap widening toward 1 us)\n");
        return 0;
    });
}
