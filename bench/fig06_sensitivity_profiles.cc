/**
 * @file
 * Figure 6: sensitivity-over-time profiles of dgemm, hacc, BwdBN and
 * xsbench at 1 us epochs, showing the highly varying phase behaviour
 * that motivates prediction over reaction.
 *
 * Prints, per workload, the per-epoch CU-0-domain sensitivity series
 * plus summary statistics (mean, stddev, avg relative change).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 6", "Sensitivity profiles over time",
                      opts);

        std::vector<std::string> names = {"dgemm", "hacc", "BwdBN",
                                          "xsbench"};
        if (!opts.workloads.empty())
            names = opts.workloads;

        struct Profile
        {
            bool ok = false;
            std::vector<double> series;
        };

        bench::SweepRunner runner(opts);
        const std::vector<Profile> profiles = runner.map<Profile>(
            names.size(), [&](std::size_t i) {
                Profile p;
                const auto app = bench::makeApp(names[i], opts);
                if (!app)
                    return p;
                sim::ProfileConfig pcfg = opts.profileConfig();
                pcfg.waveLevel = false;
                pcfg.maxEpochs = 48;
                sim::SensitivityProfiler profiler(pcfg);
                p.series = profiler.profile(app).domainSeries(0);
                p.ok = true;
                return p;
            });

        for (std::size_t i = 0; i < names.size(); ++i) {
            if (!profiles[i].ok)
                continue;
            const std::vector<double> &series = profiles[i].series;
            std::printf("%s (domain 0, %zu epochs):\n ",
                        names[i].c_str(), series.size());
            for (double s : series)
                std::printf(" %.0f", s);
            std::printf("\n  mean %.1f instr/GHz  stddev %.1f  "
                        "avg relative change %s\n\n",
                        mean(series), stddev(series),
                        formatPercent(
                            avgRelativeChange(series)).c_str());
        }
        return 0;
    });
}
