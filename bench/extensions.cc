/**
 * @file
 * Extension studies beyond the paper's evaluation:
 *
 * 1. PCSTALL versus the strongest prior CPU predictor the paper cites
 *    (Section 2.4): a global phase history table (GPHT) using the
 *    *same* wavefront-level estimation, isolating the prediction
 *    mechanism (pattern-of-phases vs program counters).
 * 2. The hierarchical power-management stack of Section 5.4:
 *    PCSTALL running under a millisecond-scale power-cap layer,
 *    showing the cap being tracked by narrowing the V/f window.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "core/pcstall_controller.hh"
#include "dvfs/hierarchical.hh"
#include "harness.hh"
#include "models/history_controller.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("EXTENSIONS",
                  "GPHT baseline and hierarchical power capping", opts);

    const auto cfg = opts.runConfig();
    sim::ExperimentDriver driver(cfg);

    // ----------------------------------------------------------------
    // 1. Prediction-mechanism shoot-out with identical estimation.
    // ----------------------------------------------------------------
    {
        std::printf("--- (1) prediction mechanism: PC table vs phase "
                    "history vs last value ---\n");
        TableWriter table({"workload", "PCSTALL ED2P", "GPHT ED2P",
                           "PCSTALL acc", "GPHT acc"});
        std::vector<double> pc_norm, gp_norm;
        for (const std::string &name : opts.workloadNames()) {
            const auto app = bench::makeApp(name, opts);
            if (!app)
                continue;
            dvfs::StaticController nominal(driver.nominalState());
            const sim::RunResult base =
                bench::runTraced(driver, app, nominal, opts, name);

            core::PcstallController pc(
                core::PcstallConfig::forEpoch(cfg.epochLen,
                                              cfg.gpu.waveSlotsPerCu),
                cfg.gpu.numCus);
            const sim::RunResult rp =
                bench::runTraced(driver, app, pc, opts, name);

            models::HistoryConfig hcfg;
            hcfg.estimator.waveSlots = cfg.gpu.waveSlotsPerCu;
            models::HistoryController gp(hcfg, cfg.gpu.numCus /
                                                   cfg.cusPerDomain);
            const sim::RunResult rg =
                bench::runTraced(driver, app, gp, opts, name);

            pc_norm.push_back(rp.ed2p() / base.ed2p());
            gp_norm.push_back(rg.ed2p() / base.ed2p());
            table.beginRow()
                .cell(name)
                .cell(rp.ed2p() / base.ed2p(), 3)
                .cell(rg.ed2p() / base.ed2p(), 3)
                .cell(formatPercent(rp.predictionAccuracy))
                .cell(formatPercent(rg.predictionAccuracy));
            table.endRow();
        }
        table.beginRow().cell("GEOMEAN")
            .cell(geomean(pc_norm), 3)
            .cell(geomean(gp_norm), 3)
            .cell("").cell("");
        table.endRow();
        bench::emit(opts, table);
        std::printf("(GPU phases follow code regions, not global "
                    "phase sequences: the PC key should transfer "
                    "across launches where the pattern key cannot)\n\n");
    }

    // ----------------------------------------------------------------
    // 2. Hierarchical power capping on top of PCSTALL.
    // ----------------------------------------------------------------
    {
        std::printf("--- (2) hierarchical power cap over PCSTALL ---\n");
        TableWriter table({"cap W", "avg power W", "ceiling state",
                           "time us", "energy mJ"});
        const std::string workload = opts.firstWorkload("hacc");
        const auto app = bench::makeApp(workload, opts);
        if (!app)
            return 1;

        // Uncapped reference.
        core::PcstallController ref(
            core::PcstallConfig::forEpoch(cfg.epochLen,
                                          cfg.gpu.waveSlotsPerCu),
            cfg.gpu.numCus);
        const sim::RunResult free_run =
            bench::runTraced(driver, app, ref, opts, workload);
        const double free_power = free_run.avgPower();

        for (const double frac : {1.2, 0.9, 0.7, 0.5}) {
            core::PcstallController inner(
                core::PcstallConfig::forEpoch(cfg.epochLen,
                                              cfg.gpu.waveSlotsPerCu),
                cfg.gpu.numCus);
            dvfs::HierarchicalConfig hcfg;
            hcfg.powerCap = free_power * frac;
            hcfg.reviewEpochs = 10;
            dvfs::HierarchicalPowerManager mgr(inner, hcfg);
            const sim::RunResult r =
                bench::runTraced(driver, app, mgr, opts, workload);
            table.beginRow()
                .cell(hcfg.powerCap, 1)
                .cell(r.avgPower(), 1)
                .cell(static_cast<long long>(mgr.ceilingState()))
                .cell(r.seconds() * 1e6, 1)
                .cell(r.energy * 1e3, 3);
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("(tighter caps narrow the V/f window the "
                    "fine-grain layer may use - paper Section 5.4's "
                    "deployment model)\n");
    }
    return 0;
}
