/**
 * @file
 * Extension studies beyond the paper's evaluation:
 *
 * 1. PCSTALL versus the strongest prior CPU predictor the paper cites
 *    (Section 2.4): a global phase history table (GPHT) using the
 *    *same* wavefront-level estimation, isolating the prediction
 *    mechanism (pattern-of-phases vs program counters).
 * 2. The hierarchical power-management stack of Section 5.4:
 *    PCSTALL running under a millisecond-scale power-cap layer,
 *    showing the cap being tracked by narrowing the V/f window.
 *
 * Both studies route through SweepRunner, so --trace-cache DIR makes
 * re-runs replay from cached traces (docs/replay_studies.md). The
 * four "PCSTALL+CAP" cells share one design label but differ in
 * captured cap config; their run indices keep their exact-tier cache
 * keys distinct, and any drift in a factory's captured config is
 * caught by replay verification and healed by a live recapture.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "core/pcstall_controller.hh"
#include "dvfs/hierarchical.hh"
#include "harness.hh"
#include "models/history_controller.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

bench::ControllerFactory
gphtFactory()
{
    return [](const sim::RunConfig &cfg)
               -> std::unique_ptr<dvfs::DvfsController> {
        models::HistoryConfig hcfg;
        hcfg.estimator.waveSlots = cfg.gpu.waveSlotsPerCu;
        return std::make_unique<models::HistoryController>(
            hcfg, cfg.gpu.numCus / cfg.cusPerDomain);
    };
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner(
            "EXTENSIONS",
            "GPHT baseline and hierarchical power capping", opts);

        bench::SweepRunner runner(opts);

        // ------------------------------------------------------------
        // 1. Prediction-mechanism shoot-out with identical estimation.
        // ------------------------------------------------------------
        {
            std::printf("--- (1) prediction mechanism: PC table vs "
                        "phase history vs last value ---\n");
            const std::vector<std::string> names =
                opts.workloadNames();
            std::vector<bench::SweepCell> cells;
            for (const std::string &name : names) {
                cells.push_back(runner.cell(name, "PCSTALL", true));
                bench::SweepCell gp = runner.cell(name, "GPHT", true);
                gp.factory = gphtFactory();
                cells.push_back(std::move(gp));
            }
            const std::vector<bench::CellOutcome> outcomes =
                runner.run(std::move(cells));

            TableWriter table({"workload", "PCSTALL ED2P", "GPHT ED2P",
                               "PCSTALL acc", "GPHT acc"});
            std::vector<double> pc_norm, gp_norm;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const bench::CellOutcome &pc = outcomes[2 * w];
                const bench::CellOutcome &gp = outcomes[2 * w + 1];
                if (!pc.run.ok || !gp.run.ok || !pc.baseline.ok)
                    continue;
                const double base = pc.baseline.result.ed2p();
                pc_norm.push_back(pc.run.result.ed2p() / base);
                gp_norm.push_back(gp.run.result.ed2p() / base);
                table.beginRow()
                    .cell(names[w])
                    .cell(pc.run.result.ed2p() / base, 3)
                    .cell(gp.run.result.ed2p() / base, 3)
                    .cell(formatPercent(
                        pc.run.result.predictionAccuracy))
                    .cell(formatPercent(
                        gp.run.result.predictionAccuracy));
                table.endRow();
            }
            table.beginRow().cell("GEOMEAN")
                .cell(geomean(pc_norm), 3)
                .cell(geomean(gp_norm), 3)
                .cell("").cell("");
            table.endRow();
            bench::emit(opts, table);
            std::printf("(GPU phases follow code regions, not global "
                        "phase sequences: the PC key should transfer "
                        "across launches where the pattern key "
                        "cannot)\n\n");
        }

        // ------------------------------------------------------------
        // 2. Hierarchical power capping on top of PCSTALL.
        // ------------------------------------------------------------
        {
            std::printf(
                "--- (2) hierarchical power cap over PCSTALL ---\n");
            const std::string workload = opts.firstWorkload("hacc");

            // Uncapped reference; the caps derive from its power.
            const std::vector<bench::CellOutcome> ref = runner.run(
                {runner.cell(workload, "PCSTALL")});
            if (!ref.front().run.ok)
                return 1;
            const double free_power =
                ref.front().run.result.avgPower();

            const std::vector<double> fracs = {1.2, 0.9, 0.7, 0.5};
            std::vector<std::size_t> ceilings(fracs.size(), 0);
            std::vector<bench::SweepCell> cells;
            for (std::size_t i = 0; i < fracs.size(); ++i) {
                bench::SweepCell c =
                    runner.cell(workload, "PCSTALL+CAP");
                dvfs::HierarchicalConfig hcfg;
                hcfg.powerCap = free_power * fracs[i];
                hcfg.reviewEpochs = 10;
                c.factory = [hcfg](const sim::RunConfig &rc) {
                    return std::make_unique<
                        dvfs::HierarchicalPowerManager>(
                        bench::makeController("PCSTALL", rc), hcfg);
                };
                c.inspect = [&ceilings,
                             i](const dvfs::DvfsController &ctrl) {
                    const auto &mgr = dynamic_cast<
                        const dvfs::HierarchicalPowerManager &>(ctrl);
                    ceilings[i] = mgr.ceilingState();
                };
                cells.push_back(std::move(c));
            }
            const std::vector<bench::CellOutcome> outcomes =
                runner.run(std::move(cells));

            TableWriter table({"cap W", "avg power W", "ceiling state",
                               "time us", "energy mJ"});
            for (std::size_t i = 0; i < fracs.size(); ++i) {
                if (!outcomes[i].run.ok)
                    continue;
                const sim::RunResult &r = outcomes[i].run.result;
                table.beginRow()
                    .cell(free_power * fracs[i], 1)
                    .cell(r.avgPower(), 1)
                    .cell(static_cast<long long>(ceilings[i]))
                    .cell(r.seconds() * 1e6, 1)
                    .cell(r.energy * 1e3, 3);
                table.endRow();
            }
            bench::emit(opts, table);
            std::printf("(tighter caps narrow the V/f window the "
                        "fine-grain layer may use - paper Section "
                        "5.4's deployment model)\n");
        }
        return 0;
    });
}
