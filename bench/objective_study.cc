/**
 * @file
 * Objective-formulation study (extension): the paper (and this
 * repo's default) uses the per-epoch ratio heuristic, minimizing
 * E(f)/I(f)^(n+1). The exact first-order greedy for a global E*T^n
 * objective instead prices the time saved per instruction at
 * n x average chip power: minimize E(f) - n*Pavg*T_epoch*I(f)/Iavg.
 * This harness compares both formulations under ORACLE and PCSTALL
 * on realized (global) ED^2P, isolating how much of the remaining
 * oracle/static gap is the selection heuristic rather than the
 * prediction.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("OBJECTIVE STUDY",
                      "ratio heuristic vs marginal-cost greedy", opts);

        struct Column
        {
            const char *design;
            dvfs::Objective objective;
            const char *label;
        };
        const std::vector<Column> columns = {
            {"ORACLE", dvfs::Objective::Ed2p, "ORACLE ratio"},
            {"ORACLE", dvfs::Objective::MarginalEd2p,
             "ORACLE marginal"},
            {"PCSTALL", dvfs::Objective::Ed2p, "PCSTALL ratio"},
            {"PCSTALL", dvfs::Objective::MarginalEd2p,
             "PCSTALL marginal"},
        };
        const std::vector<std::string> names =
            opts.sweepWorkloadNames();

        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const std::string &name : names) {
            for (const Column &col : columns) {
                bench::SweepCell c =
                    runner.cell(name, col.design, true);
                c.opts.objective = col.objective;
                cells.push_back(std::move(c));
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"workload"};
        for (const Column &col : columns)
            headers.push_back(col.label);
        TableWriter table(headers);

        std::map<std::string, std::vector<double>> norm;
        for (std::size_t w = 0; w < names.size(); ++w) {
            table.beginRow().cell(names[w]);
            for (std::size_t i = 0; i < columns.size(); ++i) {
                const bench::CellOutcome &cell =
                    outcomes[w * columns.size() + i];
                if (!cell.run.ok || !cell.baseline.ok) {
                    table.cell("-");
                    continue;
                }
                const double v = cell.run.result.ed2p() /
                    cell.baseline.result.ed2p();
                norm[columns[i].label].push_back(v);
                table.cell(v, 3);
            }
            table.endRow();
        }
        table.beginRow().cell("GEOMEAN");
        for (const Column &col : columns)
            table.cell(geomean(norm[col.label]), 3);
        table.endRow();
        bench::emit(opts, table);

        std::printf("\n(global ED2P normalized to static 1.7 GHz; the "
                    "marginal objective prices time at 2x average "
                    "chip power per instruction - see "
                    "docs/architecture.md)\n");
        return 0;
    });
}
