/**
 * @file
 * Objective-formulation study (extension): the paper (and this
 * repo's default) uses the per-epoch ratio heuristic, minimizing
 * E(f)/I(f)^(n+1). The exact first-order greedy for a global E*T^n
 * objective instead prices the time saved per instruction at
 * n x average chip power: minimize E(f) - n*Pavg*T_epoch*I(f)/Iavg.
 * This harness compares both formulations under ORACLE and PCSTALL
 * on realized (global) ED^2P, isolating how much of the remaining
 * oracle/static gap is the selection heuristic rather than the
 * prediction.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("OBJECTIVE STUDY",
                  "ratio heuristic vs marginal-cost greedy", opts);

    struct Cell
    {
        const char *design;
        dvfs::Objective objective;
        const char *label;
    };
    const std::vector<Cell> cells = {
        {"ORACLE", dvfs::Objective::Ed2p, "ORACLE ratio"},
        {"ORACLE", dvfs::Objective::MarginalEd2p, "ORACLE marginal"},
        {"PCSTALL", dvfs::Objective::Ed2p, "PCSTALL ratio"},
        {"PCSTALL", dvfs::Objective::MarginalEd2p, "PCSTALL marginal"},
    };

    std::vector<std::string> headers = {"workload"};
    for (const Cell &c : cells)
        headers.push_back(c.label);
    TableWriter table(headers);

    std::map<std::string, std::vector<double>> norm;
    for (const std::string &name : opts.sweepWorkloadNames()) {
        table.beginRow().cell(name);
        for (const Cell &c : cells) {
            auto cfg = opts.runConfig();
            cfg.objective = c.objective;
            sim::ExperimentDriver driver(cfg);
            const auto app = bench::makeApp(name, opts);
            if (!app)
                continue;
            dvfs::StaticController nominal(driver.nominalState());
            const sim::RunResult base = driver.run(app, nominal);
            const auto controller = bench::makeController(c.design, cfg);
            const sim::RunResult r = driver.run(app, *controller);
            const double v = r.ed2p() / base.ed2p();
            norm[c.label].push_back(v);
            table.cell(v, 3);
        }
        table.endRow();
    }
    table.beginRow().cell("GEOMEAN");
    for (const Cell &c : cells)
        table.cell(geomean(norm[c.label]), 3);
    table.endRow();
    bench::emit(opts, table);

    std::printf("\n(global ED2P normalized to static 1.7 GHz; the "
                "marginal objective prices time at 2x average chip "
                "power per instruction - see docs/architecture.md)\n");
    return 0;
}
