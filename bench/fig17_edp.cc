/**
 * @file
 * Figure 17: geomean EDP (normalized to static 1.7 GHz) versus DVFS
 * epoch duration for the main designs. The paper's trend: PCSTALL
 * keeps improving as epochs shrink while reactive policies fail to
 * capitalize; the predictive/reactive gap is smaller for EDP than for
 * ED^2P.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 17", "Geomean EDP vs epoch duration", opts);

    const std::vector<std::string> designs = {"CRISP", "ACCREAC",
                                              "PCSTALL", "ORACLE"};
    std::vector<std::string> headers = {"epoch"};
    for (const auto &d : designs)
        headers.push_back(d);
    TableWriter table(headers);

    for (const double us : {1.0, 10.0, 50.0}) {
        const auto epoch_opts = opts.sizedForEpoch(us);
        auto cfg = epoch_opts.runConfig();
        cfg.objective = dvfs::Objective::Edp;
        sim::ExperimentDriver driver(cfg);

        std::map<std::string, std::vector<double>> norm;
        for (const std::string &name :
                 epoch_opts.sweepWorkloadNames()) {
            const auto app = bench::makeApp(name, epoch_opts);
            if (!app)
                continue;
            dvfs::StaticController nominal(driver.nominalState());
            const sim::RunResult base = driver.run(app, nominal);
            for (const std::string &design : designs) {
                const auto controller =
                    bench::makeController(design, cfg);
                const sim::RunResult r = driver.run(app, *controller);
                norm[design].push_back(r.edp() / base.edp());
            }
        }
        table.beginRow().cell(formatFixed(us, 0) + "us");
        for (const std::string &design : designs)
            table.cell(geomean(norm[design]), 3);
        table.endRow();
    }
    bench::emit(opts, table);
    std::printf("\n(normalized to static 1.7 GHz; < 1 is better. "
                "Paper Fig 17: PCSTALL improves toward fine epochs, "
                "reactive does not)\n");
    return 0;
}
