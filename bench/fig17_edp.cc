/**
 * @file
 * Figure 17: geomean EDP (normalized to static 1.7 GHz) versus DVFS
 * epoch duration for the main designs. The paper's trend: PCSTALL
 * keeps improving as epochs shrink while reactive policies fail to
 * capitalize; the predictive/reactive gap is smaller for EDP than for
 * ED^2P.
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"
#include "sweep_runner.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("FIGURE 17", "Geomean EDP vs epoch duration",
                      opts);

        const std::vector<double> epochs = {1.0, 10.0, 50.0};
        const std::vector<std::string> designs = opts.designList(
            {"CRISP", "ACCREAC", "PCSTALL", "ORACLE"});
        const std::vector<std::string> names =
            opts.sweepWorkloadNames();

        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const double us : epochs) {
            auto epoch_opts = opts.sizedForEpoch(us);
            epoch_opts.objective = dvfs::Objective::Edp;
            for (const std::string &name : names) {
                for (const std::string &design : designs) {
                    bench::SweepCell c =
                        runner.cell(name, design, true);
                    c.opts = epoch_opts;
                    cells.push_back(std::move(c));
                }
            }
        }
        const std::vector<bench::CellOutcome> outcomes =
            runner.run(std::move(cells));

        std::vector<std::string> headers = {"epoch"};
        for (const auto &d : designs)
            headers.push_back(d);
        TableWriter table(headers);

        for (std::size_t e = 0; e < epochs.size(); ++e) {
            std::map<std::string, std::vector<double>> norm;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::size_t row =
                    (e * names.size() + w) * designs.size();
                if (!outcomes[row].baseline.ok)
                    continue;
                const double base =
                    outcomes[row].baseline.result.edp();
                for (std::size_t d = 0; d < designs.size(); ++d) {
                    const bench::RunOutcome &run =
                        outcomes[row + d].run;
                    if (run.ok) {
                        norm[designs[d]].push_back(
                            run.result.edp() / base);
                    }
                }
            }
            table.beginRow().cell(formatFixed(epochs[e], 0) + "us");
            for (const std::string &design : designs)
                table.cell(geomean(norm[design]), 3);
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("\n(normalized to static 1.7 GHz; < 1 is better. "
                    "Paper Fig 17: PCSTALL improves toward fine "
                    "epochs, reactive does not)\n");
        return 0;
    });
}
