/**
 * @file
 * Google-benchmark microbenchmarks of the hardware-path operations:
 * PC-table update/lookup (the per-epoch critical path of PCSTALL's
 * lookup mechanism, Section 4.4), the wavefront STALL estimator, the
 * CU-level estimation models, objective evaluation, the cost of
 * snapshotting the simulator state (the oracle "fork"), and the two
 * halves of the replay-cache hot path (docs/replay_studies.md): PCTR
 * trace decode and a full cached replay of a captured run.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/pcstall_controller.hh"
#include "dvfs/objective.hh"
#include "gpu/gpu_chip.hh"
#include "isa/kernel_builder.hh"
#include "models/estimation.hh"
#include "models/wave_estimator.hh"
#include "predict/pc_table.hh"
#include "sim/experiment.hh"
#include "trace/format.hh"
#include "trace/replay.hh"

using namespace pcstall;

namespace
{

void
BM_PcTableUpdate(benchmark::State &state)
{
    predict::PcSensitivityTable table{predict::PcTableConfig{}};
    std::uint64_t pc = 0;
    for (auto _ : state) {
        table.update(pc, 12.5);
        pc += 16;
    }
}
BENCHMARK(BM_PcTableUpdate);

void
BM_PcTableLookup(benchmark::State &state)
{
    predict::PcSensitivityTable table{predict::PcTableConfig{}};
    for (std::uint64_t pc = 0; pc < 128 * 16; pc += 16)
        table.update(pc, 12.5);
    std::uint64_t pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(pc));
        pc += 16;
    }
}
BENCHMARK(BM_PcTableLookup);

void
BM_WaveSensitivity(benchmark::State &state)
{
    gpu::WaveEpochRecord rec;
    rec.committed = 120;
    rec.memStall = 300'000;
    rec.active = true;
    const models::WaveEstimatorConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            models::waveSensitivity(rec, cfg, tickUs,
                                    1'700 * freqMHz));
    }
}
BENCHMARK(BM_WaveSensitivity);

void
BM_CuEstimation(benchmark::State &state)
{
    gpu::CuEpochRecord rec;
    rec.committed = 3000;
    rec.loadStall = 200'000;
    rec.leadLoad = 150'000;
    rec.memInterval = 600'000;
    rec.overlap = 350'000;
    rec.storeStall = 50'000;
    rec.freq = 1'700 * freqMHz;
    const auto kind = static_cast<models::EstimationKind>(
        state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            models::cuInstrAt(kind, rec, tickUs, 2'200 * freqMHz));
    }
}
BENCHMARK(BM_CuEstimation)->DenseRange(0, 3);

void
BM_ChooseState(benchmark::State &state)
{
    const power::VfTable table = power::VfTable::paperTable();
    const power::PowerModel pm;
    std::vector<double> instr;
    for (std::size_t s = 0; s < table.numStates(); ++s)
        instr.push_back(1000.0 + 80.0 * static_cast<double>(s));
    dvfs::DomainScoreInputs in;
    in.instrAtState = instr;
    in.baselineInstr = 1400.0;
    in.baselineActivity.l1Hits = 300;
    in.baselineActivity.l2Misses = 40;
    in.epochLen = tickUs;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dvfs::chooseState(table, pm, in, dvfs::Objective::Ed2p));
    }
}
BENCHMARK(BM_ChooseState);

std::shared_ptr<const isa::Application>
snapshotApp()
{
    isa::KernelBuilder b("snap");
    const auto r = b.region("data", 32 << 20);
    b.grid(256, 4);
    b.loop(500);
    b.load(r, isa::AccessPattern::Streaming, 16);
    b.waitcnt(0);
    b.valu(4, 10);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "snap";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

/** Cost of one oracle "fork" (GpuChip copy) vs CU count. */
void
BM_ChipSnapshot(benchmark::State &state)
{
    gpu::GpuConfig cfg;
    cfg.numCus = static_cast<std::uint32_t>(state.range(0));
    gpu::GpuChip chip(cfg, snapshotApp());
    chip.runUntil(2 * tickUs);
    for (auto _ : state) {
        gpu::GpuChip copy = chip;
        benchmark::DoNotOptimize(copy.now());
    }
}
BENCHMARK(BM_ChipSnapshot)->Arg(4)->Arg(16)->Arg(64);

/** Simulation throughput: one 1 us epoch of a 16-CU GPU. */
void
BM_SimulateEpoch(benchmark::State &state)
{
    gpu::GpuConfig cfg;
    cfg.numCus = 16;
    gpu::GpuChip chip(cfg, snapshotApp());
    Tick t = 0;
    for (auto _ : state) {
        t += tickUs;
        if (chip.runUntil(t)) {
            state.PauseTiming();
            chip = gpu::GpuChip(cfg, snapshotApp());
            t = 0;
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_SimulateEpoch);

/** Fixture for the replay-path benchmarks: one short PCSTALL run of
 *  the snapshot app captured to a PCTR trace on disk. */
struct CapturedTrace
{
    std::string path = "micro_predictor_trace.tmp.bin";
    trace::TraceData data;
};

const CapturedTrace &
capturedTrace()
{
    static const CapturedTrace fixture = [] {
        CapturedTrace out;
        sim::RunConfig cfg;
        cfg.gpu.numCus = 8;
        sim::ExperimentDriver driver(cfg);
        core::PcstallController controller(core::PcstallConfig{},
                                           cfg.gpu.numCus);
        const trace::TraceMeta meta = trace::makeTraceMeta(
            cfg, driver.table(), "snap", controller);
        trace::TraceWriter writer(out.path, meta);
        trace::TraceCapture capture(writer);
        driver.run(snapshotApp(), controller, &capture);
        trace::TraceReadResult read = trace::readTraceFile(out.path);
        if (!read.ok() || !writer.ok())
            std::abort();
        out.data = std::move(*read.trace);
        return out;
    }();
    return fixture;
}

/** Decode half of a replay-cache hit: parse a PCTR file from disk. */
void
BM_TraceDecode(benchmark::State &state)
{
    const CapturedTrace &fixture = capturedTrace();
    for (auto _ : state) {
        trace::TraceReadResult read =
            trace::readTraceFile(fixture.path);
        if (!read.ok())
            state.SkipWithError(read.error.c_str());
        benchmark::DoNotOptimize(read.trace->frames.size());
    }
    state.counters["epochs"] = static_cast<double>(
        fixture.data.trailer.frameCount);
}
BENCHMARK(BM_TraceDecode);

/** Replay half of a hit: re-drive a fresh controller through the
 *  decoded frames (what a warm --trace-cache sweep cell costs). */
void
BM_TraceReplay(benchmark::State &state)
{
    const CapturedTrace &fixture = capturedTrace();
    for (auto _ : state) {
        core::PcstallController controller(core::PcstallConfig{},
                                           fixture.data.meta.numCus);
        trace::ReplayDriver replayer(fixture.data);
        trace::ReplayOptions ropts;
        ropts.verifyDecisions = true;
        const trace::ReplayOutcome out =
            replayer.run(controller, ropts);
        if (!out.ok() || out.decisionMismatches != 0)
            state.SkipWithError("replay diverged from capture");
        benchmark::DoNotOptimize(out.result.energy);
    }
    state.counters["epochs"] = static_cast<double>(
        fixture.data.trailer.frameCount);
}
BENCHMARK(BM_TraceReplay);

} // namespace

BENCHMARK_MAIN();
