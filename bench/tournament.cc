/**
 * @file
 * bench/tournament: rank every registered controller over every
 * workload under the EDP / ED^2P / energy-under-bound objectives and
 * print the leaderboard (see docs/controllers.md).
 *
 * The grid runs through SweepRunner, so the farm flags compose:
 * --store checkpoints cells for crash-resume, --shard i/N splits the
 * grid across workers, --threads N parallelizes, --trace-cache DIR
 * replays previously captured cells (docs/replay_studies.md) - all
 * with the leaderboard byte-identical to a serial run.
 * --controllers a,b and --objectives edp,ed2p subset the grid;
 * --leaderboard-json FILE additionally writes the machine-readable
 * document.
 */

#include <cstdio>

#include "store/atomic_file.hh"
#include "tournament_lib.hh"
#include "zoo/registry.hh"

using namespace pcstall;

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        const CliOptions extra(argc, argv);
        const std::vector<bench::TournamentObjective> objectives =
            bench::tournamentObjectives(extra.get("objectives", ""));
        const std::string json_out = extra.get("leaderboard-json", "");

        bench::banner("TOURNAMENT",
                      "Controller leaderboard across objectives", opts);

        const std::vector<std::string> designs =
            opts.controllers.empty()
                ? dvfs::ControllerRegistry::instance()
                      .tournamentNames()
                : opts.controllers;
        const std::vector<std::string> workloads =
            opts.sweepWorkloadNames();

        bench::SweepRunner runner(opts);
        const bench::Leaderboard board = bench::runTournament(
            runner, designs, workloads, objectives);
        bench::publishTournamentMetrics(board);

        bench::emit(opts, bench::leaderboardTable(board));
        std::printf("\n(%zu controllers x %zu workloads x %zu "
                    "objectives; scores are geomean ratios vs the "
                    "static nominal baseline, lower is better; wins "
                    "count per-(workload, objective) minima)\n",
                    board.rows.size(), board.workloads.size(),
                    board.objectives.size());

        if (!json_out.empty()) {
            const std::string err = store::writeFileAtomic(
                json_out, bench::leaderboardJson(board));
            if (!err.empty())
                warn("--leaderboard-json: " + err);
            else
                inform("wrote leaderboard JSON to " + json_out);
        }
        return 0;
    });
}
