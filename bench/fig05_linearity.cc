/**
 * @file
 * Figure 5: instructions committed in a fixed 1 us epoch by a CU at
 * different operating frequencies, for a set of sampled epochs of
 * comd. The paper's claim: the relationship is approximately linear
 * over the DVFS range (average R^2 ~ 0.82), so a two-parameter model
 * I(f) = I0 + S*f suffices.
 *
 * Prints one row per sampled epoch (instructions at each frequency of
 * the wide 1.0-3.0 GHz table) plus the per-epoch linear fit, and the
 * suite-wide average R^2 (the paper's headline statistic).
 */

#include <iostream>

#include "common/stats_util.hh"
#include "harness.hh"

using namespace pcstall;

namespace
{

int
runHarness(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 5",
                  "Linearity of instructions committed vs frequency",
                  opts);

    sim::ProfileConfig pcfg = opts.profileConfig();
    pcfg.wideTable = true;
    pcfg.waveLevel = false;
    pcfg.maxEpochs = 8;
    pcfg.sampleEvery = 3; // sample distinct program regions

    const std::string workload = opts.firstWorkload("comd");
    const auto app = bench::makeApp(workload, opts);
    if (!app)
        return 1;
    sim::SensitivityProfiler profiler(pcfg);
    const sim::ProfileResult profile = profiler.profile(app);

    std::vector<std::string> headers = {"epoch@us", "domain"};
    for (std::size_t s = 0; s < profile.table.numStates(); ++s) {
        headers.push_back(
            formatFixed(freqGHzD(profile.table.state(s).freq), 2) +
            "GHz");
    }
    headers.push_back("slope I/GHz");
    headers.push_back("R^2");

    TableWriter table(headers);
    std::vector<double> r2s;
    for (const auto &ep : profile.epochs) {
        // Print the first few domains of each sampled epoch (each is
        // one "set of data points" in the paper's scatter plot).
        for (std::uint32_t d = 0; d < std::min<std::uint32_t>(
                 2, static_cast<std::uint32_t>(ep.domains.size())); ++d) {
            table.beginRow()
                .cell(static_cast<long long>(ep.start / tickUs))
                .cell(static_cast<long long>(d));
            for (double v : ep.domainInstr[d])
                table.cell(v, 0);
            table.cell(ep.domains[d].sensitivity, 1);
            table.cell(ep.domains[d].r2, 3);
            table.endRow();
        }
        for (const auto &ds : ep.domains)
            r2s.push_back(ds.r2);
    }
    bench::emit(opts, table);

    std::printf("\naverage R^2 over %zu domain-epochs: %.3f "
                "(paper: ~0.82)\n",
                r2s.size(), mean(r2s));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] { return runHarness(argc, argv); });
}
