/**
 * @file
 * Figure 10: average relative change in wavefront sensitivity across
 * *consecutive iterations starting from the same PC address*, at
 * three table-sharing granularities: per-wavefront (WF), per-CU, and
 * GPU-wide (64CU). The paper measures ~10%, far below the ~37% for
 * consecutive time epochs (Figure 7), establishing that the starting
 * PC determines an epoch's sensitivity - the premise of PCSTALL.
 *
 * The sensitivity measured here is the wavefront STALL-model estimate
 * (the exact quantity PCSTALL stores in its table), collected from a
 * static-frequency run. Changes are normalized by the workload's mean
 * wave sensitivity so that near-zero memory-bound waves do not
 * produce divide-by-epsilon artifacts.
 */

#include <iostream>
#include <map>
#include <tuple>

#include "common/stats_util.hh"
#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "models/wave_estimator.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

/** Accumulates |s_t - s_{t-1}| for streams keyed by K. */
template <typename K>
class ChangeTracker
{
  public:
    void
    add(const K &key, double value)
    {
        auto [it, fresh] = last.try_emplace(key, value);
        if (!fresh) {
            sum += std::abs(value - it->second);
            ++n;
            it->second = value;
        }
    }

    /** Mean |delta| normalized by @p scale. */
    double
    result(double scale) const
    {
        return n > 0 && scale > 0.0
            ? sum / static_cast<double>(n) / scale : 0.0;
    }

    std::size_t samples() const { return n; }

  private:
    std::map<K, double> last;
    double sum = 0.0;
    std::size_t n = 0;
};

struct Row
{
    bool ok = false;
    double wf = 0.0;
    double cu = 0.0;
    double gpu = 0.0;
    double epoch = 0.0;
};

Row
stabilityOf(const std::string &name, const bench::BenchOptions &opts)
{
    Row row;
    const auto app = bench::makeApp(name, opts);
    if (!app)
        return row;
    gpu::GpuConfig gcfg = opts.runConfig().gpu;
    gpu::GpuChip chip(gcfg, app);

    models::WaveEstimatorConfig est_cfg;
    est_cfg.waveSlots = gcfg.waveSlotsPerCu;

    ChangeTracker<std::tuple<std::uint32_t, std::uint32_t,
                             std::uint64_t>> wf;
    ChangeTracker<std::pair<std::uint32_t, std::uint64_t>> cu;
    ChangeTracker<std::uint64_t> gpu_t;
    // Baseline: the same metric keyed by (cu, slot) only - this is
    // the consecutive-epoch change a reactive design faces.
    ChangeTracker<std::pair<std::uint32_t, std::uint32_t>> epoch;

    double sens_sum = 0.0;
    std::size_t sens_n = 0;
    Tick t = 0;
    for (int e = 0; e < 120 && !chip.runUntil(t + opts.epochLen);
         ++e) {
        const gpu::EpochRecord rec = chip.harvestEpoch(t);
        t += opts.epochLen;
        for (const auto &w : rec.waves) {
            if (!w.active || w.committed == 0)
                continue;
            const double s = models::waveSensitivity(
                w, est_cfg, opts.epochLen, rec.cus[w.cu].freq);
            sens_sum += s;
            ++sens_n;
            wf.add({w.cu, w.slot, w.startPcAddr}, s);
            cu.add({w.cu, w.startPcAddr}, s);
            gpu_t.add(w.startPcAddr, s);
            epoch.add({w.cu, w.slot}, s);
        }
    }
    const double scale =
        sens_n > 0 ? sens_sum / static_cast<double>(sens_n) : 0.0;
    row.wf = wf.result(scale);
    row.cu = cu.result(scale);
    row.gpu = gpu_t.result(scale);
    row.epoch = epoch.result(scale);
    row.ok = true;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner(
            "FIGURE 10",
            "Sensitivity stability across same-PC iterations", opts);

        const std::vector<std::string> names = opts.workloadNames();
        bench::SweepRunner runner(opts);
        const std::vector<Row> rows = runner.map<Row>(
            names.size(), [&](std::size_t i) {
                return stabilityOf(names[i], opts);
            });

        TableWriter table({"workload", "WF", "CU", "GPU-wide",
                           "epoch-to-epoch"});
        std::vector<double> wf_all, cu_all, gpu_all, epoch_all;
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (!rows[i].ok)
                continue;
            wf_all.push_back(rows[i].wf);
            cu_all.push_back(rows[i].cu);
            gpu_all.push_back(rows[i].gpu);
            epoch_all.push_back(rows[i].epoch);
            table.beginRow()
                .cell(names[i])
                .cell(formatPercent(rows[i].wf))
                .cell(formatPercent(rows[i].cu))
                .cell(formatPercent(rows[i].gpu))
                .cell(formatPercent(rows[i].epoch));
            table.endRow();
        }
        table.beginRow().cell("AVERAGE")
            .cell(formatPercent(mean(wf_all)))
            .cell(formatPercent(mean(cu_all)))
            .cell(formatPercent(mean(gpu_all)))
            .cell(formatPercent(mean(epoch_all)));
        table.endRow();
        bench::emit(opts, table);
        std::printf("\n(paper Fig 10: ~10%% average for same-PC "
                    "iterations vs ~37%% epoch-to-epoch; sharing the "
                    "table CU- or GPU-wide costs little)\n");
        return 0;
    });
}
