/**
 * @file
 * Shared plumbing for the figure/table harnesses: a common option
 * vocabulary (--cus, --epoch-us, --scale, --workloads, --threads,
 * --csv), the standard experiment configuration, and cached
 * static-baseline runs.
 *
 * Defaults (8 CUs, scale 1.0) are sized so every harness finishes in
 * minutes while preserving the paper's trends; pass --cus 64 --scale 1
 * for the paper-scale configuration (see EXPERIMENTS.md).
 *
 * Sweeps run through bench::SweepRunner (sweep_runner.hh), which
 * executes independent (workload, controller, config) cells on a
 * fixed-size thread pool. Everything here is safe to call from
 * concurrent sweep cells.
 */

#ifndef PCSTALL_BENCH_HARNESS_HH
#define PCSTALL_BENCH_HARNESS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table_writer.hh"
#include "dvfs/controller.hh"
#include "faults/fault_config.hh"
#include "isa/kernel.hh"
#include "sim/experiment.hh"
#include "sim/profiler.hh"
#include "trace/library.hh"
#include "workloads/workloads.hh"

namespace pcstall::core
{
class PcstallController;
}

namespace pcstall::bench
{

/** Parsed common options. */
struct BenchOptions
{
    std::uint32_t cus = 8;
    double scale = 1.0;
    Tick epochLen = tickUs;
    std::uint32_t cusPerDomain = 1;
    std::uint64_t seed = 42;
    bool csv = false;
    /**
     * Worker threads for sweep execution (--threads; 0 = one per
     * hardware thread). Results are bit-identical for every thread
     * count: each sweep cell derives its RNG stream from
     * (seed, workload, controller) alone.
     */
    unsigned threads = 0;
    /** Subset of workloads to run (all when empty). Entries may be
     *  Table II names or kernel-script paths. */
    std::vector<std::string> workloads;
    /**
     * Subset of controller designs to run (--controllers a,b; empty =
     * the harness's default set). Entries are registry design strings
     * ("REGR", "STATIC:7", "REGR:hist=4"); names whose base is not
     * registered are warned about and dropped — fatal only when
     * nothing known remains, so a typo'd list cannot silently run the
     * full default grid. Harnesses consume this via designList().
     */
    std::vector<std::string> controllers;
    /** Fault injection (see src/faults; disabled by default). */
    faults::FaultConfig faults;
    /** Enable the PCSTALL divergence watchdog (STALL fallback). */
    bool watchdog = false;
    /** Parity-protect PC tables (scrub corrupted entries). */
    bool ecc = false;
    /** Oracle chip-snapshot strategy (--oracle-mode
     *  copy|pool|pool-full). Pool reuses scratch chips across epochs
     *  and restores only dirty regions; pool-full forces full
     *  restores; results are byte-identical in all three modes
     *  (docs/performance.md). */
    sim::OracleMode oracleMode = sim::OracleMode::Pool;
    /** Threads for in-cell oracle sample parallelism
     *  (--oracle-threads; 1 = serial, thread-count independent). */
    unsigned oracleThreads = 1;
    /** Optimization objective for the runs (harness-set, no flag). */
    dvfs::Objective objective = dvfs::Objective::Ed2p;
    /** For the EnergyUnderPerfBound objective. */
    double perfDegradationLimit = 0.05;
    /** Collect the per-epoch trace in RunResult (harness-set). */
    bool collectTrace = false;
    /**
     * Capture every run routed through runTraced() to a binary epoch
     * trace (--trace-out). "{w}"/"{c}" expand to the workload and
     * controller name; without placeholders a "-workload-controller"
     * suffix is inserted before the extension so a sweep's captures
     * do not overwrite each other. When the same (workload,
     * controller) pair runs more than once in a sweep, repeats gain a
     * "-rN" run-index suffix, so captures never silently overwrite.
     */
    std::string traceOut;
    /**
     * Re-drive controllers from a previously captured trace instead
     * of simulating (--replay). Metrics then describe the recorded
     * epochs, so this is exact for the captured controller and a fast
     * what-if for the others.
     */
    std::string replayTrace;
    /** Write the learned PC table after each PCSTALL run
     *  (--pc-snapshot-out; same placeholder rules as traceOut). */
    std::string pcSnapshotOut;
    /**
     * Write every run routed through runTraced() as a PCPV decision-
     * provenance sidecar (--provenance-out; same placeholder and
     * collision rules as traceOut). Works for live, captured and
     * replayed runs alike; see docs/provenance.md.
     */
    std::string provenanceOut;
    /**
     * Score per-decision hindsight regret into RunResult::regret
     * without retaining records (harness-set, no flag; the tournament
     * turns it on for its regret leaderboard columns). Implied for
     * runs that write --provenance-out.
     */
    bool auditRegret = false;
    /**
     * Live sweep progress on stderr (--progress): a rate-limited
     * "cells done/total, cells/s, ETA" line driven by SweepRunner
     * completion counts. Auto-disabled when stderr is not a TTY.
     */
    bool progress = false;
    /** Warm-start PCSTALL tables from a snapshot (--pc-snapshot-in). */
    std::string pcSnapshotIn;
    /**
     * Trace library directory (--trace-cache DIR): sweeps resolve
     * replay-eligible cells against a content-addressed library of
     * PCTR captures with capture-on-miss — the first run of a cell
     * simulates once and publishes its epoch trace; later runs with
     * the same cache key replay it at 20-600x live speed, with
     * byte-identical stdout and canonical metrics
     * (docs/replay_studies.md). Empty = no caching.
     */
    std::string traceCacheDir;
    /**
     * Opt into the shared-stream (what-if) cache tier
     * (--trace-what-if; requires --trace-cache, incompatible with
     * --shard): the design/run-index slots of the cache key are
     * blanked, so every controller in the sweep replays the one epoch
     * stream its workload's first cell recorded — open-loop
     * evaluation in the paper's style, trading the closed-loop
     * feedback (and the byte-identity contract) for a sweep that
     * simulates each workload once.
     */
    bool traceWhatIf = false;
    /**
     * Write a merged metrics snapshot at process end (--metrics-out).
     * ".prom"/".txt" extensions select Prometheus text exposition,
     * anything else the pcstall-metrics-v1 JSON document
     * (docs/observability.md). Enables metric recording.
     */
    std::string metricsOut;
    /** Write a Chrome trace-event / Perfetto timeline of every run at
     *  process end (--timeline-out). Enables timeline recording. */
    std::string timelineOut;
    /** Print the self-profile report (time in simulate / predict /
     *  oracle / encode) at process end (--verbose). */
    bool verbose = false;
    /**
     * Results-store directory (--store DIR): completed sweep cells are
     * checkpointed there (crash-safe, content-addressed; see
     * docs/sweep_farm.md) and looked up before computing, so a killed
     * sweep restarted with the same flags recomputes only the missing
     * cells. Empty = no checkpointing.
     */
    std::string storeDir;
    /** --resume: assert store-backed resume semantics (requires
     *  --store; informs how many cells were reused). */
    bool resume = false;
    /** Shard this worker owns (--shard i/N): only cells with
     *  index % shardCount == shardIndex run; the rest are marked
     *  skipped. shardCount <= 1 = unsharded. */
    unsigned shardIndex = 0;
    unsigned shardCount = 0;
    /** Per-cell wall-clock budget in seconds (--cell-timeout; 0 = no
     *  watchdog). Overrunning cells are cancelled at the next epoch
     *  boundary and marked failed-with-timeout. */
    double cellTimeoutSec = 0.0;
    /** Max extra attempts for transient cell failures (--cell-retries;
     *  deterministic FatalErrors and timeouts are never retried). */
    unsigned cellRetries = 2;
    /**
     * Also write every emitted table, in CSV form, to this file at
     * process end (--csv-out). Buffered in memory and published with
     * one atomic rename, so a crashed run never leaves a truncated
     * CSV for a plotting script to half-parse.
     */
    std::string csvOut;
    /** Harness identity for store keys (argv[0] basename; tools that
     *  build options programmatically may override). */
    std::string harnessId = "harness";

    /** Parse from argv; honours --cus --scale --epoch-us --domain-cus
     *  --seed --threads --csv --workloads a,b,c --controllers a,b
     *  --list-controllers (prints the registry and throws CleanExit;
     *  guardedMain exits 0) plus the fault flags
     *  --fault-seed --noise-sigma --noise-dropout --trans-fail
     *  --trans-extra-ns --freq-quant-mhz --bitflips --ecc --watchdog,
     *  the performance flags --oracle-mode --oracle-threads,
     *  the trace flags --trace-out --replay --pc-snapshot-out
     *  --pc-snapshot-in --trace-cache --trace-what-if
     *  (docs/replay_studies.md), the provenance flag --provenance-out, the
     *  progress flag --progress, the farm flags --store --resume --shard i/N
     *  --cell-timeout --cell-retries (docs/sweep_farm.md), and the
     *  observability flags --metrics-out --timeline-out --csv-out
     *  --verbose --log-level (also env PCSTALL_LOG). Malformed
     *  options and unknown workloads are warned about and dropped,
     *  never fatal. Calls configureObservability(). */
    static BenchOptions parse(int argc, char **argv);

    workloads::WorkloadParams workloadParams() const;
    sim::RunConfig runConfig() const;

    /** Profiler configuration matching runConfig()'s scaling. */
    sim::ProfileConfig profileConfig() const;

    /** Workload names selected (defaults to the full Table II). */
    std::vector<std::string> workloadNames() const;

    /**
     * Workloads for the expensive epoch/granularity sweeps: a
     * representative 8-app subset by default (half HPC, half MI,
     * covering compute/memory/divergent/multi-kernel characters);
     * --workloads overrides with any list, including the full suite.
     */
    std::vector<std::string> sweepWorkloadNames() const;

    /**
     * The harness's controller axis: the validated --controllers
     * selection when one was given, @p fallback (the harness's
     * default design list) otherwise.
     */
    std::vector<std::string>
    designList(std::vector<std::string> fallback) const;

    /** First selected workload, or @p def when none was given. */
    std::string firstWorkload(const std::string &def) const
    {
        return workloads.empty() ? def : workloads.front();
    }

    /**
     * A copy resized for an epoch length: longer epochs get
     * proportionally more work so runs still span many epochs.
     */
    BenchOptions sizedForEpoch(double epoch_us) const
    {
        BenchOptions sized = *this;
        sized.epochLen = static_cast<Tick>(
            epoch_us * static_cast<double>(tickUs));
        if (epoch_us > 2.0)
            sized.scale = scale * std::min(epoch_us / 2.0, 6.0);
        return sized;
    }
};

/**
 * Build a workload application as a shared immutable object. @p name
 * may be a Table II name or a kernel-script path. Returns null (after
 * a warn) when the workload cannot be built, so one bad workload
 * fails one run instead of the whole harness - callers skip null apps.
 */
std::shared_ptr<const isa::Application>
makeApp(const std::string &name, const BenchOptions &opts);

/**
 * Thrown by BenchOptions::parse() for informational flags
 * (--list-controllers) that print and stop: guardedMain() turns it
 * into a clean exit 0, so harness bodies never run half-parsed.
 */
struct CleanExit
{
};

/**
 * Factory for every registered controller design: the Table III
 * names, "STATIC[n]"/"STATIC:n" fixed-state baselines, and the
 * related-work zoo (REGR, DSO, WANGCHU), each accepting a
 * ":k=v,k=v" config suffix (see --list-controllers or
 * docs/controllers.md). Resolution goes through
 * dvfs::ControllerRegistry, so plug-in controllers registered by the
 * linking binary are constructible here too. @p app provides static
 * program knowledge to controllers that analyse code ahead of time
 * (DSO); passing null degrades them to dynamic-only. Unknown names
 * are fatal (FatalError) listing the registered designs.
 */
std::unique_ptr<dvfs::DvfsController>
makeController(const std::string &name, const sim::RunConfig &cfg,
               const isa::Application *app = nullptr);

/** All Table III design names in presentation order. */
const std::vector<std::string> &designNames();

/**
 * Per-cell trace-cache routing for runTraced(), assembled by
 * SweepRunner for replay-eligible cells of a --trace-cache sweep
 * (docs/replay_studies.md). The full flow:
 *
 *  - library hit: the cached trace replays the cell's controller with
 *    live metric accounting; exact-tier hits also verify every
 *    decision against the recording, so a stale entry (key schema
 *    drift, truncated file, foreign simulator build) is detected, not
 *    trusted;
 *  - stale/corrupt hit: the entry is quarantined, the (half-driven)
 *    controller is rebuilt cold via freshController, and the cell
 *    recaptures live;
 *  - miss: the cell simulates live, streaming its capture straight to
 *    the library entry path when captureOnMiss is set.
 */
struct TraceCacheContext
{
    /** Open library (not owned). The context is ignored - the run is
     *  a plain live run - when this is null, !ok(), or
     *  freshController is unset. */
    trace::TraceLibrary *library = nullptr;
    /** The cell's fully formed cache key (exact or shared tier). */
    trace::LibraryKey key;
    /**
     * Capture a missing entry from this cell's live run. What-if
     * waiter cells whose stream owner failed clear this: they run
     * live without capturing, so a shared-tier entry only ever holds
     * the owner's stream.
     */
    bool captureOnMiss = true;
    /**
     * Rebuild this cell's controller from cold state, exactly as the
     * original was built (same design string, config and application).
     * Used when a stale cached entry is quarantined mid-replay: the
     * half-driven controller must not be reused for the live
     * recapture. Required - a context without it is ignored.
     */
    std::function<std::unique_ptr<dvfs::DvfsController>()>
        freshController;
    /**
     * Out: set when self-healing rebuilt the controller. The caller's
     * owning pointer must be replaced by this one - it is the object
     * runTraced() actually drove (and the one post-run inspection
     * must read).
     */
    std::unique_ptr<dvfs::DvfsController> rebuilt;
    /** Out: what the cache actually did for this run. */
    enum class Outcome
    {
        /** Cache not consulted (flag precedence or unusable context). */
        Untouched,
        /** Replayed from a published entry. */
        Hit,
        /** Simulated live and published the capture. */
        MissCaptured,
        /** Simulated live without capturing (captureOnMiss off, an
         *  unwritable entry, or a replay-ineligible cached stream). */
        MissLive,
    };
    Outcome outcome = Outcome::Untouched;
};

/**
 * Run one (workload, controller) pair honouring the trace flags:
 * plain `driver.run()` when none are set; epoch-trace capture when
 * --trace-out is given (embedding the learned PC table of PCSTALL
 * controllers); trace replay instead of simulation when --replay is
 * given; PC-table warm start / snapshot export when the snapshot
 * flags are given. Falls back to an untraced live run (with a warn)
 * when a trace file cannot be written or read.
 *
 * @p run_index disambiguates repeated (workload, controller) runs in
 * one sweep: repeats > 0 gain a "-rN" suffix on every auto-expanded
 * output path. Independent of that, output paths are claimed in a
 * process-wide registry and re-claims are suffixed too, so no two
 * runs of one process ever overwrite each other's captures.
 *
 * @p cache routes the run through the trace library (may be null; see
 * TraceCacheContext). The explicit --replay / --trace-out flags take
 * precedence over the cache, and a heal can leave cache->rebuilt set
 * - callers that touch the controller after the run must adopt it.
 */
sim::RunResult runTraced(sim::ExperimentDriver &driver,
                         std::shared_ptr<const isa::Application> app,
                         dvfs::DvfsController &controller,
                         const BenchOptions &opts,
                         const std::string &workload,
                         std::size_t run_index = 0,
                         TraceCacheContext *cache = nullptr);

/**
 * The core --trace-cache resolution, shared by runTraced() and
 * SweepRunner's static-baseline path: a library hit replays
 * @p controller (verified, with live metric accounting); a stale or
 * corrupt hit is quarantined, the controller rebuilt cold (swapping
 * @p controller to cache.rebuilt), and the run recaptured live; a
 * plain miss runs live, capturing into the library when
 * cache.captureOnMiss. Returns true when @p result was produced;
 * false tells the caller to run live itself. @p prov may be null.
 */
bool resolveTraceCache(sim::ExperimentDriver &driver,
                       std::shared_ptr<const isa::Application> app,
                       dvfs::DvfsController *&controller,
                       const BenchOptions &opts,
                       const std::string &workload,
                       TraceCacheContext &cache,
                       obs::ProvenanceLog *prov,
                       sim::RunResult &result);

/** Print @p table as text or CSV per @p opts. */
void emit(const BenchOptions &opts, const TableWriter &table);

/** Print a harness banner naming the figure being regenerated. */
void banner(const std::string &figure, const std::string &what,
            const BenchOptions &opts);

/**
 * Arm the observability subsystem from parsed options: enables metric
 * and/or timeline recording and remembers the output paths and the
 * verbose flag for writeObservabilityOutputs(). BenchOptions::parse()
 * calls this; tools that build options programmatically call it
 * directly.
 */
void configureObservability(const BenchOptions &opts);

/**
 * Flush the configured observability outputs: the merged metrics
 * snapshot (--metrics-out), the Chrome-trace timeline
 * (--timeline-out) and the --verbose self-profile report. Merging
 * walks the collected run contexts in submission order, so the files
 * are byte-identical for every --threads value (wall-clock metrics
 * live in the segregated "timing" section). guardedMain() calls this
 * once on every exit path; extra calls are no-ops.
 */
void writeObservabilityOutputs();

/**
 * Flush every durable artifact on process exit: the observability
 * outputs above, the buffered --csv-out table, and any in-flight
 * `.tmp` staging files left by an unwinding FatalError (unlinked so
 * retries never accumulate stale partial files). guardedMain() calls
 * this once on every exit path; extra calls are no-ops.
 */
void flushHarnessArtifacts();

/**
 * Flush the PC tables' plain-member telemetry (lookups, hits,
 * updates, evictions, alias hits, scrubs) into the current run
 * context's registry as pc_table.* counters. runTraced() calls this
 * after every live or replayed run of a PCSTALL controller; tools
 * that drive a controller directly call it themselves.
 */
void publishPcTableMetrics(const core::PcstallController &pcstall);

/**
 * Record one failed sweep cell/baseline/task in the process-wide
 * tally. SweepRunner calls this wherever it contains a FatalError so
 * the sweep can keep going; guardedMain reads the tally to decide the
 * exit code. Thread-safe.
 */
void noteSweepFailure();

/** Sweep failures recorded so far in this process. */
std::uint64_t sweepFailureCount();

/**
 * Run a harness/tool main body under the library error contract:
 * FatalError (already logged by fatal()) becomes exit code 1, any
 * other stray exception is reported and also exits 1. A sweep whose
 * cells failed still completes and prints every other cell, but the
 * process exits 1 so scripts never mistake a degraded sweep for a
 * clean one. Library code never calls std::exit, so this is the only
 * process-exit decision point.
 */
template <typename Fn>
int
guardedMain(Fn &&body)
{
    try {
        const std::uint64_t before = sweepFailureCount();
        const int rc = body();
        // (CleanExit from an informational flag lands in the handler
        // below before any sweep work starts.)
        // Flush even when rc != 0: partial metrics from a degraded
        // sweep are exactly what one debugs the degradation with.
        flushHarnessArtifacts();
        const std::uint64_t failed = sweepFailureCount() - before;
        if (rc == 0 && failed != 0) {
            warn(std::to_string(failed) +
                 " sweep cell(s) failed; see diagnostics above");
            return 1;
        }
        return rc;
    } catch (const CleanExit &) {
        // An informational flag already printed what was asked for.
        flushHarnessArtifacts();
        return 0;
    } catch (const FatalError &) {
        // fatal() printed the diagnostic when it threw.
        flushHarnessArtifacts();
        return 1;
    } catch (const std::exception &e) {
        warn(std::string("unexpected error: ") + e.what());
        flushHarnessArtifacts();
        return 1;
    }
}

} // namespace pcstall::bench

#endif // PCSTALL_BENCH_HARNESS_HH
