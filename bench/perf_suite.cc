/**
 * @file
 * Tracked performance benchmark suite (docs/performance.md).
 *
 * Times the simulator's hot paths - oracle fork-pre-execute sweeps in
 * every snapshot mode, raw epoch simulation, predictor table updates,
 * trace encoding - plus end-to-end experiment cells (ACCPC per
 * oracle snapshot mode, PCSTALL with and without the decision-
 * provenance audit), as median-of-N wall times. Alongside the
 * timings it *always* verifies that the copy, pooled and
 * pooled+parallel oracle paths produce bit-identical estimates and
 * that end-to-end runs produce bit-identical metrics (audited
 * included), so a perf regression can never hide a correctness
 * regression.
 *
 * Modes:
 *  - default: run the suite, print a table (honours --csv);
 *  - --out FILE: additionally write the pcstall-perf-v1 JSON document
 *    (the committed baseline lives at bench_results/BENCH_perf.json);
 *  - --check-regression FILE: compare this run's min-of-N against the
 *    baseline document's min-of-N. Every benchmark runs one untimed
 *    warmup iteration first, and the minimum over the timed repeats is
 *    the gated statistic: medians on a noisy shared machine still
 *    carry scheduler interference, while the min approaches the true
 *    cost of the code path. Absolute comparisons use --tolerance
 *    (default 4.0x, generous because CI machines differ); same-machine
 *    mode ratios (pooled/delta vs copy) use fixed bands. Non-zero
 *    exit on regression.
 *
 * Flags beyond the common set: --repeats N (default 5), --out FILE,
 * --check-regression FILE, --tolerance X, --oracle-threads N (thread
 * count for the parallel-sweep benchmark, default 4).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "obs/context.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "oracle/fork_pre_execute.hh"
#include "oracle/snapshot_pool.hh"
#include "predict/pc_table.hh"
#include "sim/parallel_executor.hh"
#include "store/atomic_file.hh"
#include "sweep_runner.hh"
#include "trace/format.hh"

using namespace pcstall;

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedNs(Clock::time_point t0)
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
}

/** One benchmark's samples with order statistics. */
struct BenchTiming
{
    std::string name;
    std::vector<double> samplesNs;

    double
    medianNs() const
    {
        std::vector<double> s = samplesNs;
        std::sort(s.begin(), s.end());
        const std::size_t n = s.size();
        return n == 0 ? 0.0
                      : (n % 2 == 1 ? s[n / 2]
                                    : 0.5 * (s[n / 2 - 1] + s[n / 2]));
    }

    double
    minNs() const
    {
        return samplesNs.empty()
            ? 0.0 : *std::min_element(samplesNs.begin(), samplesNs.end());
    }

    double
    maxNs() const
    {
        return samplesNs.empty()
            ? 0.0 : *std::max_element(samplesNs.begin(), samplesNs.end());
    }
};

/**
 * Time @p fn() @p repeats times, running untimed @p prep() before
 * every call (including one full warmup iteration first, so the timed
 * calls never pay one-time allocations or cold caches).
 */
template <typename Prep, typename Fn>
BenchTiming
timeBenchPrepared(const std::string &name, int repeats, Prep &&prep,
                  Fn &&fn)
{
    BenchTiming t;
    t.name = name;
    prep();
    fn(); // warmup iteration
    for (int r = 0; r < repeats; ++r) {
        prep();
        const Clock::time_point t0 = Clock::now();
        fn();
        t.samplesNs.push_back(elapsedNs(t0));
    }
    return t;
}

/** Time @p fn() @p repeats times (after one untimed warmup). */
template <typename Fn>
BenchTiming
timeBench(const std::string &name, int repeats, Fn &&fn)
{
    return timeBenchPrepared(name, repeats, [] {},
                             std::forward<Fn>(fn));
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Bit-exact digest of a sweep's estimates (identity checks). */
std::uint64_t
estimatesFingerprint(const dvfs::AccurateEstimates &est)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    mix(est.domainInstr.size());
    for (const std::vector<double> &row : est.domainInstr) {
        mix(row.size());
        for (double v : row)
            mix(doubleBits(v));
    }
    mix(est.waves.size());
    for (const dvfs::AccurateEstimates::WaveSens &w : est.waves) {
        mix(w.cu);
        mix(w.slot);
        mix(w.startPcAddr);
        mix(doubleBits(w.sensitivity));
        mix(doubleBits(w.level));
        mix(w.ageRank);
    }
    return h;
}

/** Bit-exact digest of a run's reported metrics (identity checks). */
std::uint64_t
resultFingerprint(const sim::RunResult &r)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    mix(r.completed ? 1 : 0);
    mix(r.epochs);
    mix(static_cast<std::uint64_t>(r.execTime));
    mix(doubleBits(r.energy));
    mix(r.instructions);
    mix(doubleBits(r.predictionAccuracy));
    mix(r.transitions);
    mix(doubleBits(r.transitionEnergy));
    mix(r.freqTimeShare.size());
    for (double v : r.freqTimeShare)
        mix(doubleBits(v));
    mix(r.trace.size());
    for (const sim::EpochTraceEntry &e : r.trace) {
        mix(static_cast<std::uint64_t>(e.start));
        for (std::uint8_t s : e.domainState)
            mix(s);
        for (double v : e.domainCommitted)
            mix(doubleBits(v));
    }
    return h;
}

/** Settings the baseline comparison must agree on. */
std::string
configFingerprint(const bench::BenchOptions &opts,
                  const std::string &workload)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    h = hashCombine(h, opts.cus);
    h = hashCombine(h, doubleBits(opts.scale));
    h = hashCombine(h, static_cast<std::uint64_t>(opts.epochLen));
    h = hashCombine(h, opts.seed);
    for (char c : workload)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Minimal scanner for the pcstall-perf-v1 documents this tool
 *  writes: pulls "fingerprint" and every benchmark's median and min.
 *  Not a general JSON parser - the files are machine-written. */
struct BaselineDoc
{
    bool ok = false;
    std::string fingerprint;
    std::vector<std::pair<std::string, double>> medians;
    std::vector<std::pair<std::string, double>> mins;

    double
    medianOf(const std::string &name) const
    {
        for (const auto &[n, v] : medians)
            if (n == name)
                return v;
        return -1.0;
    }

    /** The gated statistic: min-of-N, median as a fallback for
     *  baselines written before min_ns was recorded. */
    double
    minOf(const std::string &name) const
    {
        for (const auto &[n, v] : mins)
            if (n == name)
                return v;
        return medianOf(name);
    }
};

BaselineDoc
readBaseline(const std::string &path)
{
    BaselineDoc doc;
    std::ifstream is(path);
    if (!is)
        return doc;
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    auto string_after = [&](std::size_t pos) -> std::string {
        const std::size_t q0 = text.find('"', pos);
        if (q0 == std::string::npos)
            return "";
        const std::size_t q1 = text.find('"', q0 + 1);
        if (q1 == std::string::npos)
            return "";
        return text.substr(q0 + 1, q1 - q0 - 1);
    };

    const std::size_t fp = text.find("\"fingerprint\":");
    if (fp != std::string::npos)
        doc.fingerprint = string_after(fp + 14);

    std::size_t pos = 0;
    while ((pos = text.find("\"name\":", pos)) != std::string::npos) {
        const std::string name = string_after(pos + 7);
        const std::size_t med = text.find("\"median_ns\":", pos);
        if (name.empty() || med == std::string::npos)
            break;
        doc.medians.emplace_back(
            name, std::atof(text.c_str() + med + 12));
        const std::size_t mn = text.find("\"min_ns\":", med);
        const std::size_t next = text.find("\"name\":", med);
        if (mn != std::string::npos &&
            (next == std::string::npos || mn < next)) {
            doc.mins.emplace_back(name,
                                  std::atof(text.c_str() + mn + 9));
        }
        pos = med + 12;
    }
    doc.ok = !doc.medians.empty();
    return doc;
}

void
writeJson(const std::string &path, const bench::BenchOptions &opts,
          const std::string &workload, int repeats,
          unsigned oracle_threads,
          const std::vector<BenchTiming> &timings)
{
    std::ostringstream os;
    char buf[160];
    os << "{\n  \"schema\": \"pcstall-perf-v1\",\n  \"config\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"workload\": \"%s\",\n    \"cus\": %u,\n"
                  "    \"scale\": %.4f,\n    \"epoch_us\": %.3f,\n",
                  workload.c_str(), opts.cus, opts.scale,
                  static_cast<double>(opts.epochLen) /
                      static_cast<double>(tickUs));
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"seed\": %llu,\n    \"repeats\": %d,\n"
                  "    \"oracle_threads\": %u,\n"
                  "    \"fingerprint\": \"%s\"\n  },\n",
                  static_cast<unsigned long long>(opts.seed), repeats,
                  oracle_threads,
                  configFingerprint(opts, workload).c_str());
    os << buf << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const BenchTiming &t = timings[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"median_ns\": %.0f, "
                      "\"min_ns\": %.0f, \"max_ns\": %.0f, "
                      "\"repeats\": %zu}%s\n",
                      t.name.c_str(), t.medianNs(), t.minNs(),
                      t.maxNs(), t.samplesNs.size(),
                      i + 1 < timings.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    // Atomic publish so a kill mid-write cannot leave a truncated
    // baseline that a later --check-regression run would half-parse.
    const std::string err = store::writeFileAtomic(path, os.str());
    if (!err.empty()) {
        warn("cannot write " + path + ": " + err);
        return;
    }
    inform("wrote " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        CliOptions cli(argc, argv);
        const int repeats =
            std::max<int>(1, static_cast<int>(cli.getInt("repeats", 5)));
        const std::string out_path = cli.get("out", "");
        const std::string baseline_path =
            cli.get("check-regression", "");
        const double tolerance = cli.getDouble("tolerance", 4.0);
        const unsigned mt_threads = opts.oracleThreads > 1
            ? opts.oracleThreads : 4;

        bench::banner("PERF SUITE",
                      "Hot-path wall times and mode identity", opts);

        const std::string workload = opts.firstWorkload("comd");
        const auto app = bench::makeApp(workload, opts);
        fatalIf(!app, "cannot build workload " + workload);

        // --- fixture: a chip a few epochs into the workload, at an
        // epoch boundary with live waves (the oracle's input state).
        const sim::RunConfig rcfg = opts.runConfig();
        gpu::GpuConfig gcfg = rcfg.gpu;
        gcfg.defaultFreq = rcfg.nominalFreq;
        gpu::GpuChip chip(gcfg, app);
        const dvfs::DomainMap domains(gcfg.numCus, opts.cusPerDomain);
        const power::VfTable table = power::VfTable::paperTable();
        gpu::EpochRecord scratch_record;
        for (int e = 0; e < 2; ++e) {
            chip.runUntil((e + 1) * opts.epochLen);
            chip.harvestEpoch(e * opts.epochLen, scratch_record);
        }

        std::vector<BenchTiming> timings;

        // --- snapshot primitives ---
        timings.push_back(timeBench("chip_copy", repeats, [&] {
            gpu::GpuChip copy = chip;
            fatalIf(copy.now() != chip.now(), "copy diverged");
        }));

        // Full-restore pool: copy-assign restores only, the pooled
        // reference mode the committed baseline names refer to.
        oracle::SnapshotPool pool;
        pool.setDeltaRestore(false);
        pool.ensureSlots(table.numStates());
        timings.push_back(timeBench("pool_restore", repeats, [&] {
            gpu::GpuChip &c = pool.restore(0, chip);
            fatalIf(c.now() != chip.now(), "restore diverged");
        }));

        // Delta restore: per iteration, pre-execute one epoch on the
        // slot chip (untimed prep) so it diverges from the base the
        // way a real oracle sample does, then time the steady-state
        // per-sweep resync: take the base's dirt and copy only the
        // dirty regions back.
        oracle::SnapshotPool delta_pool;
        delta_pool.ensureSlots(1, chip);
        delta_pool.beginSweep(chip);
        delta_pool.restore(0, chip); // anchor the delta chain
        timings.push_back(timeBenchPrepared(
            "chip_delta_restore", repeats,
            [&] {
                delta_pool.beginSweep(chip);
                gpu::GpuChip &c = delta_pool.restore(0, chip);
                c.runUntil(chip.now() + opts.epochLen);
                c.harvestEpoch(chip.now(), scratch_record);
            },
            [&] {
                delta_pool.beginSweep(chip);
                gpu::GpuChip &c = delta_pool.restore(0, chip);
                fatalIf(c.now() != chip.now(), "delta restore diverged");
            }));
        fatalIf(delta_pool.deltaRestores() == 0,
                "chip_delta_restore never took the delta path");
        {
            delta_pool.beginSweep(chip);
            gpu::GpuChip &c = delta_pool.restore(0, chip);
            fatalIf(c.stateFingerprint() != chip.stateFingerprint(),
                    "delta-restored chip fingerprint diverged");
        }

        // --- one oracle sample: restore + simulate + harvest ---
        timings.push_back(timeBench("epoch_simulate", repeats, [&] {
            gpu::GpuChip &c = pool.restore(0, chip);
            c.runUntil(chip.now() + opts.epochLen);
            c.harvestEpoch(chip.now(), scratch_record);
        }));

        // --- full sweeps, one per snapshot mode, identity-checked ---
        oracle::SweepOptions copy_opts;
        std::uint64_t copy_fp = 0;
        timings.push_back(timeBench("oracle_fork_copy", repeats, [&] {
            copy_fp = estimatesFingerprint(oracle::forkPreExecuteSweep(
                chip, domains, table, opts.epochLen, copy_opts));
        }));

        oracle::SweepOptions pool_opts;
        pool_opts.pool = &pool;
        timings.push_back(timeBench("oracle_fork_pool", repeats, [&] {
            const std::uint64_t fp =
                estimatesFingerprint(oracle::forkPreExecuteSweep(
                    chip, domains, table, opts.epochLen, pool_opts));
            fatalIf(fp != copy_fp,
                    "pooled sweep diverged from copy sweep");
        }));

        // Same sweep through a delta-restoring pool (the default for
        // experiment runs). Identity against the copy sweep makes this
        // benchmark double as the delta-correctness gate.
        oracle::SnapshotPool sweep_delta_pool;
        oracle::SweepOptions delta_opts;
        delta_opts.pool = &sweep_delta_pool;
        timings.push_back(timeBench("oracle_fork_delta", repeats, [&] {
            const std::uint64_t fp =
                estimatesFingerprint(oracle::forkPreExecuteSweep(
                    chip, domains, table, opts.epochLen, delta_opts));
            fatalIf(fp != copy_fp,
                    "delta sweep diverged from copy sweep");
        }));
        fatalIf(sweep_delta_pool.deltaRestores() == 0,
                "oracle_fork_delta never took the delta path");

        sim::ParallelExecutor exec(mt_threads);
        oracle::SweepOptions mt_opts = pool_opts;
        mt_opts.executor = &exec;
        timings.push_back(timeBench("oracle_fork_pool_mt", repeats, [&] {
            const std::uint64_t fp =
                estimatesFingerprint(oracle::forkPreExecuteSweep(
                    chip, domains, table, opts.epochLen, mt_opts));
            fatalIf(fp != copy_fp,
                    "parallel sweep diverged from copy sweep");
        }));

        // --- predictor table hot path ---
        predict::PcSensitivityTable pc_table{predict::PcTableConfig{}};
        timings.push_back(timeBench("predictor_update", repeats, [&] {
            for (std::uint64_t pc = 0; pc < 4096 * 16; pc += 16)
                pc_table.update(pc, 12.5);
        }));
        timings.push_back(timeBench("predictor_lookup", repeats, [&] {
            double acc = 0.0;
            for (std::uint64_t pc = 0; pc < 4096 * 16; pc += 16) {
                const auto entry = pc_table.lookup(pc);
                acc += entry ? entry->sensitivity : 0.0;
            }
            fatalIf(!std::isfinite(acc), "lookup accumulator corrupt");
        }));

        // --- trace encoding of one realistic epoch frame ---
        {
            trace::EpochFrame frame;
            frame.start = 0;
            frame.end = opts.epochLen;
            frame.accountedEnd = opts.epochLen;
            frame.snapshots = chip.waveSnapshots();
            frame.record = scratch_record;
            frame.decisions.assign(domains.numDomains(),
                                   trace::FrameDecision{});
            const std::string tmp = "perf_suite_trace.tmp.bin";
            auto controller = bench::makeController("STALL", rcfg);
            const trace::TraceMeta meta = trace::makeTraceMeta(
                rcfg, table, workload, *controller);
            timings.push_back(timeBench("trace_encode", repeats, [&] {
                trace::TraceWriter writer(tmp, meta);
                for (int i = 0; i < 32; ++i)
                    writer.writeFrame(frame);
                writer.finish(trace::TraceTrailer{});
                fatalIf(!writer.ok(), "trace writer failed");
            }));
            std::remove(tmp.c_str());
        }

        // --- end-to-end ACCPC cell, copy vs pooled ---
        auto run_cell = [&](sim::OracleMode mode) {
            sim::RunConfig cfg = opts.runConfig();
            cfg.oracleMode = mode;
            sim::ExperimentDriver driver(cfg);
            auto controller = bench::makeController("ACCPC", cfg);
            return driver.run(app, *controller);
        };
        std::uint64_t e2e_copy_fp = 0;
        timings.push_back(timeBench("e2e_accpc_copy", repeats, [&] {
            e2e_copy_fp = resultFingerprint(
                run_cell(sim::OracleMode::Copy));
        }));
        timings.push_back(timeBench("e2e_accpc_pool", repeats, [&] {
            fatalIf(resultFingerprint(run_cell(
                        sim::OracleMode::PoolFull)) != e2e_copy_fp,
                    "pooled e2e run diverged from copy run");
        }));
        timings.push_back(timeBench("e2e_accpc_delta", repeats, [&] {
            fatalIf(resultFingerprint(run_cell(
                        sim::OracleMode::Pool)) != e2e_copy_fp,
                    "delta e2e run diverged from copy run");
        }));

        // --- decision provenance: audited end-to-end cell ---
        // The provenance sink only observes, so an armed run must
        // compute exactly what the unaudited run computes; timing
        // both keeps the pending-record/hindsight-scoring path under
        // the regression gate without conflating it with simulation
        // cost drift.
        auto run_pcstall = [&](obs::ProvenanceLog *sink) {
            sim::RunConfig cfg = opts.runConfig();
            sim::ExperimentDriver driver(cfg);
            driver.setProvenance(sink);
            auto controller = bench::makeController("PCSTALL", cfg);
            return driver.run(app, *controller);
        };
        std::uint64_t pcstall_fp = 0;
        timings.push_back(timeBench("e2e_pcstall", repeats, [&] {
            pcstall_fp = resultFingerprint(run_pcstall(nullptr));
        }));
        timings.push_back(
            timeBench("provenance_overhead", repeats, [&] {
                obs::ProvenanceLog log;
                fatalIf(resultFingerprint(run_pcstall(&log)) !=
                            pcstall_fp,
                        "audited run diverged from unaudited run");
                fatalIf(log.records.empty() || log.regret.empty(),
                        "audited run produced no provenance");
            }));

        // --- replay trace cache: capture-on-miss vs warm replay ---
        // A small design-study grid (four controllers over one
        // workload, plus the shared baseline) run through the sweep
        // runner with --trace-cache semantics. The cold case starts
        // from an empty library every iteration and pays simulate +
        // capture; the warm case resolves every cell to a cached
        // replay. Their ratio is the speedup the replay-first
        // workflow (docs/replay_studies.md) delivers, and the
        // same-machine gate below holds it above 10x.
        std::uint64_t cache_cold_fp = 0;
        {
            const std::string cache_root = "perf_suite_trace_cache.tmp";
            auto sweep = [&]() {
                bench::BenchOptions sopts = opts;
                sopts.traceCacheDir = cache_root;
                sopts.threads = 1;
                bench::SweepRunner runner(sopts);
                std::vector<bench::SweepCell> cells;
                cells.push_back(runner.cell(workload, "PCSTALL", true));
                cells.push_back(runner.cell(workload, "STALL"));
                cells.push_back(runner.cell(workload, "GPHT"));
                cells.push_back(runner.cell(workload, "ACCPC"));
                const auto out = runner.run(std::move(cells));
                std::uint64_t fp = 0xCBF29CE484222325ULL;
                for (const bench::CellOutcome &cell : out) {
                    fatalIf(!cell.run.ok,
                            "trace-cache sweep cell failed: " +
                                cell.run.error);
                    fp = hashCombine(fp,
                                     resultFingerprint(cell.run.result));
                }
                // 4 cells + the shared baseline, cold (captured) and
                // warm (replayed, nothing recaptured) alike.
                fatalIf(runner.traceCache() == nullptr ||
                            runner.traceCache()->entryCount() != 5,
                        "trace-cache sweep library count unexpected");
                return fp;
            };
            timings.push_back(timeBenchPrepared(
                "trace_cache_cold", repeats,
                [&] { std::filesystem::remove_all(cache_root); },
                [&] { cache_cold_fp = sweep(); }));
            // The library left by the last cold iteration serves every
            // warm iteration; identity against the cold results makes
            // the pair double as the replay-determinism gate.
            timings.push_back(timeBench("trace_cache_warm", repeats, [&] {
                fatalIf(sweep() != cache_cold_fp,
                        "warm replay sweep diverged from cold capture");
            }));
            std::filesystem::remove_all(cache_root);
        }

        inform("identity checks passed: "
               "copy == pool == delta == pool+mt == audited == "
               "replayed");

        // --- report ---
        obs::Registry &reg = obs::reg();
        TableWriter out_table(
            {"benchmark", "median (us)", "min (us)", "max (us)"});
        for (const BenchTiming &t : timings) {
            out_table.beginRow()
                .cell(t.name)
                .cell(t.medianNs() / 1e3, 1)
                .cell(t.minNs() / 1e3, 1)
                .cell(t.maxNs() / 1e3, 1);
            out_table.endRow();
            if (obs::metricsEnabled()) {
                reg.gauge("perf." + t.name + ".median_ns",
                          obs::MetricKind::Timing)
                    .set(t.medianNs());
            }
        }
        auto min_of = [&](const std::string &name) {
            for (const BenchTiming &t : timings)
                if (t.name == name)
                    return t.minNs();
            return -1.0;
        };

        bench::emit(opts, out_table);
        std::printf(
            "\nmode ratios (this machine, min-of-N): "
            "fork pool/copy %.2f, fork delta/copy %.2f, "
            "e2e pool/copy %.2f, e2e delta/copy %.2f\n",
            min_of("oracle_fork_pool") /
                std::max(min_of("oracle_fork_copy"), 1.0),
            min_of("oracle_fork_delta") /
                std::max(min_of("oracle_fork_copy"), 1.0),
            min_of("e2e_accpc_pool") /
                std::max(min_of("e2e_accpc_copy"), 1.0),
            min_of("e2e_accpc_delta") /
                std::max(min_of("e2e_accpc_copy"), 1.0));

        if (!out_path.empty())
            writeJson(out_path, opts, workload, repeats, mt_threads,
                      timings);

        // --- regression gate ---
        int failures = 0;
        if (!baseline_path.empty()) {
            const BaselineDoc base = readBaseline(baseline_path);
            if (!base.ok) {
                warn("cannot read baseline " + baseline_path);
                ++failures;
            } else if (base.fingerprint !=
                       configFingerprint(opts, workload)) {
                warn("baseline config fingerprint mismatch (" +
                     base.fingerprint + "): rerun with the baseline's "
                     "--cus/--scale/--epoch-us/--seed/--workloads");
                ++failures;
            } else {
                // Gate on min-of-N: the minimum over the timed
                // repeats (after the warmup iteration) is the least
                // noise-contaminated estimate of the path's cost.
                for (const BenchTiming &t : timings) {
                    const double ref = base.minOf(t.name);
                    if (ref <= 0.0) {
                        warn("baseline lacks benchmark " + t.name);
                        continue;
                    }
                    if (t.minNs() > ref * tolerance) {
                        warn(t.name + " regressed: min " +
                             std::to_string(t.minNs() / 1e3) +
                             " us vs baseline min " +
                             std::to_string(ref / 1e3) + " us (>" +
                             std::to_string(tolerance) + "x)");
                        ++failures;
                    }
                }
            }
            // Same-machine invariants: the pooled and delta paths
            // must never meaningfully lose to the dumber modes they
            // exist to beat.
            if (min_of("oracle_fork_pool") >
                min_of("oracle_fork_copy") * 1.25) {
                warn("pooled sweep slower than copy sweep by >25%");
                ++failures;
            }
            if (min_of("oracle_fork_delta") >
                min_of("oracle_fork_pool") * 1.25) {
                warn("delta sweep slower than full-restore pooled "
                     "sweep by >25%");
                ++failures;
            }
            if (min_of("chip_delta_restore") > min_of("chip_copy")) {
                warn("delta restore slower than a full chip copy");
                ++failures;
            }
            // e2e cells run hundreds of ms and pick up the most
            // scheduler noise; the bands are wide enough to survive a
            // busy machine while still catching a real mode
            // regression.
            if (min_of("e2e_accpc_pool") >
                min_of("e2e_accpc_copy") * 1.35) {
                warn("pooled e2e cell slower than copy cell by >35%");
                ++failures;
            }
            if (min_of("e2e_accpc_delta") >
                min_of("e2e_accpc_copy") * 1.35) {
                warn("delta e2e cell slower than copy cell by >35%");
                ++failures;
            }
            // The decision audit re-scores every candidate state
            // once per epoch - bounded work that must stay a small
            // fraction of the cell it observes.
            if (min_of("provenance_overhead") >
                min_of("e2e_pcstall") * 1.35) {
                warn("audited cell slower than unaudited cell by "
                     ">35%");
                ++failures;
            }
            // The replay acceptance bar (docs/replay_studies.md): a
            // warm-cache design-study sweep must be at least 10x
            // faster than the cold capture sweep it replaces.
            if (min_of("trace_cache_warm") * 10.0 >
                min_of("trace_cache_cold")) {
                warn("warm trace-cache sweep is not >=10x faster "
                     "than the cold capture sweep");
                ++failures;
            }
            if (obs::metricsEnabled())
                reg.counter("perf.regressions")
                    .add(static_cast<std::uint64_t>(failures));
            if (failures == 0)
                inform("regression check passed vs " + baseline_path);
        }
        return failures == 0 ? 0 : 1;
    });
}
