/**
 * @file
 * Validation of the fork-pre-execute methodology (paper Section 5.1):
 * the per-domain performance reported by the frequency-shuffled
 * sampling processes is compared against re-executing the same epoch
 * at the selected frequencies. The paper reaches 97.6% agreement with
 * one sample per V/f state; a fully accurate method would need
 * |states|^|domains| samples.
 */

#include <cmath>
#include <iostream>

#include "common/rng.hh"
#include "common/stats_util.hh"
#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "oracle/fork_pre_execute.hh"
#include "oracle/snapshot_pool.hh"
#include "sim/parallel_executor.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

struct Row
{
    bool ok = false;
    std::size_t epochs = 0;
    double accuracy = 0.0;
    double worst = 1.0;
};

Row
validateWorkload(const std::string &name,
                 const bench::BenchOptions &opts,
                 const power::VfTable &table)
{
    Row row;
    const auto app = bench::makeApp(name, opts);
    if (!app)
        return row;
    gpu::GpuConfig gcfg = opts.runConfig().gpu;
    gpu::GpuChip chip(gcfg, app);
    const dvfs::DomainMap domains(gcfg.numCus, opts.cusPerDomain);

    // Each workload draws its frequency assignments from its own
    // seed-derived stream, so rows are independent of the order (and
    // the thread) they are computed on.
    Rng rng(Rng::split(opts.seed, name, "oracle-validation").next());

    oracle::SnapshotPool pool;
    std::unique_ptr<sim::ParallelExecutor> exec;
    oracle::SweepOptions sweep_opts;
    if (opts.oracleMode != sim::OracleMode::Copy) {
        pool.setDeltaRestore(opts.oracleMode == sim::OracleMode::Pool);
        sweep_opts.pool = &pool;
        if (opts.oracleThreads > 1)
            exec = std::make_unique<sim::ParallelExecutor>(
                opts.oracleThreads);
        sweep_opts.executor = exec.get();
    }

    double acc_sum = 0.0;
    std::size_t n = 0;
    Tick t = 0;
    gpu::EpochRecord harvest_scratch;
    while (row.epochs < 12) {
        const bool done = chip.runUntil(t + opts.epochLen);
        chip.harvestEpoch(t, harvest_scratch);
        t += opts.epochLen;
        if (done)
            break;
        ++row.epochs;

        // Sample the upcoming epoch, then re-execute it at a random
        // mixed frequency assignment and compare.
        const auto est = oracle::forkPreExecuteSweep(
            chip, domains, table, opts.epochLen, sweep_opts);
        gpu::GpuChip real = chip;
        std::vector<std::size_t> chosen(domains.numDomains());
        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            chosen[d] = static_cast<std::size_t>(
                rng.below(table.numStates()));
            const std::uint32_t first = domains.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domains.cusPerDomain(); ++cu) {
                real.setCuFrequency(
                    cu, table.state(chosen[d]).freq, 0);
            }
        }
        real.runUntil(t + opts.epochLen);
        const gpu::EpochRecord rec = real.harvestEpoch(t);

        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            double actual = 0.0;
            const std::uint32_t first = domains.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domains.cusPerDomain(); ++cu) {
                actual += static_cast<double>(rec.cus[cu].committed);
            }
            if (actual <= 0.0)
                continue;
            const double predicted = est.domainInstr[d][chosen[d]];
            const double acc = clampTo(
                1.0 - std::abs(predicted - actual) / actual, 0.0,
                1.0);
            acc_sum += acc;
            row.worst = std::min(row.worst, acc);
            ++n;
        }
    }
    row.accuracy = n > 0 ? acc_sum / static_cast<double>(n) : 0.0;
    row.ok = true;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] {
        auto opts = bench::BenchOptions::parse(argc, argv);
        bench::banner("ORACLE VALIDATION",
                      "Fork-pre-execute sampling accuracy", opts);

        const power::VfTable table = power::VfTable::paperTable();
        const std::vector<std::string> names = opts.workloadNames();

        bench::SweepRunner runner(opts);
        const std::vector<Row> rows = runner.map<Row>(
            names.size(), [&](std::size_t i) {
                return validateWorkload(names[i], opts, table);
            });

        TableWriter out({"workload", "epochs", "mean accuracy",
                         "worst domain-epoch"});
        std::vector<double> all;
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (!rows[i].ok)
                continue;
            all.push_back(rows[i].accuracy);
            out.beginRow()
                .cell(names[i])
                .cell(static_cast<long long>(rows[i].epochs))
                .cell(formatPercent(rows[i].accuracy))
                .cell(formatPercent(rows[i].worst));
            out.endRow();
        }
        out.beginRow().cell("AVERAGE").cell("")
            .cell(formatPercent(mean(all))).cell("");
        out.endRow();
        bench::emit(opts, out);
        std::printf("\n(paper Section 5.1: 97.6%% accuracy with one "
                    "sample per V/f state)\n");
        return 0;
    });
}
