#include "harness.hh"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/logging.hh"
#include "core/pcstall_controller.hh"
#include "models/reactive_controller.hh"
#include "oracle/oracle_controllers.hh"

namespace pcstall::bench
{

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    CliOptions cli(argc, argv);
    BenchOptions opts;
    opts.cus = static_cast<std::uint32_t>(cli.getInt("cus", 8));
    opts.scale = cli.getDouble("scale", 1.0);
    opts.epochLen = static_cast<Tick>(
        cli.getDouble("epoch-us", 1.0) * static_cast<double>(tickUs));
    opts.cusPerDomain =
        static_cast<std::uint32_t>(cli.getInt("domain-cus", 1));
    opts.seed = static_cast<std::uint64_t>(cli.getInt("seed", 42));
    opts.csv = cli.has("csv");

    // Fault-injection flags: any nonzero magnitude enables its class.
    opts.faults.seed = static_cast<std::uint64_t>(
        cli.getInt("fault-seed", static_cast<std::int64_t>(
            opts.faults.seed)));
    opts.faults.telemetry.sigma = cli.getDouble("noise-sigma", 0.0);
    opts.faults.telemetry.dropoutProb =
        cli.getDouble("noise-dropout", 0.0);
    opts.faults.telemetry.enabled = opts.faults.telemetry.sigma > 0.0 ||
        opts.faults.telemetry.dropoutProb > 0.0;
    opts.faults.dvfs.transitionFailProb =
        cli.getDouble("trans-fail", 0.0);
    opts.faults.dvfs.extraSwitchLatency = static_cast<Tick>(
        cli.getDouble("trans-extra-ns", 0.0) * 1000.0);
    opts.faults.dvfs.granularity = static_cast<Freq>(
        cli.getInt("freq-quant-mhz", 0)) * freqMHz;
    opts.faults.dvfs.enabled =
        opts.faults.dvfs.transitionFailProb > 0.0 ||
        opts.faults.dvfs.extraSwitchLatency > 0 ||
        opts.faults.dvfs.granularity > 0;
    opts.faults.storage.upsetsPerEpoch = cli.getDouble("bitflips", 0.0);
    opts.faults.storage.enabled =
        opts.faults.storage.upsetsPerEpoch > 0.0;
    opts.watchdog = cli.has("watchdog");
    opts.ecc = cli.has("ecc");

    const std::string list = cli.get("workloads", "");
    if (!list.empty()) {
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
            const bool is_path =
                item.find('/') != std::string::npos ||
                item.find('.') != std::string::npos;
            if (!is_path && !workloads::isWorkload(item)) {
                warn("ignoring unknown workload '" + item + "'");
                continue;
            }
            opts.workloads.push_back(item);
        }
    }
    for (const std::string &err : cli.errors())
        warn("bad option " + err + " (using the default)");
    return opts;
}

workloads::WorkloadParams
BenchOptions::workloadParams() const
{
    workloads::WorkloadParams params;
    params.numCus = cus;
    params.scale = scale;
    params.seed = seed;
    return params;
}

sim::RunConfig
BenchOptions::runConfig() const
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.gpu.seed = seed;
    cfg.epochLen = epochLen;
    cfg.cusPerDomain = cusPerDomain;
    cfg.faults = faults;
    cfg.watchdogFallback = watchdog;
    cfg.eccProtectTables = ecc;
    cfg.scaled();
    return cfg;
}

sim::ProfileConfig
BenchOptions::profileConfig() const
{
    sim::ProfileConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.gpu.seed = seed;
    cfg.epochLen = epochLen;
    cfg.cusPerDomain = cusPerDomain;
    power::PowerParams ignored;
    sim::scaleToCus(cfg.gpu, ignored, cus);
    return cfg;
}

std::vector<std::string>
BenchOptions::workloadNames() const
{
    if (!workloads.empty())
        return workloads;
    std::vector<std::string> names;
    for (const auto &info : workloads::workloadTable())
        names.push_back(info.name);
    return names;
}

std::vector<std::string>
BenchOptions::sweepWorkloadNames() const
{
    if (!workloads.empty())
        return workloads;
    return {"comd", "hpgmg", "lulesh", "xsbench", "hacc", "quickS",
            "dgemm", "BwdBN"};
}

std::shared_ptr<const isa::Application>
makeApp(const std::string &name, const BenchOptions &opts)
{
    workloads::WorkloadLoadResult loaded =
        workloads::loadWorkload(name, opts.workloadParams());
    if (!loaded.ok()) {
        warn("skipping workload: " + loaded.error);
        return nullptr;
    }
    return std::make_shared<const isa::Application>(
        std::move(*loaded.app));
}

std::unique_ptr<dvfs::DvfsController>
makeController(const std::string &name, const sim::RunConfig &cfg)
{
    using models::EstimationKind;
    if (name == "STALL") {
        return std::make_unique<models::ReactiveController>(
            EstimationKind::Stall);
    }
    if (name == "LEAD") {
        return std::make_unique<models::ReactiveController>(
            EstimationKind::Lead);
    }
    if (name == "CRIT") {
        return std::make_unique<models::ReactiveController>(
            EstimationKind::Crit);
    }
    if (name == "CRISP") {
        return std::make_unique<models::ReactiveController>(
            EstimationKind::Crisp);
    }
    if (name == "ACCREAC")
        return std::make_unique<oracle::AccurateReactiveController>();
    if (name == "ORACLE")
        return std::make_unique<oracle::OracleController>();
    if (name == "PCSTALL" || name == "ACCPC") {
        core::PcstallConfig pc = core::PcstallConfig::forEpoch(
            cfg.epochLen, cfg.gpu.waveSlotsPerCu);
        pc.accurateEstimates = name == "ACCPC";
        pc.watchdog.enabled = cfg.watchdogFallback;
        pc.table.parityProtected = cfg.eccProtectTables;
        return std::make_unique<core::PcstallController>(
            pc, cfg.gpu.numCus);
    }
    fatal("unknown design '" + name + "'");
}

const std::vector<std::string> &
designNames()
{
    static const std::vector<std::string> names = {
        "STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL", "ACCPC",
        "ORACLE",
    };
    return names;
}

void
emit(const BenchOptions &opts, const TableWriter &table)
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

void
banner(const std::string &figure, const std::string &what,
       const BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
    std::printf("config: %u CUs, %.2f us epochs, %u CU(s)/domain, "
                "scale %.2f\n\n",
                opts.cus,
                static_cast<double>(opts.epochLen) /
                    static_cast<double>(tickUs),
                opts.cusPerDomain, opts.scale);
}

} // namespace pcstall::bench
