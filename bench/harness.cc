#include "harness.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "core/pcstall_controller.hh"
#include "store/atomic_file.hh"
#include "dvfs/hierarchical.hh"
#include "models/reactive_controller.hh"
#include "obs/context.hh"
#include "obs/export.hh"
#include "oracle/oracle_controllers.hh"
#include "sim/timeline_recorder.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "trace/snapshot.hh"
#include "zoo/registry.hh"

namespace pcstall::bench
{

namespace
{
std::atomic<std::uint64_t> sweepFailures{0};

/** Observability output configuration (configureObservability). */
struct ObsConfig
{
    std::mutex mutex;
    std::string metricsOut;
    std::string timelineOut;
    bool verbose = false;
    bool written = false;
};

/** Buffered --csv-out artifact: emit() appends here, and the buffer
 *  is published with one atomic rename at process exit. */
struct CsvArtifact
{
    std::mutex mutex;
    std::string path;
    std::string body;
    bool written = false;
};

CsvArtifact &
csvArtifact()
{
    static CsvArtifact csv;
    return csv;
}

ObsConfig &
obsConfig()
{
    static ObsConfig cfg;
    return cfg;
}
} // namespace

void
noteSweepFailure()
{
    sweepFailures.fetch_add(1, std::memory_order_relaxed);
    obs::reg().counter("sweep.failures").add(1);
}

std::uint64_t
sweepFailureCount()
{
    return sweepFailures.load(std::memory_order_relaxed);
}

void
configureObservability(const BenchOptions &opts)
{
    {
        ObsConfig &cfg = obsConfig();
        const std::lock_guard<std::mutex> lock(cfg.mutex);
        cfg.metricsOut = opts.metricsOut;
        cfg.timelineOut = opts.timelineOut;
        cfg.verbose = opts.verbose;
        cfg.written = false;
    }
    {
        CsvArtifact &csv = csvArtifact();
        const std::lock_guard<std::mutex> lock(csv.mutex);
        csv.path = opts.csvOut;
        csv.body.clear();
        csv.written = false;
    }
    // --verbose implies metrics: the self-profile is computed from the
    // Timing-kind profile.* counters.
    obs::setMetricsEnabled(!opts.metricsOut.empty() ||
                           !opts.timelineOut.empty() || opts.verbose);
    obs::setTimelineEnabled(!opts.timelineOut.empty());
}

namespace
{

void
printSelfProfile(const obs::MetricsSnapshot &snap)
{
    static const std::pair<const char *, const char *> phases[] = {
        {"profile.simulate_ns", "simulate"},
        {"profile.predict_ns", "predict"},
        {"profile.oracle_ns", "oracle"},
        {"profile.encode_ns", "encode"},
    };
    double total = 0.0;
    for (const auto &[name, label] : phases) {
        const auto it = snap.counters.find(name);
        if (it != snap.counters.end())
            total += static_cast<double>(it->second);
    }
    if (total <= 0.0) {
        inform("self-profile: no instrumented phases ran");
        return;
    }
    std::string line = "self-profile:";
    for (const auto &[name, label] : phases) {
        const auto it = snap.counters.find(name);
        const double ns = it != snap.counters.end()
            ? static_cast<double>(it->second) : 0.0;
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %s %.1f%% (%.1f ms)",
                      label, 100.0 * ns / total, ns / 1e6);
        line += buf;
    }
    inform(line);
}

} // namespace

void
writeObservabilityOutputs()
{
    std::string metrics_out;
    std::string timeline_out;
    bool verbose = false;
    {
        ObsConfig &cfg = obsConfig();
        const std::lock_guard<std::mutex> lock(cfg.mutex);
        if (cfg.written)
            return;
        cfg.written = true;
        metrics_out = cfg.metricsOut;
        timeline_out = cfg.timelineOut;
        verbose = cfg.verbose;
    }
    if (metrics_out.empty() && timeline_out.empty() && !verbose)
        return;

    // Both exports render into memory and publish with one atomic
    // rename (store/atomic_file.hh): a crash mid-flush leaves either
    // the previous complete file or none, never a truncated document.
    const obs::MetricsSnapshot snap = obs::collectedSnapshot();
    if (!metrics_out.empty()) {
        std::ostringstream os;
        const std::size_t dot = metrics_out.find_last_of('.');
        const std::string ext =
            dot == std::string::npos ? "" : metrics_out.substr(dot);
        if (ext == ".prom" || ext == ".txt")
            obs::writeMetricsPrometheus(os, snap);
        else
            obs::writeMetricsJson(os, snap);
        const std::string err =
            store::writeFileAtomic(metrics_out, os.str());
        if (!err.empty())
            warn("--metrics-out: " + err);
        else
            inform("wrote metrics snapshot to " + metrics_out);
    }
    if (!timeline_out.empty()) {
        std::ostringstream os;
        obs::writeChromeTrace(os, obs::collectedTimelines());
        const std::string err =
            store::writeFileAtomic(timeline_out, os.str());
        if (!err.empty()) {
            warn("--timeline-out: " + err);
        } else {
            inform("wrote timeline to " + timeline_out +
                   " (open in https://ui.perfetto.dev)");
        }
    }
    if (verbose)
        printSelfProfile(snap);
}

void
flushHarnessArtifacts()
{
    writeObservabilityOutputs();
    std::string path;
    std::string body;
    bool flush = false;
    {
        CsvArtifact &csv = csvArtifact();
        const std::lock_guard<std::mutex> lock(csv.mutex);
        if (!csv.path.empty() && !csv.written) {
            csv.written = true;
            path = csv.path;
            body = csv.body;
            flush = true;
        }
    }
    if (flush) {
        const std::string err = store::writeFileAtomic(path, body);
        if (!err.empty())
            warn("--csv-out: " + err);
        else
            inform("wrote CSV tables to " + path);
    }
    // A FatalError that unwound through a streaming writer can leave
    // its staged temp file registered; drop the leftovers here so
    // repeated degraded runs never accumulate .tmp litter.
    store::cleanupTempFiles();
}

namespace
{

/** --list-controllers: print the registry as an aligned table. */
void
printControllerList()
{
    const std::vector<dvfs::ControllerInfo> entries =
        dvfs::ControllerRegistry::instance().entries();
    std::size_t name_w = 4;
    for (const dvfs::ControllerInfo &e : entries)
        name_w = std::max(name_w, e.name.size());
    std::ostringstream out;
    out << "registered controllers (--controllers a,b; design strings "
           "accept a :k=v,k=v config suffix):\n";
    for (const dvfs::ControllerInfo &e : entries) {
        out << "  " << e.name
            << std::string(name_w - e.name.size() + 2, ' ')
            << (e.paperDesign ? "[paper] " : "        ") << e.summary;
        if (!e.configHelp.empty())
            out << " (config: " << e.configHelp << ")";
        if (e.needsConfig)
            out << " [config required]";
        out << '\n';
    }
    std::fputs(out.str().c_str(), stdout);
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    CliOptions cli(argc, argv);
    BenchOptions opts;
    opts.cus = static_cast<std::uint32_t>(cli.getInt("cus", 8));
    opts.scale = cli.getDouble("scale", 1.0);
    opts.epochLen = static_cast<Tick>(
        cli.getDouble("epoch-us", 1.0) * static_cast<double>(tickUs));
    opts.cusPerDomain =
        static_cast<std::uint32_t>(cli.getInt("domain-cus", 1));
    opts.seed = static_cast<std::uint64_t>(cli.getInt("seed", 42));
    opts.csv = cli.has("csv");
    const std::int64_t threads = cli.getInt("threads", 0);
    if (threads < 0) {
        warn("--threads must be >= 0 (using hardware concurrency)");
        opts.threads = 0;
    } else {
        opts.threads = static_cast<unsigned>(threads);
    }

    // Fault-injection flags: any nonzero magnitude enables its class.
    opts.faults.seed = static_cast<std::uint64_t>(
        cli.getInt("fault-seed", static_cast<std::int64_t>(
            opts.faults.seed)));
    opts.faults.telemetry.sigma = cli.getDouble("noise-sigma", 0.0);
    opts.faults.telemetry.dropoutProb =
        cli.getDouble("noise-dropout", 0.0);
    opts.faults.telemetry.enabled = opts.faults.telemetry.sigma > 0.0 ||
        opts.faults.telemetry.dropoutProb > 0.0;
    opts.faults.dvfs.transitionFailProb =
        cli.getDouble("trans-fail", 0.0);
    opts.faults.dvfs.extraSwitchLatency = static_cast<Tick>(
        cli.getDouble("trans-extra-ns", 0.0) * 1000.0);
    opts.faults.dvfs.granularity = static_cast<Freq>(
        cli.getInt("freq-quant-mhz", 0)) * freqMHz;
    opts.faults.dvfs.enabled =
        opts.faults.dvfs.transitionFailProb > 0.0 ||
        opts.faults.dvfs.extraSwitchLatency > 0 ||
        opts.faults.dvfs.granularity > 0;
    opts.faults.storage.upsetsPerEpoch = cli.getDouble("bitflips", 0.0);
    opts.faults.storage.enabled =
        opts.faults.storage.upsetsPerEpoch > 0.0;
    opts.watchdog = cli.has("watchdog");
    opts.ecc = cli.has("ecc");

    const std::string oracle_mode = cli.get("oracle-mode", "pool");
    if (oracle_mode == "copy") {
        opts.oracleMode = sim::OracleMode::Copy;
    } else if (oracle_mode == "pool") {
        opts.oracleMode = sim::OracleMode::Pool;
    } else if (oracle_mode == "pool-full") {
        opts.oracleMode = sim::OracleMode::PoolFull;
    } else {
        warn("--oracle-mode must be copy|pool|pool-full (got '" +
             oracle_mode + "'); using pool");
    }
    const std::int64_t oracle_threads = cli.getInt("oracle-threads", 1);
    if (oracle_threads < 1) {
        warn("--oracle-threads must be >= 1 (using 1)");
        opts.oracleThreads = 1;
    } else {
        opts.oracleThreads = static_cast<unsigned>(oracle_threads);
    }

    opts.traceOut = cli.get("trace-out", "");
    opts.replayTrace = cli.get("replay", "");
    opts.pcSnapshotOut = cli.get("pc-snapshot-out", "");
    opts.pcSnapshotIn = cli.get("pc-snapshot-in", "");
    opts.provenanceOut = cli.get("provenance-out", "");
    opts.traceCacheDir = cli.get("trace-cache", "");
    opts.traceWhatIf = cli.has("trace-what-if");
    if (opts.traceWhatIf && opts.traceCacheDir.empty()) {
        cli.noteError("--trace-what-if: requires --trace-cache DIR "
                      "(no library to share streams through)");
        opts.traceWhatIf = false;
    }
    opts.progress = cli.has("progress");

    if (argc > 0 && argv != nullptr && argv[0] != nullptr) {
        const std::string argv0 = argv[0];
        const std::size_t slash = argv0.find_last_of('/');
        const std::string base = slash == std::string::npos
            ? argv0 : argv0.substr(slash + 1);
        if (!base.empty())
            opts.harnessId = base;
    }

    // Farm flags (docs/sweep_farm.md). All validation is recoverable:
    // a malformed value is reported through cli.errors() and the flag
    // reverts to its default, never aborting the run.
    opts.storeDir = cli.get("store", "");
    opts.resume = cli.has("resume");
    if (opts.resume && opts.storeDir.empty()) {
        cli.noteError("--resume: requires --store DIR "
                      "(nothing to resume from)");
        opts.resume = false;
    }
    const std::string shard = cli.get("shard", "");
    if (!shard.empty()) {
        unsigned index = 0;
        unsigned count = 0;
        char extra = '\0';
        const int got = std::sscanf(shard.c_str(), "%u/%u%c",
                                    &index, &count, &extra);
        if (got != 2) {
            cli.noteError("--shard " + shard +
                          ": expected INDEX/COUNT (e.g. 0/4)");
        } else if (count == 0) {
            cli.noteError("--shard " + shard +
                          ": count must be >= 1");
        } else if (index >= count) {
            cli.noteError("--shard " + shard +
                          ": index must be < count");
        } else {
            opts.shardIndex = index;
            opts.shardCount = count;
        }
    }
    if (opts.traceWhatIf && opts.shardCount > 1) {
        // The shared-stream owner of a workload may live on another
        // shard, so a sharded what-if sweep could never resolve its
        // waiters deterministically.
        cli.noteError("--trace-what-if: incompatible with --shard "
                      "(the stream owner may belong to another "
                      "worker)");
        opts.traceWhatIf = false;
    }
    const double cell_timeout = cli.getDouble("cell-timeout", 0.0);
    if (cell_timeout < 0.0) {
        cli.noteError("--cell-timeout " +
                      std::to_string(cell_timeout) +
                      ": must be >= 0 seconds");
    } else {
        opts.cellTimeoutSec = cell_timeout;
    }
    const std::int64_t cell_retries = cli.getInt("cell-retries", 2);
    if (cell_retries < 0) {
        cli.noteError("--cell-retries " +
                      std::to_string(cell_retries) +
                      ": must be >= 0");
    } else {
        opts.cellRetries = static_cast<unsigned>(cell_retries);
    }

    opts.metricsOut = cli.get("metrics-out", "");
    opts.timelineOut = cli.get("timeline-out", "");
    opts.csvOut = cli.get("csv-out", "");
    opts.verbose = cli.has("verbose");
    const std::string log_level = cli.get("log-level", "");
    if (!log_level.empty() && !setLogLevelByName(log_level)) {
        warn("--log-level must be one of debug|info|warn|error "
             "(got '" + log_level + "')");
    }
    configureObservability(opts);

    const std::string list = cli.get("workloads", "");
    if (!list.empty()) {
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
            const bool is_path =
                item.find('/') != std::string::npos ||
                item.find('.') != std::string::npos;
            if (!is_path && !workloads::isWorkload(item)) {
                warn("ignoring unknown workload '" + item + "'");
                continue;
            }
            opts.workloads.push_back(item);
        }
    }

    if (cli.has("list-controllers")) {
        printControllerList();
        throw CleanExit{};
    }
    const std::string controller_list = cli.get("controllers", "");
    if (!controller_list.empty()) {
        const dvfs::ControllerRegistry &registry =
            dvfs::ControllerRegistry::instance();
        std::stringstream ss(controller_list);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (item.empty())
                continue;
            const dvfs::ParsedDesign parsed = dvfs::splitDesign(item);
            if (!registry.has(parsed.base)) {
                warn("--controllers: unknown controller '" + item +
                     "'; registered: " + registry.knownNames() +
                     " (try --list-controllers)");
                continue;
            }
            opts.controllers.push_back(item);
        }
        // A typo'd single name must not silently fall back to the
        // harness's full default controller grid.
        fatalIf(opts.controllers.empty(),
                "--controllers: no known controller selected");
    }

    for (const std::string &err : cli.errors())
        warn("bad option " + err + " (using the default)");
    return opts;
}

workloads::WorkloadParams
BenchOptions::workloadParams() const
{
    workloads::WorkloadParams params;
    params.numCus = cus;
    params.scale = scale;
    params.seed = seed;
    return params;
}

sim::RunConfig
BenchOptions::runConfig() const
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.gpu.seed = seed;
    cfg.epochLen = epochLen;
    cfg.cusPerDomain = cusPerDomain;
    cfg.faults = faults;
    cfg.watchdogFallback = watchdog;
    cfg.eccProtectTables = ecc;
    cfg.objective = objective;
    cfg.perfDegradationLimit = perfDegradationLimit;
    cfg.collectTrace = collectTrace;
    cfg.auditRegret = auditRegret || !provenanceOut.empty();
    cfg.oracleMode = oracleMode;
    cfg.oracleThreads = oracleThreads;
    cfg.scaled();
    return cfg;
}

sim::ProfileConfig
BenchOptions::profileConfig() const
{
    sim::ProfileConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.gpu.seed = seed;
    cfg.epochLen = epochLen;
    cfg.cusPerDomain = cusPerDomain;
    cfg.poolSnapshots = oracleMode != sim::OracleMode::Copy;
    cfg.oracleThreads = oracleThreads;
    power::PowerParams ignored;
    sim::scaleToCus(cfg.gpu, ignored, cus);
    return cfg;
}

std::vector<std::string>
BenchOptions::workloadNames() const
{
    if (!workloads.empty())
        return workloads;
    std::vector<std::string> names;
    for (const auto &info : workloads::workloadTable())
        names.push_back(info.name);
    return names;
}

std::vector<std::string>
BenchOptions::sweepWorkloadNames() const
{
    if (!workloads.empty())
        return workloads;
    return {"comd", "hpgmg", "lulesh", "xsbench", "hacc", "quickS",
            "dgemm", "BwdBN"};
}

std::shared_ptr<const isa::Application>
makeApp(const std::string &name, const BenchOptions &opts)
{
    workloads::WorkloadLoadResult loaded =
        workloads::loadWorkload(name, opts.workloadParams());
    if (!loaded.ok()) {
        warn("skipping workload: " + loaded.error);
        return nullptr;
    }
    return std::make_shared<const isa::Application>(
        std::move(*loaded.app));
}

std::unique_ptr<dvfs::DvfsController>
makeController(const std::string &name, const sim::RunConfig &cfg,
               const isa::Application *app)
{
    dvfs::ControllerRegistry::MakeResult made =
        dvfs::ControllerRegistry::instance().make(name, cfg, app);
    fatalIf(!made.ok(), made.error);
    return std::move(made.controller);
}

const std::vector<std::string> &
designNames()
{
    static const std::vector<std::string> names = {
        "STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL", "ACCPC",
        "ORACLE",
    };
    return names;
}

std::vector<std::string>
BenchOptions::designList(std::vector<std::string> fallback) const
{
    return controllers.empty() ? std::move(fallback) : controllers;
}

namespace
{

/** Filesystem-safe run label ('/' and spaces become '_'). */
std::string
pathLabel(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '/' || c == ' ' || c == '+')
            c = '_';
    }
    return out;
}

/** Insert @p suffix before @p path's extension (or append). */
std::string
insertBeforeExtension(const std::string &path,
                      const std::string &suffix)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + suffix;
    }
    return path.substr(0, dot) + suffix + path.substr(dot);
}

/**
 * Expand a --trace-out / --pc-snapshot-out template: "{w}"/"{c}"
 * placeholders, or a "-workload-controller" suffix before the
 * extension when no placeholder is present (so sweep captures do not
 * overwrite each other). A run index > 0 - the Nth repeat of the same
 * (workload, controller) pair within one sweep - adds a further "-rN"
 * suffix so repeats never collide.
 */
std::string
expandRunPath(const std::string &pattern, const std::string &workload,
              const std::string &controller, std::size_t run_index = 0)
{
    std::string path = pattern;
    bool substituted = false;
    for (const auto &[key, value] :
         {std::pair<std::string, std::string>{"{w}", workload},
          {"{c}", controller}}) {
        std::size_t at;
        while ((at = path.find(key)) != std::string::npos) {
            path.replace(at, key.size(), pathLabel(value));
            substituted = true;
        }
    }
    if (!substituted) {
        path = insertBeforeExtension(
            path,
            "-" + pathLabel(workload) + "-" + pathLabel(controller));
    }
    if (run_index > 0) {
        path = insertBeforeExtension(
            path, "-r" + std::to_string(run_index));
    }
    return path;
}

/**
 * Claim an output path in the process-wide registry. The first claim
 * returns @p path unchanged; later claims of the same path (a repeat
 * the caller did not label with a run index) return a "-rN" variant
 * after a warn, so captures never silently overwrite each other.
 * Claims from concurrent sweep cells are serialized by a mutex; cells
 * with pre-assigned run indices never collide here, keeping sweep
 * output names deterministic for any thread count.
 */
std::string
claimOutputPath(const std::string &path)
{
    static std::mutex m;
    static std::map<std::string, std::size_t> claims;
    const std::lock_guard<std::mutex> lock(m);
    std::size_t &count = claims[path];
    ++count;
    if (count == 1)
        return path;
    const std::string unique = insertBeforeExtension(
        path, "-r" + std::to_string(count - 1));
    warnLimited("output-path-collision",
                "output path '" + path + "' already written this "
                "run; using '" + unique + "'");
    // The variant itself could clash with an explicit later claim;
    // registering it keeps even that case collision-free.
    ++claims[unique];
    return unique;
}

/** The PCSTALL controller behind @p controller, if any (possibly
 *  wrapped by a hierarchical power manager). */
core::PcstallController *
pcstallBehind(dvfs::DvfsController &controller)
{
    dvfs::DvfsController *c = &controller;
    if (auto *hier = dynamic_cast<dvfs::HierarchicalPowerManager *>(c))
        c = &hier->innerController();
    return dynamic_cast<core::PcstallController *>(c);
}

/** HierarchicalMeta describing @p controller's wrapper, if any. */
trace::HierarchicalMeta
hierarchicalMetaOf(const dvfs::DvfsController &controller)
{
    trace::HierarchicalMeta meta;
    const auto *hier =
        dynamic_cast<const dvfs::HierarchicalPowerManager *>(
            &controller);
    if (hier != nullptr) {
        meta.enabled = true;
        meta.powerCap = hier->config().powerCap;
        meta.reviewEpochs = hier->config().reviewEpochs;
        meta.widenBelow = hier->config().widenBelow;
    }
    return meta;
}

/**
 * Decoded --replay traces, loaded once per file. Thread-safe: sweep
 * cells replaying the same capture share one decode. The mutex spans
 * the file read so concurrent first loads of one path cannot race;
 * map values are stable addresses, and entries are only ever added,
 * so returned pointers stay valid for the life of the process.
 */
const trace::TraceData *
loadReplayTrace(const std::string &path)
{
    static std::mutex m;
    static std::map<std::string, trace::TraceData> cache;
    const std::lock_guard<std::mutex> lock(m);
    const auto it = cache.find(path);
    if (it != cache.end())
        return &it->second;
    trace::TraceReadResult read = trace::readTraceFile(path);
    if (!read.ok()) {
        warn("--replay: " + read.error);
        return nullptr;
    }
    return &cache.emplace(path, std::move(*read.trace)).first->second;
}

/**
 * Run the driver live, attaching the timeline recorder (when enabled)
 * alongside an optional extra observer such as trace capture.
 */
sim::RunResult
runWithObservers(sim::ExperimentDriver &driver,
                 std::shared_ptr<const isa::Application> app,
                 dvfs::DvfsController &controller,
                 sim::EpochObserver *extra)
{
    sim::MultiObserver multi;
    multi.add(extra);
    std::optional<sim::TimelineRecorder> recorder;
    if (obs::timelineEnabled()) {
        recorder.emplace(driver.config(),
                         obs::currentContext().timeline);
        multi.add(&*recorder);
    }
    return driver.run(app, controller,
                      multi.empty() ? nullptr : &multi);
}

/** Apply --pc-snapshot-in to @p pcstall (no-op for other designs). */
void
restorePcSnapshotIn(const BenchOptions &opts,
                    core::PcstallController *pcstall)
{
    if (opts.pcSnapshotIn.empty() || pcstall == nullptr)
        return;
    trace::PcSnapshotReadResult snap =
        trace::readPcSnapshotFile(opts.pcSnapshotIn);
    std::string err = snap.error;
    if (snap.ok()) {
        err = trace::restorePcTables(*snap.snapshot,
                                     pcstall->pcTables());
    }
    if (!err.empty())
        warn("--pc-snapshot-in: " + err + " (starting cold)");
}

/**
 * Decoded trace-library entries, loaded once per path (what-if sweeps
 * replay one entry under every controller in the grid). shared_ptr
 * values keep a decode alive for in-flight replays even when a
 * concurrent quarantine evicts its path.
 */
struct LibraryTraceCache
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<const trace::TraceData>>
        entries;
};

LibraryTraceCache &
libraryTraceCache()
{
    static LibraryTraceCache cache;
    return cache;
}

std::shared_ptr<const trace::TraceData>
loadLibraryTrace(const std::string &path, std::string &error)
{
    LibraryTraceCache &cache = libraryTraceCache();
    const std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.entries.find(path);
    if (it != cache.entries.end())
        return it->second;
    trace::TraceReadResult read = trace::readTraceFile(path);
    if (!read.ok()) {
        error = read.error;
        return nullptr;
    }
    auto data = std::make_shared<const trace::TraceData>(
        std::move(*read.trace));
    cache.entries.emplace(path, data);
    return data;
}

/** Forget a decode whose file was quarantined: a later recapture at
 *  the same path must be re-read, never served from the stale memo. */
void
evictLibraryTrace(const std::string &path)
{
    LibraryTraceCache &cache = libraryTraceCache();
    const std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.erase(path);
}

/** Timing-kind cache counter: kept out of the canonical metric
 *  sections, which must stay byte-identical to no-cache runs. */
void
bumpCacheCounter(const char *name)
{
    if (obs::metricsEnabled())
        obs::reg().counter(name, obs::MetricKind::Timing).add(1);
}

/**
 * Resolve one run through the trace library (docs/replay_studies.md).
 * Returns true when @p result was produced (a hit replay, or a live
 * capture-on-miss run); false tells the caller to run live itself.
 * A stale entry heals in place: quarantine, then a cold controller
 * rebuild through @p ctrl / @p pcstall / cache.rebuilt before the
 * live recapture.
 */
bool
runFromLibrary(sim::ExperimentDriver &driver,
               std::shared_ptr<const isa::Application> app,
               dvfs::DvfsController *&ctrl,
               core::PcstallController *&pcstall,
               const BenchOptions &opts, const std::string &workload,
               TraceCacheContext &cache, obs::ProvenanceLog *prov,
               sim::RunResult &result)
{
    trace::TraceLibrary &lib = *cache.library;
    const trace::LibraryKey &key = cache.key;
    bool capture_on_miss = cache.captureOnMiss;

    const trace::TraceLibrary::GetResult got = lib.get(key);
    if (got.status == trace::TraceLibrary::GetStatus::Hit) {
        std::string decode_err;
        const std::shared_ptr<const trace::TraceData> data =
            loadLibraryTrace(got.tracePath, decode_err);
        if (data == nullptr) {
            // Truncated/corrupt entry: quarantined and recaptured,
            // never ingested.
            evictLibraryTrace(got.tracePath);
            lib.quarantine(key, decode_err);
            bumpCacheCounter("trace_cache.quarantined");
        } else {
            trace::ReplayDriver replayer(*data);
            trace::ReplayOptions ropts;
            // Exact-tier entries were captured under this very
            // (design, run index, config) cell, so decision
            // verification doubles as staleness detection. Shared
            // (what-if) replays drive foreign controllers over the
            // owner's stream - divergent decisions are the point.
            ropts.verifyDecisions = !key.shared &&
                ctrl->name() == data->meta.controller;
            ropts.auditRegret = opts.auditRegret || prov != nullptr;
            ropts.provenance = prov;
            ropts.liveMetricProfile = true;
            trace::ReplayOutcome outcome = replayer.run(*ctrl, ropts);
            if (outcome.ok() && outcome.decisionMismatches == 0) {
                debug("trace cache hit: " + key.digest() + " (" +
                      workload + " under " + ctrl->name() + ")");
                bumpCacheCounter("trace_cache.hits");
                result = outcome.result;
                cache.outcome = TraceCacheContext::Outcome::Hit;
                return true;
            }
            if (!outcome.ok() && key.shared) {
                // The owner's stream cannot drive this controller
                // (e.g. it needs fork sweeps the owner never
                // requested). The entry is fine for other cells:
                // leave it be, run this cell live, and do not clobber
                // the owner's capture.
                warn("trace cache: " + outcome.error +
                     " (simulating this cell live)");
                capture_on_miss = false;
            } else {
                // Stale entry (decision drift, or an upfront replay
                // failure): quarantine and recapture. The replay may
                // have half-driven the controller, so rebuild it cold
                // - and restart its provenance log - before the live
                // run.
                evictLibraryTrace(got.tracePath);
                lib.quarantine(
                    key,
                    outcome.ok()
                        ? std::to_string(outcome.decisionMismatches) +
                            " decision mismatch(es); first: " +
                            outcome.firstMismatch
                        : outcome.error);
                bumpCacheCounter("trace_cache.quarantined");
                cache.rebuilt = cache.freshController();
                ctrl = cache.rebuilt.get();
                pcstall = pcstallBehind(*ctrl);
                restorePcSnapshotIn(opts, pcstall);
                if (prov != nullptr)
                    *prov = obs::ProvenanceLog{};
            }
        }
    }

    // Miss (or a just-quarantined hit): simulate live, streaming the
    // capture straight to the library entry. The TraceWriter's temp +
    // fsync + rename staging is the atomic publication; the key
    // sidecar follows strictly after, so a crash leaves at most an
    // orphan trace (a miss), never a sidecar naming a partial trace.
    bumpCacheCounter("trace_cache.misses");
    if (capture_on_miss) {
        const trace::TraceMeta meta = trace::makeTraceMeta(
            driver.config(), driver.table(), workload, *ctrl,
            hierarchicalMetaOf(*ctrl));
        trace::TraceWriter writer(lib.entryPath(key), meta);
        if (writer.ok()) {
            trace::TraceCapture capture(writer);
            if (pcstall != nullptr) {
                core::PcstallController *snap_src = pcstall;
                capture.setSnapshotProvider([snap_src] {
                    return trace::snapshotPcTables(
                        snap_src->pcTables());
                });
            }
            result = runWithObservers(driver, app, *ctrl, &capture);
            if (capture.finished() && writer.ok()) {
                const std::string key_err = lib.publishKey(key);
                if (!key_err.empty())
                    warn("trace cache: " + key_err);
                debug("trace cache capture: " + key.digest() + " (" +
                      workload + " under " + ctrl->name() + ")");
                bumpCacheCounter("trace_cache.captures");
                cache.outcome =
                    TraceCacheContext::Outcome::MissCaptured;
            } else {
                warn("trace cache: I/O error capturing '" +
                     lib.entryPath(key) + "' (cell ran live)");
                cache.outcome = TraceCacheContext::Outcome::MissLive;
            }
            return true;
        }
        warn("trace cache: cannot write '" + lib.entryPath(key) +
             "' (running uncached)");
    }
    cache.outcome = TraceCacheContext::Outcome::MissLive;
    return false;
}

} // namespace

bool
resolveTraceCache(sim::ExperimentDriver &driver,
                  std::shared_ptr<const isa::Application> app,
                  dvfs::DvfsController *&controller,
                  const BenchOptions &opts,
                  const std::string &workload, TraceCacheContext &cache,
                  obs::ProvenanceLog *prov, sim::RunResult &result)
{
    if (cache.library == nullptr || !cache.library->ok() ||
        !cache.freshController) {
        return false;
    }
    core::PcstallController *pcstall = pcstallBehind(*controller);
    return runFromLibrary(driver, app, controller, pcstall, opts,
                          workload, cache, prov, result);
}

void
publishPcTableMetrics(const core::PcstallController &pcstall)
{
    predict::PcSensitivityTable::Telemetry total;
    for (const predict::PcSensitivityTable &table :
         pcstall.pcTables()) {
        const predict::PcSensitivityTable::Telemetry t =
            table.telemetry();
        total.lookups += t.lookups;
        total.hits += t.hits;
        total.updates += t.updates;
        total.evictions += t.evictions;
        total.aliasHits += t.aliasHits;
        total.scrubs += t.scrubs;
    }
    obs::Registry &registry = obs::reg();
    registry.counter("pc_table.lookups").add(total.lookups);
    registry.counter("pc_table.hits").add(total.hits);
    registry.counter("pc_table.updates").add(total.updates);
    registry.counter("pc_table.evictions").add(total.evictions);
    registry.counter("pc_table.alias_hits").add(total.aliasHits);
    registry.counter("pc_table.scrubs").add(total.scrubs);
}

sim::RunResult
runTraced(sim::ExperimentDriver &driver,
          std::shared_ptr<const isa::Application> app,
          dvfs::DvfsController &controller, const BenchOptions &opts,
          const std::string &workload, std::size_t run_index,
          TraceCacheContext *cache)
{
    debug("runTraced: " + workload + " under " + controller.name() +
          (run_index > 0 ? " (run " + std::to_string(run_index) + ")"
                         : ""));
    // A trace-cache heal can swap in a freshly built controller
    // mid-function (cache->rebuilt); everything below goes through
    // these two pointers so post-run bookkeeping follows the swap.
    dvfs::DvfsController *ctrl = &controller;
    core::PcstallController *pcstall = pcstallBehind(*ctrl);
    restorePcSnapshotIn(opts, pcstall);

    // Run: replayed from a trace, captured to a trace, resolved
    // through the trace library, or plain.
    sim::RunResult result;
    bool ran = false;
    obs::ProvenanceLog prov_log;
    obs::ProvenanceLog *prov =
        opts.provenanceOut.empty() ? nullptr : &prov_log;
    driver.setProvenance(prov);
    if (!opts.replayTrace.empty()) {
        // Symmetric with capture: repeat N replays the -rN capture.
        const trace::TraceData *data = loadReplayTrace(
            expandRunPath(opts.replayTrace, workload,
                          ctrl->name(), run_index));
        if (data != nullptr) {
            if (data->meta.workload != workload) {
                warn("--replay: trace was captured on '" +
                     data->meta.workload + "', not '" + workload +
                     "'; replayed metrics describe the recorded run");
            }
            trace::ReplayDriver replayer(*data);
            trace::ReplayOptions ropts;
            ropts.verifyDecisions =
                ctrl->name() == data->meta.controller;
            ropts.auditRegret = opts.auditRegret;
            ropts.provenance = prov;
            trace::ReplayOutcome outcome = replayer.run(*ctrl, ropts);
            if (outcome.ok()) {
                if (ropts.verifyDecisions &&
                    outcome.decisionMismatches > 0) {
                    warn("--replay: " +
                         std::to_string(outcome.decisionMismatches) +
                         " decision mismatch(es); first: " +
                         outcome.firstMismatch);
                }
                result = outcome.result;
                ran = true;
            } else {
                warn("--replay: " + outcome.error +
                     " (falling back to a live run)");
            }
        }
    }
    if (!ran && !opts.traceOut.empty()) {
        const trace::TraceMeta meta = trace::makeTraceMeta(
            driver.config(), driver.table(), workload, *ctrl,
            hierarchicalMetaOf(*ctrl));
        const std::string path = claimOutputPath(expandRunPath(
            opts.traceOut, workload, ctrl->name(), run_index));
        trace::TraceWriter writer(path, meta);
        if (writer.ok()) {
            trace::TraceCapture capture(writer);
            if (pcstall != nullptr) {
                core::PcstallController *snap_src = pcstall;
                capture.setSnapshotProvider([snap_src] {
                    return trace::snapshotPcTables(
                        snap_src->pcTables());
                });
            }
            result = runWithObservers(driver, app, *ctrl, &capture);
            ran = true;
            if (!writer.ok())
                warn("--trace-out: I/O error writing '" + path + "'");
        } else {
            warn("--trace-out: cannot write '" + path +
                 "' (running untraced)");
        }
    }
    if (!ran && cache != nullptr && cache->library != nullptr &&
        cache->library->ok() && cache->freshController) {
        ran = runFromLibrary(driver, app, ctrl, pcstall, opts,
                             workload, *cache, prov, result);
    }
    if (!ran)
        result = runWithObservers(driver, app, *ctrl, nullptr);
    driver.setProvenance(nullptr);

    if (prov != nullptr) {
        const std::string prov_path = claimOutputPath(expandRunPath(
            opts.provenanceOut, workload, ctrl->name(),
            run_index));
        const std::string perr = store::writeFileAtomic(
            prov_path, obs::encodeProvenance(*prov));
        if (!perr.empty())
            warn("--provenance-out: " + perr);
    }

    if (pcstall != nullptr && obs::metricsEnabled())
        publishPcTableMetrics(*pcstall);

    if (!opts.pcSnapshotOut.empty() && pcstall != nullptr) {
        const std::string snap_path = claimOutputPath(expandRunPath(
            opts.pcSnapshotOut, workload, ctrl->name(),
            run_index));
        if (!trace::writePcSnapshotFile(
                snap_path,
                trace::snapshotPcTables(pcstall->pcTables()))) {
            warn("--pc-snapshot-out: cannot write '" + snap_path + "'");
        }
    }
    return result;
}

void
emit(const BenchOptions &opts, const TableWriter &table)
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    CsvArtifact &csv = csvArtifact();
    const std::lock_guard<std::mutex> lock(csv.mutex);
    if (!csv.path.empty()) {
        std::ostringstream os;
        table.printCsv(os);
        csv.body += os.str();
    }
}

void
banner(const std::string &figure, const std::string &what,
       const BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
    std::printf("config: %u CUs, %.2f us epochs, %u CU(s)/domain, "
                "scale %.2f\n\n",
                opts.cus,
                static_cast<double>(opts.epochLen) /
                    static_cast<double>(tickUs),
                opts.cusPerDomain, opts.scale);
}

} // namespace pcstall::bench
