/**
 * @file
 * The controller tournament (bench/tournament): sweep every registered
 * controller over every workload under several objectives and rank
 * them on a leaderboard.
 *
 * Scores are per-cell ratios against the shared static-nominal
 * baseline (lower is better): EDP and ED^2P ratios directly, and for
 * the energy-under-bound objective the energy ratio scaled by how far
 * the run overshot the allowed slowdown, so a controller cannot win
 * the energy column by simply missing the deadline. Per-objective
 * columns are geomeans across workloads, the overall score is the
 * geomean of the columns, and "wins" counts the (workload, objective)
 * cells where a controller achieved the minimum.
 *
 * Everything here is deterministic in submission order: ranking is by
 * (overall score, design name), score formatting is fixed-precision,
 * and failed cells contribute nothing but an explicit ok/total count.
 * The leaderboard is therefore byte-identical across --threads N,
 * --replay re-drives and store-resumed runs - the property the CI
 * smoke job and the golden test pin down.
 */

#ifndef PCSTALL_BENCH_TOURNAMENT_LIB_HH
#define PCSTALL_BENCH_TOURNAMENT_LIB_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness.hh"
#include "obs/provenance.hh"
#include "sweep_runner.hh"

namespace pcstall::bench
{

/** One objective column of the tournament. */
struct TournamentObjective
{
    /** Stable label ("edp", "ed2p", "energy-bound"). */
    std::string name;
    dvfs::Objective objective = dvfs::Objective::Edp;
};

/**
 * Parse --objectives ("edp,ed2p,energy-bound" labels, any order,
 * duplicates dropped). Unknown labels are warned about and skipped;
 * an empty or fully-unknown list yields all three columns.
 */
std::vector<TournamentObjective>
tournamentObjectives(const std::string &list);

/**
 * One run's score against its baseline under @p objective (lower is
 * better; 1.0 = exactly the static baseline). @p perf_limit is the
 * allowed fractional slowdown of the energy-under-bound objective.
 */
double tournamentScore(const sim::RunResult &run,
                       const sim::RunResult &base,
                       dvfs::Objective objective, double perf_limit);

/** One leaderboard row (one controller design). */
struct TournamentRow
{
    std::string design;
    /** Per-objective geomean score across workloads (aligned with
     *  Leaderboard::objectives; NaN when no cell finished). */
    std::vector<double> scores;
    /** Geomean of the finite per-objective scores. */
    double overall = 0.0;
    /** (workload, objective) cells where this design was the best. */
    std::size_t wins = 0;
    /** Cells that produced a scorable result / cells attempted. */
    std::size_t cellsOk = 0;
    std::size_t cellsTotal = 0;
    /**
     * Per-decision hindsight-regret rollup merged across the design's
     * completed cells (tournament cells run with auditRegret on; see
     * docs/provenance.md). meanOracle()/percentile(0.95) back the
     * leaderboard's regret columns.
     */
    obs::RegretSummary regret;
};

/** The ranked tournament result. */
struct Leaderboard
{
    std::vector<TournamentObjective> objectives;
    std::vector<std::string> workloads;
    /** Rows ranked best (lowest overall) first; ties break on name. */
    std::vector<TournamentRow> rows;
};

/**
 * Run the full tournament grid (designs x workloads x objectives)
 * through @p runner and rank the outcome. Cell failures are contained
 * per cell (noteSweepFailure() -> exit 1 via guardedMain) and visible
 * in the row's ok/total count.
 */
Leaderboard runTournament(SweepRunner &runner,
                          const std::vector<std::string> &designs,
                          const std::vector<std::string> &workloads,
                          const std::vector<TournamentObjective>
                              &objectives);

/** Render @p board as the stdout/CSV leaderboard table. */
TableWriter leaderboardTable(const Leaderboard &board);

/** Render @p board as a pcstall-leaderboard-v2 JSON document. */
std::string leaderboardJson(const Leaderboard &board);

/** Publish the tournament.* metrics for @p board
 *  (docs/observability.md). */
void publishTournamentMetrics(const Leaderboard &board);

} // namespace pcstall::bench

#endif // PCSTALL_BENCH_TOURNAMENT_LIB_HH
