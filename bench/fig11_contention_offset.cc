/**
 * @file
 * Figure 11: (a) the effect of oldest-first scheduling contention by
 * wavefront age rank for quickS (the workload with the highest
 * inter-wavefront variation): the oldest wave keeps full throughput
 * while younger waves are increasingly suppressed and their
 * sensitivity varies more; (b) the average relative change between
 * consecutive sensitivity updates mapping to the same PC-table index,
 * as a function of the index offset bits - the knee (paper: 4 bits,
 * ~4 instructions per entry) sets the table geometry.
 *
 * Both parts measure the wavefront STALL-model sensitivity (the
 * quantity PCSTALL stores), from static-frequency runs.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "common/stats_util.hh"
#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "core/pcstall_controller.hh"
#include "models/wave_estimator.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

/** Per-wave sensitivity observations from a static run. */
struct WaveObs
{
    std::uint32_t cu;
    std::uint32_t slot;
    std::uint64_t pcAddr;
    std::uint32_t ageRank;
    std::uint64_t committed;
    double sens;
};

std::vector<WaveObs>
collect(const std::string &name, const bench::BenchOptions &opts,
        int max_epochs)
{
    const auto app = bench::makeApp(name, opts);
    if (!app)
        return {};
    gpu::GpuConfig gcfg = opts.runConfig().gpu;
    gpu::GpuChip chip(gcfg, app);
    models::WaveEstimatorConfig est;
    est.waveSlots = gcfg.waveSlotsPerCu;

    std::vector<WaveObs> out;
    Tick t = 0;
    for (int e = 0; e < max_epochs; ++e) {
        const bool done = chip.runUntil(t + opts.epochLen);
        const gpu::EpochRecord rec = chip.harvestEpoch(t);
        t += opts.epochLen;
        for (const auto &w : rec.waves) {
            if (!w.active)
                continue;
            out.push_back({w.cu, w.slot, w.startPcAddr, w.ageRank,
                           w.committed,
                           models::waveSensitivity(
                               w, est, opts.epochLen,
                               rec.cus[w.cu].freq)});
        }
        if (done)
            break;
    }
    return out;
}

int
runHarness(int argc, char **argv)
{
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("FIGURE 11",
                  "Wavefront contention and PC-offset tuning", opts);
    bench::SweepRunner runner(opts);

    // ----------------------------------------------------------------
    // (a) throughput share and sensitivity change by age rank, quickS.
    // ----------------------------------------------------------------
    {
        const std::string workload = opts.firstWorkload("quickS");
        const auto obs = collect(workload, opts, 80);

        // Aggregate by age-rank bucket.
        struct Acc
        {
            double committed = 0.0;
            double change = 0.0;
            std::size_t changes = 0;
            std::size_t n = 0;
        };
        std::map<std::uint32_t, Acc> by_age;
        std::map<std::pair<std::uint32_t, std::uint32_t>, double> last;
        double sens_scale = 0.0;
        for (const auto &o : obs)
            sens_scale += o.sens;
        sens_scale = obs.empty() ? 1.0
            : std::max(sens_scale / static_cast<double>(obs.size()),
                       1e-9);
        for (const auto &o : obs) {
            Acc &acc = by_age[o.ageRank / 4 * 4];
            acc.committed += static_cast<double>(o.committed);
            acc.n += 1;
            const auto key = std::make_pair(o.cu, o.slot);
            const auto it = last.find(key);
            if (it != last.end()) {
                acc.change += std::abs(o.sens - it->second) / sens_scale;
                acc.changes += 1;
            }
            last[key] = o.sens;
        }

        double oldest_rate = 1.0;
        if (!by_age.empty() && by_age.begin()->second.n > 0) {
            oldest_rate = by_age.begin()->second.committed /
                static_cast<double>(by_age.begin()->second.n);
        }

        std::printf("--- (a) %s: contention by wavefront age rank "
                    "---\n", workload.c_str());
        TableWriter table({"age rank", "throughput vs oldest",
                           "sensitivity change", "samples"});
        for (const auto &[age, acc] : by_age) {
            if (acc.n == 0)
                continue;
            const double rate =
                acc.committed / static_cast<double>(acc.n);
            table.beginRow()
                .cell(std::to_string(age) + "-" + std::to_string(age + 3))
                .cell(formatPercent(rate / oldest_rate, 0))
                .cell(acc.changes > 0
                      ? formatPercent(acc.change /
                                      static_cast<double>(acc.changes))
                      : std::string("-"))
                .cell(static_cast<long long>(acc.n));
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("(paper Fig 11a: the oldest wave is unaffected; "
                    "lower-priority waves see suppressed throughput "
                    "and larger relative change)\n\n");
    }

    // ----------------------------------------------------------------
    // (b) relative change vs PC offset bits at CU granularity.
    // ----------------------------------------------------------------
    {
        std::printf("--- (b) change vs PC-table offset bits ---\n");
        const std::vector<std::string> names = {"comd", "hacc",
                                                "BwdBN", "lulesh"};
        const std::vector<std::vector<WaveObs>> all =
            runner.map<std::vector<WaveObs>>(
                names.size(), [&](std::size_t i) {
                    return collect(names[i], opts, 60);
                });

        TableWriter table({"offset bits", "instr/entry",
                           "avg relative change"});
        for (std::uint32_t offset = 0; offset <= 8; offset += 2) {
            double sum = 0.0;
            std::size_t n = 0;
            for (const auto &obs : all) {
                double scale = 0.0;
                for (const auto &o : obs)
                    scale += o.sens;
                scale = obs.empty() ? 1.0
                    : std::max(scale / static_cast<double>(obs.size()),
                               1e-9);
                std::map<std::pair<std::uint32_t, std::uint64_t>,
                         double> last;
                for (const auto &o : obs) {
                    const auto key =
                        std::make_pair(o.cu, o.pcAddr >> offset);
                    const auto it = last.find(key);
                    if (it != last.end()) {
                        sum += std::abs(o.sens - it->second) / scale;
                        ++n;
                    }
                    last[key] = o.sens;
                }
            }
            table.beginRow()
                .cell(static_cast<long long>(offset))
                .cell(static_cast<long long>(
                    std::max<std::int64_t>(
                        (1LL << offset) /
                            static_cast<std::int64_t>(
                                isa::instrSizeBytes), 1)))
                .cell(formatPercent(
                    n > 0 ? sum / static_cast<double>(n) : 0.0));
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("(paper Fig 11b: flat to ~4 offset bits, rising "
                    "beyond - PCSTALL uses 4. Our synthetic kernels "
                    "are only 30-120 instructions, so coarse granules "
                    "rarely mix unrelated regions and averaging "
                    "dominates instead; see EXPERIMENTS.md)\n\n");
    }

    // ----------------------------------------------------------------
    // (c) PC-table hit ratio vs entry count (the paper's sizing
    //     argument: 128 entries reach a 95%+ hit ratio).
    // ----------------------------------------------------------------
    {
        std::printf("--- (c) PC-table hit ratio vs entries ---\n");
        TableWriter table({"entries", "hit ratio"});
        const auto cfg = opts.runConfig();
        const std::vector<std::uint32_t> entry_counts = {8u, 32u,
                                                         128u, 512u};
        const std::vector<double> ratios = runner.map<double>(
            entry_counts.size(), [&](std::size_t i) {
                core::PcstallConfig pcfg =
                    core::PcstallConfig::forEpoch(
                        cfg.epochLen, cfg.gpu.waveSlotsPerCu);
                pcfg.table.entries = entry_counts[i];
                pcfg.lookupOnRegionChange = false; // every lookup
                core::PcstallController c(pcfg, cfg.gpu.numCus);
                sim::ExperimentDriver driver(cfg);
                const auto app = bench::makeApp(
                    opts.firstWorkload("comd"), opts);
                if (!app)
                    return -1.0;
                driver.run(app, c);
                return c.tableHitRatio();
            });
        for (std::size_t i = 0; i < entry_counts.size(); ++i) {
            if (ratios[i] < 0.0)
                continue;
            table.beginRow()
                .cell(static_cast<long long>(entry_counts[i]))
                .cell(formatPercent(ratios[i]));
            table.endRow();
        }
        bench::emit(opts, table);
        std::printf("(paper Section 4.4: 128 entries suffice for a "
                    "95%%+ hit ratio)\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&] { return runHarness(argc, argv); });
}
