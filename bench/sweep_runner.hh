/**
 * @file
 * SweepRunner: the parallel execution layer every figure harness
 * routes its workload x controller x configuration sweep through.
 *
 * A sweep is a list of independent cells. Each cell names a workload,
 * a controller design (or a custom controller factory) and carries
 * its own BenchOptions, so epoch-length / objective / fault-config
 * variants are just different cells of one grid. Cells execute on a
 * fixed-size thread pool (sim::ParallelExecutor) and their outcomes
 * are returned in submission order, so table aggregation code stays
 * strictly serial and deterministic.
 *
 * Determinism contract: `--threads N` is bit-identical to
 * `--threads 1` for every N. This holds because
 *  - each cell's GPU seed derives from (seed, workload, design,
 *    run index) via Rng::split - a pure function of the cell key,
 *    never of execution order;
 *  - shared inputs (applications, static-baseline runs) are memoized
 *    compute-once caches keyed on their full configuration, and the
 *    cached computation is itself a pure function of the key;
 *  - outcomes are aggregated by submission index, not completion
 *    order.
 *
 * Error contract: fatal() throws FatalError instead of exiting, and
 * the runner catches it per cell. One invalid run configuration or
 * broken workload yields a one-line diagnostic on that cell's outcome
 * while every other cell completes. Contained failures are tallied
 * via noteSweepFailure() so guardedMain still exits 1 for a degraded
 * sweep; a shared configuration that is invalid for every cell fails
 * fast at construction with a single fatal diagnostic.
 *
 * Robustness layer (docs/sweep_farm.md): with --store DIR every
 * completed cell (and shared baseline) is checkpointed to a
 * content-addressed results store, consulted before computing - so a
 * killed sweep restarted with the same flags recomputes only the
 * missing cells and still merges byte-identical output (stored
 * entries carry the cell's deterministic metrics shard, replayed at
 * the same submission-order position). --shard i/N restricts a worker
 * to its deterministic slice of the grid (run indices are assigned on
 * the full list first, so cell identity is shard-layout independent);
 * --cell-timeout arms a watchdog thread that cancels overrunning
 * cells cooperatively at the next epoch boundary; transient failures
 * are retried with bounded backoff, deterministic FatalErrors and
 * timeouts never are.
 *
 * Replay layer (docs/replay_studies.md): with --trace-cache DIR every
 * replay-eligible cell (and shared baseline) resolves against a
 * content-addressed trace library with capture-on-miss - a cold run
 * simulates once and publishes each cell's epoch trace, a warm run
 * replays the recordings at 20-600x live speed with byte-identical
 * stdout and canonical metrics. Cells that name explicit trace I/O
 * (--trace-out, --replay) bypass the cache; --trace-what-if switches
 * to shared-stream keys where each workload's first cell simulates
 * and every other controller replays its stream (open-loop
 * evaluation, giving up the byte-identity contract).
 */

#ifndef PCSTALL_BENCH_SWEEP_RUNNER_HH
#define PCSTALL_BENCH_SWEEP_RUNNER_HH

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness.hh"
#include "obs/context.hh"
#include "sim/parallel_executor.hh"

namespace pcstall::store
{
class ResultStore;
}

namespace pcstall::bench
{

/**
 * Serialize every BenchOptions field that changes the simulated run
 * (not the output paths or observability toggles): CU count, scale,
 * epoch length, domain geometry, seed, objective, fault
 * configuration, watchdog/ECC. This is the config half of both the
 * results-store key (docs/sweep_farm.md) and the trace-library key
 * (docs/replay_studies.md): two cells agreeing on it - plus
 * (workload, design) - are true repeats of one simulated run.
 */
std::string simConfigFingerprint(const BenchOptions &opts);

/** Builds the controller a cell runs (given the cell's RunConfig). */
using ControllerFactory =
    std::function<std::unique_ptr<dvfs::DvfsController>(
        const sim::RunConfig &)>;

/** One independent unit of sweep work. */
struct SweepCell
{
    std::string workload;
    /** Display label; also the default makeController() design name
     *  and part of the cell's RNG derivation key. */
    std::string design;
    /** Cell-local options (epoch/objective/fault variants). */
    BenchOptions opts;
    /** Custom controller builder; empty = makeController(design). */
    ControllerFactory factory;
    /**
     * Optional post-run peek at the controller (hit ratios, ceiling
     * states) before the cell destroys it. Runs on the cell's worker
     * thread; write only to this cell's own aggregation slot.
     */
    std::function<void(const dvfs::DvfsController &)> inspect;
    /** Also produce the static-nominal baseline run for
     *  (workload, opts) - shared across cells via the memo cache. */
    bool wantBaseline = false;
    /**
     * Repeat index among cells with the same (workload, design,
     * config) key; assigned by run() in submission order and used to
     * keep repeated runs' RNG streams and capture paths distinct.
     */
    std::size_t runIndex = 0;
};

/** Result of one run (a cell's own run, or its baseline). */
struct RunOutcome
{
    sim::RunResult result;
    bool ok = false;
    /** One-line diagnostic when !ok. */
    std::string error;
    /** True when a --shard worker left this cell to a sibling shard.
     *  Skipped cells are not failures: they are not tallied and carry
     *  no result. */
    bool skipped = false;
};

/** Everything a cell produced. */
struct CellOutcome
{
    RunOutcome run;
    /** Valid when the cell asked for a baseline (see wantBaseline). */
    RunOutcome baseline;
};

class SweepRunner
{
  public:
    /**
     * @p opts supplies the thread count and the defaults cell()
     * copies into new cells, plus the farm configuration: a results
     * store (--store) for crash-resumable checkpointing, a shard
     * assignment (--shard i/N) restricting which cells this worker
     * computes, and the per-cell watchdog budget (--cell-timeout).
     * An unusable store directory is a recoverable warn: the sweep
     * proceeds without checkpointing.
     */
    explicit SweepRunner(const BenchOptions &opts);

    ~SweepRunner();

    /** Convenience cell builder using the runner's default options. */
    SweepCell
    cell(const std::string &workload, const std::string &design,
         bool want_baseline = false) const
    {
        SweepCell c;
        c.workload = workload;
        c.design = design;
        c.opts = defaults;
        c.wantBaseline = want_baseline;
        return c;
    }

    /**
     * Execute every cell (in parallel, per --threads) and return the
     * outcomes in submission order. Repeat indices are assigned
     * before execution; shared apps and baselines are warmed first so
     * the cell phase parallelizes cleanly.
     */
    std::vector<CellOutcome> run(std::vector<SweepCell> cells);

    /**
     * Generic parallel map for harnesses whose per-workload work is
     * not an ExperimentDriver run (profiler studies, chip-level
     * measurements). fn(i) runs on the pool with FatalError contained
     * per index (failed slots keep their default-constructed value
     * after a warn); results are in index order.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(std::size_t n, Fn &&fn)
    {
        // Same metric sharding as run(): one context per index,
        // collected in index order (see src/obs/context.hh).
        std::vector<std::unique_ptr<obs::RunContext>> ctx;
        ctx.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            ctx.push_back(std::make_unique<obs::RunContext>(
                "task " + std::to_string(i)));
        }
        std::vector<T> out(n);
        pool.forEach(n, [&](std::size_t i) {
            const obs::ScopedContext scope(*ctx[i]);
            try {
                out[i] = fn(i);
            } catch (const FatalError &e) {
                noteSweepFailure();
                warn("parallel task " + std::to_string(i) +
                     " failed: " + std::string(e.what()));
            }
        });
        if (obs::metricsEnabled() || obs::timelineEnabled()) {
            for (const auto &c : ctx)
                obs::collectContext(*c);
        }
        return out;
    }

    /**
     * The memoized static-nominal baseline run for (workload, opts):
     * computed at most once per distinct (workload, cus, scale,
     * epoch, domain, seed, ...) key per process and shared across
     * cells and sweeps. Thread-safe; concurrent requesters of one key
     * block on the single computation.
     */
    RunOutcome staticBaseline(const std::string &workload,
                              const BenchOptions &opts);

    /** Threads the pool executes on. */
    unsigned threads() const { return pool.threadCount(); }

    /** The defaults cell() hands out. */
    const BenchOptions &options() const { return defaults; }

    /** The active results store, or null (no --store, or the
     *  directory was unusable and checkpointing is off). */
    const store::ResultStore *store() const { return resultStore.get(); }

    /** The active trace library, or null (no --trace-cache, or the
     *  directory was unusable and replay caching is off). */
    const trace::TraceLibrary *traceCache() const
    {
        return traceLibrary.get();
    }

  private:
    using AppPtr = std::shared_ptr<const isa::Application>;

    /** One cell's watchdog slot (defined in sweep_runner.cc). */
    struct CellWatch;

    /** Why one attempt of a cell failed - drives the retry policy. */
    enum class FailureKind
    {
        None,
        /** Invalid configuration / unbuildable workload: deterministic,
         *  never retried. */
        Config,
        /** FatalError from library code: deterministic, never retried. */
        Fatal,
        /** Non-FatalError exception (e.g. an I/O race): retried with
         *  backoff up to --cell-retries times. */
        Transient,
        /** Cancelled by the watchdog: budget spent, never retried. */
        Timeout,
    };

    /** A metrics/timeline shard pending submission-order collection
     *  (live-run snapshot, or a shard replayed from the store). */
    struct ShardArtifact
    {
        obs::MetricsSnapshot snap;
        std::vector<obs::TimelineEvent> timeline;
        bool valid = false;
    };

    /** Per-cell trace-cache routing, decided by run() before the cell
     *  phase (what-if stream owners are a submission-order property
     *  of the whole grid, not of one cell). */
    struct CacheRouting
    {
        /** Consult the trace library for this cell. */
        bool enabled = false;
        /** Publish this cell's live capture on a miss (off for
         *  what-if waiters: only the stream owner's capture may live
         *  under a shared key). */
        bool captureOnMiss = true;
    };

    /** Memoized application build (thread-safe, compute-once). */
    AppPtr appFor(const std::string &workload,
                  const BenchOptions &opts);

    /** Store-checked, watchdog-guarded, retry-bounded cell execution
     *  (the per-cell body of run()'s parallel phase). */
    CellOutcome executeCell(const SweepCell &cell, CellWatch *watch,
                            obs::Registry &farm, ShardArtifact &art,
                            const CacheRouting &routing);

    /** One live attempt of a cell (no store, no retries). */
    FailureKind attemptCell(const SweepCell &cell,
                            const std::atomic<bool> *cancel,
                            RunOutcome &run,
                            const CacheRouting &routing);

    /** The trace-library identity of one run of this sweep.
     *  @p shared selects the what-if tier (design/run-index blanked);
     *  kernel-script workloads contribute a content digest so an
     *  edited script misses instead of replaying stale epochs. */
    trace::LibraryKey libraryKeyFor(const std::string &workload,
                                    const std::string &design,
                                    const BenchOptions &opts,
                                    std::size_t run_index,
                                    bool shared);

    /** Memoized content digest of kernel-script workloads ("" for
     *  named Table II workloads). */
    std::string workloadDigestFor(const std::string &workload);

    /** The store-checked baseline computation staticBaseline()'s
     *  winner runs; fills @p art for submission-order collection. */
    RunOutcome computeBaseline(const std::string &workload,
                               const BenchOptions &opts,
                               ShardArtifact &art);

    /** True when a (probably valid) store entry exists for the cell
     *  and its baseline, so prepasses can skip warming its inputs. */
    bool storeProbablyHas(const SweepCell &cell) const;

    BenchOptions defaults;
    sim::ParallelExecutor pool;

    /** Active results store (null = checkpointing off). */
    std::unique_ptr<store::ResultStore> resultStore;

    /** Active trace library (null = replay caching off). */
    std::unique_ptr<trace::TraceLibrary> traceLibrary;

    std::mutex digestMutex;
    std::map<std::string, std::string> workloadDigests;

    std::mutex appMutex;
    std::map<std::string, std::shared_future<AppPtr>> apps;

    std::mutex baselineMutex;
    std::map<std::string, std::shared_future<RunOutcome>> baselines;

    /** Baseline shards stashed by compute winners, popped (once) by
     *  run()'s submission-order collection loop. */
    std::mutex artifactMutex;
    std::map<std::string, ShardArtifact> baselineArtifacts;
};

} // namespace pcstall::bench

#endif // PCSTALL_BENCH_SWEEP_RUNNER_HH
