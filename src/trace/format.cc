#include "trace/format.hh"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "dvfs/objective.hh"
#include "store/atomic_file.hh"
#include "trace/wire.hh"

namespace pcstall::trace
{

namespace
{

/** File magic: "PCTR" as raw bytes. */
constexpr char fileMagic[4] = {'P', 'C', 'T', 'R'};

/** Section tags. */
enum SectionTag : std::uint8_t
{
    tagMeta = 1,
    tagFrame = 2,
    tagPcSnapshot = 3,
    tagEnd = 4,
};

/** Sanity ceilings a well-formed file never exceeds. */
constexpr std::uint64_t maxCus = 1 << 16;
constexpr std::uint64_t maxWaveSlots = 1 << 12;
constexpr std::uint64_t maxVfStates = 1 << 10;
constexpr std::uint64_t maxSectionLen = 1ULL << 32;

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// --- META -----------------------------------------------------------

std::string
encodeMeta(const TraceMeta &meta)
{
    std::string out;
    putString(out, meta.workload);
    putString(out, meta.controller);
    out.push_back(static_cast<char>(meta.sweepNeed));
    putBool(out, meta.hierarchical.enabled);
    putDouble(out, meta.hierarchical.powerCap);
    putVarint(out, meta.hierarchical.reviewEpochs);
    putDouble(out, meta.hierarchical.widenBelow);

    putVarint(out, meta.numCus);
    putVarint(out, meta.waveSlotsPerCu);
    putVarint(out, meta.cusPerDomain);
    putZigzag(out, meta.epochLen);
    out.push_back(static_cast<char>(meta.objective));
    putDouble(out, meta.perfDegradationLimit);
    putVarint(out, meta.nominalFreq);
    putZigzag(out, meta.maxSimTime);
    putZigzag(out, meta.transitionLatency);
    putBool(out, meta.collectTrace);
    putBool(out, meta.watchdogFallback);
    putBool(out, meta.eccProtectTables);

    const power::PowerParams &p = meta.power;
    for (double v : {p.eInst, p.eL1, p.eL2, p.eDram, p.cClk,
                     p.leakPerCu, p.leakTempCoeff, p.tRef, p.memStatic,
                     p.etaPeak, p.etaVopt, p.etaSlope, p.transitionCap,
                     p.transitionFixed}) {
        putDouble(out, v);
    }

    const faults::FaultConfig &f = meta.faults;
    putFixed64(out, f.seed);
    putBool(out, f.dvfs.enabled);
    putDouble(out, f.dvfs.transitionFailProb);
    putZigzag(out, f.dvfs.extraSwitchLatency);
    putVarint(out, f.dvfs.granularity);
    putBool(out, f.telemetry.enabled);
    putDouble(out, f.telemetry.sigma);
    putDouble(out, f.telemetry.dropoutProb);
    putBool(out, f.storage.enabled);
    putDouble(out, f.storage.upsetsPerEpoch);

    putVarint(out, meta.vfStates.size());
    for (const power::VfState &s : meta.vfStates) {
        putVarint(out, s.freq);
        putDouble(out, s.voltage);
    }
    return out;
}

std::string
decodeMeta(Cursor &cur, TraceMeta &meta)
{
    meta.workload = cur.getString();
    meta.controller = cur.getString();
    meta.sweepNeed = cur.u8();
    meta.hierarchical.enabled = cur.getBool();
    meta.hierarchical.powerCap = cur.getDouble();
    meta.hierarchical.reviewEpochs =
        static_cast<std::uint32_t>(cur.varint());
    meta.hierarchical.widenBelow = cur.getDouble();

    meta.numCus = static_cast<std::uint32_t>(cur.varint());
    meta.waveSlotsPerCu = static_cast<std::uint32_t>(cur.varint());
    meta.cusPerDomain = static_cast<std::uint32_t>(cur.varint());
    meta.epochLen = cur.zigzag();
    meta.objective = cur.u8();
    meta.perfDegradationLimit = cur.getDouble();
    meta.nominalFreq = cur.varint();
    meta.maxSimTime = cur.zigzag();
    meta.transitionLatency = cur.zigzag();
    meta.collectTrace = cur.getBool();
    meta.watchdogFallback = cur.getBool();
    meta.eccProtectTables = cur.getBool();

    power::PowerParams &p = meta.power;
    for (double *v : {&p.eInst, &p.eL1, &p.eL2, &p.eDram, &p.cClk,
                      &p.leakPerCu, &p.leakTempCoeff, &p.tRef,
                      &p.memStatic, &p.etaPeak, &p.etaVopt, &p.etaSlope,
                      &p.transitionCap, &p.transitionFixed}) {
        *v = cur.getDouble();
    }

    faults::FaultConfig &f = meta.faults;
    f.seed = cur.fixed64();
    f.dvfs.enabled = cur.getBool();
    f.dvfs.transitionFailProb = cur.getDouble();
    f.dvfs.extraSwitchLatency = cur.zigzag();
    f.dvfs.granularity = cur.varint();
    f.telemetry.enabled = cur.getBool();
    f.telemetry.sigma = cur.getDouble();
    f.telemetry.dropoutProb = cur.getDouble();
    f.storage.enabled = cur.getBool();
    f.storage.upsetsPerEpoch = cur.getDouble();

    const std::uint64_t num_states = cur.varint();
    if (cur.failed() || num_states == 0 || num_states > maxVfStates)
        return "corrupt trace meta (V/f table)";
    meta.vfStates.resize(num_states);
    Freq prev_freq = 0;
    for (power::VfState &s : meta.vfStates) {
        s.freq = cur.varint();
        s.voltage = cur.getDouble();
        if (!cur.failed() && s.freq <= prev_freq)
            return "corrupt trace meta (V/f table not ascending)";
        prev_freq = s.freq;
    }
    if (cur.failed() || !cur.atEnd())
        return "corrupt trace meta section";
    if (meta.numCus == 0 || meta.numCus > maxCus ||
        meta.waveSlotsPerCu == 0 ||
        meta.waveSlotsPerCu > maxWaveSlots ||
        meta.cusPerDomain == 0 ||
        meta.numCus % meta.cusPerDomain != 0) {
        return "corrupt trace meta (GPU geometry)";
    }
    if (meta.epochLen <= 0)
        return "corrupt trace meta (epoch length)";
    if (meta.sweepNeed >
        static_cast<std::uint8_t>(dvfs::SweepNeed::Upcoming)) {
        return "corrupt trace meta (sweep kind)";
    }
    if (meta.objective >
        static_cast<std::uint8_t>(dvfs::Objective::MarginalEd2p)) {
        return "corrupt trace meta (objective)";
    }
    bool nominal_found = false;
    for (const power::VfState &s : meta.vfStates)
        nominal_found = nominal_found || s.freq == meta.nominalFreq;
    if (!nominal_found)
        return "corrupt trace meta (nominal frequency not in table)";
    return "";
}

// --- FRAME ----------------------------------------------------------

/** Frame flag bits. */
constexpr std::uint8_t flagDone = 1;
constexpr std::uint8_t flagSweep = 2;

std::string
encodeFrame(const EpochFrame &frame, Tick prev_end)
{
    std::string out;
    std::uint8_t flags = 0;
    if (frame.done)
        flags |= flagDone;
    if (frame.hasSweep)
        flags |= flagSweep;
    out.push_back(static_cast<char>(flags));
    putZigzag(out, frame.start - prev_end);
    putVarint(out, static_cast<std::uint64_t>(frame.end - frame.start));
    putVarint(out,
              static_cast<std::uint64_t>(frame.end - frame.accountedEnd));

    const gpu::EpochRecord &r = frame.record;
    putZigzag(out, r.start - frame.start);
    putZigzag(out, r.end - frame.end);
    putVarint(out, r.cus.size());
    for (const gpu::CuEpochRecord &cu : r.cus) {
        putVarint(out, cu.committed);
        putVarint(out, cu.vmemLoads);
        putVarint(out, cu.vmemStores);
        putZigzag(out, cu.busy);
        putZigzag(out, cu.loadStall);
        putZigzag(out, cu.storeStall);
        putZigzag(out, cu.leadLoad);
        putZigzag(out, cu.memInterval);
        putZigzag(out, cu.overlap);
        putVarint(out, cu.mem.l1Hits);
        putVarint(out, cu.mem.l1Misses);
        putVarint(out, cu.mem.l2Hits);
        putVarint(out, cu.mem.l2Misses);
        putVarint(out, cu.mem.stores);
        putVarint(out, cu.mem.storesCombined);
        putVarint(out, cu.freq);
    }
    putVarint(out, r.waves.size());
    for (const gpu::WaveEpochRecord &w : r.waves) {
        putVarint(out, w.cu);
        putVarint(out, w.slot);
        putVarint(out, w.startPc);
        putVarint(out, w.startPcAddr);
        putVarint(out, w.committed);
        putZigzag(out, w.memStall);
        putZigzag(out, w.barrierStall);
        putVarint(out, w.ageRank);
        putBool(out, w.active);
    }

    putVarint(out, frame.snapshots.size());
    for (const gpu::WaveSnapshot &s : frame.snapshots) {
        putVarint(out, s.cu);
        putVarint(out, s.slot);
        putVarint(out, s.pc);
        putVarint(out, s.pcAddr);
        putVarint(out, s.ageRank);
    }

    putVarint(out, frame.decisions.size());
    for (const FrameDecision &d : frame.decisions) {
        putVarint(out, d.decided);
        putDouble(out, d.predictedInstr);
        putVarint(out, d.applied);
    }

    if (frame.hasSweep) {
        const dvfs::AccurateEstimates &sw = frame.sweep;
        putVarint(out, sw.domainInstr.size());
        putVarint(out, sw.domainInstr.empty()
                           ? 0 : sw.domainInstr.front().size());
        for (const auto &row : sw.domainInstr) {
            for (double v : row)
                putDouble(out, v);
        }
        putVarint(out, sw.waves.size());
        for (const dvfs::AccurateEstimates::WaveSens &w : sw.waves) {
            putVarint(out, w.cu);
            putVarint(out, w.slot);
            putVarint(out, w.startPcAddr);
            putDouble(out, w.sensitivity);
            putDouble(out, w.level);
            putVarint(out, w.ageRank);
        }
    }
    return out;
}

std::string
decodeFrame(Cursor &cur, const TraceMeta &meta, Tick prev_end,
            EpochFrame &frame)
{
    const std::uint8_t flags = cur.u8();
    if (flags & ~(flagDone | flagSweep))
        return "unknown frame flags";
    frame.done = (flags & flagDone) != 0;
    frame.hasSweep = (flags & flagSweep) != 0;
    frame.start = prev_end + cur.zigzag();
    frame.end = frame.start + static_cast<Tick>(cur.varint());
    frame.accountedEnd = frame.end - static_cast<Tick>(cur.varint());
    if (cur.failed() || frame.end <= frame.start ||
        frame.accountedEnd < frame.start) {
        return "corrupt frame timestamps";
    }

    gpu::EpochRecord &r = frame.record;
    r.start = frame.start + cur.zigzag();
    r.end = frame.end + cur.zigzag();
    const std::uint64_t num_cus = cur.varint();
    if (cur.failed() || num_cus != meta.numCus)
        return "frame CU count does not match the trace meta";
    r.cus.resize(num_cus);
    for (gpu::CuEpochRecord &cu : r.cus) {
        cu.committed = cur.varint();
        cu.vmemLoads = cur.varint();
        cu.vmemStores = cur.varint();
        cu.busy = cur.zigzag();
        cu.loadStall = cur.zigzag();
        cu.storeStall = cur.zigzag();
        cu.leadLoad = cur.zigzag();
        cu.memInterval = cur.zigzag();
        cu.overlap = cur.zigzag();
        cu.mem.l1Hits = cur.varint();
        cu.mem.l1Misses = cur.varint();
        cu.mem.l2Hits = cur.varint();
        cu.mem.l2Misses = cur.varint();
        cu.mem.stores = cur.varint();
        cu.mem.storesCombined = cur.varint();
        cu.freq = cur.varint();
    }
    const std::uint64_t max_waves =
        static_cast<std::uint64_t>(meta.numCus) * meta.waveSlotsPerCu;
    const std::uint64_t num_waves = cur.varint();
    if (cur.failed() || num_waves > max_waves)
        return "corrupt frame (wave record count)";
    r.waves.resize(num_waves);
    for (gpu::WaveEpochRecord &w : r.waves) {
        w.cu = static_cast<std::uint32_t>(cur.varint());
        w.slot = static_cast<std::uint32_t>(cur.varint());
        w.startPc = static_cast<std::uint32_t>(cur.varint());
        w.startPcAddr = cur.varint();
        w.committed = cur.varint();
        w.memStall = cur.zigzag();
        w.barrierStall = cur.zigzag();
        w.ageRank = static_cast<std::uint32_t>(cur.varint());
        w.active = cur.getBool();
        if (!cur.failed() &&
            (w.cu >= meta.numCus || w.slot >= meta.waveSlotsPerCu)) {
            return "corrupt frame (wave record out of geometry)";
        }
    }

    const std::uint64_t num_snaps = cur.varint();
    if (cur.failed() || num_snaps > max_waves)
        return "corrupt frame (wave snapshot count)";
    frame.snapshots.resize(num_snaps);
    for (gpu::WaveSnapshot &s : frame.snapshots) {
        s.cu = static_cast<std::uint32_t>(cur.varint());
        s.slot = static_cast<std::uint32_t>(cur.varint());
        s.pc = static_cast<std::uint32_t>(cur.varint());
        s.pcAddr = cur.varint();
        s.ageRank = static_cast<std::uint32_t>(cur.varint());
        if (!cur.failed() &&
            (s.cu >= meta.numCus || s.slot >= meta.waveSlotsPerCu)) {
            return "corrupt frame (wave snapshot out of geometry)";
        }
    }

    const std::uint64_t num_decisions = cur.varint();
    if (cur.failed() ||
        num_decisions != (frame.done ? 0u : meta.numDomains())) {
        return "corrupt frame (decision count)";
    }
    frame.decisions.resize(num_decisions);
    for (FrameDecision &d : frame.decisions) {
        d.decided = static_cast<std::size_t>(cur.varint());
        d.predictedInstr = cur.getDouble();
        d.applied = static_cast<std::size_t>(cur.varint());
        if (!cur.failed() && (d.decided >= meta.vfStates.size() ||
                              d.applied >= meta.vfStates.size())) {
            return "corrupt frame (decision state out of table)";
        }
    }

    if (frame.hasSweep) {
        const std::uint64_t num_domains = cur.varint();
        const std::uint64_t num_states = cur.varint();
        if (cur.failed() || num_domains != meta.numDomains() ||
            num_states != meta.vfStates.size()) {
            return "corrupt frame (sweep geometry)";
        }
        frame.sweep.domainInstr.assign(
            num_domains, std::vector<double>(num_states, 0.0));
        for (auto &row : frame.sweep.domainInstr) {
            for (double &v : row)
                v = cur.getDouble();
        }
        // Sweep sensitivities are keyed on (cu, slot, startPcAddr) -
        // wave turnover means one slot can contribute several entries
        // per epoch, so slot capacity is NOT an upper bound here.
        // Guard the allocation with the bytes actually present
        // instead: each entry encodes >= 4 varint bytes + 2 doubles.
        const std::uint64_t num_sens = cur.varint();
        if (cur.failed() || num_sens > cur.remaining() / 20)
            return "corrupt frame (sweep wave count)";
        frame.sweep.waves.resize(num_sens);
        for (dvfs::AccurateEstimates::WaveSens &w : frame.sweep.waves) {
            w.cu = static_cast<std::uint32_t>(cur.varint());
            w.slot = static_cast<std::uint32_t>(cur.varint());
            w.startPcAddr = cur.varint();
            w.sensitivity = cur.getDouble();
            w.level = cur.getDouble();
            w.ageRank = static_cast<std::uint32_t>(cur.varint());
        }
    }

    if (cur.failed() || !cur.atEnd())
        return "corrupt frame section";
    return "";
}

// --- END ------------------------------------------------------------

std::string
encodeTrailer(const TraceTrailer &trailer)
{
    std::string out;
    putVarint(out, trailer.frameCount);
    putZigzag(out, trailer.lastCommitTick);
    putVarint(out, trailer.totalCommitted);
    putBool(out, trailer.completed);
    putDouble(out, trailer.captureWallMs);
    return out;
}

std::string
decodeTrailer(Cursor &cur, TraceTrailer &trailer)
{
    trailer.frameCount = cur.varint();
    trailer.lastCommitTick = cur.zigzag();
    trailer.totalCommitted = cur.varint();
    trailer.completed = cur.getBool();
    trailer.captureWallMs = cur.getDouble();
    if (cur.failed())
        return "corrupt trace trailer";
    return "";
}

} // namespace

TraceMeta
makeTraceMeta(const sim::RunConfig &config, const power::VfTable &table,
              const std::string &workload,
              const dvfs::DvfsController &controller,
              const HierarchicalMeta &hier)
{
    TraceMeta meta;
    meta.workload = workload;
    meta.controller = controller.name();
    meta.sweepNeed = static_cast<std::uint8_t>(controller.sweepNeed());
    meta.hierarchical = hier;
    meta.numCus = config.gpu.numCus;
    meta.waveSlotsPerCu = config.gpu.waveSlotsPerCu;
    meta.cusPerDomain = config.cusPerDomain;
    meta.epochLen = config.epochLen;
    meta.objective = static_cast<std::uint8_t>(config.objective);
    meta.perfDegradationLimit = config.perfDegradationLimit;
    meta.nominalFreq = config.nominalFreq;
    meta.maxSimTime = config.maxSimTime;
    meta.transitionLatency = config.transitionLatency;
    meta.collectTrace = config.collectTrace;
    meta.watchdogFallback = config.watchdogFallback;
    meta.eccProtectTables = config.eccProtectTables;
    meta.power = config.power;
    meta.faults = config.faults;
    meta.vfStates.reserve(table.numStates());
    for (std::size_t i = 0; i < table.numStates(); ++i)
        meta.vfStates.push_back(table.state(i));
    return meta;
}

sim::RunConfig
runConfigFromMeta(const TraceMeta &meta)
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = meta.numCus;
    cfg.gpu.waveSlotsPerCu = meta.waveSlotsPerCu;
    cfg.gpu.defaultFreq = meta.nominalFreq;
    cfg.cusPerDomain = meta.cusPerDomain;
    cfg.epochLen = meta.epochLen;
    cfg.objective = static_cast<dvfs::Objective>(meta.objective);
    cfg.perfDegradationLimit = meta.perfDegradationLimit;
    cfg.nominalFreq = meta.nominalFreq;
    cfg.maxSimTime = meta.maxSimTime;
    cfg.transitionLatency = meta.transitionLatency;
    cfg.collectTrace = meta.collectTrace;
    cfg.watchdogFallback = meta.watchdogFallback;
    cfg.eccProtectTables = meta.eccProtectTables;
    cfg.power = meta.power;
    cfg.faults = meta.faults;
    return cfg;
}

power::VfTable
vfTableFromMeta(const TraceMeta &meta)
{
    return power::VfTable(meta.vfStates);
}

// --- TraceWriter ----------------------------------------------------

TraceWriter::TraceWriter(const std::string &path, const TraceMeta &meta)
    : path_(path), temp_(store::tempPathFor(path)),
      os(temp_, std::ios::binary), hash(fnvSeed)
{
    if (!os)
        return;
    store::registerTempFile(temp_);
    std::string head(fileMagic, sizeof(fileMagic));
    head.push_back(static_cast<char>(traceFormatVersion & 0xFF));
    head.push_back(static_cast<char>(traceFormatVersion >> 8));
    head.push_back('\0');
    head.push_back('\0');
    hash = fnv1a(hash, head.data(), head.size());
    os.write(head.data(), static_cast<std::streamsize>(head.size()));
    ok_ = static_cast<bool>(os);
    writeSection(tagMeta, encodeMeta(meta));
}

void
TraceWriter::writeSection(std::uint8_t tag, const std::string &payload)
{
    if (!ok_ || finished)
        return;
    std::string head;
    head.push_back(static_cast<char>(tag));
    putVarint(head, payload.size());
    hash = fnv1a(hash, head.data(), head.size());
    hash = fnv1a(hash, payload.data(), payload.size());
    os.write(head.data(), static_cast<std::streamsize>(head.size()));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    ok_ = static_cast<bool>(os);
}

void
TraceWriter::writeFrame(const EpochFrame &frame)
{
    writeSection(tagFrame, encodeFrame(frame, prevEnd_));
    prevEnd_ = frame.end;
    ++frames_;
}

void
TraceWriter::writePcSnapshot(const PcTableSnapshot &snap)
{
    writeSection(tagPcSnapshot, encodePcSnapshot(snap));
}

void
TraceWriter::finish(const TraceTrailer &trailer)
{
    if (!ok_ || finished)
        return;
    std::string payload = encodeTrailer(trailer);
    std::string head;
    head.push_back(static_cast<char>(tagEnd));
    // The checksum covers every byte before itself, including this
    // section's tag/length/payload.
    putVarint(head, payload.size() + 8);
    hash = fnv1a(hash, head.data(), head.size());
    hash = fnv1a(hash, payload.data(), payload.size());
    putFixed64(payload, hash);
    os.write(head.data(), static_cast<std::streamsize>(head.size()));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    os.close();
    ok_ = static_cast<bool>(os);
    finished = true;
    if (!ok_)
        return;
    // Publish atomically: a reader (or a resumed sweep) either sees
    // the complete checksummed trace at path_ or nothing at all.
    const std::string err = store::commitTempFile(temp_, path_);
    if (!err.empty()) {
        warn("trace '" + path_ + "': " + err);
        ok_ = false;
    }
}

TraceWriter::~TraceWriter()
{
    if (finished || temp_.empty())
        return;
    // finish() never ran (a contained cell failure, or the run threw
    // mid-capture): drop the partial temporary rather than leaking it.
    std::remove(temp_.c_str());
    store::unregisterTempFile(temp_);
}

// --- readTraceFile --------------------------------------------------

TraceReadResult
readTraceFile(const std::string &path)
{
    TraceReadResult result;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        result.error = "cannot open '" + path + "'";
        return result;
    }
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    if (buf.size() < 8 ||
        std::memcmp(buf.data(), fileMagic, sizeof(fileMagic)) != 0) {
        result.error = "'" + path + "' is not an epoch trace file";
        return result;
    }
    const std::uint16_t version =
        static_cast<std::uint8_t>(buf[4]) |
        (static_cast<std::uint16_t>(static_cast<std::uint8_t>(buf[5]))
         << 8);
    if (version != traceFormatVersion) {
        result.error = "unsupported trace format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(traceFormatVersion) + ")";
        return result;
    }

    TraceData data;
    Cursor cur(buf.data() + 8, buf.size() - 8);
    bool have_meta = false;
    bool have_snapshot = false;
    bool have_end = false;
    Tick prev_end = 0;
    while (!cur.atEnd()) {
        const std::uint8_t tag = cur.u8();
        const std::uint64_t len = cur.varint();
        if (cur.failed() || len > maxSectionLen ||
            len > cur.remaining()) {
            result.error = "truncated trace section (tag " +
                std::to_string(tag) + ")";
            return result;
        }
        const std::size_t payload_at = buf.size() - cur.remaining();
        Cursor body(buf.data() + payload_at, len);
        cur = Cursor(buf.data() + payload_at + len,
                     buf.size() - payload_at - len);

        if (!have_meta && tag != tagMeta) {
            result.error = "trace does not start with a meta section";
            return result;
        }
        switch (tag) {
          case tagMeta: {
            if (have_meta) {
                result.error = "duplicate trace meta section";
                return result;
            }
            const std::string err = decodeMeta(body, data.meta);
            if (!err.empty()) {
                result.error = err;
                return result;
            }
            have_meta = true;
            break;
          }
          case tagFrame: {
            EpochFrame frame;
            const std::string err =
                decodeFrame(body, data.meta, prev_end, frame);
            if (!err.empty()) {
                result.error = err + " (frame " +
                    std::to_string(data.frames.size()) + ")";
                return result;
            }
            prev_end = frame.end;
            data.frames.push_back(std::move(frame));
            break;
          }
          case tagPcSnapshot: {
            if (have_snapshot) {
                result.error = "duplicate PC snapshot section";
                return result;
            }
            const std::string payload(buf, payload_at, len);
            const std::string err =
                decodePcSnapshot(payload, data.pcSnapshot);
            if (!err.empty()) {
                result.error = err;
                return result;
            }
            have_snapshot = true;
            break;
          }
          case tagEnd: {
            if (len < 8) {
                result.error = "truncated trace trailer";
                return result;
            }
            Cursor trailer_cur(buf.data() + payload_at, len - 8);
            const std::string err =
                decodeTrailer(trailer_cur, data.trailer);
            if (!err.empty()) {
                result.error = err;
                return result;
            }
            if (!trailer_cur.atEnd()) {
                result.error = "corrupt trace trailer";
                return result;
            }
            Cursor sum_cur(buf.data() + payload_at + len - 8, 8);
            const std::uint64_t stored = sum_cur.fixed64();
            const std::uint64_t computed =
                fnv1a(fnvSeed, buf.data(), payload_at + len - 8);
            if (stored != computed) {
                result.error =
                    "trace checksum mismatch (corrupt file)";
                return result;
            }
            if (!cur.atEnd()) {
                result.error = "trailing bytes after trace trailer";
                return result;
            }
            have_end = true;
            break;
          }
          default:
            result.error = "unknown trace section tag " +
                std::to_string(tag);
            return result;
        }
        if (have_end)
            break;
    }
    if (!have_meta) {
        result.error = "trace has no meta section";
        return result;
    }
    if (!have_end) {
        result.error =
            "trace has no trailer (truncated or still being written)";
        return result;
    }
    if (data.trailer.frameCount != data.frames.size()) {
        result.error = "trailer frame count (" +
            std::to_string(data.trailer.frameCount) +
            ") does not match the frames present (" +
            std::to_string(data.frames.size()) + ")";
        return result;
    }
    // Frames must be in time order with at most one final done frame.
    for (std::size_t i = 0; i < data.frames.size(); ++i) {
        if (data.frames[i].done && i + 1 != data.frames.size()) {
            result.error = "done frame is not the last frame";
            return result;
        }
    }
    result.trace = std::move(data);
    return result;
}

// --- TraceCapture ---------------------------------------------------

TraceCapture::TraceCapture(TraceWriter &trace_writer)
    : writer(trace_writer), startNs(nowNs())
{}

void
TraceCapture::onEpoch(const sim::EpochCapture &epoch)
{
    EpochFrame frame;
    frame.start = epoch.start;
    frame.end = epoch.end;
    frame.accountedEnd = epoch.accountedEnd;
    frame.done = epoch.done;
    frame.record = epoch.record;
    frame.snapshots = epoch.snapshots;
    if (epoch.sweep != nullptr) {
        frame.hasSweep = true;
        frame.sweep = *epoch.sweep;
    }
    frame.decisions.reserve(epoch.decisions.size());
    for (std::size_t d = 0; d < epoch.decisions.size(); ++d) {
        frame.decisions.push_back(FrameDecision{
            epoch.decisions[d].state,
            epoch.decisions[d].predictedInstr,
            epoch.appliedStates[d]});
    }
    writer.writeFrame(frame);
}

void
TraceCapture::onRunEnd(const sim::RunResult &result)
{
    if (snapProvider) {
        const PcTableSnapshot snap = snapProvider();
        if (!snap.empty())
            writer.writePcSnapshot(snap);
    }
    TraceTrailer trailer;
    trailer.frameCount = writer.frameCount();
    trailer.lastCommitTick = result.execTime;
    trailer.totalCommitted = result.instructions;
    trailer.completed = result.completed;
    trailer.captureWallMs =
        static_cast<double>(nowNs() - startNs) / 1e6;
    writer.finish(trailer);
    finished_ = true;
}

} // namespace pcstall::trace
