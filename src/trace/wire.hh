/**
 * @file
 * Low-level wire encoding shared by the epoch-trace and PC-snapshot
 * file formats: LEB128 varints (zigzag for signed), little-endian
 * IEEE-754 doubles, length-prefixed strings, and a bounds-checked
 * read cursor that turns every malformed input into a sticky failure
 * instead of undefined behaviour.
 */

#ifndef PCSTALL_TRACE_WIRE_HH
#define PCSTALL_TRACE_WIRE_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace pcstall::trace
{

/** Append an unsigned LEB128 varint. */
inline void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7F) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

/** Append a zigzag-encoded signed varint. */
inline void
putZigzag(std::string &out, std::int64_t value)
{
    const std::uint64_t u = static_cast<std::uint64_t>(value);
    putVarint(out, (u << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

/** Append a little-endian IEEE-754 double (exact round-trip). */
inline void
putDouble(std::string &out, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
}

/** Append a fixed little-endian 64-bit word (checksums). */
inline void
putFixed64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

/** Append a length-prefixed string. */
inline void
putString(std::string &out, const std::string &value)
{
    putVarint(out, value.size());
    out.append(value);
}

/** Append a boolean as one byte. */
inline void
putBool(std::string &out, bool value)
{
    out.push_back(value ? '\1' : '\0');
}

/** FNV-1a 64-bit hash, the format's corruption checksum. */
inline std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= p[i];
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

inline constexpr std::uint64_t fnvSeed = 0xCBF29CE484222325ULL;

/**
 * Bounds-checked reader over a byte buffer. Any overrun or malformed
 * varint sets a sticky failure flag; subsequent reads return zeros, so
 * callers can decode a whole structure and check failed() once.
 */
class Cursor
{
  public:
    Cursor(const char *data, std::size_t size)
        : p(data), end(data + size)
    {}

    explicit Cursor(const std::string &buf)
        : Cursor(buf.data(), buf.size())
    {}

    bool failed() const { return fail; }
    bool atEnd() const { return p == end; }
    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

    std::uint8_t
    u8()
    {
        if (p >= end) {
            fail = true;
            return 0;
        }
        return static_cast<std::uint8_t>(*p++);
    }

    bool getBool() { return u8() != 0; }

    std::uint64_t
    varint()
    {
        std::uint64_t value = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (p >= end) {
                fail = true;
                return 0;
            }
            const auto byte = static_cast<std::uint8_t>(*p++);
            value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return value;
        }
        fail = true; // > 10 continuation bytes: corrupt
        return 0;
    }

    std::int64_t
    zigzag()
    {
        const std::uint64_t u = varint();
        return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
    }

    double
    getDouble()
    {
        if (remaining() < 8) {
            fail = true;
            return 0.0;
        }
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i) {
            bits |= static_cast<std::uint64_t>(
                        static_cast<std::uint8_t>(p[i]))
                << (8 * i);
        }
        p += 8;
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::uint64_t
    fixed64()
    {
        if (remaining() < 8) {
            fail = true;
            return 0;
        }
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i) {
            bits |= static_cast<std::uint64_t>(
                        static_cast<std::uint8_t>(p[i]))
                << (8 * i);
        }
        p += 8;
        return bits;
    }

    /** Length-prefixed string, rejecting absurd lengths. */
    std::string
    getString(std::size_t max_len = 1 << 16)
    {
        const std::uint64_t len = varint();
        if (fail || len > max_len || len > remaining()) {
            fail = true;
            return "";
        }
        std::string s(p, p + len);
        p += len;
        return s;
    }

  private:
    const char *p;
    const char *end;
    bool fail = false;
};

} // namespace pcstall::trace

#endif // PCSTALL_TRACE_WIRE_HH
