/**
 * @file
 * The content-addressed trace library (docs/replay_studies.md): a
 * directory of published PCTR epoch-trace captures keyed by the full
 * simulation-affecting identity of a sweep cell, so design studies
 * replay recorded epoch streams instead of re-simulating the GPU.
 *
 * The library is a cache, never a source of truth: entries are
 * standard `.pctrace` files (readable by every trace tool) published
 * with the store's write-temp + fsync + atomic-rename discipline, a
 * `.pckey` sidecar carries the canonical key text as an audit trail
 * and digest-collision guard, and anything that fails to decode - or
 * replays with decision mismatches against its own recording - is
 * moved into a `.corrupt/` quarantine and recaptured from a live
 * simulation, never ingested.
 *
 * Two key tiers share one directory:
 *
 *  - exact keys bind the full cell identity (workload + content
 *    digest, design label, run index, sim config fingerprint, PC
 *    warm-start); replaying an exact hit reproduces the live run
 *    bit-for-bit, which is what lets `--trace-cache` sweeps stay
 *    byte-identical to fresh simulations;
 *  - shared (what-if) keys blank the design/run-index slots, so every
 *    controller variation resolves to one recorded epoch stream -
 *    open-loop evaluation in the paper's own style, at replay speed.
 */

#ifndef PCSTALL_TRACE_LIBRARY_HH
#define PCSTALL_TRACE_LIBRARY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pcstall::trace
{

/** Library key-schema version (bumped when key composition changes,
 *  so stale libraries miss instead of colliding). */
inline constexpr std::uint16_t libraryKeyVersion = 1;

/** The identity a cached epoch stream is addressed by. */
struct LibraryKey
{
    /** Harness the capture belongs to (binary basename); custom
     *  controller factories make design labels harness-scoped. */
    std::string harness;
    std::string workload;
    /** Content digest of kernel-script workloads ("" for the named
     *  Table II workloads): a re-edited script must miss. */
    std::string workloadDigest;
    /** Design label of the captured cell. */
    std::string design;
    /** Repeat index among identical (workload, design, config) cells
     *  (distinct RNG streams => distinct epoch streams). */
    std::uint64_t runIndex = 0;
    /** Serialized simulation-affecting bench options
     *  (bench::simConfigFingerprint). Deliberately excludes
     *  observability toggles: metrics on/off must not fork the
     *  cache. */
    std::string fingerprint;
    /** PC-table warm-start path ("" = cold start): a warm start
     *  changes the decisions and with them the epoch stream. */
    std::string pcSnapshotIn;
    /**
     * Shared (what-if) tier: the design and run-index slots are
     * blanked so any controller variation addresses the same stream.
     * Only meaningful for sweeps that opted into open-loop evaluation
     * (--trace-what-if); see docs/replay_studies.md.
     */
    bool shared = false;

    /** Canonical text form (unit-separator joined; digest input and
     *  sidecar content). */
    std::string text() const;

    /** 32-hex content digest of text() (two independent FNV-1a
     *  passes, like store::keyDigest). */
    std::string digest() const;
};

/**
 * A directory of published trace captures. Thread-safe the same way
 * the results store is: entries are immutable single files, writes
 * are atomic renames, readers only ever see fully published files,
 * and concurrent writers of one key stage identical bytes (cell
 * determinism), so last-writer-wins renames are safe.
 */
class TraceLibrary
{
  public:
    /**
     * Open (creating if needed) the library rooted at @p dir. On
     * failure ok() turns false and error() carries the diagnostic;
     * get() on a bad library is a harmless Miss.
     */
    explicit TraceLibrary(std::string dir);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    const std::string &dir() const { return dir_; }

    /** Outcome class of one get(). */
    enum class GetStatus
    {
        /** Trace and matching sidecar present; tracePath is filled.
         *  (Decode/replay validation happens at use; failures there
         *  are reported back via quarantine().) */
        Hit,
        /** No entry for this key (or an unrelated digest collision,
         *  guarded by the sidecar text). */
        Miss,
    };

    /** Result of one get(). */
    struct GetResult
    {
        GetStatus status = GetStatus::Miss;
        /** Path of the published `.pctrace` (Hit only). */
        std::string tracePath;
    };

    /** Look up @p key (file presence + sidecar guard only). */
    GetResult get(const LibraryKey &key) const;

    /** Absolute `.pctrace` path for @p key. Capture-on-miss streams a
     *  TraceWriter directly at this path: the writer's own temp +
     *  fsync + rename staging doubles as the atomic publication. */
    std::string entryPath(const LibraryKey &key) const;

    /** Absolute `.pckey` sidecar path for @p key. */
    std::string keyPath(const LibraryKey &key) const;

    /**
     * Publish the key sidecar for an entry whose trace file was just
     * committed at entryPath(). Written atomically, and strictly
     * after the trace: a crash between the two leaves an orphan trace
     * (a Miss, collected by gcOrphans()), never a sidecar pointing at
     * a missing or partial trace.
     *
     * @return Empty string on success, else a one-line diagnostic.
     */
    std::string publishKey(const LibraryKey &key) const;

    /**
     * Move @p key's entry (trace + sidecar) into the `.corrupt/`
     * quarantine, suffixed with the pid so repeated quarantines never
     * collide. Called when a cached trace fails to decode or replays
     * with decision mismatches against its own recording - the entry
     * is preserved for post-mortems and the caller recaptures live.
     */
    void quarantine(const LibraryKey &key, const std::string &why) const;

    /** Number of published entries (`*.pctrace` files). */
    std::size_t entryCount() const;

    /** Number of quarantined files under `.corrupt/`. */
    std::size_t quarantinedCount() const;

    /** One published entry, as listed by entries(). */
    struct Entry
    {
        /** 32-hex digest (the file stem). */
        std::string digest;
        /** Sidecar key text ("" for orphan traces). */
        std::string keyText;
        /** Trace file size in bytes. */
        std::uintmax_t bytes = 0;
    };

    /** Every published entry, sorted by digest (deterministic for
     *  tools and tests). Orphan traces appear with empty keyText. */
    std::vector<Entry> entries() const;

    /**
     * Remove unusable files: traces without a sidecar, sidecars
     * without a trace, and stale staging temps. Returns the number of
     * files removed. Safe to run concurrently with readers - a
     * concurrent publisher re-creates anything it needs.
     */
    std::size_t gcOrphans() const;

  private:
    std::string dir_;
    std::string error_;
};

} // namespace pcstall::trace

#endif // PCSTALL_TRACE_LIBRARY_HH
