#include "trace/replay.hh"

#include <chrono>

#include "faults/fault_injector.hh"
#include "obs/context.hh"
#include "sim/epoch_ledger.hh"

namespace pcstall::trace
{

namespace
{

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
describeMismatch(std::size_t frame_idx, std::uint32_t domain,
                 const FrameDecision &recorded, std::size_t decided,
                 std::size_t applied)
{
    return "epoch " + std::to_string(frame_idx) + " domain " +
        std::to_string(domain) + ": recorded state " +
        std::to_string(recorded.decided) + " (applied " +
        std::to_string(recorded.applied) + "), replayed state " +
        std::to_string(decided) + " (applied " +
        std::to_string(applied) + ")";
}

} // namespace

ReplayDriver::ReplayDriver(const TraceData &trace) : data(trace) {}

ReplayOutcome
ReplayDriver::run(dvfs::DvfsController &controller,
                  const ReplayOptions &options)
{
    ReplayOutcome outcome;
    outcome.captureWallMs = data.trailer.captureWallMs;
    const std::int64_t t0 = nowNs();

    const TraceMeta &meta = data.meta;
    sim::RunConfig cfg = runConfigFromMeta(meta);
    cfg.auditRegret = options.auditRegret;
    cfg.provenance = options.provenance;
    const std::string cfg_err = sim::validateRunConfig(cfg);
    if (!cfg_err.empty()) {
        outcome.error = "trace meta yields an unusable run config: " +
            cfg_err;
        return outcome;
    }
    const power::VfTable table = vfTableFromMeta(meta);
    const int nominal = table.indexOf(meta.nominalFreq);
    if (nominal < 0) {
        outcome.error =
            "trace meta: nominal frequency not in the V/f table";
        return outcome;
    }
    const std::size_t nominal_idx = static_cast<std::size_t>(nominal);
    const power::PowerModel power_model(cfg.power);
    const dvfs::DomainMap domains(meta.numCus, meta.cusPerDomain);

    const dvfs::SweepNeed need = controller.sweepNeed();
    if (need != dvfs::SweepNeed::None) {
        for (const EpochFrame &frame : data.frames) {
            if (!frame.done && !frame.hasSweep) {
                outcome.error = "controller " + controller.name() +
                    " needs fork-pre-execute sweeps, but the trace "
                    "was captured without them (capture under a "
                    "sweep-requesting controller to replay this one)";
                return outcome;
            }
        }
    }

    // Same seed => the injector replays the exact fault sequence the
    // live run saw, provided it is consulted in the same order.
    faults::FaultInjector injector(cfg.faults);
    sim::EpochLedger ledger(cfg, table, power_model, domains,
                            nominal_idx);

    outcome.result.controller = controller.name();
    outcome.result.workload = meta.workload;

    const dvfs::AccurateEstimates *prev_sweep = nullptr;
    std::uint64_t sweeps_served = 0;
    for (std::size_t i = 0; i < data.frames.size(); ++i) {
        const EpochFrame &frame = data.frames[i];
        ++outcome.result.epochs;

        const faults::FaultInjector::Totals epoch_base =
            injector.totals();
        const std::uint64_t fallback_base = controller.fallbackEpochs();
        gpu::EpochRecord observed_storage;
        const gpu::EpochRecord *observed = &frame.record;
        if (cfg.faults.telemetry.enabled) {
            observed_storage = frame.record;
            injector.perturbRecord(observed_storage, cfg.epochLen);
            observed = &observed_storage;
        }

        ledger.observeEpoch(frame.record, *observed, frame.start,
                            frame.accountedEnd);
        if (frame.done)
            break;

        const dvfs::AccurateEstimates *cur_sweep =
            frame.hasSweep ? &frame.sweep : nullptr;
        if (need != dvfs::SweepNeed::None && cur_sweep != nullptr)
            ++sweeps_served;
        const dvfs::EpochContext ctx = ledger.makeContext(
            *observed, frame.snapshots,
            need != dvfs::SweepNeed::None ? prev_sweep : nullptr,
            need != dvfs::SweepNeed::None ? cur_sweep : nullptr);

        controller.applyStorageFaults(injector);

        std::vector<dvfs::DomainDecision> decisions =
            sim::decideEpoch(controller, ctx, need,
                             prev_sweep != nullptr,
                             domains.numDomains(), nominal_idx);

        const auto applied = ledger.applyDecisions(decisions, injector);

        if (options.verifyDecisions) {
            for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
                const FrameDecision &rec = frame.decisions[d];
                if (decisions[d].state != rec.decided ||
                    applied[d].state != rec.applied) {
                    ++outcome.decisionMismatches;
                    if (outcome.firstMismatch.empty()) {
                        outcome.firstMismatch = describeMismatch(
                            i, d, rec, decisions[d].state,
                            applied[d].state);
                    }
                }
            }
        }

        ledger.traceEpochFaults(
            epoch_base, injector,
            controller.fallbackEpochs() > fallback_base);

        prev_sweep = cur_sweep;
    }

    ledger.finalize(outcome.result, data.trailer.completed,
                    data.trailer.lastCommitTick,
                    data.trailer.totalCommitted, injector, controller);

    outcome.replayWallMs = static_cast<double>(nowNs() - t0) / 1e6;
    if (obs::metricsEnabled()) {
        obs::Registry &registry = obs::reg();
        if (options.liveMetricProfile) {
            // Cache-served replay standing in for a live simulation:
            // record what the equivalent live run would have (the
            // deterministic oracle sweep/fork totals the fork
            // pre-executor registers per sweep) and keep the
            // replay-only counters out of the canonical metric
            // surface. trace.replay_wall_ns below is Timing-kind and
            // hence canonical-safe either way.
            if (sweeps_served > 0) {
                registry.counter("oracle.sweeps").add(sweeps_served);
                registry.counter("oracle.forks")
                    .add(sweeps_served * table.numStates());
            }
        } else {
            registry.counter("trace.replays").add(1);
            registry.counter("trace.replay_frames")
                .add(data.frames.size());
            registry.counter("trace.replay_mismatches")
                .add(outcome.decisionMismatches);
        }
        registry.histogram("trace.replay_wall_ns",
                           obs::MetricKind::Timing)
            .record(outcome.replayWallMs * 1e6);
    }
    return outcome;
}

} // namespace pcstall::trace
