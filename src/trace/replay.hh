/**
 * @file
 * The trace replay engine: re-drives a DVFS controller through the
 * epoch boundaries of a recorded trace without instantiating the GPU
 * timing model. All metric arithmetic goes through the same
 * sim::EpochLedger (and the same deterministic fault injector,
 * re-seeded from the recorded FaultConfig) in the same order as the
 * live driver, so replaying the trace under the captured controller
 * reproduces the live run's RunResult bit-for-bit — and replaying it
 * under a *different* controller answers "what would this policy have
 * decided on the exact same epochs" in milliseconds instead of a full
 * simulation.
 */

#ifndef PCSTALL_TRACE_REPLAY_HH
#define PCSTALL_TRACE_REPLAY_HH

#include <cstdint>
#include <string>

#include "dvfs/controller.hh"
#include "obs/provenance.hh"
#include "sim/experiment.hh"
#include "trace/format.hh"

namespace pcstall::trace
{

/** Options of one replay pass. */
struct ReplayOptions
{
    /**
     * Compare the replaying controller's decisions (and the fault
     * injector's transition outcomes) against what the trace recorded,
     * counting mismatches. Only meaningful when replaying the same
     * controller kind the trace was captured under.
     */
    bool verifyDecisions = true;
    /**
     * Compute the per-epoch regret summary (RunResult::regret)
     * without retaining individual decision records. Implied by
     * @ref provenance.
     */
    bool auditRegret = false;
    /**
     * Optional decision-provenance sink (not owned). When set, the
     * replay emits the full DecisionRecord stream — byte-identical to
     * what a live run over the same trace would have captured, which
     * is how tools/dvfs_explain re-derives provenance from a PCTR
     * trace after the fact.
     */
    obs::ProvenanceLog *provenance = nullptr;
    /**
     * Record metrics exactly as the equivalent live run would have:
     * suppress the replay-only trace.replays / trace.replay_frames /
     * trace.replay_mismatches counters and synthesize the
     * deterministic oracle.sweeps / oracle.forks totals a live run of
     * a sweep-needing controller would have recorded (one sweep per
     * sweep-bearing frame, one fork per V/f state each). This is what
     * lets a --trace-cache sweep merge canonical metrics
     * byte-identical to a fresh simulation (docs/replay_studies.md);
     * the wall-clock trace.replay_wall_ns histogram stays recorded
     * either way (Timing kind, outside the canonical sections).
     */
    bool liveMetricProfile = false;
};

/** Outcome of one replay pass. */
struct ReplayOutcome
{
    /** Empty when the replay ran; a one-line diagnostic otherwise. */
    std::string error;
    /** The replayed run's metrics (same shape as a live run's). */
    sim::RunResult result;
    /** Epochs whose decisions differed from the recorded ones. */
    std::uint64_t decisionMismatches = 0;
    /** First mismatch, described for diagnostics ("" when none). */
    std::string firstMismatch;
    /** Wall-clock of the replay pass. */
    double replayWallMs = 0.0;
    /** Wall-clock of the captured live run (from the trailer). */
    double captureWallMs = 0.0;

    bool ok() const { return error.empty(); }
    bool deterministic() const
    {
        return ok() && decisionMismatches == 0;
    }
    /** Live-vs-replay wall-clock speedup (0 when unmeasurable). */
    double speedup() const
    {
        return replayWallMs > 0.0 ? captureWallMs / replayWallMs : 0.0;
    }
};

/**
 * Re-drives controllers from one decoded trace. The trace must stay
 * alive for the driver's lifetime.
 */
class ReplayDriver
{
  public:
    explicit ReplayDriver(const TraceData &trace);

    /**
     * Replay every recorded epoch boundary through @p controller.
     * The controller must be freshly constructed (same cold state the
     * live run started from) for decision verification to be
     * meaningful.
     */
    ReplayOutcome run(dvfs::DvfsController &controller,
                      const ReplayOptions &options = {});

    const TraceData &trace() const { return data; }

  private:
    const TraceData &data;
};

} // namespace pcstall::trace

#endif // PCSTALL_TRACE_REPLAY_HH
