/**
 * @file
 * Predictor snapshot/restore: a serializable image of the quantized
 * PC sensitivity tables (src/predict), embeddable as a section of an
 * epoch trace or stored as a standalone `.pcsnap` file. Lets runs
 * warm-start a learned table and lets bench sweeps skip re-training.
 */

#ifndef PCSTALL_TRACE_SNAPSHOT_HH
#define PCSTALL_TRACE_SNAPSHOT_HH

#include <optional>
#include <string>
#include <vector>

#include "predict/pc_table.hh"

namespace pcstall::trace
{

/** Image of every PC-table instance of one controller. */
struct PcTableSnapshot
{
    /** Geometry/quantization the tables were configured with. */
    predict::PcTableConfig config;
    /** One entry vector per table instance, in instance order. */
    std::vector<std::vector<predict::PcEntrySnapshot>> tables;

    bool empty() const { return tables.empty(); }
};

/** Snapshot every table instance of a PCSTALL-style controller. */
PcTableSnapshot
snapshotPcTables(const std::vector<predict::PcSensitivityTable> &tables);

/**
 * Warm-start @p tables from @p snap. The snapshot must match the
 * tables' geometry (instance count, entries per table) and
 * quantization parameters; returns an empty string on success or a
 * one-line diagnostic (tables unchanged) otherwise.
 */
std::string
restorePcTables(const PcTableSnapshot &snap,
                std::vector<predict::PcSensitivityTable> &tables);

/** Encode a snapshot as a format payload (trace section body). */
std::string encodePcSnapshot(const PcTableSnapshot &snap);

/**
 * Decode a payload produced by encodePcSnapshot(). Returns an empty
 * string and fills @p snap on success, a diagnostic otherwise.
 */
std::string decodePcSnapshot(const std::string &payload,
                             PcTableSnapshot &snap);

/** Write a standalone snapshot file; false on I/O error. */
bool writePcSnapshotFile(const std::string &path,
                         const PcTableSnapshot &snap);

/** Result of reading a standalone snapshot file. */
struct PcSnapshotReadResult
{
    std::optional<PcTableSnapshot> snapshot;
    /** Empty on success; a one-line diagnostic otherwise. */
    std::string error;

    bool ok() const { return snapshot.has_value(); }
};

/** Read and strictly validate a standalone `.pcsnap` file. */
PcSnapshotReadResult readPcSnapshotFile(const std::string &path);

} // namespace pcstall::trace

#endif // PCSTALL_TRACE_SNAPSHOT_HH
