#include "trace/snapshot.hh"

#include <cmath>
#include <fstream>

#include "store/atomic_file.hh"
#include "trace/wire.hh"

namespace pcstall::trace
{

namespace
{

/** Standalone snapshot file magic: "PCSN" little-endian. */
constexpr std::uint32_t snapMagic = 0x4E534350;
constexpr std::uint16_t snapVersion = 1;

/** Largest plausible table geometry a file may declare. */
constexpr std::uint64_t maxTables = 1 << 16;
constexpr std::uint64_t maxEntries = 1 << 20;

bool
configsMatch(const predict::PcTableConfig &a,
             const predict::PcTableConfig &b)
{
    return a.entries == b.entries && a.offsetBits == b.offsetBits &&
        a.quantize == b.quantize && a.storeLevel == b.storeLevel &&
        a.maxSensitivity == b.maxSensitivity &&
        a.maxLevel == b.maxLevel;
}

} // namespace

PcTableSnapshot
snapshotPcTables(const std::vector<predict::PcSensitivityTable> &tables)
{
    PcTableSnapshot snap;
    if (tables.empty())
        return snap;
    snap.config = tables.front().config();
    snap.tables.reserve(tables.size());
    for (const auto &table : tables)
        snap.tables.push_back(table.exportEntries());
    return snap;
}

std::string
restorePcTables(const PcTableSnapshot &snap,
                std::vector<predict::PcSensitivityTable> &tables)
{
    if (snap.tables.size() != tables.size()) {
        return "snapshot holds " + std::to_string(snap.tables.size()) +
            " table instance(s) but the controller has " +
            std::to_string(tables.size());
    }
    if (!tables.empty() &&
        !configsMatch(snap.config, tables.front().config())) {
        return "snapshot table geometry/quantization does not match "
               "the controller's configuration";
    }
    for (const auto &entries : snap.tables) {
        if (entries.size() != snap.config.entries)
            return "snapshot entry count does not match its header";
    }
    for (std::size_t t = 0; t < tables.size(); ++t) {
        if (!tables[t].importEntries(snap.tables[t]))
            return "snapshot entry count rejected by table import";
    }
    return "";
}

std::string
encodePcSnapshot(const PcTableSnapshot &snap)
{
    std::string out;
    const predict::PcTableConfig &cfg = snap.config;
    putVarint(out, cfg.entries);
    putVarint(out, cfg.offsetBits);
    putBool(out, cfg.quantize);
    putDouble(out, cfg.maxSensitivity);
    putDouble(out, cfg.maxLevel);
    putBool(out, cfg.storeLevel);
    putDouble(out, cfg.updateBlend);
    putBool(out, cfg.parityProtected);
    putVarint(out, snap.tables.size());
    for (const auto &entries : snap.tables) {
        putVarint(out, entries.size());
        for (const auto &e : entries) {
            putBool(out, e.valid);
            if (e.valid) {
                putDouble(out, e.sensitivity);
                putDouble(out, e.level);
            }
        }
    }
    return out;
}

std::string
decodePcSnapshot(const std::string &payload, PcTableSnapshot &snap)
{
    Cursor cur(payload);
    predict::PcTableConfig cfg;
    cfg.entries = static_cast<std::uint32_t>(cur.varint());
    cfg.offsetBits = static_cast<std::uint32_t>(cur.varint());
    cfg.quantize = cur.getBool();
    cfg.maxSensitivity = cur.getDouble();
    cfg.maxLevel = cur.getDouble();
    cfg.storeLevel = cur.getBool();
    cfg.updateBlend = cur.getDouble();
    cfg.parityProtected = cur.getBool();
    const std::uint64_t num_tables = cur.varint();
    if (cur.failed() || cfg.entries == 0 || cfg.entries > maxEntries ||
        num_tables > maxTables) {
        return "corrupt PC snapshot header";
    }
    if (cfg.maxSensitivity <= 0.0 || cfg.maxLevel <= 0.0 ||
        !std::isfinite(cfg.maxSensitivity) ||
        !std::isfinite(cfg.maxLevel)) {
        return "corrupt PC snapshot quantization range";
    }
    PcTableSnapshot out;
    out.config = cfg;
    out.tables.reserve(num_tables);
    for (std::uint64_t t = 0; t < num_tables; ++t) {
        const std::uint64_t entries = cur.varint();
        if (cur.failed() || entries != cfg.entries)
            return "corrupt PC snapshot table " + std::to_string(t);
        std::vector<predict::PcEntrySnapshot> vec(entries);
        for (std::uint64_t i = 0; i < entries; ++i) {
            vec[i].valid = cur.getBool();
            if (vec[i].valid) {
                vec[i].sensitivity = cur.getDouble();
                vec[i].level = cur.getDouble();
            }
        }
        if (cur.failed())
            return "truncated PC snapshot table " + std::to_string(t);
        out.tables.push_back(std::move(vec));
    }
    if (cur.failed() || !cur.atEnd())
        return "PC snapshot has trailing or missing bytes";
    snap = std::move(out);
    return "";
}

bool
writePcSnapshotFile(const std::string &path, const PcTableSnapshot &snap)
{
    const std::string payload = encodePcSnapshot(snap);
    std::string out;
    putFixed64(out, (static_cast<std::uint64_t>(snapVersion) << 32) |
                        snapMagic);
    putVarint(out, payload.size());
    out += payload;
    putFixed64(out, fnv1a(fnvSeed, payload.data(), payload.size()));
    // Atomic publish: a killed run leaves either the previous snapshot
    // or none, never a truncated file a warm-start would reject.
    return store::writeFileAtomic(path, out).empty();
}

PcSnapshotReadResult
readPcSnapshotFile(const std::string &path)
{
    PcSnapshotReadResult result;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        result.error = "cannot open '" + path + "'";
        return result;
    }
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    Cursor cur(buf);
    const std::uint64_t head = cur.fixed64();
    if (cur.failed() ||
        static_cast<std::uint32_t>(head & 0xFFFFFFFF) != snapMagic) {
        result.error = "'" + path + "' is not a PC snapshot file";
        return result;
    }
    if (static_cast<std::uint16_t>(head >> 32) != snapVersion) {
        result.error = "unsupported PC snapshot version " +
            std::to_string(head >> 32);
        return result;
    }
    const std::uint64_t payload_len = cur.varint();
    if (cur.failed() || payload_len > cur.remaining()) {
        result.error = "truncated PC snapshot file";
        return result;
    }
    const std::size_t off = buf.size() - cur.remaining();
    const std::string payload = buf.substr(off, payload_len);
    Cursor tail(buf.data() + off + payload_len,
                buf.size() - off - payload_len);
    const std::uint64_t checksum = tail.fixed64();
    if (tail.failed()) {
        result.error = "truncated PC snapshot file";
        return result;
    }
    if (checksum != fnv1a(fnvSeed, payload.data(), payload.size())) {
        result.error = "PC snapshot checksum mismatch (corrupt file)";
        return result;
    }
    PcTableSnapshot snap;
    const std::string err = decodePcSnapshot(payload, snap);
    if (!err.empty()) {
        result.error = err;
        return result;
    }
    result.snapshot = std::move(snap);
    return result;
}

} // namespace pcstall::trace
