/**
 * @file
 * The versioned, self-describing binary epoch-trace format
 * (docs/trace_format.md).
 *
 * A trace records everything an epoch-boundary observer of a live run
 * saw: the run's configuration (V/f table, power parameters, fault
 * seeds), one frame per DVFS epoch (the physical per-CU and
 * per-wavefront counters, resident-wave snapshots, optional
 * fork-pre-execute sweep, and the decisions the captured controller
 * made), an optional PC-table snapshot, and a trailer with run totals
 * and an FNV-1a checksum over the whole file. That is sufficient to
 * re-drive any controller through trace::ReplayDriver without
 * instantiating the GPU timing model.
 *
 * File layout (all multi-byte integers little-endian):
 *
 *   "PCTR"  u16 version  u16 reserved
 *   repeated sections: u8 tag, varint payload length, payload
 *     META   (exactly once, first)
 *     FRAME  (once per epoch, in time order)
 *     PCSNAP (at most once)
 *     END    (exactly once, last; trailer + checksum of all prior
 *             file bytes)
 *
 * Hot counters inside FRAME payloads are LEB128 varints, signed values
 * zigzag-coded, and epoch timestamps delta-coded against the previous
 * frame, so traces stay compact at fine epoch lengths.
 */

#ifndef PCSTALL_TRACE_FORMAT_HH
#define PCSTALL_TRACE_FORMAT_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dvfs/controller.hh"
#include "faults/fault_config.hh"
#include "gpu/epoch_stats.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"
#include "sim/experiment.hh"
#include "trace/snapshot.hh"

namespace pcstall::trace
{

/** Current trace format version (bumped on any wire change). */
inline constexpr std::uint16_t traceFormatVersion = 1;

/** Hierarchical power-cap wrapper of the captured controller, if any
 *  (needed to reconstruct a NAME+CAP controller for replay). */
struct HierarchicalMeta
{
    bool enabled = false;
    double powerCap = 0.0;
    std::uint32_t reviewEpochs = 0;
    double widenBelow = 0.0;
};

/** Run metadata: everything replay needs besides the frames. */
struct TraceMeta
{
    /** Workload (application) name of the captured run. */
    std::string workload;
    /** Display name of the captured controller (e.g. "PCSTALL"). */
    std::string controller;
    /** Sweep kind the captured controller requested (SweepNeed). */
    std::uint8_t sweepNeed = 0;
    HierarchicalMeta hierarchical;

    // --- RunConfig image ------------------------------------------
    std::uint32_t numCus = 0;
    std::uint32_t waveSlotsPerCu = 0;
    std::uint32_t cusPerDomain = 1;
    Tick epochLen = 0;
    std::uint8_t objective = 0;
    double perfDegradationLimit = 0.0;
    Freq nominalFreq = 0;
    Tick maxSimTime = 0;
    Tick transitionLatency = -1;
    bool collectTrace = false;
    bool watchdogFallback = false;
    bool eccProtectTables = false;
    power::PowerParams power;
    faults::FaultConfig faults;

    /** The run's V/f table (ascending frequency). */
    std::vector<power::VfState> vfStates;

    std::uint32_t numDomains() const
    {
        return cusPerDomain == 0 ? 0 : numCus / cusPerDomain;
    }
};

/** One decision of the captured controller, post-sanitize. */
struct FrameDecision
{
    /** V/f state the controller chose (after sanitizeDecisions). */
    std::size_t decided = 0;
    /** Its instruction prediction (< 0 = no prediction). */
    double predictedInstr = -1.0;
    /** State the domain really ran at (fault-injector outcome). */
    std::size_t applied = 0;
};

/** One epoch boundary of the captured run. */
struct EpochFrame
{
    Tick start = 0;
    Tick end = 0;
    /** End of the energy-accounted span (prorated final epoch). */
    Tick accountedEnd = 0;
    /** True on the application-finished frame (no decisions). */
    bool done = false;
    /** The physical epoch record (pre-telemetry-fault). */
    gpu::EpochRecord record;
    /** Waves resident at the boundary. */
    std::vector<gpu::WaveSnapshot> snapshots;
    /** Fork-pre-execute sweep taken at this boundary, if any. */
    bool hasSweep = false;
    dvfs::AccurateEstimates sweep;
    /** One entry per domain; empty on the final frame. */
    std::vector<FrameDecision> decisions;
};

/** Trailer of a trace file: run totals for replay finalization. */
struct TraceTrailer
{
    std::uint64_t frameCount = 0;
    /** Time of the captured run's last committed instruction. */
    Tick lastCommitTick = 0;
    std::uint64_t totalCommitted = 0;
    /** True when the captured application ran to completion. */
    bool completed = false;
    /** Wall-clock of the captured live run (replay speedup basis). */
    double captureWallMs = 0.0;
};

/** A fully decoded trace file. */
struct TraceData
{
    TraceMeta meta;
    std::vector<EpochFrame> frames;
    /** Embedded predictor snapshot (empty() when absent). */
    PcTableSnapshot pcSnapshot;
    TraceTrailer trailer;
};

/** Build the meta block for a run about to be captured. */
TraceMeta makeTraceMeta(const sim::RunConfig &config,
                        const power::VfTable &table,
                        const std::string &workload,
                        const dvfs::DvfsController &controller,
                        const HierarchicalMeta &hier = {});

/**
 * Reconstruct the RunConfig image a trace was captured under. The GPU
 * timing-model parameters not needed for replay keep their defaults.
 */
sim::RunConfig runConfigFromMeta(const TraceMeta &meta);

/** Reconstruct the captured run's V/f table. */
power::VfTable vfTableFromMeta(const TraceMeta &meta);

/**
 * Streaming trace writer. Writes the header and META section on
 * construction, one FRAME section per writeFrame(), and the END
 * trailer (with the whole-file checksum) on finish(). Any I/O failure
 * is sticky: ok() turns false and later calls are no-ops.
 *
 * Crash-safe: the stream goes to a temporary sibling of @p path that
 * is committed (fsync + atomic rename) only by finish(), so a crashed
 * or killed run never leaves a truncated file at the trace path. The
 * temporary is registered with the signal-exit cleanup list and
 * unlinked by the destructor if finish() was never reached.
 */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, const TraceMeta &meta);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    bool ok() const { return ok_; }
    const std::string &path() const { return path_; }
    std::uint64_t frameCount() const { return frames_; }

    void writeFrame(const EpochFrame &frame);

    /** Embed a predictor snapshot (call at most once, before finish). */
    void writePcSnapshot(const PcTableSnapshot &snap);

    /** Write the END trailer and close the file. */
    void finish(const TraceTrailer &trailer);

  private:
    void writeSection(std::uint8_t tag, const std::string &payload);

    std::string path_;
    /** Temporary the stream actually writes; renamed by finish(). */
    std::string temp_;
    std::ofstream os;
    std::uint64_t hash;
    std::uint64_t frames_ = 0;
    /** Previous frame's end tick (timestamp delta base). */
    Tick prevEnd_ = 0;
    bool ok_ = false;
    bool finished = false;
};

/** Result of reading a trace file. */
struct TraceReadResult
{
    std::optional<TraceData> trace;
    /** Empty on success; a one-line diagnostic otherwise. */
    std::string error;

    bool ok() const { return trace.has_value(); }
};

/**
 * Read and strictly validate a trace file: magic, version, section
 * ordering, per-frame geometry against the META block, trailer frame
 * count, and the whole-file checksum. Truncated or corrupt files are
 * rejected with a diagnostic, never partially decoded.
 */
TraceReadResult readTraceFile(const std::string &path);

/**
 * Epoch observer that streams a live run into a TraceWriter. Wall
 * clock runs from construction to onRunEnd(), giving the trailer's
 * captureWallMs; an optional snapshot provider is invoked at run end
 * to embed the controller's learned PC table.
 */
class TraceCapture : public sim::EpochObserver
{
  public:
    using SnapshotProvider = std::function<PcTableSnapshot()>;

    explicit TraceCapture(TraceWriter &writer);

    /** Embed @p provider()'s snapshot at run end. */
    void setSnapshotProvider(SnapshotProvider provider)
    {
        snapProvider = std::move(provider);
    }

    void onEpoch(const sim::EpochCapture &epoch) override;
    void onRunEnd(const sim::RunResult &result) override;

    bool finished() const { return finished_; }

  private:
    TraceWriter &writer;
    SnapshotProvider snapProvider;
    std::int64_t startNs = 0;
    bool finished_ = false;
};

} // namespace pcstall::trace

#endif // PCSTALL_TRACE_FORMAT_HH
