#include "trace/library.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <unistd.h>

#include "common/logging.hh"
#include "store/atomic_file.hh"

namespace pcstall::trace
{

namespace
{

namespace fs = std::filesystem;

/** Field separator of the canonical key text (same unit separator the
 *  results store uses; never appears in workload/design names). */
constexpr char keySep = '\x1f';

std::uint64_t
fnv1a(const std::string &text, std::uint64_t basis)
{
    std::uint64_t h = basis;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
readFileText(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "";
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
}

} // namespace

std::string
LibraryKey::text() const
{
    // The version slot makes a key-schema change an automatic miss
    // (and an automatic sidecar mismatch) instead of a collision.
    std::string out = "pctl" + std::to_string(libraryKeyVersion);
    out += keySep;
    out += harness;
    out += keySep;
    out += workload;
    out += keySep;
    out += workloadDigest;
    out += keySep;
    // The shared tier addresses the stream, not the cell: the design
    // and run-index slots are blanked so every controller variation
    // resolves to one capture.
    out += shared ? "*" : design;
    out += keySep;
    out += shared ? "*" : std::to_string(runIndex);
    out += keySep;
    out += fingerprint;
    out += keySep;
    out += pcSnapshotIn;
    return out;
}

std::string
LibraryKey::digest() const
{
    const std::string t = text();
    // Two independent FNV-1a passes (offset bases differ) give 128
    // digest bits; the sidecar text guards the residual collision
    // case, exactly like store::keyDigest.
    return hex64(fnv1a(t, 0xCBF29CE484222325ULL)) +
        hex64(fnv1a(t, 0x84222325CBF29CE4ULL));
}

TraceLibrary::TraceLibrary(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty()) {
        error_ = "trace library: empty directory path";
        return;
    }
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        error_ = "trace library: cannot create '" + dir_ +
            "': " + ec.message();
        return;
    }
    if (!fs::is_directory(dir_, ec) || ec) {
        error_ = "trace library: '" + dir_ + "' is not a directory";
    }
}

std::string
TraceLibrary::entryPath(const LibraryKey &key) const
{
    return (fs::path(dir_) / (key.digest() + ".pctrace")).string();
}

std::string
TraceLibrary::keyPath(const LibraryKey &key) const
{
    return (fs::path(dir_) / (key.digest() + ".pckey")).string();
}

TraceLibrary::GetResult
TraceLibrary::get(const LibraryKey &key) const
{
    GetResult out;
    if (!ok())
        return out;
    const std::string trace_path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(trace_path, ec) || ec)
        return out;
    const std::string sidecar = readFileText(keyPath(key));
    if (sidecar.empty())
        return out; // orphan trace: publication never completed
    if (sidecar != key.text()) {
        // A real digest collision. Astronomically unlikely; treated
        // as a miss so the colliding cell simply simulates live.
        warnLimited("trace-library-collision",
                    "trace library: digest collision on '" +
                        key.digest() + "' (simulating live)");
        return out;
    }
    out.status = GetStatus::Hit;
    out.tracePath = trace_path;
    return out;
}

std::string
TraceLibrary::publishKey(const LibraryKey &key) const
{
    if (!ok())
        return error_;
    return store::writeFileAtomic(keyPath(key), key.text());
}

void
TraceLibrary::quarantine(const LibraryKey &key,
                         const std::string &why) const
{
    if (!ok())
        return;
    std::error_code ec;
    const fs::path corrupt = fs::path(dir_) / ".corrupt";
    fs::create_directories(corrupt, ec);
    const std::string suffix = "." + std::to_string(::getpid());
    for (const std::string &path : {entryPath(key), keyPath(key)}) {
        const fs::path src(path);
        if (!fs::exists(src, ec) || ec)
            continue;
        fs::rename(src, corrupt / (src.filename().string() + suffix),
                   ec);
        if (ec)
            fs::remove(src, ec); // cross-device fallback: just drop it
    }
    warn("trace library: quarantined entry " + key.digest() + " (" +
         why + "); recapturing live");
}

std::size_t
TraceLibrary::entryCount() const
{
    if (!ok())
        return 0;
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (de.path().extension() == ".pctrace")
            ++n;
    }
    return n;
}

std::size_t
TraceLibrary::quarantinedCount() const
{
    if (!ok())
        return 0;
    std::size_t n = 0;
    std::error_code ec;
    const fs::path corrupt = fs::path(dir_) / ".corrupt";
    if (!fs::is_directory(corrupt, ec) || ec)
        return 0;
    for (const auto &de : fs::directory_iterator(corrupt, ec)) {
        (void)de;
        ++n;
    }
    return n;
}

std::vector<TraceLibrary::Entry>
TraceLibrary::entries() const
{
    std::vector<Entry> out;
    if (!ok())
        return out;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (de.path().extension() != ".pctrace")
            continue;
        Entry e;
        e.digest = de.path().stem().string();
        e.keyText = readFileText(
            (fs::path(dir_) / (e.digest + ".pckey")).string());
        e.bytes = fs::file_size(de.path(), ec);
        if (ec)
            e.bytes = 0;
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  return a.digest < b.digest;
              });
    return out;
}

std::size_t
TraceLibrary::gcOrphans() const
{
    if (!ok())
        return 0;
    std::size_t removed = 0;
    std::error_code ec;
    std::vector<fs::path> doomed;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        const fs::path &p = de.path();
        const std::string ext = p.extension().string();
        const fs::path stemmed = p.parent_path() / p.stem();
        if (ext == ".pctrace") {
            if (!fs::exists(stemmed.string() + ".pckey", ec))
                doomed.push_back(p);
        } else if (ext == ".pckey") {
            if (!fs::exists(stemmed.string() + ".pctrace", ec))
                doomed.push_back(p);
        } else if (p.filename().string().find(".tmp.") !=
                   std::string::npos) {
            // A crashed capture's staging file; no live writer holds
            // it by the time a gc runs.
            doomed.push_back(p);
        }
    }
    for (const fs::path &p : doomed) {
        if (fs::remove(p, ec) && !ec)
            ++removed;
    }
    return removed;
}

} // namespace pcstall::trace
