/**
 * @file
 * Run contexts: the sharding mechanism that keeps merged metrics and
 * timelines byte-identical across --threads values.
 *
 * A RunContext bundles one Registry and one timeline event buffer.
 * bench::SweepRunner gives every sweep cell (and every prepass
 * baseline) its own context, installs it thread-locally for the span
 * of that cell via ScopedContext, and collects the shards in
 * *submission* order once the parallel phase ends. Merging in that
 * fixed order - never in completion order - is what makes the output
 * independent of scheduling.
 *
 * Code that records metrics only ever asks for the current context
 * (reg() / currentContext()); it does not know or care whether it is
 * running in the process-wide default context (single harness runs)
 * or a per-cell shard.
 */

#ifndef PCSTALL_OBS_CONTEXT_HH
#define PCSTALL_OBS_CONTEXT_HH

#include "obs/metrics.hh"
#include "obs/timeline.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace pcstall::obs
{

/**
 * Globally enable/disable timeline event recording (default: off).
 *
 * @param enabled  True to record timeline events from now on.
 */
void setTimelineEnabled(bool enabled);

/** @return True when timeline recording is enabled. */
bool timelineEnabled();

/** One run's metric registry plus its timeline event buffer. */
struct RunContext
{
    explicit RunContext(std::string label_ = "") : label(std::move(label_))
    {
    }

    std::string label;
    Registry registry;
    /** Timeline events; a single run records single-threaded, so no
     *  lock is needed (SweepRunner scopes one context per cell). */
    std::vector<TimelineEvent> timeline;
};

/**
 * @return The context metrics currently record into: the innermost
 *         ScopedContext on this thread, else the process-wide default.
 */
RunContext &currentContext();

/** @return Shorthand for currentContext().registry. */
Registry &reg();

/**
 * Installs @p ctx as this thread's current context for the scope.
 * Also pushes a fresh warn-rate-limit scope (common/logging.hh), so
 * warnLimited() tallies reset per run instead of accumulating for the
 * process lifetime: every sweep cell reports its own first
 * occurrences.
 */
class ScopedContext
{
  public:
    explicit ScopedContext(RunContext &ctx);
    ~ScopedContext();

    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;

  private:
    RunContext *prev_;
    std::uint64_t prevWarnScope_;
};

/**
 * Append a context's snapshot and timeline to the process-wide
 * collection. Call in submission order (SweepRunner does) so that
 * collectedSnapshot() / collectedTimelines() are deterministic.
 *
 * @param ctx  The finished run context to collect.
 */
void collectContext(const RunContext &ctx);

/**
 * Append a pre-built snapshot (and optional timeline) at the current
 * collection position - the seam the results store replays a
 * checkpointed cell's deterministic metrics shard through, so a
 * resumed sweep merges byte-identically to an uninterrupted one.
 *
 * @param label     Timeline label (unused when @p timeline is empty).
 * @param snapshot  The metrics shard to collect.
 * @param timeline  Timeline events to collect (may be empty).
 */
void collectShard(std::string label, MetricsSnapshot snapshot,
                  std::vector<TimelineEvent> timeline = {});

/**
 * @return Merge of every collected shard (in collection order) plus
 *         the process default context last.
 */
MetricsSnapshot collectedSnapshot();

/** @return Collected timelines plus the default context's (labelled
 *          "main") when non-empty, in collection order. */
std::vector<RunTimeline> collectedTimelines();

/** Test hook: drop all collected shards and reset the default
 *  context, the enabled flags, and logging rate limits. */
void resetAll();

} // namespace pcstall::obs

#endif // PCSTALL_OBS_CONTEXT_HH
