#include "obs/export.hh"

#include "obs/timeline.hh" // jsonNumber / jsonString

#include <cctype>

namespace pcstall::obs
{

namespace
{

void
writeHistogramJson(std::ostream &os, const HistogramSnapshot &h)
{
    os << "{\"count\":" << h.count << ",\"sum\":" << jsonNumber(h.sum)
       << ",\"min\":" << jsonNumber(h.min)
       << ",\"max\":" << jsonNumber(h.max)
       << ",\"p50\":" << jsonNumber(h.percentile(0.50))
       << ",\"p95\":" << jsonNumber(h.percentile(0.95))
       << ",\"p99\":" << jsonNumber(h.percentile(0.99))
       << ",\"buckets\":[";
    bool first = true;
    for (const auto &[idx, n] : h.buckets) {
        if (!first)
            os << ',';
        first = false;
        os << "[" << jsonNumber(Histogram::upperEdge(idx)) << ','
           << n << ']';
    }
    os << "],\"overflow\":" << h.overflow << '}';
}

/** Writes the three metric maps of one section, filtered by kind. */
void
writeSectionJson(std::ostream &os, const MetricsSnapshot &snap,
                 MetricKind kind, const char *indent)
{
    os << indent << "\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : snap.counters) {
        if (snap.kindOf(name) != kind)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '\n' << indent << "  " << jsonString(name) << ':' << v;
    }
    os << (first ? "" : "\n") << (first ? "" : indent) << "},\n";
    os << indent << "\"gauges\":{";
    first = true;
    for (const auto &[name, v] : snap.gauges) {
        if (snap.kindOf(name) != kind)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '\n' << indent << "  " << jsonString(name) << ':'
           << jsonNumber(v);
    }
    os << (first ? "" : "\n") << (first ? "" : indent) << "},\n";
    os << indent << "\"histograms\":{";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        if (snap.kindOf(name) != kind)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '\n' << indent << "  " << jsonString(name) << ':';
        writeHistogramJson(os, h);
    }
    os << (first ? "" : "\n") << (first ? "" : indent) << "}";
}

std::string
promName(const std::string &name)
{
    std::string out = "pcstall_";
    for (const char c : name)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out;
}

} // namespace

void
writeMetricsJson(std::ostream &os, const MetricsSnapshot &snap,
                 bool include_timing)
{
    os << "{\n\"schema\":\"pcstall-metrics-v1\",\n";
    writeSectionJson(os, snap, MetricKind::Deterministic, "");
    if (include_timing) {
        os << ",\n\"timing\":{\n";
        writeSectionJson(os, snap, MetricKind::Timing, "  ");
        os << "\n}";
    }
    os << "\n}\n";
}

void
writeMetricsPrometheus(std::ostream &os, const MetricsSnapshot &snap)
{
    for (const auto &[name, v] : snap.counters) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " counter\n" << p << ' ' << v << '\n';
    }
    for (const auto &[name, v] : snap.gauges) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n"
           << p << ' ' << jsonNumber(v) << '\n';
    }
    for (const auto &[name, h] : snap.histograms) {
        const std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        std::uint64_t cum = 0;
        for (const auto &[idx, n] : h.buckets) {
            cum += n;
            os << p << "_bucket{le=\""
               << jsonNumber(Histogram::upperEdge(idx)) << "\"} "
               << cum << '\n';
        }
        os << p << "_bucket{le=\"+Inf\"} " << h.count << '\n';
        os << p << "_sum " << jsonNumber(h.sum) << '\n';
        os << p << "_count " << h.count << '\n';
    }
}

} // namespace pcstall::obs
