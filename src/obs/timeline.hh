/**
 * @file
 * Timeline event model and Chrome trace-event / Perfetto JSON writer.
 *
 * Events are stamped with *simulated* time (microseconds), never wall
 * clock, so a run's timeline is a pure function of the simulation and
 * byte-identical across --threads values. Each run becomes one Chrome
 * "process" (pid = collection order, assigned at write time); track 0
 * is the run-level track (oracle forks, injected faults) and tracks
 * 1..D are the V/f domains. Open the output in https://ui.perfetto.dev
 * or chrome://tracing (docs/observability.md has the schema).
 */

#ifndef PCSTALL_OBS_TIMELINE_HH
#define PCSTALL_OBS_TIMELINE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pcstall::obs
{

/** One timeline event; maps 1:1 onto a Chrome trace-event object. */
struct TimelineEvent
{
    /** Chrome phase: 'X' span, 'i' instant, 'M' metadata. */
    char phase = 'X';
    std::string name;
    /** Track within the run (Chrome tid). 0 = run-level track. */
    std::uint32_t track = 0;
    /** Event start in simulated microseconds. */
    double tsUs = 0.0;
    /** Span duration in simulated microseconds ('X' only). */
    double durUs = 0.0;
    /** (key, raw JSON value) argument pairs, emitted in order. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Build a span ('X') event.
 *
 * @param name    Event name shown on the track.
 * @param track   Track within the run (0 = run-level).
 * @param ts_us   Span start in simulated microseconds.
 * @param dur_us  Span duration in simulated microseconds.
 * @return The populated event (args empty; append as needed).
 */
TimelineEvent spanEvent(std::string name, std::uint32_t track,
                        double ts_us, double dur_us);

/**
 * Build an instant ('i') event.
 *
 * @param name   Event name shown on the track.
 * @param track  Track within the run (0 = run-level).
 * @param ts_us  Instant in simulated microseconds.
 * @return The populated event (args empty; append as needed).
 */
TimelineEvent instantEvent(std::string name, std::uint32_t track,
                           double ts_us);

/**
 * Build the Chrome "thread_name" metadata event naming a track.
 *
 * @param track  Track to name.
 * @param name   Human-readable track name.
 * @return The metadata ('M') event.
 */
TimelineEvent trackNameEvent(std::uint32_t track, std::string name);

/**
 * @param v  Value to format.
 * @return JSON-number fragment of @p v ("%.9g").
 */
std::string jsonNumber(double v);

/**
 * @param s  Text to quote.
 * @return JSON-string fragment of @p s (quoted, escaped).
 */
std::string jsonString(const std::string &s);

/** One collected run's timeline, labelled for the process name. */
struct RunTimeline
{
    std::string label;
    std::vector<TimelineEvent> events;
};

/**
 * Write collected timelines as one Chrome trace-event JSON document.
 * Process ids are the indices of @p runs, so a submission-ordered
 * collection yields byte-identical output for every thread count.
 *
 * @param os    Destination stream.
 * @param runs  One entry per run, in collection order.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<RunTimeline> &runs);

} // namespace pcstall::obs

#endif // PCSTALL_OBS_TIMELINE_HH
