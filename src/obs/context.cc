#include "obs/context.hh"

#include "common/logging.hh"

#include <memory>
#include <mutex>

namespace pcstall::obs
{

namespace
{

std::atomic<bool> g_timeline_enabled{false};

thread_local RunContext *t_current = nullptr;

std::mutex &
defaultMutex()
{
    static std::mutex m;
    return m;
}

std::unique_ptr<RunContext> &
defaultSlot()
{
    static std::unique_ptr<RunContext> ctx;
    return ctx;
}

RunContext &
defaultContext()
{
    const std::lock_guard<std::mutex> lock(defaultMutex());
    auto &slot = defaultSlot();
    if (slot == nullptr)
        slot = std::make_unique<RunContext>("main");
    return *slot;
}

struct Collected
{
    std::mutex mutex;
    std::vector<MetricsSnapshot> snapshots;
    std::vector<RunTimeline> timelines;
};

Collected &
collected()
{
    static Collected c;
    return c;
}

} // namespace

void
setTimelineEnabled(bool enabled)
{
    g_timeline_enabled.store(enabled, std::memory_order_relaxed);
}

bool
timelineEnabled()
{
    return g_timeline_enabled.load(std::memory_order_relaxed);
}

RunContext &
currentContext()
{
    if (t_current != nullptr)
        return *t_current;
    return defaultContext();
}

Registry &
reg()
{
    return currentContext().registry;
}

ScopedContext::ScopedContext(RunContext &ctx)
    : prev_(t_current), prevWarnScope_(pushWarnScope())
{
    t_current = &ctx;
}

ScopedContext::~ScopedContext()
{
    popWarnScope(prevWarnScope_);
    t_current = prev_;
}

void
collectContext(const RunContext &ctx)
{
    collectShard(ctx.label, ctx.registry.snapshot(), ctx.timeline);
}

void
collectShard(std::string label, MetricsSnapshot snapshot,
             std::vector<TimelineEvent> timeline)
{
    Collected &c = collected();
    const std::lock_guard<std::mutex> lock(c.mutex);
    c.snapshots.push_back(std::move(snapshot));
    if (!timeline.empty()) {
        c.timelines.push_back(
            RunTimeline{std::move(label), std::move(timeline)});
    }
}

MetricsSnapshot
collectedSnapshot()
{
    MetricsSnapshot out;
    {
        Collected &c = collected();
        const std::lock_guard<std::mutex> lock(c.mutex);
        for (const MetricsSnapshot &shard : c.snapshots)
            out.merge(shard);
    }
    out.merge(defaultContext().registry.snapshot());
    return out;
}

std::vector<RunTimeline>
collectedTimelines()
{
    std::vector<RunTimeline> out;
    {
        Collected &c = collected();
        const std::lock_guard<std::mutex> lock(c.mutex);
        out = c.timelines;
    }
    RunContext &def = defaultContext();
    if (!def.timeline.empty())
        out.push_back(RunTimeline{def.label, def.timeline});
    return out;
}

void
resetAll()
{
    {
        Collected &c = collected();
        const std::lock_guard<std::mutex> lock(c.mutex);
        c.snapshots.clear();
        c.timelines.clear();
    }
    {
        const std::lock_guard<std::mutex> lock(defaultMutex());
        defaultSlot().reset();
    }
    setMetricsEnabled(false);
    setTimelineEnabled(false);
    resetWarnLimits();
}

} // namespace pcstall::obs
