/**
 * @file
 * Metrics snapshot exporters: the pcstall-metrics-v1 JSON document and
 * Prometheus text exposition. Both sort by metric name; the JSON
 * writer segregates Timing-kind metrics into a "timing" section so
 * determinism checks can compare only the deterministic part
 * (tools/check_obs_schema.py --canonical strips it).
 */

#ifndef PCSTALL_OBS_EXPORT_HH
#define PCSTALL_OBS_EXPORT_HH

#include "obs/metrics.hh"

#include <ostream>

namespace pcstall::obs
{

/**
 * Write a snapshot as pcstall-metrics-v1 JSON. Deterministic metrics
 * go in top-level "counters"/"gauges"/"histograms" maps; Timing-kind
 * metrics in the mirrored "timing" object.
 *
 * @param os              Destination stream.
 * @param snap            The snapshot to serialize.
 * @param include_timing  False drops the wall-clock section entirely.
 */
void writeMetricsJson(std::ostream &os, const MetricsSnapshot &snap,
                      bool include_timing = true);

/**
 * Write a snapshot in Prometheus text exposition format (one family
 * per metric; histograms become cumulative _bucket{le=...}/_sum/_count
 * series). Metric names are sanitized to [a-zA-Z0-9_].
 *
 * @param os    Destination stream.
 * @param snap  The snapshot to serialize.
 */
void writeMetricsPrometheus(std::ostream &os,
                            const MetricsSnapshot &snap);

} // namespace pcstall::obs

#endif // PCSTALL_OBS_EXPORT_HH
