/**
 * @file
 * The metrics core of the observability subsystem (docs/observability.md):
 * monotonic counters, gauges, log-scale histograms with
 * p50/p95/p99, and RAII scoped timers, collected in named registries.
 *
 * Design constraints, in order:
 *
 *  1. *Near-zero cost when disabled.* Every recording call is gated on
 *     one relaxed atomic-bool load; no clock is read and no lock is
 *     taken unless metrics are enabled (off by default; harnesses
 *     enable on --metrics-out / --timeline-out / --verbose).
 *
 *  2. *Deterministic parallel merges.* Metrics are sharded per run
 *     context: each sweep cell (and each prepass baseline) records
 *     into its own Registry, installed thread-locally for the span of
 *     the cell, and bench::SweepRunner collects the shards in
 *     submission order. Merging snapshots in that fixed order makes
 *     the merged output byte-identical for every --threads value -
 *     including double-valued histogram sums, which are not
 *     commutative under reordering.
 *
 *  3. *Wall-clock metrics are quarantined.* Timing-kind metrics
 *     (scoped timers, queue waits) can never be deterministic, so
 *     every metric carries a MetricKind and the exporters segregate
 *     the timing section; determinism checks compare only the
 *     deterministic part (tools/check_obs_schema.py --canonical).
 *
 * Hot simulation paths should keep plain member counters (e.g.
 * predict::PcSensitivityTable's telemetry) and flush them into the
 * current registry once per run; registries are for per-epoch and
 * per-run granularity recording.
 */

#ifndef PCSTALL_OBS_METRICS_HH
#define PCSTALL_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pcstall::obs
{

/**
 * Globally enable/disable metric recording (default: disabled).
 *
 * @param enabled  True to record metrics from now on.
 */
void setMetricsEnabled(bool enabled);

/** @return True when metric recording is enabled (one relaxed atomic
 *          load). */
bool metricsEnabled();

/**
 * Deterministic metrics are pure functions of the simulated run and
 * merge byte-identically for any thread count; Timing metrics carry
 * wall-clock measurements and live in a separate exporter section.
 */
enum class MetricKind { Deterministic, Timing };

/** Monotonic counter (thread-safe, relaxed). */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if (metricsEnabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (thread-safe). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (metricsEnabled())
            value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Exported image of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Sparse (bucket index, count) pairs, ascending by index. */
    std::vector<std::pair<int, std::uint64_t>> buckets;
    /** Values >= the largest bucket edge. */
    std::uint64_t overflow = 0;

    /**
     * Estimated quantile (log-linear interpolation, clamped to the
     * observed [min, max]).
     *
     * @param p  Quantile in [0, 1] (0.5 = median).
     * @return The estimated value at quantile @p p.
     */
    double percentile(double p) const;

    /**
     * Merge another snapshot into this one (bucket-wise;
     * order-independent for integer fields, caller fixes the order
     * for the double sum).
     *
     * @param other  Snapshot to fold in; left unchanged.
     */
    void merge(const HistogramSnapshot &other);
};

/**
 * Log-scale histogram: 4 buckets per octave over [2^-32, 2^48), plus
 * an underflow bucket (values < 2^-32, including zero) and an
 * overflow tail. Covers sub-nanosecond fractions up to ~10^14 with
 * <= 19% relative bucket error, good enough for p50/p95/p99 of both
 * wall-clock nanoseconds and percentage-scale model errors.
 */
class Histogram
{
  public:
    static constexpr int bucketsPerOctave = 4;
    static constexpr int minExp = -32;
    static constexpr int maxExp = 48;
    /** Number of finite bucket edges. */
    static constexpr int numEdges =
        (maxExp - minExp) * bucketsPerOctave;

    void record(double value);

    HistogramSnapshot snapshot() const;

    /**
     * @param idx  Bucket index (0 = underflow bucket).
     * @return Upper edge of bucket @p idx.
     */
    static double upperEdge(int idx);

  private:
    mutable std::mutex mutex;
    /** counts[0] = underflow; counts[1..numEdges] = finite buckets. */
    std::vector<std::uint64_t> counts;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Exported image of one registry (or a merge of many). */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    /** Kind per metric name (absent = Deterministic). */
    std::map<std::string, MetricKind> kinds;

    /**
     * Merge another snapshot into this one. Counters and histogram
     * buckets add; gauges take the other snapshot's value.
     * Double-valued sums accumulate in call order, so merging shards
     * in a fixed (submission) order yields byte-identical results
     * regardless of which threads produced them.
     *
     * @param other  Snapshot to fold in; left unchanged.
     */
    void merge(const MetricsSnapshot &other);

    MetricKind kindOf(const std::string &name) const;
};

/**
 * A named collection of metrics. Handles returned by counter() /
 * gauge() / histogram() are stable for the registry's lifetime, so
 * per-run objects (EpochLedger, drivers) cache them once instead of
 * re-resolving names per epoch.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name,
                     MetricKind kind = MetricKind::Deterministic);
    Gauge &gauge(const std::string &name,
                 MetricKind kind = MetricKind::Deterministic);
    Histogram &histogram(const std::string &name,
                         MetricKind kind = MetricKind::Deterministic);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, MetricKind> kinds;
};

// --- wall-clock helpers (timing-kind metrics) -----------------------

/** @return steady_clock now in ns, or -1 when metrics are disabled. */
std::int64_t nowNsIfEnabled();

/**
 * Record an elapsed wall time into a histogram.
 *
 * @param hist   Destination (Timing-kind) histogram.
 * @param t0_ns  Start stamp from nowNsIfEnabled(); values < 0 (metrics
 *               were disabled at the start) make this a no-op.
 */
void recordSinceNs(Histogram &hist, std::int64_t t0_ns);

/**
 * RAII timer: records the scope's wall time into a histogram and/or
 * adds it to a counter. Reads no clock when metrics are disabled.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *hist, Counter *total_ns = nullptr)
        : hist_(hist), total_(total_ns), t0_(nowNsIfEnabled())
    {
    }

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *hist_;
    Counter *total_;
    std::int64_t t0_;
};

} // namespace pcstall::obs

#endif // PCSTALL_OBS_METRICS_HH
