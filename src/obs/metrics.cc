#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace pcstall::obs
{

namespace
{
std::atomic<bool> g_enabled{false};
} // namespace

void
setMetricsEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

// --- Histogram ------------------------------------------------------

double
Histogram::upperEdge(int idx)
{
    // Bucket 0 (underflow) ends at the smallest finite edge.
    const int clamped = std::clamp(idx, 0, numEdges);
    return std::exp2(static_cast<double>(minExp) +
                     static_cast<double>(clamped) /
                         static_cast<double>(bucketsPerOctave));
}

namespace
{

/** Bucket index of @p value: 0 = underflow, 1..numEdges finite,
 *  numEdges + 1 = overflow. */
int
bucketOf(double value)
{
    if (!(value >= 0.0))
        return 0; // negative or NaN: count as underflow
    const double lg = std::log2(value);
    if (lg < static_cast<double>(Histogram::minExp))
        return 0;
    const int idx = static_cast<int>(std::floor(
                        (lg - Histogram::minExp) *
                        Histogram::bucketsPerOctave)) + 1;
    return std::min(idx, Histogram::numEdges + 1);
}

} // namespace

void
Histogram::record(double value)
{
    if (!metricsEnabled())
        return;
    const int idx = bucketOf(value);
    const std::lock_guard<std::mutex> lock(mutex);
    if (counts.empty())
        counts.assign(numEdges + 1, 0);
    if (idx > numEdges)
        ++overflow;
    else
        ++counts[static_cast<std::size_t>(idx)];
    if (count == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count;
    sum += value;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    const std::lock_guard<std::mutex> lock(mutex);
    out.count = count;
    out.sum = sum;
    out.min = min_;
    out.max = max_;
    out.overflow = overflow;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] != 0)
            out.buckets.emplace_back(static_cast<int>(i), counts[i]);
    }
    return out;
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    const double target = p * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (const auto &[idx, n] : buckets) {
        if (static_cast<double>(seen + n) >= target) {
            // Interpolate within the bucket's [lower, upper) span.
            const double lower =
                idx == 0 ? min : Histogram::upperEdge(idx - 1);
            const double upper = Histogram::upperEdge(idx);
            const double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(n);
            const double v = lower + frac * (upper - lower);
            return std::clamp(v, min, max);
        }
        seen += n;
    }
    return max; // target falls in the overflow tail
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    overflow += other.overflow;
    std::map<int, std::uint64_t> merged(buckets.begin(), buckets.end());
    for (const auto &[idx, n] : other.buckets)
        merged[idx] += n;
    buckets.assign(merged.begin(), merged.end());
}

// --- MetricsSnapshot ------------------------------------------------

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges)
        gauges[name] = v;
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);
    for (const auto &[name, k] : other.kinds)
        kinds.emplace(name, k);
}

MetricKind
MetricsSnapshot::kindOf(const std::string &name) const
{
    const auto it = kinds.find(name);
    return it == kinds.end() ? MetricKind::Deterministic : it->second;
}

// --- Registry -------------------------------------------------------

Counter &
Registry::counter(const std::string &name, MetricKind kind)
{
    const std::lock_guard<std::mutex> lock(mutex);
    auto &slot = counters[name];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
        kinds.emplace(name, kind);
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, MetricKind kind)
{
    const std::lock_guard<std::mutex> lock(mutex);
    auto &slot = gauges[name];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
        kinds.emplace(name, kind);
    }
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, MetricKind kind)
{
    const std::lock_guard<std::mutex> lock(mutex);
    auto &slot = histograms[name];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>();
        kinds.emplace(name, kind);
    }
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot out;
    const std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[name, c] : counters)
        out.counters[name] = c->value();
    for (const auto &[name, g] : gauges)
        out.gauges[name] = g->value();
    for (const auto &[name, h] : histograms)
        out.histograms[name] = h->snapshot();
    out.kinds = kinds;
    return out;
}

// --- timing helpers -------------------------------------------------

std::int64_t
nowNsIfEnabled()
{
    if (!metricsEnabled())
        return -1;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
recordSinceNs(Histogram &hist, std::int64_t t0_ns)
{
    if (t0_ns < 0)
        return;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    hist.record(static_cast<double>(now - t0_ns));
}

ScopedTimer::~ScopedTimer()
{
    if (t0_ < 0)
        return;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    const double ns = static_cast<double>(now - t0_);
    if (hist_ != nullptr)
        hist_->record(ns);
    if (total_ != nullptr)
        total_->add(static_cast<std::uint64_t>(ns));
}

} // namespace pcstall::obs
