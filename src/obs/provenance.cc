#include "obs/provenance.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "trace/wire.hh"

namespace pcstall::obs
{

using trace::Cursor;
using trace::fnv1a;
using trace::fnvSeed;
using trace::putBool;
using trace::putDouble;
using trace::putFixed64;
using trace::putString;
using trace::putVarint;
using trace::putZigzag;

namespace
{

// Section tags of the PCPV container.
constexpr std::uint8_t tagMeta = 1;
constexpr std::uint8_t tagRecord = 2;
constexpr std::uint8_t tagEnd = 0xFF;

/** Reference-sum clamp for the relative regret forms. */
constexpr double relFloor = 1e-12;

double
relTo(double delta, double reference)
{
    return delta / std::max(std::abs(reference), relFloor);
}

} // namespace

double
DecisionRecord::chosenScoreSum() const
{
    double sum = 0.0;
    for (const DomainDecisionProv &d : domains)
        sum += d.chosenScore;
    return sum;
}

double
DecisionRecord::bestScoreSum() const
{
    double sum = 0.0;
    for (const DomainDecisionProv &d : domains)
        sum += d.bestScore;
    return sum;
}

double
DecisionRecord::nominalScoreSum() const
{
    double sum = 0.0;
    for (const DomainDecisionProv &d : domains)
        sum += d.nominalScore;
    return sum;
}

double
DecisionRecord::oracleRegret() const
{
    return realized ? chosenScoreSum() - bestScoreSum() : 0.0;
}

double
DecisionRecord::staticRegret() const
{
    return realized ? chosenScoreSum() - nominalScoreSum() : 0.0;
}

double
DecisionRecord::oracleRegretRel() const
{
    return realized ? relTo(oracleRegret(), bestScoreSum()) : 0.0;
}

double
DecisionRecord::staticRegretRel() const
{
    return realized ? relTo(staticRegret(), nominalScoreSum()) : 0.0;
}

void
RegretSummary::add(double oracle_rel, double static_rel)
{
    if (buckets.empty())
        buckets.assign(numBuckets, 0);
    ++count;
    oracleSum += oracle_rel;
    oracleMax = std::max(oracleMax, oracle_rel);
    staticSum += static_rel;

    std::size_t idx = 0;
    if (oracle_rel >= std::ldexp(1.0, maxExp)) {
        idx = numBuckets - 1;
    } else if (oracle_rel >= std::ldexp(1.0, minExp)) {
        const double pos =
            std::floor(std::log2(oracle_rel) * bucketsPerOctave);
        idx = 1 + static_cast<std::size_t>(
            static_cast<long>(pos) -
            static_cast<long>(minExp) * bucketsPerOctave);
        idx = std::min(idx, numBuckets - 2);
    }
    ++buckets[idx];
}

void
RegretSummary::merge(const RegretSummary &other)
{
    if (other.count == 0)
        return;
    if (buckets.empty())
        buckets.assign(numBuckets, 0);
    count += other.count;
    oracleSum += other.oracleSum;
    oracleMax = std::max(oracleMax, other.oracleMax);
    staticSum += other.staticSum;
    const std::size_t n = std::min(buckets.size(),
                                   other.buckets.size());
    for (std::size_t i = 0; i < n; ++i)
        buckets[i] += other.buckets[i];
}

double
RegretSummary::meanOracle() const
{
    return count > 0 ? oracleSum / static_cast<double>(count) : 0.0;
}

double
RegretSummary::meanStatic() const
{
    return count > 0 ? staticSum / static_cast<double>(count) : 0.0;
}

double
RegretSummary::percentile(double p) const
{
    if (count == 0 || buckets.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen < target)
            continue;
        if (i == 0)
            return std::ldexp(1.0, minExp);
        if (i == buckets.size() - 1)
            return oracleMax;
        // Upper edge of finite bucket i.
        const double exp2 = static_cast<double>(minExp) +
            static_cast<double>(i) / bucketsPerOctave;
        return std::min(std::exp2(exp2), oracleMax);
    }
    return oracleMax;
}

namespace
{

std::string
encodeMeta(const ProvenanceMeta &meta)
{
    std::string out;
    putString(out, meta.workload);
    putString(out, meta.controller);
    putString(out, meta.objective);
    putZigzag(out, meta.epochLen);
    putVarint(out, meta.numDomains);
    putVarint(out, meta.numStates);
    putVarint(out, meta.nominalState);
    putVarint(out, meta.stateFreqMhz.size());
    for (const std::uint32_t mhz : meta.stateFreqMhz)
        putVarint(out, mhz);
    return out;
}

bool
decodeMeta(Cursor &cur, ProvenanceMeta &meta)
{
    meta.workload = cur.getString();
    meta.controller = cur.getString();
    meta.objective = cur.getString();
    meta.epochLen = cur.zigzag();
    meta.numDomains = static_cast<std::uint32_t>(cur.varint());
    meta.numStates = static_cast<std::uint32_t>(cur.varint());
    meta.nominalState = static_cast<std::uint32_t>(cur.varint());
    const std::uint64_t freqs = cur.varint();
    if (cur.failed() || freqs > cur.remaining() ||
        freqs != meta.numStates) {
        return false;
    }
    meta.stateFreqMhz.resize(freqs);
    for (std::uint32_t &mhz : meta.stateFreqMhz)
        mhz = static_cast<std::uint32_t>(cur.varint());
    return !cur.failed() && cur.atEnd() && meta.numDomains > 0 &&
        meta.numStates > 0 && meta.nominalState < meta.numStates;
}

std::string
encodeRecord(const DecisionRecord &rec, std::int64_t prev_start)
{
    std::string out;
    putVarint(out, rec.epoch);
    putZigzag(out, rec.start - prev_start);
    std::uint8_t flags = 0;
    if (rec.fallbackActive)
        flags |= 1;
    if (rec.realized)
        flags |= 2;
    out.push_back(static_cast<char>(flags));
    for (const DomainDecisionProv &d : rec.domains) {
        putVarint(out, d.pcKey);
        putVarint(out, d.lookups);
        putVarint(out, d.hits);
        putVarint(out, d.sameRegion);
        putVarint(out, d.reactive);
        putDouble(out, d.predictedSens);
        putDouble(out, d.predictedLevel);
        putVarint(out, d.elapsedInstr);
        putVarint(out, d.loadStallTicks);
        putVarint(out, d.memAccesses);
        out.push_back(static_cast<char>(d.chosenState));
        out.push_back(static_cast<char>(d.appliedState));
        putDouble(out, d.predictedInstr);
        if (rec.realized) {
            putVarint(out, d.realizedInstr);
            putDouble(out, d.chosenScore);
            putDouble(out, d.bestScore);
            out.push_back(static_cast<char>(d.bestState));
            putDouble(out, d.nominalScore);
        }
    }
    if (rec.realized) {
        for (const double score : rec.stateScores)
            putDouble(out, score);
    }
    return out;
}

bool
decodeRecord(Cursor &cur, const ProvenanceMeta &meta,
             std::int64_t prev_start, DecisionRecord &rec)
{
    rec.epoch = cur.varint();
    rec.start = prev_start + cur.zigzag();
    const std::uint8_t flags = cur.u8();
    if (cur.failed() || (flags & ~0x03) != 0)
        return false;
    rec.fallbackActive = (flags & 1) != 0;
    rec.realized = (flags & 2) != 0;
    rec.domains.resize(meta.numDomains);
    for (DomainDecisionProv &d : rec.domains) {
        d.pcKey = cur.varint();
        d.lookups = static_cast<std::uint32_t>(cur.varint());
        d.hits = static_cast<std::uint32_t>(cur.varint());
        d.sameRegion = static_cast<std::uint32_t>(cur.varint());
        d.reactive = static_cast<std::uint32_t>(cur.varint());
        d.predictedSens = cur.getDouble();
        d.predictedLevel = cur.getDouble();
        d.elapsedInstr = cur.varint();
        d.loadStallTicks = cur.varint();
        d.memAccesses = cur.varint();
        d.chosenState = cur.u8();
        d.appliedState = cur.u8();
        d.predictedInstr = cur.getDouble();
        if (rec.realized) {
            d.realizedInstr = cur.varint();
            d.chosenScore = cur.getDouble();
            d.bestScore = cur.getDouble();
            d.bestState = cur.u8();
            d.nominalScore = cur.getDouble();
        }
        if (cur.failed() || d.chosenState >= meta.numStates ||
            d.appliedState >= meta.numStates ||
            d.bestState >= meta.numStates) {
            return false;
        }
    }
    if (rec.realized) {
        rec.stateScores.resize(meta.numStates);
        for (double &score : rec.stateScores)
            score = cur.getDouble();
    }
    return !cur.failed() && cur.atEnd();
}

std::string
encodeTrailer(const ProvenanceLog &log)
{
    std::string out;
    putVarint(out, log.records.size());
    const RegretSummary &r = log.regret;
    putVarint(out, r.count);
    putDouble(out, r.oracleSum);
    putDouble(out, r.oracleMax);
    putDouble(out, r.staticSum);
    putVarint(out, r.buckets.size());
    for (const std::uint64_t b : r.buckets)
        putVarint(out, b);
    return out;
}

bool
decodeTrailer(Cursor &cur, std::uint64_t &record_count,
              RegretSummary &r)
{
    record_count = cur.varint();
    r.count = cur.varint();
    r.oracleSum = cur.getDouble();
    r.oracleMax = cur.getDouble();
    r.staticSum = cur.getDouble();
    const std::uint64_t buckets = cur.varint();
    if (cur.failed() || buckets > cur.remaining() ||
        (buckets != 0 && buckets != RegretSummary::numBuckets)) {
        return false;
    }
    r.buckets.resize(buckets);
    for (std::uint64_t &b : r.buckets)
        b = cur.varint();
    return !cur.failed();
}

void
putSection(std::string &out, std::uint8_t tag,
           const std::string &payload)
{
    out.push_back(static_cast<char>(tag));
    putVarint(out, payload.size());
    out.append(payload);
}

ProvenanceReadResult
failWith(const std::string &what)
{
    ProvenanceReadResult res;
    res.error = "provenance: " + what;
    return res;
}

} // namespace

std::string
encodeProvenance(const ProvenanceLog &log)
{
    std::string out = "PCPV";
    out.push_back(static_cast<char>(provenanceFormatVersion & 0xFF));
    out.push_back(static_cast<char>(provenanceFormatVersion >> 8));
    out.push_back('\0');
    out.push_back('\0');

    putSection(out, tagMeta, encodeMeta(log.meta));
    std::int64_t prev_start = 0;
    for (const DecisionRecord &rec : log.records) {
        putSection(out, tagRecord, encodeRecord(rec, prev_start));
        prev_start = rec.start;
    }

    // END section: trailer plus the whole-file checksum over every
    // byte that precedes the checksum itself.
    const std::string trailer = encodeTrailer(log);
    out.push_back(static_cast<char>(tagEnd));
    putVarint(out, trailer.size() + 8);
    out.append(trailer);
    putFixed64(out, fnv1a(fnvSeed, out.data(), out.size()));
    return out;
}

ProvenanceReadResult
decodeProvenance(const std::string &bytes)
{
    if (bytes.size() < 8 || bytes.compare(0, 4, "PCPV") != 0)
        return failWith("not a PCPV file (bad magic)");
    const std::uint16_t version = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(bytes[4]) |
        (static_cast<std::uint8_t>(bytes[5]) << 8));
    if (version != provenanceFormatVersion) {
        return failWith("unsupported version " +
                        std::to_string(version));
    }

    ProvenanceLog log;
    bool have_meta = false;
    bool have_end = false;
    std::uint64_t trailer_records = 0;
    std::int64_t prev_start = 0;

    Cursor cur(bytes.data() + 8, bytes.size() - 8);
    while (!cur.atEnd()) {
        if (have_end)
            return failWith("bytes after END section");
        const std::uint8_t tag = cur.u8();
        const std::uint64_t len = cur.varint();
        if (cur.failed() || len > cur.remaining())
            return failWith("truncated section");
        const std::size_t payload_off = bytes.size() - cur.remaining();
        Cursor payload(bytes.data() + payload_off, len);
        // Consume the payload from the outer cursor.
        for (std::uint64_t i = 0; i < len; ++i)
            cur.u8();

        switch (tag) {
        case tagMeta:
            if (have_meta)
                return failWith("duplicate META section");
            if (!decodeMeta(payload, log.meta))
                return failWith("malformed META section");
            have_meta = true;
            break;
        case tagRecord: {
            if (!have_meta)
                return failWith("RECORD before META");
            DecisionRecord rec;
            if (!decodeRecord(payload, log.meta, prev_start, rec))
                return failWith("malformed record " +
                                std::to_string(log.records.size()));
            prev_start = rec.start;
            log.records.push_back(std::move(rec));
            break;
        }
        case tagEnd: {
            if (!have_meta)
                return failWith("END before META");
            if (len < 8)
                return failWith("END section too short");
            // The last 8 payload bytes are the checksum over every
            // file byte before them.
            const std::size_t sum_off = payload_off + len - 8;
            Cursor trailer(bytes.data() + payload_off, len - 8);
            if (!decodeTrailer(trailer, trailer_records, log.regret) ||
                !trailer.atEnd()) {
                return failWith("malformed trailer");
            }
            Cursor sum(bytes.data() + sum_off, 8);
            const std::uint64_t stored = sum.fixed64();
            const std::uint64_t computed =
                fnv1a(fnvSeed, bytes.data(), sum_off);
            if (stored != computed)
                return failWith("checksum mismatch (corrupt file)");
            have_end = true;
            break;
        }
        default:
            return failWith("unknown section tag " +
                            std::to_string(tag));
        }
    }

    if (!have_meta)
        return failWith("missing META section");
    if (!have_end)
        return failWith("missing END section (truncated file)");
    if (trailer_records != log.records.size())
        return failWith("record count mismatch (truncated file)");

    ProvenanceReadResult res;
    res.log = std::move(log);
    return res;
}

ProvenanceReadResult
readProvenanceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return failWith("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is.good() && !is.eof())
        return failWith("read error on '" + path + "'");
    return decodeProvenance(buf.str());
}

} // namespace pcstall::obs
