#include "obs/timeline.hh"

#include <cstdio>

namespace pcstall::obs
{

TimelineEvent
spanEvent(std::string name, std::uint32_t track, double ts_us,
          double dur_us)
{
    TimelineEvent ev;
    ev.phase = 'X';
    ev.name = std::move(name);
    ev.track = track;
    ev.tsUs = ts_us;
    ev.durUs = dur_us;
    return ev;
}

TimelineEvent
instantEvent(std::string name, std::uint32_t track, double ts_us)
{
    TimelineEvent ev;
    ev.phase = 'i';
    ev.name = std::move(name);
    ev.track = track;
    ev.tsUs = ts_us;
    return ev;
}

TimelineEvent
trackNameEvent(std::uint32_t track, std::string name)
{
    TimelineEvent ev;
    ev.phase = 'M';
    ev.name = "thread_name";
    ev.track = track;
    ev.args.emplace_back("name", jsonString(name));
    return ev;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace
{

void
writeEvent(std::ostream &os, const TimelineEvent &ev, std::size_t pid)
{
    os << "{\"name\":" << jsonString(ev.name) << ",\"ph\":\""
       << ev.phase << "\",\"pid\":" << pid << ",\"tid\":" << ev.track;
    if (ev.phase != 'M') {
        os << ",\"ts\":" << jsonNumber(ev.tsUs);
        if (ev.phase == 'X')
            os << ",\"dur\":" << jsonNumber(ev.durUs);
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
    }
    if (!ev.args.empty()) {
        os << ",\"args\":{";
        bool first = true;
        for (const auto &[key, raw] : ev.args) {
            if (!first)
                os << ',';
            first = false;
            os << jsonString(key) << ':' << raw;
        }
        os << '}';
    }
    os << '}';
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<RunTimeline> &runs)
{
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
          "\"pcstall-timeline-v1\"},\"traceEvents\":[";
    bool first = true;
    for (std::size_t pid = 0; pid < runs.size(); ++pid) {
        const RunTimeline &run = runs[pid];
        if (!run.label.empty()) {
            if (!first)
                os << ',';
            first = false;
            TimelineEvent meta;
            meta.phase = 'M';
            meta.name = "process_name";
            meta.track = 0;
            meta.args.emplace_back("name", jsonString(run.label));
            os << '\n';
            writeEvent(os, meta, pid);
        }
        for (const TimelineEvent &ev : run.events) {
            if (!first)
                os << ',';
            first = false;
            os << '\n';
            writeEvent(os, ev, pid);
        }
    }
    os << "\n]}\n";
}

} // namespace pcstall::obs
