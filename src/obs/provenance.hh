/**
 * @file
 * Decision provenance: the per-epoch "why this frequency" record
 * stream behind docs/provenance.md.
 *
 * Every epoch boundary of an audited run yields one DecisionRecord:
 * the predictor inputs the controller consulted (PC key, table
 * hit/miss counts, quantized sensitivity model, stall/memory
 * counters), the chosen and applied V/f state per domain, and - once
 * the next epoch has been observed - the realized outcome: hindsight
 * scores for every candidate state and the regret of the decision
 * against the best-in-hindsight (oracle) and the static-nominal
 * choice. Records are produced inside sim::EpochLedger, which both
 * the live ExperimentDriver and trace::ReplayDriver funnel through in
 * identical order, so a replayed trace re-derives the live run's
 * provenance byte-for-byte.
 *
 * Serialized form is the "PCPV" sidecar format (versioned, sectioned,
 * varint/delta-coded, FNV-1a checksummed - the same wire discipline as
 * the PCTR trace format). Encoding is pure bytes-in/bytes-out here;
 * callers publish through store::writeFileAtomic so readers only ever
 * see whole files.
 *
 * Regret definitions (also in docs/provenance.md):
 *
 *   score(s)      per-domain hindsight score of state s, computed by
 *                 dvfs::scoreStates() from the realized epoch record
 *                 via the STALL estimation model (lower is better).
 *   oracle regret = sum_d score(applied_d) - min_s score(s)_d  >= 0
 *   static regret = sum_d score(applied_d) - score(nominal)_d
 *
 * Relative forms divide by the respective reference sum, clamped away
 * from zero, so "+3.1% EDP vs oracle" style displays stay meaningful.
 */

#ifndef PCSTALL_OBS_PROVENANCE_HH
#define PCSTALL_OBS_PROVENANCE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pcstall::obs
{

/** Current PCPV format version (bumped on any wire change). */
inline constexpr std::uint16_t provenanceFormatVersion = 1;

/** One domain's slice of a DecisionRecord. */
struct DomainDecisionProv
{
    // --- predictor inputs (decision time) -------------------------
    /** PC-table key of the first resident wave (0 = none resident). */
    std::uint64_t pcKey = 0;
    /** Predictor-table lookups for the domain's waves this epoch. */
    std::uint32_t lookups = 0;
    /** Lookups that hit a stored entry. */
    std::uint32_t hits = 0;
    /** Waves predicted from their own fresh same-region model. */
    std::uint32_t sameRegion = 0;
    /** Waves predicted by the reactive fallback (table miss). */
    std::uint32_t reactive = 0;
    /** Predicted phase-model slope d(instr)/d(f GHz), post-lookup. */
    double predictedSens = 0.0;
    /** Predicted phase-model intercept (instruction floor I0). */
    double predictedLevel = 0.0;
    /** Instructions the domain committed in the elapsed (observed)
     *  epoch - what a reactive policy extrapolates from. */
    std::uint64_t elapsedInstr = 0;
    /** Load-stall time of the elapsed epoch, summed over CUs (ticks). */
    std::uint64_t loadStallTicks = 0;
    /** L2-level memory accesses of the elapsed epoch (hits+misses). */
    std::uint64_t memAccesses = 0;

    // --- the decision ---------------------------------------------
    /** Chosen V/f state (post-sanitize). */
    std::uint8_t chosenState = 0;
    /** State the domain really ran at (fault-injector outcome). */
    std::uint8_t appliedState = 0;
    /** Controller's instruction prediction (< 0 = none). */
    double predictedInstr = -1.0;

    // --- realized outcome (valid when the record is realized) -----
    /** Instructions actually committed in the decided epoch. */
    std::uint64_t realizedInstr = 0;
    /** Hindsight score of the applied state. */
    double chosenScore = 0.0;
    /** Hindsight score of the best state. */
    double bestScore = 0.0;
    /** Best-in-hindsight state index. */
    std::uint8_t bestState = 0;
    /** Hindsight score of the static-nominal state. */
    double nominalScore = 0.0;
};

/** One epoch's decision, inputs and realized outcome. */
struct DecisionRecord
{
    /** Epoch index of the *decided* epoch (0-based). */
    std::uint64_t epoch = 0;
    /** Start tick of the decided epoch. */
    std::int64_t start = 0;
    /** True when a watchdog fallback made this decision. */
    bool fallbackActive = false;
    /** False only for a run-final dangling record (the decided epoch
     *  never completed, so no outcome exists). */
    bool realized = false;
    std::vector<DomainDecisionProv> domains;
    /** Chip-level hindsight score per candidate state (each state's
     *  per-domain scores summed); empty unless realized. */
    std::vector<double> stateScores;

    double chosenScoreSum() const;
    double bestScoreSum() const;
    double nominalScoreSum() const;
    /** Absolute regret vs the best-in-hindsight decision (>= 0). */
    double oracleRegret() const;
    /** Absolute regret vs best-static (may be negative). */
    double staticRegret() const;
    /** Relative oracle regret (vs |bestScoreSum|, clamped). */
    double oracleRegretRel() const;
    /** Relative static regret (vs |nominalScoreSum|, clamped). */
    double staticRegretRel() const;
};

/**
 * Compact, order-deterministic regret rollup of one run: enough for
 * mean/p95 leaderboard columns without retaining the record stream.
 * Checkpointed with the cell result (store/cell_codec), so resumed
 * sweeps report identical regret columns.
 */
struct RegretSummary
{
    /** Log-scale bucket layout for relative oracle regret. */
    static constexpr int bucketsPerOctave = 4;
    static constexpr int minExp = -20;
    static constexpr int maxExp = 12;
    /** underflow + finite buckets + overflow. */
    static constexpr std::size_t numBuckets =
        2 + static_cast<std::size_t>(maxExp - minExp) * bucketsPerOctave;

    /** Realized decisions scored. */
    std::uint64_t count = 0;
    /** Sum / max of relative oracle regret. */
    double oracleSum = 0.0;
    double oracleMax = 0.0;
    /** Sum of relative static regret (may be negative). */
    double staticSum = 0.0;
    /** Bucket counts of relative oracle regret (empty until first
     *  add(); sized numBuckets after). */
    std::vector<std::uint64_t> buckets;

    void add(double oracle_rel, double static_rel);

    /** Fold @p other's decisions into this rollup (order-insensitive;
     *  the tournament merges one summary per controller design). */
    void merge(const RegretSummary &other);

    double meanOracle() const;
    double meanStatic() const;
    /** Estimated quantile of relative oracle regret (bucket upper
     *  edge; 0.95 = the leaderboard's p95). */
    double percentile(double p) const;

    bool empty() const { return count == 0; }
};

/** Run identity carried in a PCPV file's META section. */
struct ProvenanceMeta
{
    std::string workload;
    std::string controller;
    /** Objective display name (dvfs::objectiveName). */
    std::string objective;
    std::int64_t epochLen = 0;
    std::uint32_t numDomains = 0;
    std::uint32_t numStates = 0;
    std::uint32_t nominalState = 0;
    /** V/f table frequencies in MHz, ascending (display only). */
    std::vector<std::uint32_t> stateFreqMhz;
};

/** A full provenance stream: meta, records, and the regret rollup. */
struct ProvenanceLog
{
    ProvenanceMeta meta;
    std::vector<DecisionRecord> records;
    RegretSummary regret;
};

/**
 * Serialize @p log as PCPV bytes. Deterministic: identical logs
 * always produce identical bytes. Publish with
 * store::writeFileAtomic() so partially written sidecars never exist.
 */
std::string encodeProvenance(const ProvenanceLog &log);

/** Result of decoding a PCPV image. */
struct ProvenanceReadResult
{
    std::optional<ProvenanceLog> log;
    /** Empty on success; one-line diagnostic otherwise. */
    std::string error;

    bool ok() const { return log.has_value(); }
};

/**
 * Strictly decode PCPV bytes: magic, version, section order, domain /
 * state geometry against META, trailer record count, and the file
 * checksum. Any truncation or corruption is rejected with a
 * diagnostic, never partially decoded.
 */
ProvenanceReadResult decodeProvenance(const std::string &bytes);

/** Read + decodeProvenance() a PCPV file. */
ProvenanceReadResult readProvenanceFile(const std::string &path);

} // namespace pcstall::obs

#endif // PCSTALL_OBS_PROVENANCE_HH
