#include "faults/fault_injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pcstall::faults
{

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg(config),
      telemetryRng(hashCombine(config.seed, 0x7E1E)),
      dvfsRng(hashCombine(config.seed, 0xD4F5)),
      storageRng(hashCombine(config.seed, 0x5707))
{
    fatalIf(cfg.telemetry.sigma < 0.0,
            "fault injector: telemetry sigma must be >= 0");
    fatalIf(cfg.telemetry.dropoutProb < 0.0 ||
                cfg.telemetry.dropoutProb > 1.0,
            "fault injector: dropout probability must be in [0, 1]");
    fatalIf(cfg.dvfs.transitionFailProb < 0.0 ||
                cfg.dvfs.transitionFailProb > 1.0,
            "fault injector: transition-fail probability must be in "
            "[0, 1]");
    fatalIf(cfg.dvfs.extraSwitchLatency < 0,
            "fault injector: extra switch latency must be >= 0");
    fatalIf(cfg.storage.upsetsPerEpoch < 0.0,
            "fault injector: storage upset rate must be >= 0");
}

double
FaultInjector::gaussian(Rng &rng)
{
    // Box-Muller; u1 is kept away from 0 so the log stays finite.
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * 3.14159265358979323846 * u2);
}

TelemetryOutcome
FaultInjector::perturbRecord(gpu::EpochRecord &record, Tick epoch_len)
{
    TelemetryOutcome out;
    if (!cfg.telemetry.enabled)
        return out;

    // Sensors drop out whole, or read with multiplicative Gaussian
    // noise. Perturbed values stay in the counter's physical range so
    // downstream models never see impossible telemetry.
    auto sample = [&](double value, double cap) {
        if (cfg.telemetry.dropoutProb > 0.0 &&
            telemetryRng.chance(cfg.telemetry.dropoutProb)) {
            ++out.dropouts;
            if (value != 0.0)
                ++out.perturbed;
            return 0.0;
        }
        double noisy = value *
            (1.0 + cfg.telemetry.sigma * gaussian(telemetryRng));
        noisy = std::clamp(noisy, 0.0, cap);
        if (noisy != value)
            ++out.perturbed;
        return noisy;
    };
    const double tick_cap = static_cast<double>(epoch_len);
    auto count = [&](std::uint64_t &v) {
        v = static_cast<std::uint64_t>(
            std::llround(sample(static_cast<double>(v), 1e18)));
    };
    auto span = [&](Tick &v) {
        v = static_cast<Tick>(
            std::llround(sample(static_cast<double>(v), tick_cap)));
    };

    for (gpu::CuEpochRecord &cu : record.cus) {
        count(cu.committed);
        count(cu.vmemLoads);
        count(cu.vmemStores);
        span(cu.busy);
        span(cu.loadStall);
        span(cu.storeStall);
        span(cu.leadLoad);
        span(cu.memInterval);
        span(cu.overlap);
    }
    for (gpu::WaveEpochRecord &w : record.waves) {
        if (!w.active)
            continue;
        count(w.committed);
        span(w.memStall);
        span(w.barrierStall);
    }

    sum.telemetryPerturbations += out.perturbed;
    sum.telemetryDropouts += out.dropouts;
    return out;
}

TransitionOutcome
FaultInjector::transition(std::size_t current_state,
                          std::size_t requested_state,
                          const power::VfTable &table)
{
    TransitionOutcome out;
    out.state = std::min(requested_state, table.numStates() - 1);
    if (!cfg.dvfs.enabled)
        return out;

    if (cfg.dvfs.granularity > 0) {
        // A PLL coarser than the V/f table can only realise
        // frequencies on its own grid; floor the request to the grid
        // and run at the nearest legal table state.
        const Freq wanted = table.state(out.state).freq;
        const Freq floored =
            std::max<Freq>(wanted / cfg.dvfs.granularity, 1) *
            cfg.dvfs.granularity;
        out.state = table.nearestIndex(floored);
    }
    if (out.state == current_state)
        return out;

    if (cfg.dvfs.transitionFailProb > 0.0 &&
        dvfsRng.chance(cfg.dvfs.transitionFailProb)) {
        out.state = current_state;
        out.failed = true;
        ++sum.transitionFailures;
        return out;
    }
    out.extraLatency = cfg.dvfs.extraSwitchLatency;
    sum.transitionExtraLatency += out.extraLatency;
    return out;
}

std::uint64_t
FaultInjector::corrupt(predict::PcSensitivityTable &table)
{
    if (!cfg.storage.enabled || cfg.storage.upsetsPerEpoch <= 0.0)
        return 0;

    // Expected-rate draw: the integer part always lands, the
    // fractional part lands probabilistically, so sub-1/epoch rates
    // still inject over long runs.
    const double rate = cfg.storage.upsetsPerEpoch;
    std::uint64_t upsets = static_cast<std::uint64_t>(rate);
    if (storageRng.chance(rate - std::floor(rate)))
        ++upsets;

    std::uint64_t flipped = 0;
    for (std::uint64_t i = 0; i < upsets; ++i) {
        const std::size_t entry = static_cast<std::size_t>(
            storageRng.below(table.config().entries));
        const bool level_field = table.config().storeLevel &&
            storageRng.chance(0.5);
        const std::uint32_t bit =
            static_cast<std::uint32_t>(storageRng.below(8));
        if (table.injectBitFlip(entry, level_field, bit))
            ++flipped;
    }
    sum.tableBitFlips += flipped;
    return flipped;
}

} // namespace pcstall::faults
