/**
 * @file
 * Configuration of the deterministic fault-injection framework.
 *
 * The reproduction otherwise models an idealized DVFS stack: V/f
 * transitions are instantaneous and always succeed, epoch telemetry is
 * noise-free, and predictor storage never corrupts. Real deployments
 * see none of that: measured GPU frequency-switch latencies reach tens
 * of microseconds, on-chip counters are noisy, and small SRAM tables
 * take soft errors. Each fault class below perturbs the simulation at
 * one well-defined seam so controllers can be evaluated for graceful
 * degradation instead of silent trust in perfect inputs.
 *
 * All classes default to disabled; a fully disabled config makes the
 * injector a strict no-op, so fault-free runs remain bit-identical to
 * runs of a build without the framework.
 */

#ifndef PCSTALL_FAULTS_FAULT_CONFIG_HH
#define PCSTALL_FAULTS_FAULT_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace pcstall::faults
{

/** Faults at the V/f transition seam (IVR/FLL imperfections). */
struct DvfsFaultConfig
{
    bool enabled = false;
    /**
     * Probability that a requested state change transiently fails,
     * leaving the domain at its old V/f state for the epoch.
     */
    double transitionFailProb = 0.0;
    /** Extra settle latency added to every successful state change. */
    Tick extraSwitchLatency = 0;
    /**
     * Frequency-granularity quantization: requested frequencies are
     * floored to this grid before snapping back to the nearest table
     * state (0 disables). Models PLLs coarser than the V/f table.
     */
    Freq granularity = 0;
};

/** Faults on harvested epoch telemetry (noisy sensors/counters). */
struct TelemetryFaultConfig
{
    bool enabled = false;
    /** Relative Gaussian noise (sigma as a fraction) per counter. */
    double sigma = 0.0;
    /** Probability a counter read drops out and reads as zero. */
    double dropoutProb = 0.0;
};

/** Faults in predictor storage (soft errors in the PC table SRAM). */
struct StorageFaultConfig
{
    bool enabled = false;
    /** Expected single-bit upsets per table per epoch (may be < 1). */
    double upsetsPerEpoch = 0.0;
};

/** Full fault-injection configuration. */
struct FaultConfig
{
    /** Seed of the injector's private random streams. */
    std::uint64_t seed = 0xF4017ULL;
    DvfsFaultConfig dvfs;
    TelemetryFaultConfig telemetry;
    StorageFaultConfig storage;

    bool
    anyEnabled() const
    {
        return dvfs.enabled || telemetry.enabled || storage.enabled;
    }
};

} // namespace pcstall::faults

#endif // PCSTALL_FAULTS_FAULT_CONFIG_HH
