/**
 * @file
 * The deterministic, seeded fault injector. One instance lives in the
 * experiment driver and perturbs the simulation at three seams:
 *
 *  - telemetry: harvested EpochRecord counters (the *observed* copy,
 *    never the physical record used for energy accounting);
 *  - DVFS transitions: requested state changes may quantize, fail
 *    transiently, or pay extra settle latency;
 *  - predictor storage: single-bit upsets in quantized PC-table
 *    entries (optionally caught by the table's parity scrub).
 *
 * Each fault class draws from its own forked pcstall::Rng stream, so
 * enabling one class never shifts another class's random sequence and
 * every run is reproducible from FaultConfig::seed alone.
 */

#ifndef PCSTALL_FAULTS_FAULT_INJECTOR_HH
#define PCSTALL_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "faults/fault_config.hh"
#include "gpu/epoch_stats.hh"
#include "power/vf_table.hh"
#include "predict/pc_table.hh"

namespace pcstall::faults
{

/** What actually happened to a requested V/f state change. */
struct TransitionOutcome
{
    /** State the domain will really run at next epoch. */
    std::size_t state = 0;
    /** Settle latency added on top of the nominal transition stall. */
    Tick extraLatency = 0;
    /** True when the change transiently failed (state == old state). */
    bool failed = false;
};

/** Per-call result of a telemetry perturbation pass. */
struct TelemetryOutcome
{
    /** Counters whose observed value changed. */
    std::uint64_t perturbed = 0;
    /** Counters that dropped out and read as zero. */
    std::uint64_t dropouts = 0;
};

/** Deterministic fault injector (see file comment). */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** True when any fault class is enabled. */
    bool active() const { return cfg.anyEnabled(); }

    const FaultConfig &config() const { return cfg; }

    /**
     * Apply telemetry noise to an *observed* copy of an epoch record.
     * No-op unless telemetry faults are enabled. @p epoch_len bounds
     * the perturbed stall/interval counters.
     */
    TelemetryOutcome perturbRecord(gpu::EpochRecord &record,
                                   Tick epoch_len);

    /**
     * Resolve a requested V/f state change for one domain against the
     * configured transition faults. Identity when DVFS faults are
     * disabled or the request keeps the current state.
     */
    TransitionOutcome transition(std::size_t current_state,
                                 std::size_t requested_state,
                                 const power::VfTable &table);

    /**
     * Apply this epoch's storage upsets to one PC table instance.
     * Returns the number of bits actually flipped (upsets landing in
     * never-written entries are harmless and not counted).
     */
    std::uint64_t corrupt(predict::PcSensitivityTable &table);

    /** Lifetime totals across all calls. */
    struct Totals
    {
        std::uint64_t telemetryPerturbations = 0;
        std::uint64_t telemetryDropouts = 0;
        std::uint64_t transitionFailures = 0;
        Tick transitionExtraLatency = 0;
        std::uint64_t tableBitFlips = 0;
    };

    const Totals &totals() const { return sum; }

  private:
    /** Standard-normal variate (Box-Muller over the class stream). */
    double gaussian(Rng &rng);

    FaultConfig cfg;
    Rng telemetryRng;
    Rng dvfsRng;
    Rng storageRng;
    Totals sum;
};

} // namespace pcstall::faults

#endif // PCSTALL_FAULTS_FAULT_INJECTOR_HH
