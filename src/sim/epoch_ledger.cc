#include "sim/epoch_ledger.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats_util.hh"
#include "models/estimation.hh"

namespace pcstall::sim
{

EpochLedger::EpochLedger(const RunConfig &config,
                         const power::VfTable &vf_table,
                         const power::PowerModel &power_model,
                         const dvfs::DomainMap &domain_map,
                         std::size_t nominal_idx)
    : cfg(config), table(vf_table), power(power_model),
      domainMap(domain_map), nominalIdx(nominal_idx)
{
    domainState.assign(domainMap.numDomains(), nominalIdx);
    prevPred.assign(domainMap.numDomains(), -1.0);
    avgInstr.assign(domainMap.numDomains(), 0.0);
    freqShare.assign(table.numStates(), 0.0);
    auditEnabled_ = cfg.auditRegret || cfg.provenance != nullptr;
    if (auditEnabled_)
        observedInputs_.resize(domainMap.numDomains());

    obs::Registry &registry = obs::reg();
    epochsMetric = &registry.counter("sim.epochs");
    transitionsMetric = &registry.counter("dvfs.transitions");
    clampedMetric = &registry.counter("dvfs.clamped_decisions");
    errorPctMetric = &registry.histogram("predict.error_pct");
    residencyMetric.reserve(table.numStates());
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        char name[32];
        std::snprintf(name, sizeof(name), "dvfs.residency.s%02zu", s);
        residencyMetric.push_back(&registry.counter(name));
    }
}

void
EpochLedger::observeEpoch(const gpu::EpochRecord &record,
                          const gpu::EpochRecord &observed,
                          Tick epoch_start, Tick accounted_end)
{
    if (auditEnabled_) {
        // Realize the decision whose epoch just completed, then stash
        // the observed inputs the *next* decision will be made from.
        if (pendingValid_)
            realizePending(record);
        for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
            ObservedDomainInputs &in = observedInputs_[d];
            in.instr = 0;
            in.loadStall = 0;
            in.memAccesses = 0;
            const std::uint32_t first = domainMap.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domainMap.cusPerDomain(); ++cu) {
                const gpu::CuEpochRecord &cr = observed.cus[cu];
                in.instr += cr.committed;
                in.loadStall += static_cast<std::uint64_t>(
                    std::max<Tick>(cr.loadStall, 0));
                in.memAccesses += cr.mem.l2Hits + cr.mem.l2Misses +
                    cr.mem.stores;
            }
        }
        ++epochsObserved_;
        lastEpochStart_ = epoch_start;
    }

    // --- prediction accuracy of the decisions made last epoch ---
    for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
        const double actual = dvfs::sumOverDomain(
            domainMap, d, [&](std::uint32_t cu) {
                return static_cast<double>(record.cus[cu].committed);
            });
        if (prevPred[d] >= 0.0 && actual > 0.0) {
            const double err = std::abs(prevPred[d] - actual) / actual;
            accuracySum += clampTo(1.0 - err, 0.0, 1.0);
            ++accuracyN;
            // Relative error as a percentage, capped so one pathological
            // epoch cannot dominate the histogram's overflow tail.
            errorPctMetric->record(std::min(err * 100.0, 1000.0));
        }
    }
    epochsMetric->add(1);

    // --- energy accounting (prorate the final partial epoch) ---
    const Tick eff_len =
        std::max<Tick>(accounted_end - epoch_start, 0);
    if (eff_len > 0) {
        double epoch_energy = 0.0;
        memory::MemActivity total_activity;
        for (std::uint32_t cu = 0; cu < cfg.gpu.numCus; ++cu) {
            const gpu::CuEpochRecord &cr = record.cus[cu];
            const Volts v = table
                .state(domainState[domainMap.domainOf(cu)]).voltage;
            epoch_energy += power.cuEpochEnergy(
                v, cr.freq, cr.committed, cr.mem, eff_len,
                thermal.temperature()).total();
            total_activity += cr.mem;
        }
        epoch_energy += power.memEpochEnergy(total_activity, eff_len);
        energy += epoch_energy;
        thermal.update(epoch_energy / tickSeconds(eff_len),
                       tickSeconds(eff_len));
        const Watts epoch_power = epoch_energy / tickSeconds(eff_len);
        avgPower = avgPower == 0.0 ? epoch_power
            : (1.0 - avgAlpha) * avgPower + avgAlpha * epoch_power;
    }
    for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
        const double instr = dvfs::sumOverDomain(
            domainMap, d, [&](std::uint32_t cu) {
                return static_cast<double>(observed.cus[cu].committed);
            });
        avgInstr[d] = avgInstr[d] == 0.0 ? instr
            : (1.0 - avgAlpha) * avgInstr[d] + avgAlpha * instr;
    }

    // --- frequency residency ---
    for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
        freqShare[domainState[d]] += 1.0;
        residencyMetric[domainState[d]]->add(1);
    }
    domainEpochs += domainMap.numDomains();

    if (cfg.collectTrace) {
        EpochTraceEntry entry;
        entry.start = epoch_start;
        for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
            entry.domainState.push_back(
                static_cast<std::uint8_t>(domainState[d]));
            entry.domainCommitted.push_back(dvfs::sumOverDomain(
                domainMap, d, [&](std::uint32_t cu) {
                    return static_cast<double>(
                        record.cus[cu].committed);
                }));
        }
        traceEntries.push_back(std::move(entry));
    }
}

dvfs::EpochContext
EpochLedger::makeContext(const gpu::EpochRecord &observed,
                         const std::vector<gpu::WaveSnapshot> &snapshots,
                         const dvfs::AccurateEstimates *elapsed,
                         const dvfs::AccurateEstimates *upcoming) const
{
    dvfs::EpochContext ctx{
        observed, snapshots, domainMap, table, power,
        cfg.epochLen, thermal.temperature(), cfg.objective,
        cfg.perfDegradationLimit, nominalIdx,
        elapsed, upcoming, avgPower, &avgInstr, nullptr};
    if (auditEnabled_) {
        audit_.reset(domainMap.numDomains());
        ctx.audit = &audit_;
    }
    return ctx;
}

std::vector<EpochLedger::AppliedTransition>
EpochLedger::applyDecisions(std::vector<dvfs::DomainDecision> &decisions,
                            faults::FaultInjector &injector)
{
    // Never trust a controller's output blindly: repair illegal
    // decisions instead of crashing or applying garbage.
    lastClamped_ = dvfs::sanitizeDecisions(
        decisions, table, domainMap.numDomains(), nominalIdx);
    clampedDecisions += lastClamped_;
    clampedMetric->add(lastClamped_);

    std::vector<AppliedTransition> out(domainMap.numDomains());
    for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
        const std::size_t old_state = domainState[d];
        const faults::TransitionOutcome applied =
            injector.transition(old_state, decisions[d].state, table);
        domainState[d] = applied.state;
        // A failed or re-quantized transition means the predicted
        // state was never applied; don't score that prediction.
        prevPred[d] = applied.state == decisions[d].state
            ? decisions[d].predictedInstr : -1.0;
        out[d] = AppliedTransition{applied.state, applied.extraLatency};
        if (old_state != applied.state) {
            transitions += domainMap.cusPerDomain();
            transitionsMetric->add(domainMap.cusPerDomain());
            const Joules te = power.transitionEnergy(
                table.state(old_state).voltage,
                table.state(applied.state).voltage) *
                domainMap.cusPerDomain();
            transitionEnergy += te;
            energy += te;
        }
    }

    if (auditEnabled_) {
        // Open the decision record; observeEpoch() of the decided
        // epoch (or finalize(), if the run ends first) completes it.
        pending_ = obs::DecisionRecord{};
        pending_.epoch = epochsObserved_;
        pending_.start = lastEpochStart_ + cfg.epochLen;
        pending_.domains.resize(domainMap.numDomains());
        for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
            obs::DomainDecisionProv &p = pending_.domains[d];
            const dvfs::DomainAudit &a = audit_.domains[d];
            p.pcKey = a.pcKey;
            p.lookups = a.lookups;
            p.hits = a.hits;
            p.sameRegion = a.sameRegion;
            p.reactive = a.reactive;
            p.predictedSens = a.predictedSens;
            p.predictedLevel = a.predictedLevel;
            p.elapsedInstr = observedInputs_[d].instr;
            p.loadStallTicks = observedInputs_[d].loadStall;
            p.memAccesses = observedInputs_[d].memAccesses;
            p.chosenState =
                static_cast<std::uint8_t>(decisions[d].state);
            p.appliedState = static_cast<std::uint8_t>(out[d].state);
            p.predictedInstr = decisions[d].predictedInstr;
        }
        pending_.fallbackActive = audit_.fallbackActive;
        pendingValid_ = true;
    }
    return out;
}

void
EpochLedger::realizePending(const gpu::EpochRecord &record)
{
    const std::size_t num_states = table.numStates();
    std::vector<double> instr_at(num_states, 0.0);
    std::vector<double> scores(num_states, 0.0);
    pending_.stateScores.assign(num_states, 0.0);

    for (std::uint32_t d = 0; d < domainMap.numDomains(); ++d) {
        obs::DomainDecisionProv &p = pending_.domains[d];
        std::uint64_t realized = 0;
        std::fill(instr_at.begin(), instr_at.end(), 0.0);
        const std::uint32_t first = domainMap.firstCu(d);
        for (std::uint32_t cu = first;
             cu < first + domainMap.cusPerDomain(); ++cu) {
            const gpu::CuEpochRecord &cr = record.cus[cu];
            realized += cr.committed;
            // The hindsight model: what the realized epoch says each
            // candidate frequency would have committed (STALL
            // decomposition, the paper's implementable baseline).
            for (std::size_t s = 0; s < num_states; ++s) {
                instr_at[s] += models::cuInstrAt(
                    models::EstimationKind::Stall, cr, cfg.epochLen,
                    table.state(s).freq);
            }
        }
        p.realizedInstr = realized;

        dvfs::DomainScoreInputs in;
        in.instrAtState = instr_at;
        in.baselineInstr = static_cast<double>(realized);
        in.baselineActivity =
            dvfs::domainActivity(domainMap, d, record);
        in.numCus = domainMap.cusPerDomain();
        in.staticShare =
            power.params().memStatic / domainMap.numDomains();
        in.epochLen = cfg.epochLen;
        in.temperature = thermal.temperature();
        in.perfDegradationLimit = cfg.perfDegradationLimit;
        in.nominalState = nominalIdx;
        in.avgChipPower = avgPower;
        in.avgInstr = avgInstr[d];
        dvfs::scoreStates(table, power, in, cfg.objective, scores);

        std::size_t best = 0;
        for (std::size_t s = 1; s < num_states; ++s) {
            if (scores[s] < scores[best])
                best = s;
        }
        p.chosenScore = scores[p.appliedState];
        p.bestScore = scores[best];
        p.bestState = static_cast<std::uint8_t>(best);
        p.nominalScore = scores[nominalIdx];
        for (std::size_t s = 0; s < num_states; ++s)
            pending_.stateScores[s] += scores[s];
    }

    pending_.realized = true;
    regretSummary_.add(pending_.oracleRegretRel(),
                       pending_.staticRegretRel());
    if (cfg.provenance != nullptr)
        cfg.provenance->records.push_back(std::move(pending_));
    pendingValid_ = false;
}

void
EpochLedger::traceEpochFaults(const faults::FaultInjector::Totals &base,
                              const faults::FaultInjector &injector,
                              bool fallback_active)
{
    const faults::FaultInjector::Totals &now = injector.totals();
    gpu::FaultEpochCounters &fc = lastFaults_;
    fc.telemetryPerturbations =
        now.telemetryPerturbations - base.telemetryPerturbations;
    fc.telemetryDropouts =
        now.telemetryDropouts - base.telemetryDropouts;
    fc.transitionFailures =
        now.transitionFailures - base.transitionFailures;
    fc.transitionExtraLatency =
        now.transitionExtraLatency - base.transitionExtraLatency;
    fc.tableBitFlips = now.tableBitFlips - base.tableBitFlips;
    fc.clampedDecisions = lastClamped_;
    fc.fallbackActive = fallback_active;
    if (cfg.collectTrace && !traceEntries.empty())
        traceEntries.back().faults = lastFaults_;
    // The driver detects fallback from the controller's counters -
    // authoritative even for controllers that never touch the audit.
    if (auditEnabled_ && pendingValid_ && fallback_active)
        pending_.fallbackActive = true;
}

void
EpochLedger::finalize(RunResult &result, bool completed,
                      Tick last_commit, std::uint64_t total_committed,
                      const faults::FaultInjector &injector,
                      const dvfs::DvfsController &controller)
{
    result.completed = completed;
    result.execTime = completed ? last_commit : cfg.maxSimTime;
    result.instructions = total_committed;
    result.energy = energy;
    result.transitions = transitions;
    result.transitionEnergy = transitionEnergy;
    result.predictionAccuracy = accuracyN > 0
        ? accuracySum / static_cast<double>(accuracyN) : 0.0;
    result.freqTimeShare = freqShare;
    if (domainEpochs > 0) {
        for (double &share : result.freqTimeShare)
            share /= static_cast<double>(domainEpochs);
    }
    result.finalTemperature = thermal.temperature();
    result.trace = std::move(traceEntries);

    if (auditEnabled_) {
        // A decision whose epoch never completed (simulation wall,
        // cancellation) stays unrealized but is still recorded - the
        // audit trail should show what was decided, not pretend the
        // decision never happened.
        if (pendingValid_) {
            if (cfg.provenance != nullptr)
                cfg.provenance->records.push_back(std::move(pending_));
            pendingValid_ = false;
        }
        result.regret = regretSummary_;
        if (cfg.provenance != nullptr) {
            obs::ProvenanceMeta &meta = cfg.provenance->meta;
            meta.workload = result.workload;
            meta.controller = result.controller;
            meta.objective = dvfs::objectiveName(cfg.objective);
            meta.epochLen = cfg.epochLen;
            meta.numDomains = domainMap.numDomains();
            meta.numStates =
                static_cast<std::uint32_t>(table.numStates());
            meta.nominalState =
                static_cast<std::uint32_t>(nominalIdx);
            meta.stateFreqMhz.clear();
            for (std::size_t s = 0; s < table.numStates(); ++s) {
                meta.stateFreqMhz.push_back(static_cast<std::uint32_t>(
                    table.state(s).freq / freqMHz));
            }
            cfg.provenance->regret = regretSummary_;
        }
    }

    const faults::FaultInjector::Totals &tot = injector.totals();
    result.faults.telemetryPerturbations = tot.telemetryPerturbations;
    result.faults.telemetryDropouts = tot.telemetryDropouts;
    result.faults.transitionFailures = tot.transitionFailures;
    result.faults.transitionExtraLatency = tot.transitionExtraLatency;
    result.faults.tableBitFlips = controller.storageBitFlips();
    result.faults.tableScrubs = controller.storageScrubs();
    result.faults.watchdogTrips = controller.watchdogTrips();
    result.faults.fallbackEpochs = controller.fallbackEpochs();
    result.faults.clampedDecisions = clampedDecisions;

    if (obs::metricsEnabled()) {
        obs::Registry &registry = obs::reg();
        registry.counter("run.count").add(1);
        if (!completed)
            registry.counter("run.incomplete").add(1);
        registry.histogram("run.energy_j").record(result.energy);
        registry.histogram("run.exec_us")
            .record(static_cast<double>(result.execTime) / tickUs);
        registry.histogram("run.accuracy")
            .record(result.predictionAccuracy);
        const FaultSummary &fs = result.faults;
        registry.counter("faults.telemetry_perturbations")
            .add(fs.telemetryPerturbations);
        registry.counter("faults.telemetry_dropouts")
            .add(fs.telemetryDropouts);
        registry.counter("faults.transition_failures")
            .add(fs.transitionFailures);
        registry.counter("faults.table_bit_flips")
            .add(fs.tableBitFlips);
        registry.counter("faults.table_scrubs").add(fs.tableScrubs);
        registry.counter("faults.watchdog_trips")
            .add(fs.watchdogTrips);
        registry.counter("faults.fallback_epochs")
            .add(fs.fallbackEpochs);
        if (auditEnabled_ && !result.regret.empty()) {
            registry.counter("provenance.decisions")
                .add(result.regret.count);
            registry.histogram("provenance.regret.oracle_rel")
                .record(result.regret.meanOracle());
            registry.histogram("provenance.regret.static_rel")
                .record(result.regret.meanStatic());
        }
    }
}

std::vector<dvfs::DomainDecision>
decideEpoch(dvfs::DvfsController &controller,
            const dvfs::EpochContext &ctx, dvfs::SweepNeed need,
            bool have_elapsed, std::size_t num_domains,
            std::size_t nominal_idx)
{
    // The very first epoch has no elapsed-epoch estimate yet;
    // accurate-reactive controllers stay at nominal.
    if (need == dvfs::SweepNeed::Elapsed && !have_elapsed) {
        return std::vector<dvfs::DomainDecision>(
            num_domains, dvfs::DomainDecision{nominal_idx, -1.0});
    }
    return controller.decide(ctx);
}

} // namespace pcstall::sim
