/**
 * @file
 * An EpochObserver that turns a run into Chrome trace-event timeline
 * tracks: per-domain epoch spans labelled with the operating
 * frequency, V/f transition markers, oracle fork-pre-execute markers
 * and injected-fault markers. Events are stamped in simulated
 * microseconds, so the recorded timeline is deterministic and
 * byte-identical across --threads values.
 */

#ifndef PCSTALL_SIM_TIMELINE_RECORDER_HH
#define PCSTALL_SIM_TIMELINE_RECORDER_HH

#include "obs/timeline.hh"
#include "sim/experiment.hh"

#include <vector>

namespace pcstall::sim
{

/**
 * Records @p config's run into @p events (usually the current
 * obs::RunContext's timeline buffer). Emits track-name metadata in
 * the constructor; attach one recorder per run.
 */
class TimelineRecorder : public EpochObserver
{
  public:
    TimelineRecorder(const RunConfig &config,
                     std::vector<obs::TimelineEvent> &events);

    void onEpoch(const EpochCapture &epoch) override;
    void onRunEnd(const RunResult &result) override;

  private:
    std::vector<obs::TimelineEvent> &events;
    std::uint32_t cusPerDomain;
    std::uint32_t numDomains;
    /** Frequency each domain ran at in the previous epoch (MHz);
     *  0 = no previous epoch yet. */
    std::vector<Freq> prevFreq;
};

} // namespace pcstall::sim

#endif // PCSTALL_SIM_TIMELINE_RECORDER_HH
