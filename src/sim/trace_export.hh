/**
 * @file
 * CSV export of run traces and sensitivity profiles, for plotting
 * pipelines (matplotlib/gnuplot) outside the simulator. Complements
 * the aligned-table output of the bench harnesses.
 */

#ifndef PCSTALL_SIM_TRACE_EXPORT_HH
#define PCSTALL_SIM_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "power/vf_table.hh"
#include "sim/experiment.hh"
#include "sim/profiler.hh"

namespace pcstall::sim
{

/**
 * Schema version stamped into every exported CSV as a leading comment
 * line (`# pcstall-<kind>-csv v<N>`). Consumers that parse these files
 * (tools/plot_traces.py, external notebooks) should skip lines starting
 * with '#' and may use the comment to detect column-set changes.
 */
inline constexpr int traceCsvSchemaVersion = 1;

/**
 * Escape a value for use as a single CSV field. Fields containing the
 * separator (','), double quotes, or line breaks are wrapped in double
 * quotes with embedded quotes doubled (RFC 4180); anything else is
 * returned unchanged. Use for free-form string fields (workload or
 * controller names) so a stray comma cannot corrupt the column layout.
 */
std::string csvEscape(const std::string &value);

/**
 * Write a run's per-epoch trace as CSV:
 * epoch_us, domain, state, freq_ghz, committed.
 * Requires the run to have been collected with
 * RunConfig::collectTrace = true.
 */
void writeRunTraceCsv(std::ostream &os, const RunResult &result,
                      const power::VfTable &table);

/**
 * Write a sensitivity profile as CSV:
 * epoch_us, domain, sensitivity, intercept, r2.
 */
void writeProfileCsv(std::ostream &os, const ProfileResult &profile);

/**
 * Write the per-wavefront sensitivities of a profile as CSV:
 * epoch_us, cu, slot, start_pc_addr, sensitivity, level, age_rank.
 */
void writeWaveProfileCsv(std::ostream &os,
                         const ProfileResult &profile);

/** Convenience: write to a file path; returns false on I/O error. */
bool writeRunTraceCsvFile(const std::string &path,
                          const RunResult &result,
                          const power::VfTable &table);
bool writeProfileCsvFile(const std::string &path,
                         const ProfileResult &profile);

} // namespace pcstall::sim

#endif // PCSTALL_SIM_TRACE_EXPORT_HH
