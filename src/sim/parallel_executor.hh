/**
 * @file
 * A fixed-size thread pool for embarrassingly parallel sweeps.
 *
 * DVFS evaluation sweeps are grids of fully independent
 * (workload, controller, config) runs, so the executor's contract is
 * deliberately minimal: execute fn(0..n-1) across a fixed set of
 * worker threads and return when every index has run. Determinism is
 * the design constraint throughout:
 *
 *  - results go into pre-sized slots indexed by submission order, so
 *    aggregation never depends on completion order;
 *  - a single-thread executor runs every task inline on the calling
 *    thread, guaranteeing `--threads 1` exercises exactly the serial
 *    code path;
 *  - a task that throws does not poison the batch - every other index
 *    still runs - and the first (lowest-index) exception is rethrown
 *    after the batch completes. Callers that want per-task error
 *    containment (the bench sweep runner) catch inside the task.
 *
 * The executor is used at two levels: bench::SweepRunner spreads
 * whole sweep cells across it, and oracle::forkPreExecuteSweep can
 * run the S independent V/f samples of one epoch boundary on it
 * (in-cell parallelism, for when the outer sweep leaves cores idle).
 * To keep the latter free of a sim -> oracle -> sim dependency cycle
 * the translation unit is compiled into pcstall_common; the namespace
 * stays pcstall::sim for source compatibility.
 */

#ifndef PCSTALL_SIM_PARALLEL_EXECUTOR_HH
#define PCSTALL_SIM_PARALLEL_EXECUTOR_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcstall::sim
{

/** Fixed-size worker pool executing indexed task batches. */
class ParallelExecutor
{
  public:
    /**
     * Create a pool of @p threads workers (0 = defaultThreadCount()).
     * With one thread no workers are spawned at all; batches run
     * inline on the calling thread.
     */
    explicit ParallelExecutor(unsigned threads = 0);

    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Number of threads tasks run on (>= 1). */
    unsigned threadCount() const { return numThreads; }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned defaultThreadCount();

    /**
     * Run fn(i) for every i in [0, n) and block until all complete.
     * Indices are claimed dynamically (fetch-and-increment), so long
     * and short tasks mix without static imbalance. If any task
     * throws, the remaining indices still execute and the exception
     * thrown by the lowest index is rethrown here.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Parallel map: results land in a vector indexed by submission
     * order, independent of which thread produced them or when.
     * T must be default-constructible.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    void workerLoop();

    /** Claim and run indices of the current batch until exhausted. */
    void drainBatch();

    unsigned numThreads;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable idle;

    // Current batch (guarded by mutex; tasks themselves run unlocked).
    const std::function<void(std::size_t)> *batchFn = nullptr;
    std::size_t batchNext = 0;
    std::size_t batchSize = 0;
    std::size_t batchRunning = 0;
    std::uint64_t batchGeneration = 0;
    std::vector<std::pair<std::size_t, std::exception_ptr>> batchErrors;
    bool shuttingDown = false;
};

} // namespace pcstall::sim

#endif // PCSTALL_SIM_PARALLEL_EXECUTOR_HH
