#include "sim/trace_export.hh"

#include <fstream>

namespace pcstall::sim
{

namespace
{

/** Emit the schema-version comment shared by every exported CSV. */
void
writeSchemaComment(std::ostream &os, const char *kind)
{
    os << "# pcstall-" << kind << "-csv v" << traceCsvSchemaVersion
       << '\n';
}

} // namespace

std::string
csvEscape(const std::string &value)
{
    const bool needs_quoting =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return value;
    std::string out;
    out.reserve(value.size() + 2);
    out.push_back('"');
    for (const char c : value) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
writeRunTraceCsv(std::ostream &os, const RunResult &result,
                 const power::VfTable &table)
{
    writeSchemaComment(os, "run-trace");
    os << "epoch_us,domain,state,freq_ghz,committed\n";
    for (const EpochTraceEntry &entry : result.trace) {
        const double epoch_us = static_cast<double>(entry.start) /
            static_cast<double>(tickUs);
        for (std::size_t d = 0; d < entry.domainState.size(); ++d) {
            const std::size_t state = entry.domainState[d];
            os << epoch_us << ',' << d << ',' << state << ','
               << freqGHzD(table.state(state).freq) << ','
               << entry.domainCommitted[d] << '\n';
        }
    }
}

void
writeProfileCsv(std::ostream &os, const ProfileResult &profile)
{
    writeSchemaComment(os, "profile");
    os << "epoch_us,domain,sensitivity,intercept,r2\n";
    for (const EpochProfile &ep : profile.epochs) {
        const double epoch_us = static_cast<double>(ep.start) /
            static_cast<double>(tickUs);
        for (std::size_t d = 0; d < ep.domains.size(); ++d) {
            os << epoch_us << ',' << d << ','
               << ep.domains[d].sensitivity << ','
               << ep.domains[d].intercept << ','
               << ep.domains[d].r2 << '\n';
        }
    }
}

void
writeWaveProfileCsv(std::ostream &os, const ProfileResult &profile)
{
    writeSchemaComment(os, "wave-profile");
    os << "epoch_us,cu,slot,start_pc_addr,sensitivity,level,age_rank\n";
    for (const EpochProfile &ep : profile.epochs) {
        const double epoch_us = static_cast<double>(ep.start) /
            static_cast<double>(tickUs);
        for (const auto &w : ep.waves) {
            os << epoch_us << ',' << w.cu << ',' << w.slot << ','
               << w.startPcAddr << ',' << w.sensitivity << ','
               << w.level << ',' << w.ageRank << '\n';
        }
    }
}

bool
writeRunTraceCsvFile(const std::string &path, const RunResult &result,
                     const power::VfTable &table)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeRunTraceCsv(os, result, table);
    return static_cast<bool>(os);
}

bool
writeProfileCsvFile(const std::string &path,
                    const ProfileResult &profile)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeProfileCsv(os, profile);
    return static_cast<bool>(os);
}

} // namespace pcstall::sim
