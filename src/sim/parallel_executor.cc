#include "sim/parallel_executor.hh"

#include <algorithm>

namespace pcstall::sim
{

unsigned
ParallelExecutor::defaultThreadCount()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ParallelExecutor::ParallelExecutor(unsigned threads)
    : numThreads(threads == 0 ? defaultThreadCount() : threads)
{
    // One thread = strictly inline execution; no pool machinery at
    // all, so `--threads 1` is the plain serial code path.
    if (numThreads < 2)
        return;
    workers.reserve(numThreads);
    for (unsigned t = 0; t < numThreads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        const std::lock_guard<std::mutex> lock(mutex);
        shuttingDown = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ParallelExecutor::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex);
    std::uint64_t seen = 0;
    while (true) {
        wake.wait(lock, [&] {
            return shuttingDown ||
                   (batchFn != nullptr && batchGeneration != seen &&
                    batchNext < batchSize);
        });
        if (shuttingDown)
            return;
        const std::uint64_t generation = batchGeneration;
        while (batchFn != nullptr && batchGeneration == generation &&
               batchNext < batchSize) {
            const std::size_t index = batchNext++;
            ++batchRunning;
            lock.unlock();
            std::exception_ptr error;
            try {
                (*batchFn)(index);
            } catch (...) {
                error = std::current_exception();
            }
            lock.lock();
            if (error)
                batchErrors.emplace_back(index, error);
            --batchRunning;
            if (batchNext >= batchSize && batchRunning == 0)
                idle.notify_all();
        }
        seen = generation;
    }
}

void
ParallelExecutor::forEach(std::size_t n,
                          const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    if (numThreads < 2 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors.emplace_back(i, std::current_exception());
            }
        }
    } else {
        std::unique_lock<std::mutex> lock(mutex);
        batchFn = &fn;
        batchNext = 0;
        batchSize = n;
        batchErrors.clear();
        ++batchGeneration;
        lock.unlock();
        wake.notify_all();
        lock.lock();
        idle.wait(lock, [&] {
            return batchNext >= batchSize && batchRunning == 0;
        });
        batchFn = nullptr;
        errors = std::move(batchErrors);
        batchErrors.clear();
    }
    if (errors.empty())
        return;
    // Deterministic error reporting: rethrow the lowest submission
    // index regardless of completion order.
    std::sort(errors.begin(), errors.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::rethrow_exception(errors.front().second);
}

} // namespace pcstall::sim
