/**
 * @file
 * Per-run bookkeeping shared by the live ExperimentDriver and the
 * trace replay engine (trace::ReplayDriver): prediction-accuracy
 * scoring, energy/thermal accounting, the running averages consumed by
 * the marginal objectives, frequency residency, per-epoch trace
 * entries, and the decision-sanitize/apply step.
 *
 * Both drivers funnel every piece of metric arithmetic through this
 * class in the same order, so replaying a captured trace reproduces
 * the live run's RunResult bit-for-bit instead of merely
 * approximately - the determinism the capture/replay subsystem
 * promises (docs/trace_format.md).
 */

#ifndef PCSTALL_SIM_EPOCH_LEDGER_HH
#define PCSTALL_SIM_EPOCH_LEDGER_HH

#include <cstdint>
#include <vector>

#include "dvfs/controller.hh"
#include "faults/fault_injector.hh"
#include "obs/context.hh"
#include "sim/experiment.hh"

namespace pcstall::sim
{

/** See file comment. One instance per run; not reusable. */
class EpochLedger
{
  public:
    EpochLedger(const RunConfig &config, const power::VfTable &table,
                const power::PowerModel &power_model,
                const dvfs::DomainMap &domain_map,
                std::size_t nominal_idx);

    /**
     * Account one harvested epoch: score the previous epoch's
     * predictions, accumulate energy and thermal state, update the
     * running averages, frequency residency and (when
     * RunConfig::collectTrace) the per-epoch trace entry.
     *
     * @param record   The physical epoch record (energy/accuracy).
     * @param observed What the controller sees (may carry telemetry
     *                 faults; same object as @p record when clean).
     */
    void observeEpoch(const gpu::EpochRecord &record,
                      const gpu::EpochRecord &observed,
                      Tick epoch_start, Tick accounted_end);

    /** Build the controller's context for the upcoming epoch. */
    dvfs::EpochContext
    makeContext(const gpu::EpochRecord &observed,
                const std::vector<gpu::WaveSnapshot> &snapshots,
                const dvfs::AccurateEstimates *elapsed,
                const dvfs::AccurateEstimates *upcoming) const;

    /** What one domain's V/f request resolved to. */
    struct AppliedTransition
    {
        std::size_t state = 0;
        Tick extraLatency = 0;
    };

    /**
     * Sanitize @p decisions in place, resolve each against the fault
     * injector, advance the per-domain state and the prediction
     * shadow, and charge transition counts/energy. Returns the
     * per-domain outcome so the live driver can program the chip.
     */
    std::vector<AppliedTransition>
    applyDecisions(std::vector<dvfs::DomainDecision> &decisions,
                   faults::FaultInjector &injector);

    /**
     * Compute this epoch's fault counters from the injector deltas
     * (exposed via lastEpochFaults(); also copied into the newest
     * trace entry when collecting one). Call after applyDecisions()
     * with the totals snapshot taken before the epoch's first
     * injector use.
     */
    void traceEpochFaults(const faults::FaultInjector::Totals &base,
                          const faults::FaultInjector &injector,
                          bool fallback_active);

    /** Fault deltas computed by the last traceEpochFaults() call. */
    const gpu::FaultEpochCounters &lastEpochFaults() const
    {
        return lastFaults_;
    }

    /** Final accumulation of everything this ledger tracked. */
    void finalize(RunResult &result, bool completed, Tick last_commit,
                  std::uint64_t total_committed,
                  const faults::FaultInjector &injector,
                  const dvfs::DvfsController &controller);

    /** Current V/f state per domain (state during the *next* epoch). */
    const std::vector<std::size_t> &domainStates() const
    {
        return domainState;
    }

    /** Decisions repaired by the most recent applyDecisions(). */
    std::size_t lastClamped() const { return lastClamped_; }

    /** True when decision provenance / regret auditing is armed. */
    bool auditEnabled() const { return auditEnabled_; }

  private:
    /**
     * Fill in the pending DecisionRecord's realized outcome from the
     * epoch that just completed: per-state hindsight scores (STALL
     * estimation model + dvfs::scoreStates on the physical record),
     * the regret against best-in-hindsight and best-static, and the
     * regret-summary rollup. Called at the top of observeEpoch().
     */
    void realizePending(const gpu::EpochRecord &record);
    const RunConfig &cfg;
    const power::VfTable &table;
    const power::PowerModel &power;
    const dvfs::DomainMap &domainMap;
    std::size_t nominalIdx;

    power::ThermalModel thermal;
    std::vector<std::size_t> domainState;
    /** Last predicted instructions per domain (< 0 = no prediction). */
    std::vector<double> prevPred;

    // Running averages for the marginal objectives (EWMA, alpha 0.2).
    Watts avgPower = 0.0;
    std::vector<double> avgInstr;
    static constexpr double avgAlpha = 0.2;

    double accuracySum = 0.0;
    std::size_t accuracyN = 0;

    Joules energy = 0.0;
    Joules transitionEnergy = 0.0;
    std::uint64_t transitions = 0;
    std::uint64_t clampedDecisions = 0;
    std::size_t lastClamped_ = 0;

    std::vector<double> freqShare;
    std::uint64_t domainEpochs = 0;

    std::vector<EpochTraceEntry> traceEntries;
    gpu::FaultEpochCounters lastFaults_;

    // --- decision provenance (docs/provenance.md) -----------------
    /** What the controller saw in the observed (possibly telemetry-
     *  faulted) record, stashed per domain for the next decision. */
    struct ObservedDomainInputs
    {
        std::uint64_t instr = 0;
        std::uint64_t loadStall = 0;
        std::uint64_t memAccesses = 0;
    };

    /** Armed iff RunConfig::auditRegret or a provenance sink is set;
     *  the disabled path is this single bool check per call. */
    bool auditEnabled_ = false;
    /** Controller-side audit scratch, reset per decide() by
     *  makeContext() (mutable: arming the scratch does not change
     *  what the context describes). */
    mutable dvfs::DecisionAudit audit_;
    obs::RegretSummary regretSummary_;
    /** The decision awaiting its realized outcome. */
    obs::DecisionRecord pending_;
    bool pendingValid_ = false;
    std::uint64_t epochsObserved_ = 0;
    Tick lastEpochStart_ = 0;
    std::vector<ObservedDomainInputs> observedInputs_;

    // Observability handles, resolved once against the run context's
    // registry at construction (stable for the registry's lifetime).
    obs::Counter *epochsMetric;
    obs::Counter *transitionsMetric;
    obs::Counter *clampedMetric;
    obs::Histogram *errorPctMetric;
    std::vector<obs::Counter *> residencyMetric;
};

/**
 * The shared decide step: ask @p controller for the upcoming epoch's
 * decisions, except on the cold first epoch of an elapsed-sweep
 * controller (no elapsed-epoch estimate exists yet), which stays at
 * nominal without consulting the controller.
 */
std::vector<dvfs::DomainDecision>
decideEpoch(dvfs::DvfsController &controller,
            const dvfs::EpochContext &ctx, dvfs::SweepNeed need,
            bool have_elapsed, std::size_t num_domains,
            std::size_t nominal_idx);

} // namespace pcstall::sim

#endif // PCSTALL_SIM_EPOCH_LEDGER_HH
