/**
 * @file
 * The sensitivity profiler behind the paper's characterization
 * studies (Figures 5-11): run an application at a static frequency
 * and, at every epoch boundary, fork-pre-execute the upcoming epoch
 * across all V/f states to measure the true per-domain I(f) curves
 * and per-wavefront sensitivities, then continue real execution.
 */

#ifndef PCSTALL_SIM_PROFILER_HH
#define PCSTALL_SIM_PROFILER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "dvfs/controller.hh"
#include "gpu/gpu_config.hh"
#include "isa/kernel.hh"
#include "oracle/fork_pre_execute.hh"
#include "power/vf_table.hh"

namespace pcstall::sim
{

/** Profiler configuration. */
struct ProfileConfig
{
    gpu::GpuConfig gpu;
    Tick epochLen = tickUs;
    std::uint32_t cusPerDomain = 1;
    /** Static frequency real execution runs at. */
    Freq staticFreq = 1'700 * freqMHz;
    /** Use the wide 1.0-3.0 GHz table (Figure 5's range). */
    bool wideTable = false;
    /** Regress per-wavefront sensitivities too. */
    bool waveLevel = true;
    /** Shuffle frequencies across domains during sweeps (paper's
     *  methodology). Disable for low-noise wave-level studies. */
    bool shuffle = true;
    /** Stop after this many epochs (0 = run to completion). */
    std::size_t maxEpochs = 0;
    Tick maxSimTime = 20 * tickMs;
    /** Profile only every Nth epoch (sampling; 1 = every epoch). */
    std::size_t sampleEvery = 1;
    /** Pool snapshots across sweeps instead of per-sample copies. */
    bool poolSnapshots = true;
    /** Worker threads for in-cell sample parallelism (<= 1 serial). */
    unsigned oracleThreads = 1;
};

/** Everything measured for one profiled epoch. */
struct EpochProfile
{
    Tick start = 0;
    /** Per-domain linear fit of I(f): slope, intercept, R^2. */
    std::vector<oracle::DomainSensitivity> domains;
    /** Per-domain instructions at every sampled state. */
    std::vector<std::vector<double>> domainInstr;
    /** Per-wavefront regressed sensitivities. */
    std::vector<dvfs::AccurateEstimates::WaveSens> waves;
};

/** A full profile of one application. */
struct ProfileResult
{
    std::vector<EpochProfile> epochs;
    power::VfTable table = power::VfTable::paperTable();

    /** Series of one domain's sensitivity across profiled epochs. */
    std::vector<double> domainSeries(std::uint32_t domain) const;
};

/** Runs sensitivity profiles. */
class SensitivityProfiler
{
  public:
    explicit SensitivityProfiler(const ProfileConfig &config);

    ProfileResult profile(std::shared_ptr<const isa::Application> app);

  private:
    ProfileConfig cfg;
};

} // namespace pcstall::sim

#endif // PCSTALL_SIM_PROFILER_HH
