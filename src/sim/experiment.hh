/**
 * @file
 * The experiment driver: runs an application on the simulated GPU
 * under a DVFS controller at a fixed epoch length, accounting energy,
 * delay, prediction accuracy and frequency residency - everything the
 * paper's evaluation figures are computed from.
 */

#ifndef PCSTALL_SIM_EXPERIMENT_HH
#define PCSTALL_SIM_EXPERIMENT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dvfs/controller.hh"
#include "dvfs/domain_map.hh"
#include "faults/fault_config.hh"
#include "gpu/gpu_chip.hh"
#include "obs/provenance.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"

namespace pcstall::sim
{

/**
 * Scale the memory system and its static power to a GPU of
 * @p num_cus compute units. The paper's 64-CU GPU has 16 L2 banks,
 * 4 MiB of L2, 8 DRAM channels and ~28 W of memory-domain static
 * power; smaller experimental configurations get a proportionally
 * smaller memory subsystem so per-CU bandwidth pressure and the
 * energy split stay representative.
 */
void scaleToCus(gpu::GpuConfig &gpu_cfg, power::PowerParams &power_cfg,
                std::uint32_t num_cus);

/** Chip-snapshot strategy for the fork-pre-execute oracle sweeps. */
enum class OracleMode
{
    /** Deep-copy the chip once per V/f sample (legacy reference
     *  path; allocation-heavy but trivially correct). */
    Copy,
    /** Restore pooled scratch chips, copying only dirty regions - no
     *  steady-state allocations, byte-identical results
     *  (docs/performance.md). */
    Pool,
    /** Pooled restores with the delta path disabled: every restore is
     *  a full copy-assign. Reference mode for the delta identity
     *  checks in tests and CI. */
    PoolFull,
};

/** Configuration of one experiment run. */
struct RunConfig
{
    gpu::GpuConfig gpu;
    /** DVFS epoch length. */
    Tick epochLen = tickUs;
    /** CUs per V/f domain (1 in most of the paper's evaluation). */
    std::uint32_t cusPerDomain = 1;
    dvfs::Objective objective = dvfs::Objective::Ed2p;
    /** For the EnergyUnderPerfBound objective. */
    double perfDegradationLimit = 0.05;
    power::PowerParams power;
    /** Nominal frequency: static baseline anchor (paper: 1.7 GHz). */
    Freq nominalFreq = 1'700 * freqMHz;
    /** Hard wall so a mis-sized workload cannot run forever. */
    Tick maxSimTime = 20 * tickMs;
    /**
     * V/f transition stall applied on a frequency change; negative
     * means "derive from the epoch length" (paper Section 5).
     */
    Tick transitionLatency = -1;
    /** Record a per-epoch trace (frequency residency, work). */
    bool collectTrace = false;
    /** Fault injection (all classes disabled by default). */
    faults::FaultConfig faults;
    /** Enable the PCSTALL divergence watchdog (STALL fallback). */
    bool watchdogFallback = false;
    /** Parity-protect PC tables (scrub corrupted entries on lookup). */
    bool eccProtectTables = false;
    /** Snapshot strategy for oracle sweeps. */
    OracleMode oracleMode = OracleMode::Pool;
    /** Worker threads for in-cell oracle sample parallelism (<= 1 =
     *  serial; results are independent of the thread count). */
    unsigned oracleThreads = 1;
    /**
     * Cooperative cancellation flag (not owned). When non-null and
     * set, the run stops at the next epoch boundary by throwing
     * FatalError - the sweep watchdog's --cell-timeout enforcement
     * seam. Null (the default) means the run can never be cancelled.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Score every decision's hindsight regret into RunResult::regret
     * (summary only; no per-epoch records are retained). Cheap but
     * not free - off by default so plain sweeps pay only one branch
     * per epoch. Implied by a non-null @ref provenance sink.
     */
    bool auditRegret = false;
    /**
     * Decision-provenance sink (not owned). When non-null the run
     * appends its full DecisionRecord stream, meta and regret rollup
     * there (docs/provenance.md); the caller serializes it as a PCPV
     * sidecar. Null (the default) retains nothing.
     */
    obs::ProvenanceLog *provenance = nullptr;

    /** Apply scaleToCus() for the configured CU count. */
    RunConfig &scaled()
    {
        scaleToCus(gpu, power, gpu.numCus);
        return *this;
    }
};

/** Per-epoch trace entry (when RunConfig::collectTrace is set). */
struct EpochTraceEntry
{
    Tick start = 0;
    /** Chosen V/f state per domain for the epoch. */
    std::vector<std::uint8_t> domainState;
    /** Instructions committed per domain in the epoch. */
    std::vector<double> domainCommitted;
    /** Injected faults / repairs observed this epoch. */
    gpu::FaultEpochCounters faults;
};

/** Lifetime fault/degradation counters of one run. */
struct FaultSummary
{
    /** Telemetry counters whose observed value was perturbed. */
    std::uint64_t telemetryPerturbations = 0;
    /** Telemetry counters that dropped out (read as zero). */
    std::uint64_t telemetryDropouts = 0;
    /** Requested V/f changes that transiently failed. */
    std::uint64_t transitionFailures = 0;
    /** Extra settle latency paid across all transitions. */
    Tick transitionExtraLatency = 0;
    /** Bits flipped in predictor storage. */
    std::uint64_t tableBitFlips = 0;
    /** Corrupted entries caught and scrubbed by parity. */
    std::uint64_t tableScrubs = 0;
    /** Illegal controller decisions repaired by the driver. */
    std::uint64_t clampedDecisions = 0;
    /** Times the divergence watchdog tripped into its fallback. */
    std::uint64_t watchdogTrips = 0;
    /** Epochs decided by the fallback policy. */
    std::uint64_t fallbackEpochs = 0;
};

/** Results of one run. */
struct RunResult
{
    std::string controller;
    std::string workload;
    /** True when the application ran to completion within the wall. */
    bool completed = false;
    /** Number of DVFS epochs executed. */
    std::size_t epochs = 0;
    /** Time of the last committed instruction. */
    Tick execTime = 0;
    /** Total energy to completion. */
    Joules energy = 0.0;
    /** Total instructions committed. */
    std::uint64_t instructions = 0;
    /** Mean per-epoch prediction accuracy in [0, 1] (see below). */
    double predictionAccuracy = 0.0;
    /** Number of per-CU V/f transitions performed. */
    std::uint64_t transitions = 0;
    /** Energy spent in IVR/FLL V/f transitions (included in energy). */
    Joules transitionEnergy = 0.0;
    /** Fraction of domain-epochs spent at each V/f state. */
    std::vector<double> freqTimeShare;
    /** Final die temperature. */
    double finalTemperature = 0.0;
    /** Injected-fault / graceful-degradation totals. */
    FaultSummary faults;
    std::vector<EpochTraceEntry> trace;
    /** Per-decision regret rollup (empty unless RunConfig::auditRegret
     *  or a provenance sink was set; see docs/provenance.md). */
    obs::RegretSummary regret;

    double seconds() const { return tickSeconds(execTime); }
    Watts avgPower() const
    {
        return seconds() > 0.0 ? energy / seconds() : 0.0;
    }
    double edp() const { return energy * seconds(); }
    double ed2p() const { return energy * seconds() * seconds(); }
    double ed3p() const
    {
        return energy * seconds() * seconds() * seconds();
    }
};

/**
 * Check a run configuration for user errors. Returns an empty string
 * when the configuration is usable, otherwise a one-line diagnostic.
 * Harnesses can call this to reject one bad run instead of letting
 * ExperimentDriver's constructor exit the whole process.
 */
std::string validateRunConfig(const RunConfig &config);

/**
 * Everything the driver knows about one epoch boundary, exposed to an
 * EpochObserver. This is the capture seam of the trace subsystem
 * (src/trace): an observer that records these fields can later
 * re-drive any controller without the GPU timing model.
 *
 * On the final (application-finished) epoch no decisions are made;
 * @ref decisions and @ref appliedStates are empty and @ref snapshots
 * refers to an empty vector.
 */
struct EpochCapture
{
    Tick start = 0;
    Tick end = 0;
    /** End of the energy-accounted span (prorated final epoch). */
    Tick accountedEnd = 0;
    bool done = false;
    /** The *physical* epoch record (pre-telemetry-fault). */
    const gpu::EpochRecord &record;
    /** Waves resident at the boundary (keys of the next lookup). */
    const std::vector<gpu::WaveSnapshot> &snapshots;
    /** This boundary's fork-pre-execute sweep; null unless the
     *  controller requested one. */
    const dvfs::AccurateEstimates *sweep = nullptr;
    /** Post-sanitize controller decisions for the next epoch. */
    const std::vector<dvfs::DomainDecision> &decisions;
    /** V/f state each domain will really run at (injector outcome). */
    const std::vector<std::size_t> &appliedStates;
    /** Faults injected/repaired this epoch; null on the final epoch
     *  (no decisions are applied, so the deltas are not computed). */
    const gpu::FaultEpochCounters *faults = nullptr;
};

/** Observer of a live run, called once per epoch boundary. */
class EpochObserver
{
  public:
    virtual ~EpochObserver() = default;

    virtual void onEpoch(const EpochCapture &epoch) = 0;

    /** Called once after the run loop with the final result. */
    virtual void onRunEnd(const RunResult &result) { (void)result; }
};

/**
 * Fans one run out to several observers (e.g. trace capture plus the
 * timeline recorder), called in add() order.
 */
class MultiObserver : public EpochObserver
{
  public:
    /** Null observers are ignored. */
    void
    add(EpochObserver *observer)
    {
        if (observer != nullptr)
            observers.push_back(observer);
    }

    bool empty() const { return observers.empty(); }

    void
    onEpoch(const EpochCapture &epoch) override
    {
        for (EpochObserver *observer : observers)
            observer->onEpoch(epoch);
    }

    void
    onRunEnd(const RunResult &result) override
    {
        for (EpochObserver *observer : observers)
            observer->onRunEnd(result);
    }

  private:
    std::vector<EpochObserver *> observers;
};

/**
 * Runs experiments. Prediction accuracy is scored per the paper
 * (Section 6.1): the controller's predicted instructions for the
 * chosen state are compared against the instructions actually
 * committed, accuracy = 1 - |pred - actual| / actual, averaged over
 * domains and epochs with work.
 */
class ExperimentDriver
{
  public:
    explicit ExperimentDriver(const RunConfig &config);

    /**
     * Run @p app to completion under @p controller. An optional
     * @p observer sees every epoch boundary (trace capture).
     */
    RunResult run(std::shared_ptr<const isa::Application> app,
                  dvfs::DvfsController &controller,
                  EpochObserver *observer = nullptr);

    const power::VfTable &table() const { return vfTable; }
    const RunConfig &config() const { return cfg; }

    /**
     * Arm (or, with null, disarm) a decision-provenance sink for
     * subsequent run() calls - the seam bench::runTraced() uses to
     * attach a per-run ProvenanceLog to an already-built driver.
     * Armed runs also compute RunResult::regret.
     */
    void setProvenance(obs::ProvenanceLog *sink)
    {
        cfg.provenance = sink;
    }

    /** Index of the nominal state in the V/f table. */
    std::size_t nominalState() const { return nominalIdx; }

  private:
    RunConfig cfg;
    power::VfTable vfTable;
    power::PowerModel powerModel;
    std::size_t nominalIdx;
};

} // namespace pcstall::sim

#endif // PCSTALL_SIM_EXPERIMENT_HH
