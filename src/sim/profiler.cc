#include "sim/profiler.hh"

#include <memory>

#include "common/logging.hh"
#include "gpu/gpu_chip.hh"
#include "oracle/snapshot_pool.hh"
#include "sim/parallel_executor.hh"

namespace pcstall::sim
{

std::vector<double>
ProfileResult::domainSeries(std::uint32_t domain) const
{
    std::vector<double> series;
    series.reserve(epochs.size());
    for (const EpochProfile &ep : epochs) {
        panicIf(domain >= ep.domains.size(),
                "domainSeries: bad domain index");
        series.push_back(ep.domains[domain].sensitivity);
    }
    return series;
}

SensitivityProfiler::SensitivityProfiler(const ProfileConfig &config)
    : cfg(config)
{
    fatalIf(cfg.epochLen <= 0, "profiler epoch length must be positive");
    fatalIf(cfg.sampleEvery == 0, "profiler sampleEvery must be >= 1");
}

ProfileResult
SensitivityProfiler::profile(
    std::shared_ptr<const isa::Application> app)
{
    gpu::GpuConfig gpu_cfg = cfg.gpu;
    gpu_cfg.defaultFreq = cfg.staticFreq;
    gpu::GpuChip chip(gpu_cfg, app);

    const dvfs::DomainMap domains(gpu_cfg.numCus, cfg.cusPerDomain);

    ProfileResult result;
    result.table = cfg.wideTable ? power::VfTable::wideTable()
                                 : power::VfTable::paperTable();
    oracle::SnapshotPool pool;
    std::unique_ptr<ParallelExecutor> exec;
    oracle::SweepOptions opts;
    opts.shuffle = cfg.shuffle;
    opts.waveLevel = cfg.waveLevel;
    if (cfg.poolSnapshots) {
        opts.pool = &pool;
        if (cfg.oracleThreads > 1)
            exec = std::make_unique<ParallelExecutor>(cfg.oracleThreads);
        opts.executor = exec.get();
    }

    Tick epoch_start = 0;
    std::size_t epoch_index = 0;
    gpu::EpochRecord harvest_scratch;
    while (epoch_start < cfg.maxSimTime) {
        if (cfg.maxEpochs > 0 && result.epochs.size() >= cfg.maxEpochs)
            break;

        if (epoch_index % cfg.sampleEvery == 0) {
            const dvfs::AccurateEstimates est = oracle::forkPreExecuteSweep(
                chip, domains, result.table, cfg.epochLen, opts);

            EpochProfile ep;
            ep.start = epoch_start;
            ep.domainInstr = est.domainInstr;
            ep.waves = est.waves;
            ep.domains.reserve(domains.numDomains());
            for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
                ep.domains.push_back(
                    oracle::domainSensitivity(est, result.table, d));
            }
            result.epochs.push_back(std::move(ep));
        }

        const bool done = chip.runUntil(epoch_start + cfg.epochLen);
        chip.harvestEpoch(epoch_start, harvest_scratch);
        epoch_start += cfg.epochLen;
        ++epoch_index;
        if (done)
            break;
    }
    return result;
}

} // namespace pcstall::sim
