#include "sim/timeline_recorder.hh"

#include <cstdio>

namespace pcstall::sim
{

namespace
{

double
usOf(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickUs);
}

std::string
ghzLabel(Freq freq)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%.2f GHz",
                  static_cast<double>(freq) /
                      static_cast<double>(1000 * freqMHz));
    return buf;
}

} // namespace

TimelineRecorder::TimelineRecorder(
    const RunConfig &config, std::vector<obs::TimelineEvent> &events_)
    : events(events_), cusPerDomain(config.cusPerDomain),
      numDomains(config.gpu.numCus / config.cusPerDomain)
{
    prevFreq.assign(numDomains, 0);
    events.push_back(obs::trackNameEvent(0, "run"));
    for (std::uint32_t d = 0; d < numDomains; ++d) {
        events.push_back(
            obs::trackNameEvent(d + 1, "domain " + std::to_string(d)));
    }
}

void
TimelineRecorder::onEpoch(const EpochCapture &epoch)
{
    const double start_us = usOf(epoch.start);
    const double dur_us = usOf(epoch.accountedEnd - epoch.start);

    for (std::uint32_t d = 0; d < numDomains; ++d) {
        // The record's per-CU frequency is ground truth: it already
        // reflects failed/re-quantized transitions, unlike decisions.
        const gpu::CuEpochRecord &cu =
            epoch.record.cus[d * cusPerDomain];
        obs::TimelineEvent span =
            obs::spanEvent(ghzLabel(cu.freq), d + 1, start_us, dur_us);
        std::uint64_t committed = 0;
        for (std::uint32_t c = 0; c < cusPerDomain; ++c)
            committed += epoch.record.cus[d * cusPerDomain + c].committed;
        span.args.emplace_back("committed",
                               std::to_string(committed));
        events.push_back(std::move(span));

        if (prevFreq[d] != 0 && prevFreq[d] != cu.freq) {
            obs::TimelineEvent ev = obs::instantEvent(
                "V/f transition", d + 1, start_us);
            ev.args.emplace_back("to", obs::jsonString(
                                           ghzLabel(cu.freq)));
            events.push_back(std::move(ev));
        }
        prevFreq[d] = cu.freq;
    }

    if (epoch.sweep != nullptr) {
        obs::TimelineEvent ev = obs::instantEvent(
            "fork-pre-execute", 0, usOf(epoch.accountedEnd));
        const std::size_t forks = epoch.sweep->domainInstr.empty()
            ? 0 : epoch.sweep->domainInstr.front().size();
        ev.args.emplace_back("forks", std::to_string(forks));
        events.push_back(std::move(ev));
    }

    if (epoch.faults != nullptr) {
        const gpu::FaultEpochCounters &f = *epoch.faults;
        const std::uint64_t injected = f.telemetryPerturbations +
            f.telemetryDropouts + f.transitionFailures +
            f.tableBitFlips + f.clampedDecisions;
        if (injected > 0 || f.fallbackActive) {
            obs::TimelineEvent ev = obs::instantEvent(
                "faults", 0, usOf(epoch.accountedEnd));
            ev.args.emplace_back("injected", std::to_string(injected));
            ev.args.emplace_back("fallback",
                                 f.fallbackActive ? "true" : "false");
            events.push_back(std::move(ev));
        }
    }
}

void
TimelineRecorder::onRunEnd(const RunResult &result)
{
    obs::TimelineEvent ev =
        obs::instantEvent(result.completed ? "run end" : "sim wall",
                          0, usOf(result.execTime));
    ev.args.emplace_back("epochs", std::to_string(result.epochs));
    ev.args.emplace_back(
        "energy_j", obs::jsonNumber(result.energy));
    events.push_back(std::move(ev));
}

} // namespace pcstall::sim
