#include "sim/experiment.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "faults/fault_injector.hh"
#include "oracle/fork_pre_execute.hh"

namespace pcstall::sim
{

void
scaleToCus(gpu::GpuConfig &gpu_cfg, power::PowerParams &power_cfg,
           std::uint32_t num_cus)
{
    fatalIf(num_cus == 0, "scaleToCus: zero CUs");
    gpu_cfg.numCus = num_cus;
    const double frac = static_cast<double>(num_cus) / 64.0;
    auto scale_count = [&](std::uint32_t paper_value,
                           std::uint32_t floor_value) {
        return std::max<std::uint32_t>(
            floor_value, static_cast<std::uint32_t>(
                std::llround(paper_value * frac)));
    };
    gpu_cfg.mem.l2Banks = scale_count(16, 2);
    gpu_cfg.mem.dramChannels = scale_count(8, 1);
    const std::uint64_t slice = 256 * 1024; // 4 MiB / 16 banks
    gpu_cfg.mem.l2SizeBytes = slice * gpu_cfg.mem.l2Banks;
    power_cfg.memStatic = 56.0 * std::max(frac, 0.05);
}

std::string
validateRunConfig(const RunConfig &config)
{
    if (config.epochLen <= 0)
        return "run config: epoch length must be positive";
    if (config.maxSimTime <= 0)
        return "run config: simulation wall must be positive";
    if (config.gpu.numCus == 0)
        return "run config: need at least one CU";
    if (config.cusPerDomain == 0 ||
        config.gpu.numCus % config.cusPerDomain != 0) {
        return "run config: CU count must divide evenly into "
               "V/f domains";
    }
    if (power::VfTable::paperTable().indexOf(config.nominalFreq) < 0)
        return "run config: nominal frequency is not a V/f table state";
    const faults::FaultConfig &f = config.faults;
    if (f.telemetry.sigma < 0.0 || f.telemetry.dropoutProb < 0.0 ||
        f.telemetry.dropoutProb > 1.0) {
        return "run config: telemetry fault parameters out of range";
    }
    if (f.dvfs.transitionFailProb < 0.0 ||
        f.dvfs.transitionFailProb > 1.0 ||
        f.dvfs.extraSwitchLatency < 0) {
        return "run config: DVFS fault parameters out of range";
    }
    if (f.storage.upsetsPerEpoch < 0.0)
        return "run config: storage fault parameters out of range";
    return "";
}

ExperimentDriver::ExperimentDriver(const RunConfig &config)
    : cfg(config), vfTable(power::VfTable::paperTable()),
      powerModel(config.power), nominalIdx(0)
{
    const std::string err = validateRunConfig(cfg);
    fatalIf(!err.empty(), err);
    nominalIdx = static_cast<std::size_t>(
        vfTable.indexOf(cfg.nominalFreq));
}

RunResult
ExperimentDriver::run(std::shared_ptr<const isa::Application> app,
                      dvfs::DvfsController &controller)
{
    gpu::GpuConfig gpu_cfg = cfg.gpu;
    gpu_cfg.defaultFreq = cfg.nominalFreq;
    gpu::GpuChip chip(gpu_cfg, app);

    const dvfs::DomainMap domains(gpu_cfg.numCus, cfg.cusPerDomain);
    const Tick trans = cfg.transitionLatency >= 0
        ? cfg.transitionLatency : gpu::transitionLatencyFor(cfg.epochLen);
    const dvfs::SweepNeed need = controller.sweepNeed();
    const oracle::SweepOptions sweep_opts{
        true, controller.needsWaveLevel()};

    power::ThermalModel thermal;
    faults::FaultInjector injector(cfg.faults);

    RunResult result;
    result.controller = controller.name();
    result.workload = app->name;
    result.freqTimeShare.assign(vfTable.numStates(), 0.0);

    std::vector<std::size_t> domain_state(domains.numDomains(),
                                          nominalIdx);
    std::vector<double> prev_pred(domains.numDomains(), -1.0);
    dvfs::AccurateEstimates prev_sweep;

    // Running averages for the marginal objectives (EWMA, alpha 0.2).
    Watts avg_power = 0.0;
    std::vector<double> avg_instr(domains.numDomains(), 0.0);
    constexpr double avg_alpha = 0.2;

    double accuracy_sum = 0.0;
    std::size_t accuracy_n = 0;
    std::uint64_t domain_epochs = 0;

    Tick epoch_start = 0;
    bool done = false;
    while (!done && epoch_start < cfg.maxSimTime) {
        const Tick epoch_end = epoch_start + cfg.epochLen;
        done = chip.runUntil(epoch_end);
        gpu::EpochRecord record = chip.harvestEpoch(epoch_start);
        ++result.epochs;

        // Controllers see the *observed* record; energy accounting,
        // accuracy scoring and traces keep the physical one, so noisy
        // sensors cannot retroactively change what really happened.
        const faults::FaultInjector::Totals epoch_base =
            injector.totals();
        const std::uint64_t fallback_base = controller.fallbackEpochs();
        std::uint64_t epoch_clamped = 0;
        gpu::EpochRecord observed_storage;
        const gpu::EpochRecord *observed = &record;
        if (cfg.faults.telemetry.enabled) {
            observed_storage = record;
            injector.perturbRecord(observed_storage, cfg.epochLen);
            observed = &observed_storage;
        }

        // --- prediction accuracy of the decisions made last epoch ---
        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            const double actual = dvfs::sumOverDomain(
                domains, d, [&](std::uint32_t cu) {
                    return static_cast<double>(record.cus[cu].committed);
                });
            if (prev_pred[d] >= 0.0 && actual > 0.0) {
                const double err =
                    std::abs(prev_pred[d] - actual) / actual;
                accuracy_sum += clampTo(1.0 - err, 0.0, 1.0);
                ++accuracy_n;
            }
        }

        // --- energy accounting (prorate the final partial epoch) ---
        const Tick accounted_end =
            done ? std::min(epoch_end, chip.lastCommitTick()) : epoch_end;
        const Tick eff_len =
            std::max<Tick>(accounted_end - epoch_start, 0);
        if (eff_len > 0) {
            double epoch_energy = 0.0;
            memory::MemActivity total_activity;
            for (std::uint32_t cu = 0; cu < gpu_cfg.numCus; ++cu) {
                const gpu::CuEpochRecord &cr = record.cus[cu];
                const Volts v = vfTable
                    .state(domain_state[domains.domainOf(cu)]).voltage;
                epoch_energy += powerModel.cuEpochEnergy(
                    v, cr.freq, cr.committed, cr.mem, eff_len,
                    thermal.temperature()).total();
                total_activity += cr.mem;
            }
            epoch_energy += powerModel.memEpochEnergy(total_activity,
                                                      eff_len);
            result.energy += epoch_energy;
            thermal.update(epoch_energy / tickSeconds(eff_len),
                           tickSeconds(eff_len));
            const Watts epoch_power =
                epoch_energy / tickSeconds(eff_len);
            avg_power = avg_power == 0.0 ? epoch_power
                : (1.0 - avg_alpha) * avg_power +
                  avg_alpha * epoch_power;
        }
        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            const double instr = dvfs::sumOverDomain(
                domains, d, [&](std::uint32_t cu) {
                    return static_cast<double>(
                        observed->cus[cu].committed);
                });
            avg_instr[d] = avg_instr[d] == 0.0 ? instr
                : (1.0 - avg_alpha) * avg_instr[d] +
                  avg_alpha * instr;
        }

        // --- frequency residency ---
        for (std::uint32_t d = 0; d < domains.numDomains(); ++d)
            result.freqTimeShare[domain_state[d]] += 1.0;
        domain_epochs += domains.numDomains();

        if (cfg.collectTrace) {
            EpochTraceEntry entry;
            entry.start = epoch_start;
            for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
                entry.domainState.push_back(
                    static_cast<std::uint8_t>(domain_state[d]));
                entry.domainCommitted.push_back(dvfs::sumOverDomain(
                    domains, d, [&](std::uint32_t cu) {
                        return static_cast<double>(
                            record.cus[cu].committed);
                    }));
            }
            result.trace.push_back(std::move(entry));
        }

        if (done)
            break;

        // --- sweeps for accurate-estimate controllers ---
        dvfs::AccurateEstimates cur_sweep;
        if (need != dvfs::SweepNeed::None) {
            cur_sweep = oracle::forkPreExecuteSweep(
                chip, domains, vfTable, cfg.epochLen, sweep_opts);
        }

        // --- decide & apply next epoch's frequencies ---
        const std::vector<gpu::WaveSnapshot> snaps =
            chip.waveSnapshots();
        dvfs::EpochContext ctx{
            *observed, snaps, domains, vfTable, powerModel,
            cfg.epochLen, thermal.temperature(), cfg.objective,
            cfg.perfDegradationLimit, nominalIdx,
            prev_sweep.empty() ? nullptr : &prev_sweep,
            cur_sweep.empty() ? nullptr : &cur_sweep,
            avg_power, &avg_instr};

        // Storage upsets land between epochs, before the controller
        // reads its tables (no-op unless storage faults are enabled).
        controller.applyStorageFaults(injector);

        // The very first epoch has no elapsed-epoch estimate yet;
        // accurate-reactive controllers stay at nominal.
        std::vector<dvfs::DomainDecision> decisions;
        if (need == dvfs::SweepNeed::Elapsed && prev_sweep.empty()) {
            decisions.assign(domains.numDomains(),
                             dvfs::DomainDecision{nominalIdx, -1.0});
        } else {
            decisions = controller.decide(ctx);
        }
        // Never trust a controller's output blindly: repair illegal
        // decisions instead of crashing or applying garbage.
        epoch_clamped = dvfs::sanitizeDecisions(
            decisions, vfTable, domains.numDomains(), nominalIdx);
        result.faults.clampedDecisions += epoch_clamped;

        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            const std::size_t old_state = domain_state[d];
            const faults::TransitionOutcome applied = injector
                .transition(old_state, decisions[d].state, vfTable);
            domain_state[d] = applied.state;
            // A failed or re-quantized transition means the predicted
            // state was never applied; don't score that prediction.
            prev_pred[d] = applied.state == decisions[d].state
                ? decisions[d].predictedInstr : -1.0;
            const Freq freq = vfTable.state(applied.state).freq;
            const std::uint32_t first = domains.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domains.cusPerDomain(); ++cu) {
                chip.setCuFrequency(cu, freq,
                                    trans + applied.extraLatency);
            }
            if (old_state != applied.state) {
                result.transitions += domains.cusPerDomain();
                const Joules te = powerModel.transitionEnergy(
                    vfTable.state(old_state).voltage,
                    vfTable.state(applied.state).voltage) *
                    domains.cusPerDomain();
                result.transitionEnergy += te;
                result.energy += te;
            }
        }

        if (cfg.collectTrace && !result.trace.empty()) {
            const faults::FaultInjector::Totals &now = injector.totals();
            gpu::FaultEpochCounters &fc = result.trace.back().faults;
            fc.telemetryPerturbations =
                now.telemetryPerturbations - epoch_base
                                                 .telemetryPerturbations;
            fc.telemetryDropouts =
                now.telemetryDropouts - epoch_base.telemetryDropouts;
            fc.transitionFailures =
                now.transitionFailures - epoch_base.transitionFailures;
            fc.transitionExtraLatency = now.transitionExtraLatency -
                epoch_base.transitionExtraLatency;
            fc.tableBitFlips =
                now.tableBitFlips - epoch_base.tableBitFlips;
            fc.clampedDecisions = epoch_clamped;
            fc.fallbackActive =
                controller.fallbackEpochs() > fallback_base;
        }

        prev_sweep = std::move(cur_sweep);
        epoch_start = epoch_end;
    }

    result.completed = done;
    if (!done) {
        warn("run of '" + app->name + "' under " + controller.name() +
             " hit the simulation wall at " +
             std::to_string(cfg.maxSimTime / tickUs) + " us");
    }
    result.execTime = done ? chip.lastCommitTick() : cfg.maxSimTime;
    result.instructions = chip.totalCommitted();
    result.predictionAccuracy =
        accuracy_n > 0 ? accuracy_sum / static_cast<double>(accuracy_n)
                       : 0.0;
    if (domain_epochs > 0) {
        for (double &share : result.freqTimeShare)
            share /= static_cast<double>(domain_epochs);
    }
    result.finalTemperature = thermal.temperature();

    const faults::FaultInjector::Totals &tot = injector.totals();
    result.faults.telemetryPerturbations = tot.telemetryPerturbations;
    result.faults.telemetryDropouts = tot.telemetryDropouts;
    result.faults.transitionFailures = tot.transitionFailures;
    result.faults.transitionExtraLatency = tot.transitionExtraLatency;
    result.faults.tableBitFlips = controller.storageBitFlips();
    result.faults.tableScrubs = controller.storageScrubs();
    result.faults.watchdogTrips = controller.watchdogTrips();
    result.faults.fallbackEpochs = controller.fallbackEpochs();
    return result;
}

} // namespace pcstall::sim
