#include "sim/experiment.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "faults/fault_injector.hh"
#include "obs/context.hh"
#include "oracle/fork_pre_execute.hh"
#include "oracle/snapshot_pool.hh"
#include "sim/epoch_ledger.hh"
#include "sim/parallel_executor.hh"

namespace pcstall::sim
{

void
scaleToCus(gpu::GpuConfig &gpu_cfg, power::PowerParams &power_cfg,
           std::uint32_t num_cus)
{
    fatalIf(num_cus == 0, "scaleToCus: zero CUs");
    gpu_cfg.numCus = num_cus;
    const double frac = static_cast<double>(num_cus) / 64.0;
    auto scale_count = [&](std::uint32_t paper_value,
                           std::uint32_t floor_value) {
        return std::max<std::uint32_t>(
            floor_value, static_cast<std::uint32_t>(
                std::llround(paper_value * frac)));
    };
    gpu_cfg.mem.l2Banks = scale_count(16, 2);
    gpu_cfg.mem.dramChannels = scale_count(8, 1);
    const std::uint64_t slice = 256 * 1024; // 4 MiB / 16 banks
    gpu_cfg.mem.l2SizeBytes = slice * gpu_cfg.mem.l2Banks;
    power_cfg.memStatic = 56.0 * std::max(frac, 0.05);
}

std::string
validateRunConfig(const RunConfig &config)
{
    if (config.epochLen <= 0)
        return "run config: epoch length must be positive";
    if (config.maxSimTime <= 0)
        return "run config: simulation wall must be positive";
    if (config.gpu.numCus == 0)
        return "run config: need at least one CU";
    if (config.cusPerDomain == 0 ||
        config.gpu.numCus % config.cusPerDomain != 0) {
        return "run config: CU count must divide evenly into "
               "V/f domains";
    }
    if (power::VfTable::paperTable().indexOf(config.nominalFreq) < 0)
        return "run config: nominal frequency is not a V/f table state";
    const faults::FaultConfig &f = config.faults;
    if (f.telemetry.sigma < 0.0 || f.telemetry.dropoutProb < 0.0 ||
        f.telemetry.dropoutProb > 1.0) {
        return "run config: telemetry fault parameters out of range";
    }
    if (f.dvfs.transitionFailProb < 0.0 ||
        f.dvfs.transitionFailProb > 1.0 ||
        f.dvfs.extraSwitchLatency < 0) {
        return "run config: DVFS fault parameters out of range";
    }
    if (f.storage.upsetsPerEpoch < 0.0)
        return "run config: storage fault parameters out of range";
    return "";
}

ExperimentDriver::ExperimentDriver(const RunConfig &config)
    : cfg(config), vfTable(power::VfTable::paperTable()),
      powerModel(config.power), nominalIdx(0)
{
    const std::string err = validateRunConfig(cfg);
    fatalIf(!err.empty(), err);
    nominalIdx = static_cast<std::size_t>(
        vfTable.indexOf(cfg.nominalFreq));
}

RunResult
ExperimentDriver::run(std::shared_ptr<const isa::Application> app,
                      dvfs::DvfsController &controller,
                      EpochObserver *observer)
{
    gpu::GpuConfig gpu_cfg = cfg.gpu;
    gpu_cfg.defaultFreq = cfg.nominalFreq;
    gpu::GpuChip chip(gpu_cfg, app);

    const dvfs::DomainMap domains(gpu_cfg.numCus, cfg.cusPerDomain);
    const Tick trans = cfg.transitionLatency >= 0
        ? cfg.transitionLatency : gpu::transitionLatencyFor(cfg.epochLen);
    const dvfs::SweepNeed need = controller.sweepNeed();

    // One snapshot pool per run: after the first epoch its scratch
    // chips hit their capacity high-water mark and every later sweep
    // is allocation-free. The in-cell executor (if requested) spreads
    // the S independent samples across threads; the reduction stays on
    // this thread in sample order, so results are byte-identical to
    // the serial copy path either way.
    oracle::SnapshotPool sweep_pool;
    std::unique_ptr<ParallelExecutor> sweep_exec;
    oracle::SweepOptions sweep_opts;
    sweep_opts.shuffle = true;
    sweep_opts.waveLevel = controller.needsWaveLevel();
    if (cfg.oracleMode == OracleMode::Pool ||
        cfg.oracleMode == OracleMode::PoolFull) {
        sweep_pool.setDeltaRestore(cfg.oracleMode == OracleMode::Pool);
        sweep_opts.pool = &sweep_pool;
        if (cfg.oracleThreads > 1 && need != dvfs::SweepNeed::None)
            sweep_exec =
                std::make_unique<ParallelExecutor>(cfg.oracleThreads);
        sweep_opts.executor = sweep_exec.get();
    }

    faults::FaultInjector injector(cfg.faults);
    // All metric arithmetic lives in the ledger, shared with the trace
    // replay engine so capture-then-replay reproduces it bit-for-bit.
    EpochLedger ledger(cfg, vfTable, powerModel, domains, nominalIdx);

    RunResult result;
    result.controller = controller.name();
    result.workload = app->name;

    // Self-profile counters: where a run's wall time goes (simulate =
    // timing model, predict = controller decisions, oracle = forked
    // pre-execution, encode = observers/trace capture). All
    // Timing-kind: real but non-deterministic, exported separately.
    obs::Registry &registry = obs::reg();
    obs::Counter &simulate_ns =
        registry.counter("profile.simulate_ns", obs::MetricKind::Timing);
    obs::Counter &predict_ns =
        registry.counter("profile.predict_ns", obs::MetricKind::Timing);
    obs::Counter &oracle_ns =
        registry.counter("profile.oracle_ns", obs::MetricKind::Timing);
    obs::Counter &encode_ns =
        registry.counter("profile.encode_ns", obs::MetricKind::Timing);
    obs::Histogram &epoch_wall = registry.histogram(
        "sim.epoch_wall_ns", obs::MetricKind::Timing);
    obs::Histogram &decide_wall = registry.histogram(
        "predict.decide_wall_ns", obs::MetricKind::Timing);

    dvfs::AccurateEstimates prev_sweep;
    static const std::vector<gpu::WaveSnapshot> no_snapshots;
    static const std::vector<dvfs::DomainDecision> no_decisions;
    static const std::vector<std::size_t> no_applied;

    Tick epoch_start = 0;
    bool done = false;
    // Harvest buffers live outside the loop: harvestEpoch() and
    // perturbRecord() fully overwrite them each epoch, so hoisting
    // them trades one allocation per epoch for vector-capacity reuse.
    gpu::EpochRecord record;
    gpu::EpochRecord observed_storage;
    while (!done && epoch_start < cfg.maxSimTime) {
        if (cfg.cancel != nullptr &&
            cfg.cancel->load(std::memory_order_relaxed)) {
            fatal("run cancelled after " +
                  std::to_string(result.epochs) +
                  " epoch(s): cell wall-time budget exceeded "
                  "(--cell-timeout)");
        }
        const std::int64_t epoch_t0 = obs::nowNsIfEnabled();
        const Tick epoch_end = epoch_start + cfg.epochLen;
        {
            const obs::ScopedTimer timer(nullptr, &simulate_ns);
            done = chip.runUntil(epoch_end);
            chip.harvestEpoch(epoch_start, record);
        }
        ++result.epochs;

        // Controllers see the *observed* record; energy accounting,
        // accuracy scoring and traces keep the physical one, so noisy
        // sensors cannot retroactively change what really happened.
        const faults::FaultInjector::Totals epoch_base =
            injector.totals();
        const std::uint64_t fallback_base = controller.fallbackEpochs();
        const gpu::EpochRecord *observed = &record;
        if (cfg.faults.telemetry.enabled) {
            observed_storage = record;
            injector.perturbRecord(observed_storage, cfg.epochLen);
            observed = &observed_storage;
        }

        const Tick accounted_end =
            done ? std::min(epoch_end, chip.lastCommitTick()) : epoch_end;
        ledger.observeEpoch(record, *observed, epoch_start,
                            accounted_end);

        if (done) {
            if (observer) {
                const obs::ScopedTimer timer(nullptr, &encode_ns);
                observer->onEpoch(EpochCapture{
                    epoch_start, epoch_end, accounted_end, true,
                    record, no_snapshots, nullptr, no_decisions,
                    no_applied});
            }
            obs::recordSinceNs(epoch_wall, epoch_t0);
            break;
        }

        // --- sweeps for accurate-estimate controllers ---
        dvfs::AccurateEstimates cur_sweep;
        if (need != dvfs::SweepNeed::None) {
            const obs::ScopedTimer timer(nullptr, &oracle_ns);
            cur_sweep = oracle::forkPreExecuteSweep(
                chip, domains, vfTable, cfg.epochLen, sweep_opts);
        }

        // --- decide & apply next epoch's frequencies ---
        const std::vector<gpu::WaveSnapshot> snaps =
            chip.waveSnapshots();
        const dvfs::EpochContext ctx = ledger.makeContext(
            *observed, snaps,
            prev_sweep.empty() ? nullptr : &prev_sweep,
            cur_sweep.empty() ? nullptr : &cur_sweep);

        // Storage upsets land between epochs, before the controller
        // reads its tables (no-op unless storage faults are enabled).
        controller.applyStorageFaults(injector);

        std::vector<dvfs::DomainDecision> decisions;
        {
            const obs::ScopedTimer timer(&decide_wall, &predict_ns);
            decisions = decideEpoch(
                controller, ctx, need, !prev_sweep.empty(),
                domains.numDomains(), nominalIdx);
        }

        const std::vector<EpochLedger::AppliedTransition> applied =
            ledger.applyDecisions(decisions, injector);
        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            const Freq freq = vfTable.state(applied[d].state).freq;
            const std::uint32_t first = domains.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domains.cusPerDomain(); ++cu) {
                chip.setCuFrequency(cu, freq,
                                    trans + applied[d].extraLatency);
            }
        }

        ledger.traceEpochFaults(
            epoch_base, injector,
            controller.fallbackEpochs() > fallback_base);

        if (observer) {
            const obs::ScopedTimer timer(nullptr, &encode_ns);
            std::vector<std::size_t> applied_states(
                domains.numDomains());
            for (std::uint32_t d = 0; d < domains.numDomains(); ++d)
                applied_states[d] = applied[d].state;
            observer->onEpoch(EpochCapture{
                epoch_start, epoch_end, accounted_end, false, record,
                snaps, cur_sweep.empty() ? nullptr : &cur_sweep,
                decisions, applied_states, &ledger.lastEpochFaults()});
        }

        obs::recordSinceNs(epoch_wall, epoch_t0);
        prev_sweep = std::move(cur_sweep);
        epoch_start = epoch_end;
    }

    if (!done) {
        warnLimited(
            "sim-wall",
            "run of '" + app->name + "' under " + controller.name() +
                " hit the simulation wall at " +
                std::to_string(cfg.maxSimTime / tickUs) + " us");
    }
    ledger.finalize(result, done, chip.lastCommitTick(),
                    chip.totalCommitted(), injector, controller);
    if (observer)
        observer->onRunEnd(result);
    return result;
}

} // namespace pcstall::sim
