#include "cell_codec.hh"

#include "trace/wire.hh"

namespace pcstall::store
{

using trace::Cursor;
using trace::putBool;
using trace::putDouble;
using trace::putString;
using trace::putVarint;
using trace::putZigzag;

namespace
{

void
encodeFaultSummary(std::string &out, const sim::FaultSummary &fs)
{
    putVarint(out, fs.telemetryPerturbations);
    putVarint(out, fs.telemetryDropouts);
    putVarint(out, fs.transitionFailures);
    putZigzag(out, fs.transitionExtraLatency);
    putVarint(out, fs.tableBitFlips);
    putVarint(out, fs.tableScrubs);
    putVarint(out, fs.clampedDecisions);
    putVarint(out, fs.watchdogTrips);
    putVarint(out, fs.fallbackEpochs);
}

void
decodeFaultSummary(Cursor &cur, sim::FaultSummary &fs)
{
    fs.telemetryPerturbations = cur.varint();
    fs.telemetryDropouts = cur.varint();
    fs.transitionFailures = cur.varint();
    fs.transitionExtraLatency = cur.zigzag();
    fs.tableBitFlips = cur.varint();
    fs.tableScrubs = cur.varint();
    fs.clampedDecisions = cur.varint();
    fs.watchdogTrips = cur.varint();
    fs.fallbackEpochs = cur.varint();
}

void
encodeEpochFaults(std::string &out, const gpu::FaultEpochCounters &fc)
{
    putVarint(out, fc.telemetryPerturbations);
    putVarint(out, fc.telemetryDropouts);
    putVarint(out, fc.transitionFailures);
    putZigzag(out, fc.transitionExtraLatency);
    putVarint(out, fc.tableBitFlips);
    putVarint(out, fc.clampedDecisions);
    putBool(out, fc.fallbackActive);
}

void
decodeEpochFaults(Cursor &cur, gpu::FaultEpochCounters &fc)
{
    fc.telemetryPerturbations = cur.varint();
    fc.telemetryDropouts = cur.varint();
    fc.transitionFailures = cur.varint();
    fc.transitionExtraLatency = cur.zigzag();
    fc.tableBitFlips = cur.varint();
    fc.clampedDecisions = cur.varint();
    fc.fallbackActive = cur.getBool();
}

void
encodeRegretSummary(std::string &out, const obs::RegretSummary &rs)
{
    putVarint(out, rs.count);
    putDouble(out, rs.oracleSum);
    putDouble(out, rs.oracleMax);
    putDouble(out, rs.staticSum);
    putVarint(out, rs.buckets.size());
    for (const std::uint64_t b : rs.buckets)
        putVarint(out, b);
}

bool
decodeRegretSummary(Cursor &cur, obs::RegretSummary &rs)
{
    rs.count = cur.varint();
    rs.oracleSum = cur.getDouble();
    rs.oracleMax = cur.getDouble();
    rs.staticSum = cur.getDouble();
    const std::uint64_t buckets = cur.varint();
    if (cur.failed() || buckets > cur.remaining())
        return false;
    if (buckets != 0 && buckets != obs::RegretSummary::numBuckets)
        return false;
    rs.buckets.resize(buckets);
    for (std::uint64_t &b : rs.buckets)
        b = cur.varint();
    return !cur.failed();
}

void
encodeRunResult(std::string &out, const sim::RunResult &r)
{
    putString(out, r.controller);
    putString(out, r.workload);
    putBool(out, r.completed);
    putVarint(out, r.epochs);
    putZigzag(out, r.execTime);
    putDouble(out, r.energy);
    putVarint(out, r.instructions);
    putDouble(out, r.predictionAccuracy);
    putVarint(out, r.transitions);
    putDouble(out, r.transitionEnergy);
    putVarint(out, r.freqTimeShare.size());
    for (const double v : r.freqTimeShare)
        putDouble(out, v);
    putDouble(out, r.finalTemperature);
    encodeFaultSummary(out, r.faults);
    putVarint(out, r.trace.size());
    for (const sim::EpochTraceEntry &e : r.trace) {
        putZigzag(out, e.start);
        putVarint(out, e.domainState.size());
        for (const std::uint8_t s : e.domainState)
            out.push_back(static_cast<char>(s));
        putVarint(out, e.domainCommitted.size());
        for (const double v : e.domainCommitted)
            putDouble(out, v);
        encodeEpochFaults(out, e.faults);
    }
    encodeRegretSummary(out, r.regret);
}

bool
decodeRunResult(Cursor &cur, sim::RunResult &r)
{
    r.controller = cur.getString();
    r.workload = cur.getString();
    r.completed = cur.getBool();
    r.epochs = cur.varint();
    r.execTime = cur.zigzag();
    r.energy = cur.getDouble();
    r.instructions = cur.varint();
    r.predictionAccuracy = cur.getDouble();
    r.transitions = cur.varint();
    r.transitionEnergy = cur.getDouble();
    const std::uint64_t shares = cur.varint();
    if (cur.failed() || shares > cur.remaining() / 8)
        return false;
    r.freqTimeShare.resize(shares);
    for (double &v : r.freqTimeShare)
        v = cur.getDouble();
    r.finalTemperature = cur.getDouble();
    decodeFaultSummary(cur, r.faults);
    const std::uint64_t entries = cur.varint();
    // Each entry costs >= 10 bytes on the wire; bound the allocation
    // by the bytes actually present so corrupt counts cannot balloon.
    if (cur.failed() || entries > cur.remaining() / 10)
        return false;
    r.trace.resize(entries);
    for (sim::EpochTraceEntry &e : r.trace) {
        e.start = cur.zigzag();
        const std::uint64_t states = cur.varint();
        if (cur.failed() || states > cur.remaining())
            return false;
        e.domainState.resize(states);
        for (std::uint8_t &s : e.domainState)
            s = cur.u8();
        const std::uint64_t committed = cur.varint();
        if (cur.failed() || committed > cur.remaining() / 8)
            return false;
        e.domainCommitted.resize(committed);
        for (double &v : e.domainCommitted)
            v = cur.getDouble();
        decodeEpochFaults(cur, e.faults);
    }
    if (!decodeRegretSummary(cur, r.regret))
        return false;
    return !cur.failed();
}

void
encodeMetrics(std::string &out, const obs::MetricsSnapshot &snap)
{
    // Deterministic-kind metrics only: maps are ordered, so the
    // encoding (and thus the store payload) is canonical.
    std::uint64_t n = 0;
    for (const auto &[name, value] : snap.counters) {
        (void)value;
        if (snap.kindOf(name) == obs::MetricKind::Deterministic)
            ++n;
    }
    putVarint(out, n);
    for (const auto &[name, value] : snap.counters) {
        if (snap.kindOf(name) != obs::MetricKind::Deterministic)
            continue;
        putString(out, name);
        putVarint(out, value);
    }
    n = 0;
    for (const auto &[name, value] : snap.gauges) {
        (void)value;
        if (snap.kindOf(name) == obs::MetricKind::Deterministic)
            ++n;
    }
    putVarint(out, n);
    for (const auto &[name, value] : snap.gauges) {
        if (snap.kindOf(name) != obs::MetricKind::Deterministic)
            continue;
        putString(out, name);
        putDouble(out, value);
    }
    n = 0;
    for (const auto &[name, hist] : snap.histograms) {
        (void)hist;
        if (snap.kindOf(name) == obs::MetricKind::Deterministic)
            ++n;
    }
    putVarint(out, n);
    for (const auto &[name, hist] : snap.histograms) {
        if (snap.kindOf(name) != obs::MetricKind::Deterministic)
            continue;
        putString(out, name);
        putVarint(out, hist.count);
        putDouble(out, hist.sum);
        putDouble(out, hist.min);
        putDouble(out, hist.max);
        putVarint(out, hist.overflow);
        putVarint(out, hist.buckets.size());
        for (const auto &[idx, count] : hist.buckets) {
            putZigzag(out, idx);
            putVarint(out, count);
        }
    }
}

bool
decodeMetrics(Cursor &cur, obs::MetricsSnapshot &snap)
{
    std::uint64_t n = cur.varint();
    if (cur.failed() || n > cur.remaining())
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = cur.getString();
        snap.counters[name] = cur.varint();
    }
    n = cur.varint();
    if (cur.failed() || n > cur.remaining())
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = cur.getString();
        snap.gauges[name] = cur.getDouble();
    }
    n = cur.varint();
    if (cur.failed() || n > cur.remaining())
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = cur.getString();
        obs::HistogramSnapshot hist;
        hist.count = cur.varint();
        hist.sum = cur.getDouble();
        hist.min = cur.getDouble();
        hist.max = cur.getDouble();
        hist.overflow = cur.varint();
        const std::uint64_t buckets = cur.varint();
        if (cur.failed() || buckets > cur.remaining() / 2)
            return false;
        hist.buckets.reserve(buckets);
        for (std::uint64_t b = 0; b < buckets; ++b) {
            const int idx = static_cast<int>(cur.zigzag());
            const std::uint64_t count = cur.varint();
            hist.buckets.emplace_back(idx, count);
        }
        snap.histograms[name] = std::move(hist);
    }
    return !cur.failed();
}

} // namespace

std::string
encodeStoredCell(const StoredCell &cell)
{
    std::string out;
    putVarint(out, cellCodecVersion);
    putBool(out, cell.run.ok);
    putString(out, cell.run.error);
    encodeRunResult(out, cell.run.result);
    encodeMetrics(out, cell.metrics);
    return out;
}

bool
decodeStoredCell(const std::string &payload, StoredCell &out,
                 std::string &error)
{
    Cursor cur(payload);
    const std::uint64_t version = cur.varint();
    if (cur.failed() || version != cellCodecVersion) {
        error = "unsupported cell payload version";
        return false;
    }
    out.run.ok = cur.getBool();
    out.run.error = cur.getString();
    if (!decodeRunResult(cur, out.run.result)) {
        error = "truncated run result";
        return false;
    }
    if (!decodeMetrics(cur, out.metrics)) {
        error = "truncated metrics shard";
        return false;
    }
    if (cur.failed() || !cur.atEnd()) {
        error = "malformed cell payload";
        return false;
    }
    return true;
}

} // namespace pcstall::store
