/**
 * @file
 * Wire codec for checkpointed sweep cells: the full sim::RunResult
 * (including the per-epoch trace and fault summary), the outcome
 * status, and the cell's deterministic metrics shard.
 *
 * Fidelity is the contract: every field round-trips exactly - doubles
 * travel as raw IEEE-754 bits - so a sweep that resumes cells from
 * the store emits byte-identical figure output (tables, CSV, merged
 * canonical metrics) to one that computed every cell live. The
 * metrics shard carries only Deterministic-kind metrics: wall-clock
 * (Timing) values are machine- and run-specific and are re-recorded
 * fresh on every run.
 */

#ifndef PCSTALL_STORE_CELL_CODEC_HH
#define PCSTALL_STORE_CELL_CODEC_HH

#include <string>

#include "obs/metrics.hh"
#include "sim/experiment.hh"

namespace pcstall::store
{

/** Payload codec version (inside the PCRS entry; see result_store).
 *  v2 added the RunResult regret summary (obs::RegretSummary). */
inline constexpr std::uint16_t cellCodecVersion = 2;

/** A checkpointed run outcome (mirrors bench::RunOutcome). */
struct StoredRun
{
    sim::RunResult result;
    bool ok = false;
    /** One-line diagnostic when !ok (not currently checkpointed;
     *  failures are always recomputed). */
    std::string error;
};

/** Everything one store entry carries. */
struct StoredCell
{
    StoredRun run;
    /** The cell's Deterministic-kind metrics shard, replayed into the
     *  merge on a store hit so canonical metrics stay byte-identical
     *  between resumed and uninterrupted sweeps. */
    obs::MetricsSnapshot metrics;
};

/**
 * Serialize @p cell into an opaque payload for ResultStore::put().
 * Timing-kind metrics are dropped from the shard.
 *
 * @param cell  The completed cell to encode.
 * @return The payload bytes.
 */
std::string encodeStoredCell(const StoredCell &cell);

/**
 * Decode a payload from ResultStore::get(). Strict: any truncation,
 * trailing garbage or version mismatch fails (so the caller treats
 * the entry as corrupt and recomputes).
 *
 * @param payload  Bytes previously produced by encodeStoredCell().
 * @param out      Receives the decoded cell on success.
 * @param error    Receives a one-line diagnostic on failure.
 * @return True on success.
 */
bool decodeStoredCell(const std::string &payload, StoredCell &out,
                      std::string &error);

} // namespace pcstall::store

#endif // PCSTALL_STORE_CELL_CODEC_HH
