#include "result_store.hh"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "atomic_file.hh"
#include "common/logging.hh"
#include "trace/wire.hh"

namespace pcstall::store
{

namespace fs = std::filesystem;

namespace
{

constexpr char keySep = '\x1f';
constexpr const char *corruptDirName = ".corrupt";

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Test hook: PCSTALL_TEST_CRASH_AFTER_PUTS=K SIGKILLs the process
 * right after the K-th successful checkpoint, giving the
 * kill-and-resume tests a deterministic mid-sweep crash point (a real
 * SIGKILL: no handlers, no unwinding, exactly like an OOM kill).
 *
 * When the hook is armed, entry publication serializes on
 * crashHookMutex() (put() locks it around the atomic rename): without
 * that, a concurrent worker thread could commit its rename between
 * the K-th counter increment and the SIGKILL landing, leaving K+1
 * entries on disk and flaking the exact-count asserts in
 * tests/test_store.cc and the CI sweep-farm job. Unarmed runs (the
 * only kind outside tests) never take the lock.
 */
std::mutex &
crashHookMutex()
{
    static std::mutex m;
    return m;
}

long
crashAfterPuts()
{
    // Re-read the environment every call (puts are per-cell, so this
    // is cold): a forked test child that sets the variable after the
    // parent already checkpointed must still see it armed.
    const char *env = std::getenv("PCSTALL_TEST_CRASH_AFTER_PUTS");
    return env != nullptr ? std::atol(env) : 0L;
}

void
maybeCrashAfterPut()
{
    static std::atomic<long> puts{0};
    if (puts.fetch_add(1) + 1 >= crashAfterPuts())
        ::raise(SIGKILL);
}

} // namespace

std::string
CellKey::text() const
{
    std::string out;
    out.reserve(harness.size() + workload.size() + design.size() +
                controllerConfig.size() + fingerprint.size() + 25);
    out += harness;
    out += keySep;
    out += workload;
    out += keySep;
    out += design;
    out += keySep;
    out += controllerConfig;
    out += keySep;
    out += fingerprint;
    out += keySep;
    out += std::to_string(runIndex);
    return out;
}

std::string
keyDigest(const CellKey &key)
{
    const std::string text = key.text();
    // Two FNV-1a passes with independent seeds: 128 digest bits, so
    // accidental collisions across even very large sweeps are moot
    // (and the stored key text still guards the pathological case).
    const std::uint64_t a =
        trace::fnv1a(trace::fnvSeed, text.data(), text.size());
    const std::uint64_t b = trace::fnv1a(
        0x9E3779B97F4A7C15ULL ^ a, text.data(), text.size());
    return hex64(a) + hex64(b);
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty()) {
        error_ = "results store: empty directory path";
        return;
    }
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / corruptDirName, ec);
    if (ec) {
        error_ = "results store: cannot create '" + dir_ +
                 "': " + ec.message();
        return;
    }
    // Probe writability up front so a read-only directory surfaces as
    // one diagnostic at configuration time, not a warning per cell.
    const std::string probe =
        (fs::path(dir_) / ".probe").string();
    const std::string err = writeFileAtomic(probe, "pcstall");
    if (!err.empty()) {
        error_ = "results store: '" + dir_ + "' is not writable (" +
                 err + ")";
        return;
    }
    fs::remove(probe, ec);
}

std::string
ResultStore::entryPath(const CellKey &key) const
{
    return (fs::path(dir_) / (keyDigest(key) + ".pcres")).string();
}

void
ResultStore::quarantine(const std::string &path) const
{
    const fs::path src(path);
    const fs::path dst = fs::path(dir_) / corruptDirName /
        (src.filename().string() + "." + std::to_string(::getpid()));
    std::error_code ec;
    fs::rename(src, dst, ec);
    if (ec) {
        // Renaming failed (e.g. a concurrent quarantine won): remove
        // so the recompute's fresh put is not blocked by bad bytes.
        fs::remove(src, ec);
    }
}

ResultStore::GetResult
ResultStore::get(const CellKey &key) const
{
    GetResult out;
    if (!ok())
        return out;
    const std::string path = entryPath(key);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return out; // Miss
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    is.close();

    const auto corrupt = [&](const std::string &why) {
        quarantine(path);
        out.status = GetStatus::Corrupt;
        out.error = "store entry '" + path + "': " + why;
        return out;
    };

    if (buf.size() < 8 + 8 || buf.compare(0, 4, "PCRS") != 0)
        return corrupt("bad magic or truncated header");
    trace::Cursor cur(buf.data() + 4, buf.size() - 4 - 8);
    const std::uint16_t version =
        static_cast<std::uint16_t>(cur.u8()) |
        static_cast<std::uint16_t>(cur.u8()) << 8;
    cur.u8();
    cur.u8(); // reserved
    if (version != storeFormatVersion) {
        return corrupt("unsupported version " +
                       std::to_string(version));
    }
    const std::string key_text = cur.getString(1 << 12);
    const std::string payload =
        cur.getString(std::size_t{1} << 30);
    if (cur.failed() || !cur.atEnd())
        return corrupt("truncated or oversized entry body");
    const std::uint64_t want = trace::fnv1a(
        trace::fnvSeed, buf.data(), buf.size() - 8);
    trace::Cursor tail(buf.data() + buf.size() - 8, 8);
    if (tail.fixed64() != want)
        return corrupt("checksum mismatch");
    if (key_text != key.text()) {
        // A genuine digest collision: someone else's (valid) entry
        // lives at our path. Treat as a miss; never quarantine it.
        debug("results store: digest collision at '" + path + "'");
        return out;
    }
    out.status = GetStatus::Hit;
    out.payload = std::move(payload);
    return out;
}

std::string
ResultStore::put(const CellKey &key, const std::string &payload) const
{
    if (!ok())
        return error_;
    std::string bytes;
    bytes.reserve(payload.size() + key.text().size() + 32);
    bytes += "PCRS";
    bytes.push_back(static_cast<char>(storeFormatVersion & 0xFF));
    bytes.push_back(static_cast<char>(storeFormatVersion >> 8));
    bytes.push_back('\0');
    bytes.push_back('\0');
    trace::putString(bytes, key.text());
    trace::putString(bytes, payload);
    trace::putFixed64(
        bytes, trace::fnv1a(trace::fnvSeed, bytes.data(), bytes.size()));
    if (crashAfterPuts() > 0) {
        const std::lock_guard<std::mutex> lock(crashHookMutex());
        const std::string err = writeFileAtomic(entryPath(key), bytes);
        if (err.empty())
            maybeCrashAfterPut();
        return err;
    }
    return writeFileAtomic(entryPath(key), bytes);
}

std::size_t
ResultStore::entryCount() const
{
    if (!ok())
        return 0;
    std::size_t count = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".pcres") {
            ++count;
        }
    }
    return count;
}

std::size_t
ResultStore::quarantinedCount() const
{
    if (!ok())
        return 0;
    std::size_t count = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(
             fs::path(dir_) / corruptDirName, ec)) {
        if (entry.is_regular_file())
            ++count;
    }
    return count;
}

} // namespace pcstall::store
