#include "atomic_file.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace pcstall::store
{

namespace
{

/**
 * Fixed-capacity temp-path registry. Slots hold NUL-terminated paths
 * in plain char arrays so the signal handler can unlink() them
 * without touching the heap or any lock: a slot's `state` goes
 * 0 (free) -> 1 (claimed) -> 2 (active, path fully written) with
 * release ordering, and the handler only acts on state 2. Registering
 * threads serialize on a mutex (never taken in the handler).
 */
constexpr std::size_t maxSlots = 64;
constexpr std::size_t maxPathLen = 512;

struct Slot
{
    std::atomic<int> state{0};
    char path[maxPathLen];
};

Slot g_slots[maxSlots];
std::mutex g_registerMutex;
std::atomic<bool> g_handlersInstalled{false};

extern "C" void
cleanupSignalHandler(int signum)
{
    for (Slot &slot : g_slots) {
        if (slot.state.load(std::memory_order_acquire) == 2)
            ::unlink(slot.path);
    }
    ::signal(signum, SIG_DFL);
    ::raise(signum);
}

void
installHandlersOnce()
{
    bool expected = false;
    if (!g_handlersInstalled.compare_exchange_strong(expected, true))
        return;
    for (const int signum : {SIGINT, SIGTERM, SIGHUP}) {
        struct sigaction sa = {};
        sa.sa_handler = cleanupSignalHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESETHAND;
        ::sigaction(signum, &sa, nullptr);
    }
}

/** Write all of @p bytes to @p fd, retrying short writes. */
bool
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::string
tempPathFor(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

void
registerTempFile(const std::string &path)
{
    if (path.size() + 1 > maxPathLen)
        return; // too long to track; the write itself still works
    installHandlersOnce();
    const std::lock_guard<std::mutex> lock(g_registerMutex);
    for (Slot &slot : g_slots) {
        int expected = 0;
        if (slot.state.compare_exchange_strong(expected, 1)) {
            std::memcpy(slot.path, path.c_str(), path.size() + 1);
            slot.state.store(2, std::memory_order_release);
            return;
        }
    }
    // Registry full: the write proceeds untracked (cleanup best-effort).
}

void
unregisterTempFile(const std::string &path)
{
    const std::lock_guard<std::mutex> lock(g_registerMutex);
    for (Slot &slot : g_slots) {
        if (slot.state.load(std::memory_order_acquire) == 2 &&
            path == slot.path) {
            slot.state.store(0, std::memory_order_release);
            return;
        }
    }
}

std::size_t
cleanupTempFiles()
{
    const std::lock_guard<std::mutex> lock(g_registerMutex);
    std::size_t removed = 0;
    for (Slot &slot : g_slots) {
        if (slot.state.load(std::memory_order_acquire) == 2) {
            if (::unlink(slot.path) == 0)
                ++removed;
            slot.state.store(0, std::memory_order_release);
        }
    }
    return removed;
}

std::size_t
registeredTempFileCount()
{
    const std::lock_guard<std::mutex> lock(g_registerMutex);
    std::size_t count = 0;
    for (Slot &slot : g_slots) {
        if (slot.state.load(std::memory_order_acquire) == 2)
            ++count;
    }
    return count;
}

std::string
commitTempFile(const std::string &temp_path, const std::string &path)
{
    // fsync the staged bytes so the rename never publishes a file
    // whose contents are still only in the page cache.
    const int fd = ::open(temp_path.c_str(), O_RDONLY);
    if (fd < 0) {
        unregisterTempFile(temp_path);
        return "cannot reopen '" + temp_path +
               "' to sync: " + std::strerror(errno);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced || ::rename(temp_path.c_str(), path.c_str()) != 0) {
        const std::string err = std::strerror(errno);
        ::unlink(temp_path.c_str());
        unregisterTempFile(temp_path);
        return "cannot publish '" + path + "': " + err;
    }
    unregisterTempFile(temp_path);
    return "";
}

std::string
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string temp = tempPathFor(path);
    registerTempFile(temp);
    const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0) {
        unregisterTempFile(temp);
        return "cannot write '" + temp + "': " + std::strerror(errno);
    }
    const bool written = writeAll(fd, bytes);
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!written || !synced) {
        const std::string err = std::strerror(errno);
        ::unlink(temp.c_str());
        unregisterTempFile(temp);
        return "I/O error writing '" + temp + "': " + err;
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        const std::string err = std::strerror(errno);
        ::unlink(temp.c_str());
        unregisterTempFile(temp);
        return "cannot publish '" + path + "': " + err;
    }
    unregisterTempFile(temp);
    return "";
}

} // namespace pcstall::store
