/**
 * @file
 * Content-addressed, crash-safe results store for sweep cells
 * (docs/sweep_farm.md).
 *
 * Every completed sweep cell (and every shared static baseline) can
 * be checkpointed as one file whose name is a digest of the cell's
 * identity - (harness, workload, design, config fingerprint, run
 * index) - so a killed sweep restarted with the same flags, or a
 * sibling shard worker, finds the finished cells instead of
 * recomputing them. Cell results are deterministic (PR 3's split-seed
 * contract), so any two writers of one key produce identical
 * payloads and last-writer-wins renames are safe.
 *
 * Entry format ("PCRS", all integers little-endian):
 *
 *   "PCRS"  u16 version  u16 reserved
 *   length-prefixed key text (audit trail + digest-collision guard)
 *   length-prefixed payload (opaque to the store; see cell_codec.hh)
 *   fixed64 FNV-1a checksum over all prior bytes
 *
 * Writes stage through write-temp + fsync + atomic-rename
 * (atomic_file.hh), so readers only ever see whole entries. Corrupt
 * or truncated entries are detected on read, moved into a `.corrupt/`
 * sidecar directory for post-mortems, and reported as such so the
 * caller recomputes the cell rather than trusting the bytes.
 */

#ifndef PCSTALL_STORE_RESULT_STORE_HH
#define PCSTALL_STORE_RESULT_STORE_HH

#include <cstdint>
#include <string>

namespace pcstall::store
{

/** Store entry-format version (bumped on any wire change). */
inline constexpr std::uint16_t storeFormatVersion = 2;

/** The identity a stored result is addressed by. */
struct CellKey
{
    /** Harness the cell belongs to (binary basename). */
    std::string harness;
    std::string workload;
    /** Design label (or a pseudo-design like "__static_baseline__"). */
    std::string design;
    /** Controller configuration string (the part after ':' in a
     *  "NAME:k=v" design). Kept as its own key slot - not folded into
     *  the design label - so differently-configured controllers can
     *  never collide even when a harness normalizes its labels. */
    std::string controllerConfig;
    /** Serialized run-relevant options (bench config fingerprint). */
    std::string fingerprint;
    /** Repeat index among identical (workload, design, config) cells. */
    std::uint64_t runIndex = 0;

    /** Canonical text form (unit-separator joined; digest input). */
    std::string text() const;
};

/**
 * Content digest of @p key: 32 hex chars from two independent FNV-1a
 * passes over the canonical text. Stable across processes and
 * platforms; the stored key text guards the (astronomically unlikely)
 * collision case.
 *
 * @param key  The cell identity to digest.
 * @return The 32-character lowercase hex digest.
 */
std::string keyDigest(const CellKey &key);

/**
 * A directory of checkpointed cell results. Thread-safe: entries are
 * single immutable files, writes are atomic renames, and reads open
 * only fully published files.
 */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store rooted at @p dir. On
     * failure ok() turns false and error() carries the diagnostic;
     * get()/put() on a bad store are harmless no-ops (Miss / error).
     *
     * @param dir  Store root directory.
     */
    explicit ResultStore(std::string dir);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    const std::string &dir() const { return dir_; }

    /** Outcome class of one get(). */
    enum class GetStatus
    {
        /** Entry present and valid; payload is filled. */
        Hit,
        /** No entry for this key (or an unrelated digest collision). */
        Miss,
        /** Entry present but corrupt/truncated; quarantined. */
        Corrupt,
    };

    /** Result of one get(). */
    struct GetResult
    {
        GetStatus status = GetStatus::Miss;
        /** The stored payload (Hit only). */
        std::string payload;
        /** Diagnostic for Corrupt entries. */
        std::string error;
    };

    /**
     * Look up @p key. Corrupt or truncated entries are moved to the
     * `.corrupt/` sidecar (suffixed with the pid so repeated
     * quarantines never collide) and reported as Corrupt so the
     * caller recomputes - a bad checkpoint is never trusted.
     *
     * @param key  Cell identity to look up.
     * @return Hit with the payload, Miss, or Corrupt.
     */
    GetResult get(const CellKey &key) const;

    /**
     * Checkpoint @p payload under @p key via write-temp + fsync +
     * atomic-rename. Concurrent writers of one key are safe: cell
     * results are deterministic, so both stage identical bytes and
     * the last rename wins.
     *
     * @param key      Cell identity to store under.
     * @param payload  Opaque serialized result (see cell_codec.hh).
     * @return Empty string on success, else a one-line diagnostic.
     */
    std::string put(const CellKey &key, const std::string &payload) const;

    /** @return Number of valid-looking entries ("*.pcres" files). */
    std::size_t entryCount() const;

    /** @return Number of quarantined files under `.corrupt/`. */
    std::size_t quarantinedCount() const;

    /** @return Absolute entry path for @p key (test hook). */
    std::string entryPath(const CellKey &key) const;

  private:
    void quarantine(const std::string &path) const;

    std::string dir_;
    std::string error_;
};

} // namespace pcstall::store

#endif // PCSTALL_STORE_RESULT_STORE_HH
