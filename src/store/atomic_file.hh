/**
 * @file
 * Crash-safe file writes: write-to-temp + fsync + atomic-rename, plus
 * a process-wide registry of in-flight temp paths so abnormal exits
 * (FatalError unwinding through bench::guardedMain, or a SIGINT /
 * SIGTERM / SIGHUP) unlink half-written `.tmp` files instead of
 * leaving them to accumulate across retries.
 *
 * Every durable artifact the harnesses produce - results-store
 * entries, --metrics-out / --timeline-out exports, --csv-out tables,
 * epoch-trace captures, PC snapshots, the perf-suite baseline - goes
 * through these helpers, so a killed run never leaves a truncated
 * file a downstream tool could half-parse: readers only ever see the
 * complete renamed file or no file at all.
 */

#ifndef PCSTALL_STORE_ATOMIC_FILE_HH
#define PCSTALL_STORE_ATOMIC_FILE_HH

#include <string>

namespace pcstall::store
{

/**
 * The temp path writeFileAtomic() (and the streaming writers) stage
 * @p path under: the final path plus a ".tmp.<pid>" suffix. Keeping
 * the temp in the destination directory guarantees rename() never
 * crosses filesystems.
 *
 * @param path  The final destination path.
 * @return The staging path for @p path in this process.
 */
std::string tempPathFor(const std::string &path);

/**
 * Write @p bytes to @p path crash-safely: stage into tempPathFor(),
 * fsync, then atomically rename over @p path. The temp path is
 * registered for the duration, so a signal or FatalError exit unlinks
 * it rather than leaving a stale partial file.
 *
 * @param path   Final destination path.
 * @param bytes  Full file contents.
 * @return Empty string on success, else a one-line diagnostic (the
 *         destination is untouched and the temp file removed).
 */
std::string writeFileAtomic(const std::string &path,
                            const std::string &bytes);

/**
 * Register an in-flight temp path for crash cleanup. Streaming
 * writers (trace capture) that hold a temp open across a whole run
 * call this at open; writeFileAtomic() does it internally. The first
 * registration installs SIGINT/SIGTERM/SIGHUP handlers that unlink
 * every registered temp before re-raising the signal.
 *
 * @param path  The temp path now being written.
 */
void registerTempFile(const std::string &path);

/**
 * Drop @p path from the crash-cleanup registry (it was renamed into
 * place, or already unlinked by its owner).
 *
 * @param path  The previously registered temp path.
 */
void unregisterTempFile(const std::string &path);

/**
 * fsync @p temp_path and atomically rename it to @p path, then
 * unregister it. The commit half of a streaming atomic write.
 *
 * @param temp_path  The staged file (from tempPathFor()).
 * @param path       Final destination path.
 * @return Empty string on success, else a one-line diagnostic (the
 *         temp file is unlinked on failure).
 */
std::string commitTempFile(const std::string &temp_path,
                           const std::string &path);

/**
 * Unlink and unregister every still-registered temp path. Called by
 * bench::guardedMain on its FatalError/unexpected-exception exit
 * paths; safe (and a no-op) when nothing is registered.
 *
 * @return Number of temp files removed.
 */
std::size_t cleanupTempFiles();

/** @return Number of temp paths currently registered (test hook). */
std::size_t registeredTempFileCount();

} // namespace pcstall::store

#endif // PCSTALL_STORE_ATOMIC_FILE_HH
