#include "models/wave_estimator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats_util.hh"

namespace pcstall::models
{

double
contentionFactor(const WaveEstimatorConfig &cfg, std::uint32_t age_rank)
{
    if (!cfg.normalizeAge || cfg.waveSlots <= 1)
        return 1.0;
    const double frac = static_cast<double>(
        std::min(age_rank, cfg.waveSlots - 1)) /
        static_cast<double>(cfg.waveSlots - 1);
    return clampTo(1.0 - cfg.contentionCoeff * frac, 0.05, 1.0);
}

double
waveSensitivity(const gpu::WaveEpochRecord &record,
                const WaveEstimatorConfig &cfg, Tick epoch_len, Freq freq)
{
    panicIf(freq == 0, "waveSensitivity: zero frequency");
    if (epoch_len <= 0 || record.committed == 0)
        return 0.0;

    const double async = std::min<double>(
        static_cast<double>(record.memStall) +
        cfg.barrierWeight * static_cast<double>(record.barrierStall),
        static_cast<double>(epoch_len));
    const double t_core = static_cast<double>(epoch_len) - async;
    return static_cast<double>(record.committed) * t_core /
        (static_cast<double>(epoch_len) * freqGHzD(freq));
}

double
normalizedWaveSensitivity(const gpu::WaveEpochRecord &record,
                          const WaveEstimatorConfig &cfg, Tick epoch_len,
                          Freq freq)
{
    return waveSensitivity(record, cfg, epoch_len, freq) /
        contentionFactor(cfg, record.ageRank);
}

double
waveLevel(const gpu::WaveEpochRecord &record,
          const WaveEstimatorConfig &cfg, Tick epoch_len, Freq freq)
{
    // I0 = I1 - S * f1 = I1 * T_async / T.
    const double i1 = static_cast<double>(record.committed);
    const double s = waveSensitivity(record, cfg, epoch_len, freq);
    return std::max(i1 - s * freqGHzD(freq), 0.0);
}

} // namespace pcstall::models
