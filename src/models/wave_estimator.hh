/**
 * @file
 * Wavefront-level STALL sensitivity estimation (paper Section 4.4):
 *
 *   Sens_WF = IPC_WF * T_core,WF
 *
 * which equals dI/df of the stall model evaluated at the elapsed
 * frequency (instructions per GHz here). The estimate is further
 * normalized by the wavefront's scheduling age: with oldest-first
 * scheduling, younger waves see suppressed throughput purely from
 * contention (Figure 11a), so the table stores an age-corrected
 * intrinsic sensitivity and lookups re-apply the correction for the
 * wave's age at prediction time.
 */

#ifndef PCSTALL_MODELS_WAVE_ESTIMATOR_HH
#define PCSTALL_MODELS_WAVE_ESTIMATOR_HH

#include <cstdint>

#include "common/types.hh"
#include "gpu/epoch_stats.hh"

namespace pcstall::models
{

/** Tunables of the wavefront-level estimator. */
struct WaveEstimatorConfig
{
    /** Apply age normalization (ablation toggle). */
    bool normalizeAge = true;
    /**
     * Maximum relative throughput suppression of the youngest wave
     * versus the oldest (linear in age rank).
     */
    double contentionCoeff = 0.35;
    /** Number of wave slots (age ranks span [0, slots-1]). */
    std::uint32_t waveSlots = 40;
    /** Weight of barrier-wait time in the async component. */
    double barrierWeight = 1.0;
};

/**
 * Relative throughput factor a wave at @p age_rank experiences from
 * oldest-first scheduling contention (1.0 for the oldest wave).
 */
double contentionFactor(const WaveEstimatorConfig &cfg,
                        std::uint32_t age_rank);

/**
 * Raw (un-normalized) wavefront sensitivity of an elapsed epoch in
 * instructions per GHz: committed * T_core / (T_epoch * f_GHz).
 */
double waveSensitivity(const gpu::WaveEpochRecord &record,
                       const WaveEstimatorConfig &cfg, Tick epoch_len,
                       Freq freq);

/** Age-normalized sensitivity for storage in the PC table. */
double normalizedWaveSensitivity(const gpu::WaveEpochRecord &record,
                                 const WaveEstimatorConfig &cfg,
                                 Tick epoch_len, Freq freq);

/**
 * The frequency-independent instruction floor of the wave's linear
 * phase model I(f) = I0 + S*f, from the stall-model linearization:
 * I0 = I1 * T_async / T (a fully stalled wave keeps its throughput, a
 * fully compute wave scales through the origin).
 */
double waveLevel(const gpu::WaveEpochRecord &record,
                 const WaveEstimatorConfig &cfg, Tick epoch_len,
                 Freq freq);

} // namespace pcstall::models

#endif // PCSTALL_MODELS_WAVE_ESTIMATOR_HH
