/**
 * @file
 * A global-phase-history-table (GPHT) predictor, the strongest prior
 * CPU prediction mechanism the paper discusses (Section 2.4, Isci et
 * al. / Bircher & John): quantize the recent sequence of per-domain
 * phases, and predict the next phase from what historically followed
 * that sequence. It uses the same wavefront-level STALL estimation as
 * PCSTALL, so comparing the two isolates the *prediction* mechanism:
 * pattern-of-recent-phases (GPHT) versus program counters (PCSTALL).
 */

#ifndef PCSTALL_MODELS_HISTORY_CONTROLLER_HH
#define PCSTALL_MODELS_HISTORY_CONTROLLER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dvfs/controller.hh"
#include "models/wave_estimator.hh"

namespace pcstall::models
{

/** Configuration of the history predictor. */
struct HistoryConfig
{
    /** Phases kept in the history register. */
    std::uint32_t historyLength = 4;
    /** Quantization buckets for the sensitivity dimension. */
    std::uint32_t buckets = 16;
    /** Largest sensitivity mapped onto the bucket range. */
    double maxSensitivity = 4096.0;
    /** EWMA weight for table updates. */
    double blend = 0.5;
    models::WaveEstimatorConfig estimator;
};

/** Global phase history table DVFS controller. */
class HistoryController : public dvfs::DvfsController
{
  public:
    HistoryController(const HistoryConfig &config,
                      std::uint32_t num_domains);

    std::string name() const override { return "GPHT"; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;

    /** Fraction of predictions served from the pattern table. */
    double tableHitRatio() const;

  private:
    /** The phase model predicted for a pattern. */
    struct Entry
    {
        double sens = 0.0;
        double level = 0.0;
    };

    std::uint32_t bucketOf(double sensitivity) const;

    HistoryConfig cfg;
    /** Per-domain shift register of recent phase buckets. */
    std::vector<std::vector<std::uint32_t>> history;
    /** Per-domain last estimated model (fallback prediction). */
    std::vector<Entry> lastEntry;
    /** Pattern -> predicted next model, shared across domains
     *  ("global" in the GPHT sense). */
    std::unordered_map<std::uint64_t, Entry> table;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
};

} // namespace pcstall::models

#endif // PCSTALL_MODELS_HISTORY_CONTROLLER_HH
