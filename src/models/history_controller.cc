#include "models/history_controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pcstall::models
{

HistoryController::HistoryController(const HistoryConfig &config,
                                     std::uint32_t num_domains)
    : cfg(config)
{
    fatalIf(cfg.historyLength == 0, "GPHT needs history length >= 1");
    fatalIf(cfg.buckets < 2, "GPHT needs at least two buckets");
    history.assign(num_domains, {});
    lastEntry.assign(num_domains, Entry{});
}

std::uint32_t
HistoryController::bucketOf(double sensitivity) const
{
    const double clamped =
        std::clamp(sensitivity, 0.0, cfg.maxSensitivity);
    const double step =
        cfg.maxSensitivity / static_cast<double>(cfg.buckets);
    return std::min<std::uint32_t>(
        static_cast<std::uint32_t>(clamped / step), cfg.buckets - 1);
}

std::vector<dvfs::DomainDecision>
HistoryController::decide(const dvfs::EpochContext &ctx)
{
    const std::uint32_t num_domains = ctx.domains.numDomains();
    panicIf(history.size() != num_domains,
            "GPHT built for a different domain count");

    // Estimate the elapsed epoch per domain with the wavefront STALL
    // model (identical estimation to PCSTALL).
    std::vector<Entry> measured(num_domains);
    for (const gpu::WaveEpochRecord &w : ctx.record.waves) {
        if (!w.active)
            continue;
        const Freq f1 = ctx.record.cus[w.cu].freq;
        Entry &e = measured[ctx.domains.domainOf(w.cu)];
        e.sens += waveSensitivity(w, cfg.estimator, ctx.epochLen, f1);
        e.level += waveLevel(w, cfg.estimator, ctx.epochLen, f1);
    }

    const std::size_t num_states = ctx.table.numStates();
    std::vector<dvfs::DomainDecision> out(num_domains);
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        // --- update the pattern table with what actually followed
        //     the previous history ---
        auto &hist = history[d];
        if (hist.size() == cfg.historyLength) {
            std::uint64_t key = 0;
            for (const std::uint32_t b : hist)
                key = hashCombine(key, b);
            auto [it, fresh] = table.try_emplace(key, measured[d]);
            if (!fresh) {
                it->second.sens = (1.0 - cfg.blend) * it->second.sens +
                    cfg.blend * measured[d].sens;
                it->second.level = (1.0 - cfg.blend) * it->second.level +
                    cfg.blend * measured[d].level;
            }
        }

        // --- shift in the elapsed phase and predict the next one ---
        hist.push_back(bucketOf(measured[d].sens));
        if (hist.size() > cfg.historyLength)
            hist.erase(hist.begin());
        lastEntry[d] = measured[d];

        Entry predicted = measured[d]; // last-value fallback
        if (hist.size() == cfg.historyLength) {
            std::uint64_t key = 0;
            for (const std::uint32_t b : hist)
                key = hashCombine(key, b);
            ++lookups;
            const auto it = table.find(key);
            if (ctx.audit) {
                ++ctx.audit->domains[d].lookups;
                // The pattern key is the GPHT analogue of the PC key.
                ctx.audit->domains[d].pcKey = key;
            }
            if (it != table.end()) {
                ++hits;
                if (ctx.audit)
                    ++ctx.audit->domains[d].hits;
                predicted = it->second;
            }
        }

        std::vector<double> instr_at(num_states, 0.0);
        for (std::size_t s = 0; s < num_states; ++s) {
            const double f = freqGHzD(ctx.table.state(s).freq);
            instr_at[s] =
                std::max(predicted.level + predicted.sens * f, 0.0);
        }

        dvfs::DomainScoreInputs in;
        in.instrAtState = instr_at;
        in.baselineInstr = dvfs::sumOverDomain(
            ctx.domains, d, [&](std::uint32_t cu) {
                return static_cast<double>(ctx.record.cus[cu].committed);
            });
        in.baselineActivity = dvfs::domainActivity(ctx.domains, d,
                                                   ctx.record);
        in.numCus = ctx.domains.cusPerDomain();
        in.staticShare = ctx.power.params().memStatic /
            ctx.domains.numDomains();
        in.epochLen = ctx.epochLen;
        in.temperature = ctx.temperature;
        in.perfDegradationLimit = ctx.perfDegradationLimit;
        in.nominalState = ctx.nominalState;
        in.avgChipPower = ctx.avgChipPower;
        if (ctx.avgDomainInstr)
            in.avgInstr = (*ctx.avgDomainInstr)[d];

        out[d].state = dvfs::chooseState(ctx.table, ctx.power, in,
                                         ctx.objective);
        out[d].predictedInstr = instr_at[out[d].state];
        if (ctx.audit) {
            ctx.audit->domains[d].predictedSens = predicted.sens;
            ctx.audit->domains[d].predictedLevel = predicted.level;
        }
    }
    return out;
}

double
HistoryController::tableHitRatio() const
{
    return lookups == 0 ? 0.0
        : static_cast<double>(hits) / static_cast<double>(lookups);
}

} // namespace pcstall::models
