#include "models/estimation.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcstall::models
{

const char *
estimationKindName(EstimationKind kind)
{
    switch (kind) {
      case EstimationKind::Stall: return "STALL";
      case EstimationKind::Lead: return "LEAD";
      case EstimationKind::Crit: return "CRIT";
      case EstimationKind::Crisp: return "CRISP";
    }
    return "?";
}

Tick
cuAsyncTime(EstimationKind kind, const gpu::CuEpochRecord &record,
            Tick epoch_len)
{
    Tick async = 0;
    switch (kind) {
      case EstimationKind::Stall:
        async = record.loadStall;
        break;
      case EstimationKind::Lead:
        async = record.leadLoad;
        break;
      case EstimationKind::Crit:
        async = record.memInterval;
        break;
      case EstimationKind::Crisp:
        async = record.memInterval - record.overlap + record.storeStall;
        // CRISP's overlap credit cannot push async time below the
        // hard lower bound of observed full-CU stalls.
        async = std::max(async, record.loadStall + record.storeStall);
        break;
    }
    return std::clamp<Tick>(async, 0, epoch_len);
}

double
cuInstrAt(EstimationKind kind, const gpu::CuEpochRecord &record,
          Tick epoch_len, Freq f2)
{
    panicIf(record.freq == 0, "cuInstrAt: epoch record has no frequency");
    if (record.committed == 0 || epoch_len <= 0)
        return 0.0;

    const Tick async = cuAsyncTime(kind, record, epoch_len);
    const double t_async = static_cast<double>(async);
    const double t_core = static_cast<double>(epoch_len - async);
    const double ratio = static_cast<double>(record.freq) /
        static_cast<double>(f2);

    const double denom = t_async + t_core * ratio;
    if (denom <= 0.0)
        return static_cast<double>(record.committed);
    return static_cast<double>(record.committed) *
        static_cast<double>(epoch_len) / denom;
}

} // namespace pcstall::models
