#include "models/reactive_controller.hh"

namespace pcstall::models
{

std::vector<dvfs::DomainDecision>
ReactiveController::decide(const dvfs::EpochContext &ctx)
{
    const std::size_t num_states = ctx.table.numStates();
    std::vector<dvfs::DomainDecision> out(ctx.domains.numDomains());

    for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
        std::vector<double> instr_at(num_states, 0.0);
        for (std::size_t s = 0; s < num_states; ++s) {
            const Freq f2 = ctx.table.state(s).freq;
            instr_at[s] = dvfs::sumOverDomain(
                ctx.domains, d, [&](std::uint32_t cu) {
                    return cuInstrAt(kind, ctx.record.cus[cu],
                                     ctx.epochLen, f2);
                });
        }

        dvfs::DomainScoreInputs in;
        in.instrAtState = instr_at;
        in.baselineInstr = dvfs::sumOverDomain(
            ctx.domains, d, [&](std::uint32_t cu) {
                return static_cast<double>(ctx.record.cus[cu].committed);
            });
        in.baselineActivity = dvfs::domainActivity(ctx.domains, d,
                                                   ctx.record);
        in.numCus = ctx.domains.cusPerDomain();
        in.staticShare = ctx.power.params().memStatic /
            ctx.domains.numDomains();
        in.epochLen = ctx.epochLen;
        in.temperature = ctx.temperature;
        in.perfDegradationLimit = ctx.perfDegradationLimit;
        in.nominalState = ctx.nominalState;
        in.avgChipPower = ctx.avgChipPower;
        if (ctx.avgDomainInstr)
            in.avgInstr = (*ctx.avgDomainInstr)[d];

        out[d].state = dvfs::chooseState(ctx.table, ctx.power, in,
                                         ctx.objective);
        out[d].predictedInstr = instr_at[out[d].state];

        if (ctx.audit) {
            // Reactive estimates carry no table state; describe the
            // extrapolated model as a secant through the prediction
            // range so audits can compare designs on one axis.
            dvfs::DomainAudit &a = ctx.audit->domains[d];
            const double f_lo = freqGHzD(ctx.table.state(0).freq);
            const double f_hi =
                freqGHzD(ctx.table.state(num_states - 1).freq);
            a.predictedSens = f_hi > f_lo
                ? (instr_at[num_states - 1] - instr_at[0]) /
                    (f_hi - f_lo)
                : 0.0;
            a.predictedLevel =
                instr_at[num_states - 1] - a.predictedSens * f_hi;
        }
    }
    return out;
}

} // namespace pcstall::models
