/**
 * @file
 * Reactive DVFS controllers (STALL / LEAD / CRIT / CRISP in Table
 * III): estimate I(f) for the elapsed epoch with a CU-level model and
 * apply it unchanged as the prediction for the next epoch
 * (last-value prediction, Figure 3a).
 */

#ifndef PCSTALL_MODELS_REACTIVE_CONTROLLER_HH
#define PCSTALL_MODELS_REACTIVE_CONTROLLER_HH

#include "dvfs/controller.hh"
#include "models/estimation.hh"

namespace pcstall::models
{

/** Last-value reactive controller parameterized by estimation model. */
class ReactiveController : public dvfs::DvfsController
{
  public:
    explicit ReactiveController(EstimationKind kind) : kind(kind) {}

    std::string name() const override
    {
        return estimationKindName(kind);
    }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;

  private:
    EstimationKind kind;
};

} // namespace pcstall::models

#endif // PCSTALL_MODELS_REACTIVE_CONTROLLER_HH
