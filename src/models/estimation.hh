/**
 * @file
 * CU-level frequency-sensitivity estimation models from prior work
 * (paper Section 2.3 / Table III): STALL, LEAD (leading loads), CRIT
 * (critical path) and CRISP. Each model decomposes an elapsed epoch
 * into an asynchronous (frequency-invariant) memory component and a
 * core component that scales with frequency:
 *
 *   T_epoch = T_async + T_core@f1
 *   I(f2)   = I(f1) * T_epoch / (T_async + T_core * f1/f2)
 *
 * The models differ only in how T_async is measured:
 *  - STALL: time the CU had no ready wave while gated by a load.
 *  - LEAD:  summed latencies of leading loads (loads issued when no
 *           other load was in flight).
 *  - CRIT:  the union of all in-flight-load intervals (critical path
 *           through memory, ignoring compute overlap).
 *  - CRISP: CRIT minus measured compute-memory overlap, plus store
 *           stalls (the GPU-specific corrections of MICRO'15).
 */

#ifndef PCSTALL_MODELS_ESTIMATION_HH
#define PCSTALL_MODELS_ESTIMATION_HH

#include <cstdint>

#include "common/types.hh"
#include "gpu/epoch_stats.hh"

namespace pcstall::models
{

/** The reactive estimation models evaluated in the paper. */
enum class EstimationKind : std::uint8_t { Stall, Lead, Crit, Crisp };

/** Display name, matching Table III. */
const char *estimationKindName(EstimationKind kind);

/**
 * The asynchronous (frequency-invariant) time of an elapsed epoch for
 * one CU under the given model, clamped to [0, epoch_len].
 */
Tick cuAsyncTime(EstimationKind kind, const gpu::CuEpochRecord &record,
                 Tick epoch_len);

/**
 * Predicted instructions the CU would have committed in the elapsed
 * epoch had it run at frequency @p f2 (it ran at record.freq).
 */
double cuInstrAt(EstimationKind kind, const gpu::CuEpochRecord &record,
                 Tick epoch_len, Freq f2);

} // namespace pcstall::models

#endif // PCSTALL_MODELS_ESTIMATION_HH
