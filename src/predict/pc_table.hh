/**
 * @file
 * The PC-indexed sensitivity table at the heart of PCSTALL (paper
 * Section 4.4, Figure 12).
 *
 * Microarchitecture being modelled:
 *  - 128 entries, direct-mapped, no tags (Table I charges 1 byte per
 *    entry, so aliasing is accepted by design);
 *  - indexed by (pc_byte_address >> offsetBits) % entries, with
 *    offsetBits = 4 (~4 instructions per entry) at the knee found in
 *    Figure 11(b);
 *  - each entry holds an 8-bit quantized sensitivity;
 *  - updated at epoch end with each wavefront's estimated sensitivity
 *    and looked up with each wavefront's next PC before the epoch
 *    starts.
 */

#ifndef PCSTALL_PREDICT_PC_TABLE_HH
#define PCSTALL_PREDICT_PC_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace pcstall::predict
{

/** Geometry and quantization of the PC table. */
struct PcTableConfig
{
    /** Number of entries (the paper settles on 128). */
    std::uint32_t entries = 128;
    /** Low PC-address bits dropped before indexing (paper: 4). */
    std::uint32_t offsetBits = 4;
    /** Store entries as 8-bit quantized values (Table I: 1 B/entry). */
    bool quantize = true;
    /**
     * Largest representable sensitivity when quantizing; values are
     * stored in 256 steps of maxSensitivity/255. Scales with epoch
     * length (longer epochs commit proportionally more instructions).
     */
    double maxSensitivity = 64.0;
    /**
     * Quantization range of the level (I0) field; instruction counts
     * per wave-epoch, so it scales with the epoch length too.
     */
    double maxLevel = 256.0;
    /**
     * Store a per-entry level (I0) alongside the sensitivity so the
     * predicted instruction count is fully PC-based instead of being
     * anchored at the last epoch's count (one extra byte per entry;
     * ablation toggle - false reproduces a slope-only table).
     */
    bool storeLevel = true;
    /**
     * Exponential blending weight for updates that hit a valid entry
     * (1.0 = overwrite, the hardware-faithful default).
     */
    double updateBlend = 1.0;
    /**
     * Keep a parity bit per entry and scrub (invalidate) entries whose
     * parity no longer matches at lookup time. Turns a storage bit
     * flip into a predictable table miss instead of a silently wrong
     * prediction. Off by default (Table I charges no parity storage).
     */
    bool parityProtected = false;
};

/** One table entry: the linear phase model I(f) = level + sens * f. */
struct PcEntry
{
    /** d(instructions)/d(f_GHz) of an epoch starting at this PC. */
    double sensitivity = 0.0;
    /** Frequency-independent instruction floor I0 of that epoch. */
    double level = 0.0;
};

/**
 * Serializable image of one table entry, including whether it has ever
 * been written (snapshot/restore support, see src/trace/snapshot.hh).
 */
struct PcEntrySnapshot
{
    bool valid = false;
    double sensitivity = 0.0;
    double level = 0.0;
};

/** One PC-indexed sensitivity table instance. */
class PcSensitivityTable
{
  public:
    explicit PcSensitivityTable(const PcTableConfig &config);

    /** Record an estimated phase model for the epoch at @p pc_addr. */
    void update(std::uint64_t pc_addr, double sensitivity,
                double level = 0.0);

    /**
     * Predict the phase model of the epoch starting at @p pc_addr.
     * Empty when the entry has never been written.
     */
    std::optional<PcEntry> lookup(std::uint64_t pc_addr);

    /** Fraction of lookups that found a valid entry. */
    double hitRatio() const;

    std::uint64_t lookupCount() const { return lookups; }
    std::uint64_t lookupHitCount() const { return lookupHits; }

    /**
     * Introspection counters kept as plain members (lookup/update are
     * the predictor's hot path; the harness flushes these into the run
     * context's registry once per run). Eviction and alias tracking
     * use a shadow "owner key" per entry - the (pc_addr >> offsetBits)
     * of the last writer - which the modelled hardware does not store
     * (the table is untagged by design), so it adds no storage charge;
     * it exists purely to make aliasing observable.
     */
    struct Telemetry
    {
        std::uint64_t lookups = 0;
        /** Lookups that returned a valid entry. */
        std::uint64_t hits = 0;
        std::uint64_t updates = 0;
        /** Updates that overwrote a live entry written by another PC. */
        std::uint64_t evictions = 0;
        /** Hits whose entry was last written by a *different* PC - the
         *  prediction served is another phase's model. */
        std::uint64_t aliasHits = 0;
        /** Entries invalidated by parity-mismatch scrubs. */
        std::uint64_t scrubs = 0;
    };

    Telemetry telemetry() const;

    /** Storage cost of the entry array in bytes (Table I). */
    std::uint64_t storageBytes() const;

    /** Invalidate all entries (kernel switch in shared-table mode). */
    void reset();

    const PcTableConfig &config() const { return cfg; }

    /** Quantization round-trip of @p sensitivity (test hook). */
    double quantized(double sensitivity) const;

    std::size_t numEntries() const { return valid.size(); }

    /** True when entry @p idx holds a written value. */
    bool entryValid(std::size_t idx) const;

    /**
     * Flip one bit of the 8-bit stored code of entry @p idx (the
     * storage-fault seam). @p level_field selects the level (I0) byte
     * instead of the sensitivity byte. The stored parity bit is left
     * untouched - that mismatch is exactly what the scrub detects.
     * Returns false (no flip) when the entry was never written or the
     * selected field is not stored.
     */
    bool injectBitFlip(std::size_t idx, bool level_field,
                       std::uint32_t bit);

    /** Entries invalidated by parity-mismatch scrubs so far. */
    std::uint64_t scrubCount() const { return scrubs; }

    /** Serializable image of every entry, in index order. */
    std::vector<PcEntrySnapshot> exportEntries() const;

    /**
     * Restore entries from a snapshot (warm start). Values are
     * re-quantized onto this table's grid and parity is recomputed, so
     * a snapshot of an identically-configured table round-trips
     * exactly. Returns false (and changes nothing) when the snapshot's
     * entry count does not match this table's geometry.
     */
    bool importEntries(const std::vector<PcEntrySnapshot> &entries);

  private:
    std::size_t indexOf(std::uint64_t pc_addr) const;

    /** Even parity over both stored 8-bit codes of entry @p idx. */
    std::uint8_t parityOf(std::size_t idx) const;

    PcTableConfig cfg;
    std::vector<double> values;
    std::vector<double> levels;
    std::vector<bool> valid;
    std::vector<std::uint8_t> parity;
    /** Shadow tag: (pc_addr >> offsetBits) of each entry's last
     *  writer. Observability only - never affects predictions. */
    std::vector<std::uint64_t> ownerKey;
    std::uint64_t lookups = 0;
    std::uint64_t lookupHits = 0;
    std::uint64_t scrubs = 0;
    std::uint64_t updates = 0;
    std::uint64_t evictions = 0;
    std::uint64_t aliasHits = 0;
    /** Absolute sensitivity quantization error per update (resolved
     *  from the run context's registry at construction). */
    obs::Histogram *quantErrMetric;
};

} // namespace pcstall::predict

#endif // PCSTALL_PREDICT_PC_TABLE_HH
