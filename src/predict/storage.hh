/**
 * @file
 * Hardware storage accounting per predictor instance (paper Table I).
 * PCSTALL's numbers follow the paper exactly (128 B sensitivity table
 * + 40 x 1 B starting-PC index registers + 40 x 4 B stall-time
 * registers = 328 B). The baselines are derived from the counter sets
 * each model needs; the paper's table shows CRISP costing more than
 * PCSTALL and STALL costing a single 4 B register.
 */

#ifndef PCSTALL_PREDICT_STORAGE_HH
#define PCSTALL_PREDICT_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "predict/pc_table.hh"

namespace pcstall::predict
{

/** One row of the Table I breakdown. */
struct StorageRow
{
    std::string design;
    std::string component;
    std::string count;
    std::uint64_t bytes = 0;
};

/**
 * Compute the per-instance storage breakdown for every Table III
 * design, for a given PC-table geometry and wave-slot count.
 */
std::vector<StorageRow> storageBreakdown(const PcTableConfig &table_cfg,
                                         std::uint32_t wave_slots,
                                         std::uint32_t mshrs);

/** Total bytes attributed to one design in @p rows. */
std::uint64_t designTotal(const std::vector<StorageRow> &rows,
                          const std::string &design);

} // namespace pcstall::predict

#endif // PCSTALL_PREDICT_STORAGE_HH
