#include "predict/pc_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "obs/context.hh"

namespace pcstall::predict
{

namespace
{

/** Round @p value to an 8-bit grid over [0, max_value]. */
double
quantizeTo(double value, double max_value)
{
    const double clamped = clampTo(value, 0.0, max_value);
    const double step = max_value / 255.0;
    return std::round(clamped / step) * step;
}

/** The 8-bit storage code of @p value on that same grid. */
std::uint8_t
codeOf(double value, double max_value)
{
    const double clamped = clampTo(value, 0.0, max_value);
    const double step = max_value / 255.0;
    return static_cast<std::uint8_t>(std::lround(clamped / step));
}

/** Parity (popcount mod 2) of one 8-bit code. */
std::uint8_t
bitParity(std::uint8_t code)
{
    code ^= code >> 4;
    code ^= code >> 2;
    code ^= code >> 1;
    return code & 1;
}

} // namespace

PcSensitivityTable::PcSensitivityTable(const PcTableConfig &config)
    : cfg(config)
{
    fatalIf(cfg.entries == 0, "PC table needs at least one entry");
    fatalIf(cfg.maxSensitivity <= 0.0 || cfg.maxLevel <= 0.0,
            "PC table quantization range must be positive");
    fatalIf(cfg.updateBlend <= 0.0 || cfg.updateBlend > 1.0,
            "PC table update blend must be in (0, 1]");
    values.assign(cfg.entries, 0.0);
    levels.assign(cfg.entries, 0.0);
    valid.assign(cfg.entries, false);
    parity.assign(cfg.entries, 0);
    ownerKey.assign(cfg.entries, 0);
    quantErrMetric = &obs::reg().histogram("pc_table.quant_error");
}

std::uint8_t
PcSensitivityTable::parityOf(std::size_t idx) const
{
    return bitParity(codeOf(values[idx], cfg.maxSensitivity)) ^
        bitParity(codeOf(levels[idx], cfg.maxLevel));
}

std::size_t
PcSensitivityTable::indexOf(std::uint64_t pc_addr) const
{
    return static_cast<std::size_t>(
        (pc_addr >> cfg.offsetBits) % cfg.entries);
}

double
PcSensitivityTable::quantized(double sensitivity) const
{
    if (!cfg.quantize)
        return sensitivity;
    return quantizeTo(sensitivity, cfg.maxSensitivity);
}

void
PcSensitivityTable::update(std::uint64_t pc_addr, double sensitivity,
                           double level)
{
    const std::size_t idx = indexOf(pc_addr);
    const std::uint64_t key = pc_addr >> cfg.offsetBits;
    ++updates;
    if (valid[idx] && ownerKey[idx] != key)
        ++evictions;
    double s = std::max(sensitivity, 0.0);
    double l = cfg.storeLevel ? std::max(level, 0.0) : 0.0;
    if (valid[idx] && cfg.updateBlend < 1.0) {
        s = (1.0 - cfg.updateBlend) * values[idx] + cfg.updateBlend * s;
        l = (1.0 - cfg.updateBlend) * levels[idx] + cfg.updateBlend * l;
    }
    if (cfg.quantize) {
        const double exact = s;
        s = quantizeTo(s, cfg.maxSensitivity);
        l = quantizeTo(l, cfg.maxLevel);
        quantErrMetric->record(std::abs(s - exact));
    }
    values[idx] = s;
    levels[idx] = l;
    valid[idx] = true;
    ownerKey[idx] = key;
    parity[idx] = parityOf(idx);
}

std::optional<PcEntry>
PcSensitivityTable::lookup(std::uint64_t pc_addr)
{
    ++lookups;
    const std::size_t idx = indexOf(pc_addr);
    if (!valid[idx])
        return std::nullopt;
    if (cfg.parityProtected && parity[idx] != parityOf(idx)) {
        // Corrupted entry: scrub it and take a clean miss rather than
        // handing a bogus phase model to the controller.
        valid[idx] = false;
        ++scrubs;
        return std::nullopt;
    }
    ++lookupHits;
    // Entries restored from a snapshot have no known writer (owner key
    // 0 with valid never set by update()); don't call those aliases.
    if (ownerKey[idx] != 0 &&
        ownerKey[idx] != (pc_addr >> cfg.offsetBits))
        ++aliasHits;
    return PcEntry{values[idx], levels[idx]};
}

PcSensitivityTable::Telemetry
PcSensitivityTable::telemetry() const
{
    Telemetry t;
    t.lookups = lookups;
    t.hits = lookupHits;
    t.updates = updates;
    t.evictions = evictions;
    t.aliasHits = aliasHits;
    t.scrubs = scrubs;
    return t;
}

bool
PcSensitivityTable::entryValid(std::size_t idx) const
{
    return idx < valid.size() && valid[idx];
}

bool
PcSensitivityTable::injectBitFlip(std::size_t idx, bool level_field,
                                  std::uint32_t bit)
{
    if (!entryValid(idx))
        return false;
    if (level_field && !cfg.storeLevel)
        return false;
    const double max_value =
        level_field ? cfg.maxLevel : cfg.maxSensitivity;
    std::vector<double> &field = level_field ? levels : values;
    const std::uint8_t code = static_cast<std::uint8_t>(
        codeOf(field[idx], max_value) ^ (1u << (bit & 7u)));
    field[idx] = static_cast<double>(code) * (max_value / 255.0);
    return true;
}

double
PcSensitivityTable::hitRatio() const
{
    return lookups == 0 ? 0.0
        : static_cast<double>(lookupHits) / static_cast<double>(lookups);
}

std::uint64_t
PcSensitivityTable::storageBytes() const
{
    // 1 byte per stored field per entry when quantized (Table I),
    // 4 bytes otherwise.
    const std::uint64_t per_field = cfg.quantize ? 1 : 4;
    const std::uint64_t fields = cfg.storeLevel ? 2 : 1;
    return static_cast<std::uint64_t>(cfg.entries) * per_field * fields;
}

void
PcSensitivityTable::reset()
{
    std::fill(valid.begin(), valid.end(), false);
}

std::vector<PcEntrySnapshot>
PcSensitivityTable::exportEntries() const
{
    std::vector<PcEntrySnapshot> out(cfg.entries);
    for (std::size_t i = 0; i < cfg.entries; ++i) {
        if (!valid[i])
            continue;
        out[i] = PcEntrySnapshot{true, values[i], levels[i]};
    }
    return out;
}

bool
PcSensitivityTable::importEntries(
    const std::vector<PcEntrySnapshot> &entries)
{
    if (entries.size() != cfg.entries)
        return false;
    for (std::size_t i = 0; i < cfg.entries; ++i) {
        ownerKey[i] = 0; // writer unknown after a warm start
        if (!entries[i].valid) {
            valid[i] = false;
            values[i] = 0.0;
            levels[i] = 0.0;
            continue;
        }
        double s = std::max(entries[i].sensitivity, 0.0);
        double l = cfg.storeLevel ? std::max(entries[i].level, 0.0)
                                  : 0.0;
        if (cfg.quantize) {
            s = quantizeTo(s, cfg.maxSensitivity);
            l = quantizeTo(l, cfg.maxLevel);
        }
        values[i] = s;
        levels[i] = l;
        valid[i] = true;
        parity[i] = parityOf(i);
    }
    return true;
}

} // namespace pcstall::predict
