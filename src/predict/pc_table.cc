#include "predict/pc_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats_util.hh"

namespace pcstall::predict
{

namespace
{

/** Round @p value to an 8-bit grid over [0, max_value]. */
double
quantizeTo(double value, double max_value)
{
    const double clamped = clampTo(value, 0.0, max_value);
    const double step = max_value / 255.0;
    return std::round(clamped / step) * step;
}

} // namespace

PcSensitivityTable::PcSensitivityTable(const PcTableConfig &config)
    : cfg(config)
{
    fatalIf(cfg.entries == 0, "PC table needs at least one entry");
    fatalIf(cfg.maxSensitivity <= 0.0 || cfg.maxLevel <= 0.0,
            "PC table quantization range must be positive");
    fatalIf(cfg.updateBlend <= 0.0 || cfg.updateBlend > 1.0,
            "PC table update blend must be in (0, 1]");
    values.assign(cfg.entries, 0.0);
    levels.assign(cfg.entries, 0.0);
    valid.assign(cfg.entries, false);
}

std::size_t
PcSensitivityTable::indexOf(std::uint64_t pc_addr) const
{
    return static_cast<std::size_t>(
        (pc_addr >> cfg.offsetBits) % cfg.entries);
}

double
PcSensitivityTable::quantized(double sensitivity) const
{
    if (!cfg.quantize)
        return sensitivity;
    return quantizeTo(sensitivity, cfg.maxSensitivity);
}

void
PcSensitivityTable::update(std::uint64_t pc_addr, double sensitivity,
                           double level)
{
    const std::size_t idx = indexOf(pc_addr);
    double s = std::max(sensitivity, 0.0);
    double l = cfg.storeLevel ? std::max(level, 0.0) : 0.0;
    if (valid[idx] && cfg.updateBlend < 1.0) {
        s = (1.0 - cfg.updateBlend) * values[idx] + cfg.updateBlend * s;
        l = (1.0 - cfg.updateBlend) * levels[idx] + cfg.updateBlend * l;
    }
    if (cfg.quantize) {
        s = quantizeTo(s, cfg.maxSensitivity);
        l = quantizeTo(l, cfg.maxLevel);
    }
    values[idx] = s;
    levels[idx] = l;
    valid[idx] = true;
}

std::optional<PcEntry>
PcSensitivityTable::lookup(std::uint64_t pc_addr)
{
    ++lookups;
    const std::size_t idx = indexOf(pc_addr);
    if (!valid[idx])
        return std::nullopt;
    ++lookupHits;
    return PcEntry{values[idx], levels[idx]};
}

double
PcSensitivityTable::hitRatio() const
{
    return lookups == 0 ? 0.0
        : static_cast<double>(lookupHits) / static_cast<double>(lookups);
}

std::uint64_t
PcSensitivityTable::storageBytes() const
{
    // 1 byte per stored field per entry when quantized (Table I),
    // 4 bytes otherwise.
    const std::uint64_t per_field = cfg.quantize ? 1 : 4;
    const std::uint64_t fields = cfg.storeLevel ? 2 : 1;
    return static_cast<std::uint64_t>(cfg.entries) * per_field * fields;
}

void
PcSensitivityTable::reset()
{
    std::fill(valid.begin(), valid.end(), false);
}

} // namespace pcstall::predict
