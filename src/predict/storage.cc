#include "predict/storage.hh"

namespace pcstall::predict
{

std::vector<StorageRow>
storageBreakdown(const PcTableConfig &table_cfg, std::uint32_t wave_slots,
                 std::uint32_t mshrs)
{
    std::vector<StorageRow> rows;
    const std::uint64_t entry_bytes = table_cfg.quantize ? 1 : 4;

    // --- PCSTALL (paper: 128 + 40 + 160 = 328 B; this
    //     implementation optionally adds a level field per entry,
    //     see DESIGN.md) ---
    rows.push_back({"PCSTALL", "Sensitivity table",
                    std::to_string(table_cfg.entries) + " entries",
                    table_cfg.entries * entry_bytes});
    if (table_cfg.storeLevel) {
        rows.push_back({"PCSTALL", "Level (I0) field",
                        std::to_string(table_cfg.entries) + " entries",
                        table_cfg.entries * entry_bytes});
    }
    rows.push_back({"PCSTALL", "Starting PC register (index bits only)",
                    std::to_string(wave_slots) + "x",
                    static_cast<std::uint64_t>(wave_slots) * 1});
    rows.push_back({"PCSTALL", "Stall time registers",
                    std::to_string(wave_slots) + "x (1/WF)",
                    static_cast<std::uint64_t>(wave_slots) * 4});

    // --- CRISP: per-MSHR critical-path timestamps + store-stall and
    //     overlap accumulators (MICRO'15 datapath). ---
    rows.push_back({"CRISP", "Critical path timestamps",
                    std::to_string(mshrs) + "x (1/MSHR)",
                    static_cast<std::uint64_t>(mshrs) * 8});
    rows.push_back({"CRISP", "Store stall + overlap accumulators", "4x",
                    16});

    // --- CRIT: per-MSHR timestamps + accumulator. ---
    rows.push_back({"CRIT", "Critical path timestamps",
                    std::to_string(mshrs) + "x (1/MSHR)",
                    static_cast<std::uint64_t>(mshrs) * 8});
    rows.push_back({"CRIT", "Critical path accumulator", "1x", 4});

    // --- LEAD: leading-load timestamp + accumulator. ---
    rows.push_back({"LEAD", "Leading load timestamp", "1x", 8});
    rows.push_back({"LEAD", "Leading load accumulator", "1x", 4});

    // --- STALL: one stall-cycle accumulator (paper: 4 B). ---
    rows.push_back({"STALL", "Stall cycle accumulator", "1x", 4});

    return rows;
}

std::uint64_t
designTotal(const std::vector<StorageRow> &rows, const std::string &design)
{
    std::uint64_t total = 0;
    for (const StorageRow &row : rows)
        if (row.design == design)
            total += row.bytes;
    return total;
}

} // namespace pcstall::predict
