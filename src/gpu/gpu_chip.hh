/**
 * @file
 * The whole simulated GPU: compute units, the shared memory hierarchy,
 * the workgroup dispatcher and the global event loop.
 *
 * GpuChip is copyable; a copy is a fully independent simulation with
 * identical state (the application itself is immutable and shared).
 * This is the primitive the oracle's fork-pre-execute methodology is
 * built on (paper Section 5.1).
 */

#ifndef PCSTALL_GPU_GPU_CHIP_HH
#define PCSTALL_GPU_GPU_CHIP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "gpu/compute_unit.hh"
#include "gpu/epoch_stats.hh"
#include "gpu/gpu_config.hh"
#include "isa/kernel.hh"
#include "memory/memory_system.hh"

namespace pcstall::gpu
{

/** The simulated GPU chip. */
class GpuChip
{
  public:
    /**
     * Build a GPU and enqueue @p app for execution. The application is
     * shared immutably so snapshots do not deep-copy kernel code.
     */
    GpuChip(const GpuConfig &config,
            std::shared_ptr<const isa::Application> app);

    /** Current global time in ticks. */
    Tick now() const { return curTick; }

    /** True once every kernel launch has fully completed. */
    bool done() const;

    /**
     * Advance simulation to @p until (an epoch boundary). Returns
     * true when the application finished at or before @p until.
     */
    bool runUntil(Tick until);

    /**
     * Harvest per-CU and per-wave statistics for the epoch that ended
     * at the current time, resetting all epoch accounting.
     */
    EpochRecord harvestEpoch(Tick epoch_start);

    /**
     * Harvest into @p out, reusing its buffers. The hot-path variant:
     * the oracle harvests one record per V/f sample per epoch, and
     * reusing the record's vectors keeps that loop allocation-free in
     * steady state. @p out is fully overwritten.
     */
    void harvestEpoch(Tick epoch_start, EpochRecord &out);

    /**
     * Set CU @p cu_id's frequency. A change stalls the CU's issue for
     * @p transition_latency (IVR/FLL settle time).
     */
    void setCuFrequency(std::uint32_t cu_id, Freq freq,
                        Tick transition_latency);

    /** CU @p cu_id's current frequency. */
    Freq cuFrequency(std::uint32_t cu_id) const;

    /** Snapshots of all resident waves (predictor lookup keys). */
    std::vector<WaveSnapshot> waveSnapshots() const;

    /** Lifetime committed instructions across all CUs. */
    std::uint64_t totalCommitted() const;

    /** Tick of the most recent commit anywhere on the chip. */
    Tick lastCommitTick() const;

    /**
     * Order-sensitive digest of the chip's complete simulation state
     * (time, dispatcher, every CU and wavefront, and the memory
     * hierarchy including cache tags). Two chips with equal
     * fingerprints are, for all practical purposes, the same
     * simulation state; the oracle uses this to verify that pooled
     * snapshot restores are exact and that `forkPreExecuteSweep`
     * leaves its input chip untouched.
     */
    std::uint64_t stateFingerprint() const;

    const GpuConfig &config() const { return cfg; }
    const memory::MemorySystem &memory() const { return mem; }
    const isa::Application &application() const { return *app; }

  private:
    CuContext makeContext();

    GpuConfig cfg;
    std::shared_ptr<const isa::Application> app;
    memory::MemorySystem mem;
    DispatchState dispatch;
    std::vector<ComputeUnit> cus;
    Tick curTick = 0;
};

/**
 * V/f transition latency the paper assumes for a given epoch length:
 * 4 ns at 1 µs epochs, 40 ns at 10 µs, 200 ns at 50 µs, 400 ns at
 * 100 µs (linear in between, clamped outside).
 */
Tick transitionLatencyFor(Tick epoch_length);

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_GPU_CHIP_HH
