/**
 * @file
 * The whole simulated GPU: compute units, the shared memory hierarchy,
 * the workgroup dispatcher and the global event loop.
 *
 * GpuChip is copyable; a copy is a fully independent simulation with
 * identical state (the application itself is immutable and shared).
 * This is the primitive the oracle's fork-pre-execute methodology is
 * built on (paper Section 5.1).
 */

#ifndef PCSTALL_GPU_GPU_CHIP_HH
#define PCSTALL_GPU_GPU_CHIP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bit_mask.hh"
#include "common/types.hh"
#include "gpu/compute_unit.hh"
#include "gpu/epoch_stats.hh"
#include "gpu/gpu_config.hh"
#include "isa/kernel.hh"
#include "memory/memory_system.hh"

namespace pcstall::gpu
{

/**
 * Dirty marks for a whole chip relative to its last snapshot take:
 * which CUs changed (and which of their wave slots), plus the memory
 * hierarchy's marks. curTick and the dispatcher are tiny and always
 * restored, so they are not tracked.
 */
struct ChipDirty
{
    /** Per-CU: anything on that CU changed. */
    std::vector<std::uint8_t> cuTouched;
    /** Per-CU: wave slots whose cold record changed. */
    std::vector<BitMask> cuSlots;
    memory::MemDirty mem;

    void
    clearAll()
    {
        for (std::uint8_t &b : cuTouched)
            b = 0;
        for (BitMask &m : cuSlots)
            m.clearAll();
        mem.clearAll();
    }

    ChipDirty &
    operator|=(const ChipDirty &other)
    {
        if (cuTouched.size() < other.cuTouched.size()) {
            cuTouched.resize(other.cuTouched.size(), 0);
            cuSlots.resize(other.cuSlots.size());
        }
        for (std::size_t i = 0; i < other.cuTouched.size(); ++i) {
            cuTouched[i] |= other.cuTouched[i];
            cuSlots[i] |= other.cuSlots[i];
        }
        mem |= other.mem;
        return *this;
    }
};

/**
 * Identity of a chip as a snapshot-delta base. Copying a chip (either
 * construction or assignment) creates a *different* simulation whose
 * subsequent mutations are unrelated, so the copy gets a fresh uid and
 * a reset take counter; a snapshot pool uses (uid, takeSeq) to prove
 * that the dirt it accumulated still describes the same base lineage.
 */
struct SnapshotIdentity
{
    SnapshotIdentity();
    SnapshotIdentity(const SnapshotIdentity &);
    SnapshotIdentity &operator=(const SnapshotIdentity &);

    std::uint64_t uid = 0;
    /** Number of takeDirty() calls on this chip since it got its uid. */
    mutable std::uint64_t takeSeq = 0;
};

/** The simulated GPU chip. */
class GpuChip
{
  public:
    /**
     * Build a GPU and enqueue @p app for execution. The application is
     * shared immutably so snapshots do not deep-copy kernel code.
     */
    GpuChip(const GpuConfig &config,
            std::shared_ptr<const isa::Application> app);

    /** Current global time in ticks. */
    Tick now() const { return curTick; }

    /** True once every kernel launch has fully completed. */
    bool done() const;

    /**
     * Advance simulation to @p until (an epoch boundary). Returns
     * true when the application finished at or before @p until.
     */
    bool runUntil(Tick until);

    /**
     * Harvest per-CU and per-wave statistics for the epoch that ended
     * at the current time, resetting all epoch accounting.
     */
    EpochRecord harvestEpoch(Tick epoch_start);

    /**
     * Harvest into @p out, reusing its buffers. The hot-path variant:
     * the oracle harvests one record per V/f sample per epoch, and
     * reusing the record's vectors keeps that loop allocation-free in
     * steady state. @p out is fully overwritten.
     */
    void harvestEpoch(Tick epoch_start, EpochRecord &out);

    /**
     * Set CU @p cu_id's frequency. A change stalls the CU's issue for
     * @p transition_latency (IVR/FLL settle time).
     */
    void setCuFrequency(std::uint32_t cu_id, Freq freq,
                        Tick transition_latency);

    /** CU @p cu_id's current frequency. */
    Freq cuFrequency(std::uint32_t cu_id) const;

    /** Snapshots of all resident waves (predictor lookup keys). */
    std::vector<WaveSnapshot> waveSnapshots() const;

    /** Lifetime committed instructions across all CUs. */
    std::uint64_t totalCommitted() const;

    /** Tick of the most recent commit anywhere on the chip. */
    Tick lastCommitTick() const;

    /**
     * Order-sensitive digest of the chip's complete simulation state
     * (time, dispatcher, every CU and wavefront, and the memory
     * hierarchy including cache tags). Two chips with equal
     * fingerprints are, for all practical purposes, the same
     * simulation state; the oracle uses this to verify that pooled
     * snapshot restores are exact and that `forkPreExecuteSweep`
     * leaves its input chip untouched.
     */
    std::uint64_t stateFingerprint() const;

    const GpuConfig &config() const { return cfg; }
    const memory::MemorySystem &memory() const { return mem; }
    const isa::Application &application() const { return *app; }

    // --- dirty-region snapshot support -------------------------------

    /** Identity of this chip as a delta base (fresh after any copy). */
    std::uint64_t snapshotUid() const { return ident_.uid; }

    /**
     * Move all dirty marks accumulated since the last take into
     * @p out and return this chip's new take sequence number.
     * Consecutive takes with the same snapshotUid() and consecutive
     * sequence numbers cover the chip's mutations with no gap.
     */
    std::uint64_t takeDirty(ChipDirty &out) const;

    /** True when un-taken dirty marks are pending anywhere. */
    bool hasPendingDirty() const;

    /**
     * Make this chip equal to @p base given that the two differ only
     * in curTick, the dispatcher and the regions flagged in @p dirty
     * (the union of both chips' dirt since they were last identical).
     * The chips must share the application and geometry.
     */
    void restoreDeltaFrom(const GpuChip &base, const ChipDirty &dirty);

  private:
    CuContext makeContext();

    GpuConfig cfg;
    std::shared_ptr<const isa::Application> app;
    memory::MemorySystem mem;
    DispatchState dispatch;
    std::vector<ComputeUnit> cus;
    Tick curTick = 0;
    SnapshotIdentity ident_;
};

/**
 * V/f transition latency the paper assumes for a given epoch length:
 * 4 ns at 1 µs epochs, 40 ns at 10 µs, 200 ns at 50 µs, 400 ns at
 * 100 µs (linear in between, clamped outside).
 */
Tick transitionLatencyFor(Tick epoch_length);

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_GPU_CHIP_HH
