#include "gpu/gpu_chip.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/event_queue.hh"

namespace pcstall::gpu
{

SnapshotIdentity::SnapshotIdentity()
{
    static std::atomic<std::uint64_t> next_uid{1};
    uid = next_uid.fetch_add(1, std::memory_order_relaxed);
}

SnapshotIdentity::SnapshotIdentity(const SnapshotIdentity &)
    : SnapshotIdentity()
{
}

SnapshotIdentity &
SnapshotIdentity::operator=(const SnapshotIdentity &)
{
    // Assignment makes the owning chip a different simulation: new
    // lineage, no takes yet.
    const SnapshotIdentity fresh;
    uid = fresh.uid;
    takeSeq = 0;
    return *this;
}

namespace
{
/** Sync derived fields of the configuration. */
GpuConfig
normalized(GpuConfig cfg)
{
    fatalIf(cfg.numCus == 0, "GPU needs at least one CU");
    fatalIf(cfg.waveSlotsPerCu == 0, "GPU needs at least one wave slot");
    cfg.mem.numCus = cfg.numCus;
    return cfg;
}
} // namespace

GpuChip::GpuChip(const GpuConfig &config,
                 std::shared_ptr<const isa::Application> app_in)
    : cfg(normalized(config)), app(std::move(app_in)), mem(cfg.mem)
{
    fatalIf(!app, "GpuChip requires an application");
    fatalIf(app->launches.empty(),
            "application '" + app->name + "' has no kernel launches");
    for (const isa::Kernel &k : app->launches) {
        k.validate();
        fatalIf(k.wavesPerWorkgroup > cfg.waveSlotsPerCu,
                "kernel '" + k.name + "' workgroup does not fit in a CU");
    }

    cus.resize(cfg.numCus);
    for (std::uint32_t i = 0; i < cfg.numCus; ++i)
        cus[i].init(i, cfg.waveSlotsPerCu, cfg.simdsPerCu,
                    cfg.defaultFreq);

    dispatch.curLaunch = 0;
    dispatch.wgUndispatched = app->launches[0].numWorkgroups;
    dispatch.wgCompleted = 0;
}

CuContext
GpuChip::makeContext()
{
    return CuContext{mem, *app, dispatch, cfg};
}

bool
GpuChip::done() const
{
    if (dispatch.curLaunch < app->launches.size())
        return false;
    for (const ComputeUnit &cu : cus)
        if (!cu.idle())
            return false;
    return true;
}

bool
GpuChip::runUntil(Tick until)
{
    panicIf(until < curTick, "runUntil into the past");
    CuContext ctx = makeContext();

    // Flat time-bucketed queue of (nextEventAt, cuId), kept in a
    // thread_local scratch so the hottest loop of the simulator
    // performs no heap allocation per epoch: the oracle calls
    // runUntil once per V/f sample per epoch boundary. The queue pops
    // in strictly ascending (tick, id) order - the exact order the
    // previous binary heap produced - and supports in-place
    // reschedule, so the launch-finished broadcast leaves no stale
    // entries behind.
    static thread_local TickBucketQueue queue;
    queue.reset(static_cast<std::uint32_t>(cus.size()), curTick);
    for (std::uint32_t i = 0; i < cus.size(); ++i) {
        if (cus[i].nextEventAt < until)
            queue.schedule(i, cus[i].nextEventAt);
    }

    Tick t = 0;
    std::uint32_t id = 0;
    while (queue.popMin(t, id)) {
        const StepResult res = cus[id].step(ctx, t);
        cus[id].nextEventAt = res.next;
        if (res.next < until)
            queue.schedule(id, res.next);

        if (res.launchFinished) {
            // A new kernel launch became available: wake every CU so
            // idle ones can pull workgroups.
            for (std::uint32_t i = 0; i < cus.size(); ++i) {
                if (i == id)
                    continue;
                if (cus[i].nextEventAt > t) {
                    cus[i].nextEventAt = t;
                    // The reschedule mutates CU state outside step().
                    cus[i].markScheduleDirty();
                    queue.schedule(i, t);
                }
            }
        }
    }

    curTick = until;
    return done();
}

EpochRecord
GpuChip::harvestEpoch(Tick epoch_start)
{
    EpochRecord record;
    harvestEpoch(epoch_start, record);
    return record;
}

void
GpuChip::harvestEpoch(Tick epoch_start, EpochRecord &out)
{
    CuContext ctx = makeContext();
    out.start = epoch_start;
    out.end = curTick;
    out.cus.resize(cus.size());
    out.waves.clear();
    for (std::uint32_t i = 0; i < cus.size(); ++i)
        cus[i].harvest(ctx, curTick, out.cus[i], out.waves);
    mem.resetActivity();
}

void
GpuChip::setCuFrequency(std::uint32_t cu_id, Freq freq,
                        Tick transition_latency)
{
    panicIf(cu_id >= cus.size(), "setCuFrequency: bad CU id");
    cus[cu_id].setFrequency(freq, curTick, transition_latency);
}

Freq
GpuChip::cuFrequency(std::uint32_t cu_id) const
{
    panicIf(cu_id >= cus.size(), "cuFrequency: bad CU id");
    return cus[cu_id].frequency();
}

std::vector<WaveSnapshot>
GpuChip::waveSnapshots() const
{
    std::vector<WaveSnapshot> out;
    out.reserve(cus.size() * cfg.waveSlotsPerCu);
    for (const ComputeUnit &cu : cus)
        cu.appendSnapshots(*app, out);
    return out;
}

std::uint64_t
GpuChip::stateFingerprint() const
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    h = hashCombine(h, static_cast<std::uint64_t>(curTick));
    h = hashCombine(h, dispatch.curLaunch);
    h = hashCombine(h, dispatch.wgUndispatched);
    h = hashCombine(h, dispatch.wgCompleted);
    h = hashCombine(h, dispatch.nextGlobalWaveId);
    for (const ComputeUnit &cu : cus)
        cu.fingerprint(h);
    mem.fingerprint(h);
    return h;
}

std::uint64_t
GpuChip::takeDirty(ChipDirty &out) const
{
    if (out.cuTouched.size() != cus.size()) {
        out.cuTouched.assign(cus.size(), 0);
        out.cuSlots.resize(cus.size());
    }
    for (std::size_t i = 0; i < cus.size(); ++i)
        out.cuTouched[i] = cus[i].takeDirty(out.cuSlots[i]) ? 1 : 0;
    mem.takeDirty(out.mem);
    return ++ident_.takeSeq;
}

bool
GpuChip::hasPendingDirty() const
{
    for (const ComputeUnit &cu : cus)
        if (cu.hasPendingDirty())
            return true;
    return mem.hasPendingDirty();
}

void
GpuChip::restoreDeltaFrom(const GpuChip &base, const ChipDirty &dirty)
{
    panicIf(app.get() != base.app.get() || cus.size() != base.cus.size(),
            "restoreDeltaFrom: chips are not copies of each other");
    curTick = base.curTick;
    dispatch = base.dispatch;
    for (std::size_t i = 0; i < cus.size(); ++i) {
        if (dirty.cuTouched[i])
            cus[i].restoreDeltaFrom(base.cus[i], dirty.cuSlots[i]);
    }
    mem.restoreDeltaFrom(base.mem, dirty.mem);
}

std::uint64_t
GpuChip::totalCommitted() const
{
    std::uint64_t sum = 0;
    for (const ComputeUnit &cu : cus)
        sum += cu.lifeCommitted();
    return sum;
}

Tick
GpuChip::lastCommitTick() const
{
    Tick last = 0;
    for (const ComputeUnit &cu : cus)
        last = std::max(last, cu.lastCommitTick());
    return last;
}

Tick
transitionLatencyFor(Tick epoch_length)
{
    // Paper Section 5: 4 ns @ 1 us, 40 ns @ 10 us, 200 ns @ 50 us,
    // 400 ns @ 100 us. Interpolate linearly between the published
    // points and clamp outside.
    struct Point { Tick epoch; Tick latency; };
    static constexpr Point points[] = {
        {1 * tickUs, 4 * tickNs},
        {10 * tickUs, 40 * tickNs},
        {50 * tickUs, 200 * tickNs},
        {100 * tickUs, 400 * tickNs},
    };
    if (epoch_length <= points[0].epoch)
        return points[0].latency;
    for (std::size_t i = 1; i < std::size(points); ++i) {
        if (epoch_length <= points[i].epoch) {
            const auto &a = points[i - 1];
            const auto &b = points[i];
            const double frac =
                static_cast<double>(epoch_length - a.epoch) /
                static_cast<double>(b.epoch - a.epoch);
            return a.latency + static_cast<Tick>(
                frac * static_cast<double>(b.latency - a.latency));
        }
    }
    return points[std::size(points) - 1].latency;
}

} // namespace pcstall::gpu
