#include "gpu/gpu_chip.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pcstall::gpu
{

namespace
{
/** Sync derived fields of the configuration. */
GpuConfig
normalized(GpuConfig cfg)
{
    fatalIf(cfg.numCus == 0, "GPU needs at least one CU");
    fatalIf(cfg.waveSlotsPerCu == 0, "GPU needs at least one wave slot");
    cfg.mem.numCus = cfg.numCus;
    return cfg;
}
} // namespace

GpuChip::GpuChip(const GpuConfig &config,
                 std::shared_ptr<const isa::Application> app_in)
    : cfg(normalized(config)), app(std::move(app_in)), mem(cfg.mem)
{
    fatalIf(!app, "GpuChip requires an application");
    fatalIf(app->launches.empty(),
            "application '" + app->name + "' has no kernel launches");
    for (const isa::Kernel &k : app->launches) {
        k.validate();
        fatalIf(k.wavesPerWorkgroup > cfg.waveSlotsPerCu,
                "kernel '" + k.name + "' workgroup does not fit in a CU");
    }

    cus.resize(cfg.numCus);
    for (std::uint32_t i = 0; i < cfg.numCus; ++i)
        cus[i].init(i, cfg.waveSlotsPerCu, cfg.defaultFreq);

    dispatch.curLaunch = 0;
    dispatch.wgUndispatched = app->launches[0].numWorkgroups;
    dispatch.wgCompleted = 0;
}

CuContext
GpuChip::makeContext()
{
    return CuContext{mem, *app, dispatch, cfg};
}

bool
GpuChip::done() const
{
    if (dispatch.curLaunch < app->launches.size())
        return false;
    for (const ComputeUnit &cu : cus)
        if (!cu.idle())
            return false;
    return true;
}

bool
GpuChip::runUntil(Tick until)
{
    panicIf(until < curTick, "runUntil into the past");
    CuContext ctx = makeContext();

    // Min-heap of (nextEventAt, cuId), kept in a thread_local scratch
    // vector so the hottest loop of the simulator performs no heap
    // allocation per epoch: the oracle calls runUntil once per V/f
    // sample per epoch boundary. std::priority_queue uses the same
    // push_heap/pop_heap algorithms, so event ordering is unchanged.
    using Entry = std::pair<Tick, std::uint32_t>;
    static thread_local std::vector<Entry> heap;
    heap.clear();
    const std::greater<> later{};
    for (std::uint32_t i = 0; i < cus.size(); ++i) {
        if (cus[i].nextEventAt < until) {
            heap.emplace_back(cus[i].nextEventAt, i);
            std::push_heap(heap.begin(), heap.end(), later);
        }
    }

    while (!heap.empty()) {
        const auto [t, id] = heap.front();
        std::pop_heap(heap.begin(), heap.end(), later);
        heap.pop_back();
        // Stale entry: the CU was rescheduled (e.g. woken by a kernel
        // transition) since this entry was pushed.
        if (cus[id].nextEventAt != t)
            continue;
        if (t >= until)
            break;

        const StepResult res = cus[id].step(ctx, t);
        cus[id].nextEventAt = res.next;
        if (res.next < until) {
            heap.emplace_back(res.next, id);
            std::push_heap(heap.begin(), heap.end(), later);
        }

        if (res.launchFinished) {
            // A new kernel launch became available: wake every CU so
            // idle ones can pull workgroups.
            for (std::uint32_t i = 0; i < cus.size(); ++i) {
                if (i == id)
                    continue;
                if (cus[i].nextEventAt > t) {
                    cus[i].nextEventAt = t;
                    heap.emplace_back(t, i);
                    std::push_heap(heap.begin(), heap.end(), later);
                }
            }
        }
    }

    curTick = until;
    return done();
}

EpochRecord
GpuChip::harvestEpoch(Tick epoch_start)
{
    EpochRecord record;
    harvestEpoch(epoch_start, record);
    return record;
}

void
GpuChip::harvestEpoch(Tick epoch_start, EpochRecord &out)
{
    CuContext ctx = makeContext();
    out.start = epoch_start;
    out.end = curTick;
    out.cus.resize(cus.size());
    out.waves.clear();
    for (std::uint32_t i = 0; i < cus.size(); ++i)
        cus[i].harvest(ctx, curTick, out.cus[i], out.waves);
    mem.resetActivity();
}

void
GpuChip::setCuFrequency(std::uint32_t cu_id, Freq freq,
                        Tick transition_latency)
{
    panicIf(cu_id >= cus.size(), "setCuFrequency: bad CU id");
    cus[cu_id].setFrequency(freq, curTick, transition_latency);
}

Freq
GpuChip::cuFrequency(std::uint32_t cu_id) const
{
    panicIf(cu_id >= cus.size(), "cuFrequency: bad CU id");
    return cus[cu_id].frequency();
}

std::vector<WaveSnapshot>
GpuChip::waveSnapshots() const
{
    std::vector<WaveSnapshot> out;
    out.reserve(cus.size() * cfg.waveSlotsPerCu);
    for (const ComputeUnit &cu : cus)
        cu.appendSnapshots(*app, out);
    return out;
}

std::uint64_t
GpuChip::stateFingerprint() const
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    h = hashCombine(h, static_cast<std::uint64_t>(curTick));
    h = hashCombine(h, dispatch.curLaunch);
    h = hashCombine(h, dispatch.wgUndispatched);
    h = hashCombine(h, dispatch.wgCompleted);
    h = hashCombine(h, dispatch.nextGlobalWaveId);
    for (const ComputeUnit &cu : cus)
        cu.fingerprint(h);
    mem.fingerprint(h);
    return h;
}

std::uint64_t
GpuChip::totalCommitted() const
{
    std::uint64_t sum = 0;
    for (const ComputeUnit &cu : cus)
        sum += cu.lifeCommitted();
    return sum;
}

Tick
GpuChip::lastCommitTick() const
{
    Tick last = 0;
    for (const ComputeUnit &cu : cus)
        last = std::max(last, cu.lastCommitTick());
    return last;
}

Tick
transitionLatencyFor(Tick epoch_length)
{
    // Paper Section 5: 4 ns @ 1 us, 40 ns @ 10 us, 200 ns @ 50 us,
    // 400 ns @ 100 us. Interpolate linearly between the published
    // points and clamp outside.
    struct Point { Tick epoch; Tick latency; };
    static constexpr Point points[] = {
        {1 * tickUs, 4 * tickNs},
        {10 * tickUs, 40 * tickNs},
        {50 * tickUs, 200 * tickNs},
        {100 * tickUs, 400 * tickNs},
    };
    if (epoch_length <= points[0].epoch)
        return points[0].latency;
    for (std::size_t i = 1; i < std::size(points); ++i) {
        if (epoch_length <= points[i].epoch) {
            const auto &a = points[i - 1];
            const auto &b = points[i];
            const double frac =
                static_cast<double>(epoch_length - a.epoch) /
                static_cast<double>(b.epoch - a.epoch);
            return a.latency + static_cast<Tick>(
                frac * static_cast<double>(b.latency - a.latency));
        }
    }
    return points[std::size(points) - 1].latency;
}

} // namespace pcstall::gpu
