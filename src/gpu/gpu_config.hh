/**
 * @file
 * Top-level GPU configuration (paper Section 5: 64 CUs, 40 wavefront
 * slots per CU, 16 L2 banks at a fixed 1.6 GHz memory clock).
 */

#ifndef PCSTALL_GPU_GPU_CONFIG_HH
#define PCSTALL_GPU_GPU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "memory/memory_system.hh"

namespace pcstall::gpu
{

/** Static hardware parameters of the simulated GPU. */
struct GpuConfig
{
    /** Number of compute units. */
    std::uint32_t numCus = 64;

    /** Wavefront slots per CU (the paper assumes ~40 waves). */
    std::uint32_t waveSlotsPerCu = 40;

    /**
     * SIMD units per CU (GCN: 4). A wavefront resides on the SIMD
     * given by slot % simdsPerCu; each SIMD issues at most one
     * instruction per CU cycle, oldest-ready-first.
     */
    std::uint32_t simdsPerCu = 4;

    /** Initial operating frequency of every CU domain. */
    Freq defaultFreq = 1'700 * freqMHz;

    /** Memory hierarchy parameters (numCus is synced automatically). */
    memory::MemConfig mem;

    /** Master seed mixed into all per-run randomness. */
    std::uint64_t seed = 42;
};

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_GPU_CONFIG_HH
