/**
 * @file
 * Per-epoch statistics records harvested at each DVFS epoch boundary.
 * These are the raw inputs to every estimation model in src/models and
 * to the PC-based predictor in src/predict.
 */

#ifndef PCSTALL_GPU_EPOCH_STATS_HH
#define PCSTALL_GPU_EPOCH_STATS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "memory/memory_system.hh"

namespace pcstall::gpu
{

/** What one wavefront did during one epoch. */
struct WaveEpochRecord
{
    std::uint32_t cu = 0;
    std::uint32_t slot = 0;
    /** The wavefront's PC at the start of the epoch (code index). */
    std::uint32_t startPc = 0;
    /** Byte address of startPc including the kernel's code base (the
     *  PC-table key). */
    std::uint64_t startPcAddr = 0;
    /** Instructions committed during the epoch. */
    std::uint64_t committed = 0;
    /** Time blocked at s_waitcnt for memory responses. */
    Tick memStall = 0;
    /** Time blocked at s_barrier. */
    Tick barrierStall = 0;
    /** Age rank among the CU's resident waves (0 = oldest). */
    std::uint32_t ageRank = 0;
    /** True if the wave existed at any point during the epoch. */
    bool active = false;
};

/** What one compute unit did during one epoch. */
struct CuEpochRecord
{
    std::uint64_t committed = 0;
    std::uint64_t vmemLoads = 0;
    std::uint64_t vmemStores = 0;

    /** Issue slots actually used, expressed as time (issued * period). */
    Tick busy = 0;
    /** Time with zero ready waves, gated by an outstanding load. */
    Tick loadStall = 0;
    /** Time with zero ready waves, gated by an outstanding store. */
    Tick storeStall = 0;
    /** Sum of leading-load latencies (LEAD model async time). */
    Tick leadLoad = 0;
    /** Union of in-flight-load intervals (CRIT model async time). */
    Tick memInterval = 0;
    /** Issue time that overlapped in-flight loads (CRISP credit). */
    Tick overlap = 0;

    /** Memory-level activity during the epoch (power model input). */
    memory::MemActivity mem;

    /** Operating frequency during the epoch. */
    Freq freq = 0;
};

/** Everything harvested at one epoch boundary. */
struct EpochRecord
{
    Tick start = 0;
    Tick end = 0;
    std::vector<CuEpochRecord> cus;
    std::vector<WaveEpochRecord> waves;

    /** Total instructions committed across all CUs. */
    std::uint64_t totalCommitted() const
    {
        std::uint64_t sum = 0;
        for (const auto &cu : cus)
            sum += cu.committed;
        return sum;
    }
};

/**
 * Faults injected / repairs performed during one epoch (filled by the
 * experiment driver when fault injection is enabled; all-zero
 * otherwise). Lives here so per-epoch traces can carry it alongside
 * the performance counters.
 */
struct FaultEpochCounters
{
    /** Telemetry counters whose observed value was perturbed. */
    std::uint64_t telemetryPerturbations = 0;
    /** Telemetry counters that dropped out (read as zero). */
    std::uint64_t telemetryDropouts = 0;
    /** Requested V/f changes that transiently failed this epoch. */
    std::uint64_t transitionFailures = 0;
    /** Extra settle latency paid this epoch. */
    Tick transitionExtraLatency = 0;
    /** Bits flipped in predictor storage this epoch. */
    std::uint64_t tableBitFlips = 0;
    /** Illegal controller decisions repaired this epoch. */
    std::uint64_t clampedDecisions = 0;
    /** True when a divergence watchdog decided via its fallback. */
    bool fallbackActive = false;
};

/** A resident wavefront's identity at a point in time (for lookups). */
struct WaveSnapshot
{
    std::uint32_t cu = 0;
    std::uint32_t slot = 0;
    /** Current PC (code index). */
    std::uint32_t pc = 0;
    /** Byte address of pc including the kernel's code base (the key
     *  for PC-table lookups of the next epoch). */
    std::uint64_t pcAddr = 0;
    /** Age rank among the CU's resident waves (0 = oldest). */
    std::uint32_t ageRank = 0;
};

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_EPOCH_STATS_HH
