/**
 * @file
 * One GCN3-like compute unit: up to 40 resident wavefronts scheduled
 * oldest-first, one issue slot per CU cycle, workgroup barriers, and
 * the per-epoch instrumentation every estimation model consumes
 * (stall time, leading loads, in-flight-load interval union, overlap).
 *
 * A ComputeUnit is pure data plus methods that receive an explicit
 * context (memory system, application, dispatcher); it contains no
 * pointers, so GpuChip snapshots are plain copies.
 *
 * Layout: the scheduling-hot per-wave fields are stored SoA
 * (wstate_/readyAt_/seq_) next to ready/pending/occupied bitmasks, so
 * the per-tick scans (wake, pick-ready, sleep classification) iterate
 * mask words and a few contiguous arrays instead of striding through
 * the cold Wavefront records. The CU also tracks which slots changed
 * since the last snapshot take (dirty-region delta restores).
 */

#ifndef PCSTALL_GPU_COMPUTE_UNIT_HH
#define PCSTALL_GPU_COMPUTE_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/bit_mask.hh"
#include "common/types.hh"
#include "gpu/epoch_stats.hh"
#include "gpu/gpu_config.hh"
#include "gpu/wavefront.hh"
#include "isa/kernel.hh"
#include "memory/memory_system.hh"

namespace pcstall::gpu
{

/** GPU-wide workgroup dispatch state (lives in GpuChip). */
struct DispatchState
{
    /** Index of the kernel launch currently being dispatched. */
    std::uint32_t curLaunch = 0;
    /** Workgroups of the current launch not yet handed to a CU. */
    std::uint32_t wgUndispatched = 0;
    /** Workgroups of the current launch fully completed. */
    std::uint32_t wgCompleted = 0;
    /** Monotone wavefront id source. */
    std::uint64_t nextGlobalWaveId = 0;
};

/** Shared references a ComputeUnit needs while executing. */
struct CuContext
{
    memory::MemorySystem &mem;
    const isa::Application &app;
    DispatchState &dispatch;
    const GpuConfig &cfg;
};

/** Why a CU-wide sleep is gated (for STALL/CRISP accounting). */
enum class SleepGate : std::uint8_t { None, Load, Store };

/** Outcome of one CU activation. */
struct StepResult
{
    /** When this CU next wants to run (tickInf = parked). */
    Tick next = tickInf;
    /** True when the current kernel launch completed: wake all CUs. */
    bool launchFinished = false;
};

/** A workgroup resident on a CU (barrier bookkeeping). */
struct ResidentWg
{
    bool valid = false;
    std::uint32_t launchIndex = 0;
    std::uint32_t waveCount = 0;
    std::uint32_t arrived = 0;
    std::uint32_t done = 0;
};

/** One compute unit. */
class ComputeUnit
{
  public:
    /**
     * Prepare @p slot_count empty wave slots for CU @p id with
     * @p num_simds issue pipes (slot i belongs to SIMD i % num_simds).
     */
    void init(std::uint32_t id, std::uint32_t slot_count,
              std::uint32_t num_simds, Freq freq);

    /**
     * Process one activation at global time @p now: wake waves, issue
     * at most one instruction, or compute the next wake time.
     */
    StepResult step(CuContext &ctx, Tick now);

    /**
     * Close all accrual intervals at @p boundary, emit this CU's and
     * its waves' epoch records into @p out, and reset epoch state.
     */
    void harvest(CuContext &ctx, Tick boundary, CuEpochRecord &cu_out,
                 std::vector<WaveEpochRecord> &waves_out);

    /** Change the operating frequency (stalls issue for @p trans). */
    void setFrequency(Freq freq, Tick now, Tick trans);

    Freq frequency() const { return freq_; }
    Tick period() const { return period_; }

    /** When this CU next wants to be activated (tickInf = parked). */
    Tick nextEventAt = 0;

    /** True when no wavefronts are resident. */
    bool idle() const { return !occMask_.any(); }

    /** Resident-wave snapshots with age ranks (predictor lookups). */
    void appendSnapshots(const isa::Application &app,
                         std::vector<WaveSnapshot> &out) const;

    /** Lifetime committed-instruction count. */
    std::uint64_t lifeCommitted() const { return lifeCommitted_; }

    /** Tick of the most recent commit on this CU. */
    Tick lastCommitTick() const { return lastCommit_; }

    std::uint32_t id() const { return cuId; }

    /**
     * Mix this CU's complete simulation state (scheduling, accrual
     * markers, per-epoch counters and every resident wavefront) into
     * the FNV-style digest @p h. Used by GpuChip::stateFingerprint()
     * to verify snapshot restores and sweep const-ness.
     */
    void fingerprint(std::uint64_t &h) const;

    // --- dirty-region snapshot support -------------------------------
    //
    // Every mutating entry point marks the CU (and the touched wave
    // slots) dirty; takeDirty() hands the accumulated marks to a
    // snapshot pool and clears them. The flags are mutable so a const
    // base chip can be taken from. If you add a member to this class,
    // wire it into fingerprint() AND restoreDeltaFrom() (the
    // restore-exactness tests in test_snapshot_delta.cc catch misses).

    /** Mark the CU's scheduling scalars dirty (external reschedule). */
    void markScheduleDirty() const { cuDirty_ = true; }

    /**
     * Copy the dirty marks into @p slots_out, clear them, and return
     * whether anything on this CU changed since the previous take.
     */
    bool
    takeDirty(BitMask &slots_out) const
    {
        slots_out = dirtySlots_;
        dirtySlots_.clearAll();
        const bool touched = cuDirty_;
        cuDirty_ = false;
        return touched;
    }

    /** True when unharvested dirty marks are pending. */
    bool hasPendingDirty() const { return cuDirty_; }

    /**
     * Make this CU equal to @p base, given that the two differ only
     * in the CU-level scalars plus the wave slots set in @p
     * dirty_slots (the union of both chips' dirt since they were last
     * identical). Scalars, SoA arrays and the small vectors copy
     * wholesale; cold Wavefront records copy per dirty slot only.
     */
    void restoreDeltaFrom(const ComputeUnit &base,
                          const BitMask &dirty_slots);

  private:
    /** Retire CU-level load completions up to @p now. */
    void drainLoadCompletions(Tick now);
    /** Move waves whose wake time has passed back to Ready. */
    void wakeWaves(Tick now);
    /** Close an in-progress CU sleep interval. */
    void closeSleep(Tick now);
    /** Issue slot @p slot's next instruction. */
    void issue(CuContext &ctx, std::uint32_t slot, Tick now);
    /** Try to pull new workgroups from the dispatcher. */
    bool tryDispatch(CuContext &ctx, Tick now);
    /** Release every wave of workgroup @p wg_index blocked at barrier. */
    void releaseBarrier(std::uint32_t wg_index, Tick now);
    /** Compute the address of a vector memory access. */
    std::uint64_t genAddress(const isa::Kernel &kernel,
                             const Wavefront &wave,
                             const isa::Instruction &ins) const;
    /** Oldest ready wave on SIMD @p simd (-1 when none). */
    int pickReadyWave(std::uint32_t simd) const;
    /** Age rank (0 = oldest) of slot @p slot among resident waves. */
    std::uint32_t ageRankOf(std::uint32_t slot) const;

    /**
     * Move slot @p i to state @p ns, maintaining the ready/pending/
     * occupied masks, the ready/free counters and the dirty marks.
     * The single chokepoint for wave-state transitions.
     */
    void
    setWaveState(std::uint32_t i, WaveState ns)
    {
        const WaveState os = wstate_[i];
        if (os == WaveState::Ready) {
            readyMask_.reset(i);
            --numReady;
        } else if (os == WaveState::Busy || os == WaveState::WaitMem) {
            pendMask_.reset(i);
        } else if (os == WaveState::Idle) {
            occMask_.set(i);
            --freeSlots;
        }
        if (ns == WaveState::Ready) {
            readyMask_.set(i);
            ++numReady;
        } else if (ns == WaveState::Busy || ns == WaveState::WaitMem) {
            pendMask_.set(i);
        } else if (ns == WaveState::Idle) {
            occMask_.reset(i);
            ++freeSlots;
        }
        if (os == WaveState::WaitMem)
            memMask_.reset(i);
        if (ns == WaveState::WaitMem)
            memMask_.set(i);
        wstate_[i] = ns;
        dirtySlots_.set(i);
    }

    std::uint32_t cuId = 0;
    Freq freq_ = 0;
    Tick period_ = 0;
    /** Issue blocked until this tick after a V/f transition. */
    Tick freqStallUntil = 0;

    /** Cold per-wave records (hot fields live in the SoA arrays). */
    std::vector<Wavefront> slots;
    std::vector<ResidentWg> wgs;

    // --- SoA scheduling state (one entry per slot) ---
    std::vector<WaveState> wstate_;
    /** For Busy: when the wave can issue again. For WaitMem: wake. */
    std::vector<Tick> readyAt_;
    /** Dispatch order within the CU; oldest-first scheduling key. */
    std::vector<std::uint64_t> seq_;
    /** Slots in WaveState::Ready. */
    BitMask readyMask_;
    /** Slots in Busy or WaitMem (have a pending wake in readyAt_). */
    BitMask pendMask_;
    /** Slots in WaitMem only (far wakes). The per-cycle wake scan
     *  skips these while now < memWakeAt_, so it only walks the
     *  short-latency Busy set. */
    BitMask memMask_;
    /** Slots not Idle. */
    BitMask occMask_;
    /** Slots belonging to each SIMD (slot % num_simds == simd). */
    std::vector<BitMask> simdMask_;

    /** Cached count of Idle slots (dispatch gating). */
    std::uint32_t freeSlots = 0;
    /** Cached count of Ready slots (skips the per-SIMD issue scans
     *  when nothing can issue). Derived state: maintained at every
     *  wave-state transition, excluded from fingerprint(). */
    std::uint32_t numReady = 0;
    /** Lower bound on the earliest Busy/WaitMem wake time; wakeWaves()
     *  skips its slot scan while now is below it. Derived state. */
    Tick wakeScanAt = 0;
    /** Lower bound on the earliest WaitMem wake; wakeWaves() skips the
     *  memMask_ slots while now is below it. Derived state. */
    Tick memWakeAt_ = tickInf;
    std::uint64_t seqCounter = 0;
    std::uint64_t lifeCommitted_ = 0;
    Tick lastCommit_ = 0;

    /** Min-heap (via std::*_heap with std::greater) of in-flight load
     *  completion ticks, CU-wide. */
    std::vector<Tick> loadCompletions;
    /** Min-heap of in-flight store completion ticks (MSHR release). */
    std::vector<Tick> storeCompletions;
    std::uint32_t outstandingLoads = 0;
    std::uint32_t outstandingTotal = 0;

    // --- accrual markers ---
    bool sleeping = false;
    Tick sleepStart = 0;
    Tick sleepUntil = 0;
    SleepGate sleepGate = SleepGate::None;

    bool memActive = false;
    Tick memStart = 0;

    bool leadActive = false;
    Tick leadStart = 0;
    Tick leadUntil = 0;

    // --- per-epoch counters ---
    std::uint64_t epCommitted = 0;
    std::uint64_t epLoads = 0;
    std::uint64_t epStores = 0;
    Tick epBusy = 0;
    Tick epOverlap = 0;
    Tick epLoadStall = 0;
    Tick epStoreStall = 0;
    Tick epLeadLoad = 0;
    Tick epMemInterval = 0;

    // --- dirty marks (snapshot delta support; not simulation state) ---
    /** Anything on this CU changed since the last takeDirty(). */
    mutable bool cuDirty_ = true;
    /** Wave slots whose cold record changed since the last take. */
    mutable BitMask dirtySlots_;
};

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_COMPUTE_UNIT_HH
