#include "gpu/compute_unit.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pcstall::gpu
{

void
ComputeUnit::init(std::uint32_t id, std::uint32_t slot_count,
                  std::uint32_t num_simds, Freq freq)
{
    cuId = id;
    slots.assign(slot_count, Wavefront{});
    wgs.clear();
    wstate_.assign(slot_count, WaveState::Idle);
    readyAt_.assign(slot_count, 0);
    seq_.assign(slot_count, 0);
    readyMask_.resize(slot_count);
    pendMask_.resize(slot_count);
    memMask_.resize(slot_count);
    occMask_.resize(slot_count);
    const std::uint32_t simds = std::max(num_simds, 1u);
    simdMask_.assign(simds, BitMask{});
    for (std::uint32_t s = 0; s < simds; ++s) {
        simdMask_[s].resize(slot_count);
        for (std::uint32_t i = s; i < slot_count; i += simds)
            simdMask_[s].set(i);
    }
    freeSlots = slot_count;
    numReady = 0;
    wakeScanAt = 0;
    memWakeAt_ = tickInf;
    freq_ = freq;
    period_ = clockPeriod(freq);
    nextEventAt = 0;
    cuDirty_ = true;
    dirtySlots_.resize(slot_count);
    dirtySlots_.setAll();
}

void
ComputeUnit::setFrequency(Freq freq, Tick now, Tick trans)
{
    if (freq == freq_)
        return;
    cuDirty_ = true;
    freq_ = freq;
    period_ = clockPeriod(freq);
    freqStallUntil = now + trans;
    if (nextEventAt != tickInf)
        nextEventAt = std::max(nextEventAt, freqStallUntil);
}

void
ComputeUnit::drainLoadCompletions(Tick now)
{
    while (!loadCompletions.empty() && loadCompletions.front() <= now) {
        const Tick done = loadCompletions.front();
        std::pop_heap(loadCompletions.begin(), loadCompletions.end(),
                      std::greater<>());
        loadCompletions.pop_back();
        panicIf(outstandingLoads == 0, "load completion underflow");
        --outstandingLoads;
        --outstandingTotal;
        if (outstandingLoads == 0 && memActive) {
            epMemInterval += done - memStart;
            memActive = false;
        }
    }
    while (!storeCompletions.empty() && storeCompletions.front() <= now) {
        std::pop_heap(storeCompletions.begin(), storeCompletions.end(),
                      std::greater<>());
        storeCompletions.pop_back();
        panicIf(outstandingTotal == 0, "store completion underflow");
        --outstandingTotal;
    }
    if (leadActive && leadUntil <= now) {
        epLeadLoad += leadUntil - leadStart;
        leadActive = false;
    }
}

void
ComputeUnit::wakeWaves(Tick now)
{
    // wakeScanAt is a lower bound on the earliest pending wake, so
    // nothing can be due yet and the slot scan would be a no-op.
    if (now < wakeScanAt)
        return;
    // WaitMem wakes sit minutes (of CU cycles) in the future, while
    // Busy wakes land a cycle or two out and re-arm wakeScanAt almost
    // every step. Scanning the whole pending set each cycle therefore
    // wastes most of its time re-checking memory waiters that cannot
    // possibly be due; skip them while now < memWakeAt_. The wake
    // updates per due wave are independent (per-slot accrual plus one
    // state transition), so processing near and far waves in separate
    // passes is observationally identical to the old ascending scan.
    //
    // Each pass computes the due set and the next wake branchlessly
    // first (data-dependent branches on readyAt mispredict badly),
    // then processes the few due waves.
    Tick next_wake = tickInf;
    const bool scan_mem = now >= memWakeAt_;
    if (scan_mem)
        memWakeAt_ = tickInf;
    for (std::size_t wi = 0; wi < pendMask_.wordCount(); ++wi) {
        const std::uint64_t mem_w = memMask_.word(wi);
        std::uint64_t w = pendMask_.word(wi);
        if (!scan_mem)
            w &= ~mem_w;
        std::uint64_t due = 0;
        while (w != 0) {
            const std::uint64_t bit = w & (~w + 1);
            const std::size_t i =
                (wi << 6) +
                static_cast<std::size_t>(std::countr_zero(w));
            w &= w - 1;
            const Tick at = readyAt_[i];
            const bool is_due = at <= now;
            due |= is_due ? bit : 0;
            const Tick pend_at = is_due ? tickInf : at;
            next_wake = std::min(next_wake, pend_at);
            if (scan_mem && (mem_w & bit) != 0)
                memWakeAt_ = std::min(memWakeAt_, pend_at);
        }
        while (due != 0) {
            const std::size_t i =
                (wi << 6) +
                static_cast<std::size_t>(std::countr_zero(due));
            due &= due - 1;
            const Tick at = readyAt_[i];
            if (wstate_[i] == WaveState::WaitMem) {
                // The stall semantically ended at the wake tick, even
                // if this CU only got around to processing it now.
                Wavefront &w2 = slots[i];
                w2.epMemStall += at - w2.stallEnter;
                w2.retireCompleted(at);
            }
            setWaveState(static_cast<std::uint32_t>(i),
                         WaveState::Ready);
        }
    }
    wakeScanAt = std::min(next_wake, memWakeAt_);
}

void
ComputeUnit::closeSleep(Tick now)
{
    if (!sleeping)
        return;
    const Tick end = std::min(now, sleepUntil);
    if (end > sleepStart) {
        if (sleepGate == SleepGate::Load)
            epLoadStall += end - sleepStart;
        else if (sleepGate == SleepGate::Store)
            epStoreStall += end - sleepStart;
    }
    sleeping = false;
    sleepGate = SleepGate::None;
}

int
ComputeUnit::pickReadyWave(std::uint32_t simd) const
{
    const BitMask &mine = simdMask_[simd];
    // Oldest-first pick. Packing (seq << 16 | slot) into one key keeps
    // the min-reduction branchless (seqs are unique, so the slot bits
    // never decide the comparison; they just ride along).
    std::uint64_t best_key = ~std::uint64_t{0};
    for (std::size_t wi = 0; wi < readyMask_.wordCount(); ++wi) {
        std::uint64_t w = readyMask_.word(wi) & mine.word(wi);
        while (w != 0) {
            const std::size_t i =
                (wi << 6) +
                static_cast<std::size_t>(std::countr_zero(w));
            w &= w - 1;
            best_key = std::min(best_key, (seq_[i] << 16) | i);
        }
    }
    if (best_key == ~std::uint64_t{0})
        return -1;
    return static_cast<int>(best_key & 0xffff);
}

std::uint32_t
ComputeUnit::ageRankOf(std::uint32_t slot) const
{
    const std::uint64_t my_seq = seq_[slot];
    std::uint32_t rank = 0;
    occMask_.forEachSet([&](std::size_t i) {
        if (seq_[i] < my_seq)
            ++rank;
    });
    return rank;
}

std::uint64_t
ComputeUnit::genAddress(const isa::Kernel &kernel, const Wavefront &wave,
                        const isa::Instruction &ins) const
{
    const isa::MemRegion &region = kernel.regions[ins.mem.regionId];
    const std::uint64_t line = 64;
    switch (ins.mem.pattern) {
      case isa::AccessPattern::Streaming:
      case isa::AccessPattern::Strided: {
        // Each wave walks its own page-sized window, advancing by the
        // instruction stride per issue; streaming strides (< line) get
        // spatial reuse, larger strides touch a new line every access.
        const std::uint64_t window = 4096;
        const std::uint64_t start =
            (wave.globalId * window) % region.sizeBytes;
        const std::uint64_t span =
            ins.mem.pattern == isa::AccessPattern::Streaming
            ? window : region.sizeBytes;
        const std::uint64_t off =
            (wave.memSeq * ins.mem.strideBytes) % span;
        return region.base + (start + off) % region.sizeBytes;
      }
      case isa::AccessPattern::Random: {
        const std::uint64_t num_lines = std::max<std::uint64_t>(
            region.sizeBytes / line, 1);
        const std::uint64_t h = hashCombine(
            kernel.seed ^ (wave.globalId * 0x9e3779b97f4a7c15ULL),
            wave.memSeq);
        return region.base + (h % num_lines) * line;
      }
      case isa::AccessPattern::SharedHot: {
        // All waves share a small hot footprint (lookup tables).
        const std::uint64_t hot = std::min<std::uint64_t>(
            region.sizeBytes, 32 * 1024);
        const std::uint64_t num_lines = std::max<std::uint64_t>(
            hot / line, 1);
        const std::uint64_t h = hashCombine(kernel.seed, wave.memSeq);
        return region.base + (h % num_lines) * line;
      }
    }
    panic("unknown access pattern");
}

bool
ComputeUnit::tryDispatch(CuContext &ctx, Tick now)
{
    bool dispatched = false;
    // Scratch reused across calls: dispatch runs once per CU
    // activation on the hottest loop of the simulator, and the oracle
    // runs many chips per epoch, so a fresh vector here would be a
    // per-event allocation. thread_local keeps in-cell parallel
    // sweeps race-free.
    static thread_local std::vector<std::uint32_t> free_slots;
    while (ctx.dispatch.curLaunch < ctx.app.launches.size() &&
           ctx.dispatch.wgUndispatched > 0) {
        const isa::Kernel &kernel =
            ctx.app.launches[ctx.dispatch.curLaunch];

        // Collect free slots (ascending, same order as the old
        // full-array scan).
        free_slots.clear();
        occMask_.forEachClear([&](std::size_t i) {
            free_slots.push_back(static_cast<std::uint32_t>(i));
        });
        if (free_slots.size() < kernel.wavesPerWorkgroup)
            break;

        // Allocate a resident-workgroup record.
        std::uint32_t wg_index = 0;
        for (wg_index = 0; wg_index < wgs.size(); ++wg_index)
            if (!wgs[wg_index].valid)
                break;
        if (wg_index == wgs.size())
            wgs.emplace_back();
        ResidentWg &wg = wgs[wg_index];
        wg.valid = true;
        wg.launchIndex = ctx.dispatch.curLaunch;
        wg.waveCount = kernel.wavesPerWorkgroup;
        wg.arrived = 0;
        wg.done = 0;

        for (std::uint32_t i = 0; i < kernel.wavesPerWorkgroup; ++i) {
            const std::uint32_t slot = free_slots[i];
            Wavefront &w = slots[slot];
            w.resetKeepCapacity();
            setWaveState(slot, WaveState::Ready);
            readyAt_[slot] = 0;
            seq_[slot] = seqCounter++;
            w.pc = 0;
            w.globalId = ctx.dispatch.nextGlobalWaveId++;
            w.wgIndex = wg_index;
            w.launchIndex = ctx.dispatch.curLaunch;
            w.epStartPc = 0;
            w.epActive = true;
            w.loopTripsInit.resize(kernel.loops.size());
            for (std::size_t l = 0; l < kernel.loops.size(); ++l) {
                const isa::LoopSpec &spec = kernel.loops[l];
                std::uint32_t trips = spec.baseTrips;
                if (spec.tripVariation > 0) {
                    const std::uint64_t h = hashCombine(
                        kernel.seed ^ ctx.cfg.seed,
                        hashCombine(w.globalId, l));
                    trips = spec.baseTrips - spec.tripVariation +
                        static_cast<std::uint32_t>(
                            h % (2 * spec.tripVariation + 1));
                }
                w.loopTripsInit[l] = std::max<std::uint32_t>(trips, 1);
            }
            w.loopTrips = w.loopTripsInit;
            // Keep the wave's arrival time: it was not stalled before
            // existing; stats markers start clean.
            w.stallEnter = now;
            w.barrierEnter = now;
        }
        --ctx.dispatch.wgUndispatched;
        dispatched = true;
    }
    return dispatched;
}

void
ComputeUnit::releaseBarrier(std::uint32_t wg_index, Tick now)
{
    // WaitBarrier slots are exactly the occupied ones with no ready
    // bit and no pending wake.
    for (std::size_t wi = 0; wi < occMask_.wordCount(); ++wi) {
        std::uint64_t w = occMask_.word(wi) & ~readyMask_.word(wi) &
            ~pendMask_.word(wi);
        while (w != 0) {
            const std::uint32_t i = static_cast<std::uint32_t>(
                (wi << 6) + std::countr_zero(w));
            w &= w - 1;
            Wavefront &wave = slots[i];
            if (wstate_[i] != WaveState::WaitBarrier ||
                wave.wgIndex != wg_index) {
                continue;
            }
            wave.epBarrierStall += now - wave.barrierEnter;
            setWaveState(i, WaveState::Ready);
            ++wave.pc;
            ++wave.epCommitted;
            ++epCommitted;
            ++lifeCommitted_;
            lastCommit_ = now;
        }
    }
    wgs[wg_index].arrived = 0;
}

void
ComputeUnit::issue(CuContext &ctx, std::uint32_t slot, Tick now)
{
    Wavefront &wave = slots[slot];
    const isa::Kernel &kernel = ctx.app.launches[wave.launchIndex];
    const isa::Instruction &ins = kernel.code[wave.pc];

    auto commit = [&]() {
        ++wave.epCommitted;
        ++epCommitted;
        ++lifeCommitted_;
        lastCommit_ = now;
    };
    auto busy_for = [&](Cycles cycles) {
        setWaveState(slot, WaveState::Busy);
        readyAt_[slot] = now + cycles * period_;
        wakeScanAt = std::min(wakeScanAt, readyAt_[slot]);
    };

    switch (ins.op) {
      case isa::OpType::VAlu:
      case isa::OpType::SAlu:
      case isa::OpType::Lds:
        commit();
        ++wave.pc;
        busy_for(ins.latency);
        break;

      case isa::OpType::VMemLoad:
      case isa::OpType::VMemStore: {
        const bool is_store = ins.op == isa::OpType::VMemStore;
        if (outstandingTotal >= ctx.cfg.mem.maxOutstandingPerCu) {
            // MSHRs full: a memory-capacity stall until something
            // drains. Booked as WaitMem so the wavefront estimators
            // see bandwidth saturation as asynchronous time.
            Tick wake = now + period_;
            if (!loadCompletions.empty())
                wake = std::max(wake, loadCompletions.front());
            if (!storeCompletions.empty() &&
                (loadCompletions.empty() ||
                 storeCompletions.front() < loadCompletions.front())) {
                wake = std::max(now + period_, storeCompletions.front());
            }
            setWaveState(slot, WaveState::WaitMem);
            readyAt_[slot] = wake;
            wakeScanAt = std::min(wakeScanAt, wake);
            memWakeAt_ = std::min(memWakeAt_, wake);
            wave.stallEnter = now;
            wave.stallGateStore = is_store;
            break;
        }
        const std::uint64_t addr = genAddress(kernel, wave, ins);
        const memory::MemResult res =
            ctx.mem.access(cuId, addr, is_store, now, period_);
        PendingMem pm{res.completion, is_store};
        wave.pending.insert(
            std::upper_bound(wave.pending.begin(), wave.pending.end(), pm),
            pm);
        ++wave.memSeq;
        ++outstandingTotal;
        if (is_store) {
            ++epStores;
            storeCompletions.push_back(res.completion);
            std::push_heap(storeCompletions.begin(),
                           storeCompletions.end(), std::greater<>());
        } else {
            ++epLoads;
            if (outstandingLoads == 0) {
                memActive = true;
                memStart = now;
                if (!leadActive) {
                    leadActive = true;
                    leadStart = now;
                    leadUntil = res.completion;
                }
            }
            ++outstandingLoads;
            loadCompletions.push_back(res.completion);
            std::push_heap(loadCompletions.begin(), loadCompletions.end(),
                           std::greater<>());
        }
        commit();
        ++wave.pc;
        busy_for(ins.latency);
        break;
      }

      case isa::OpType::Waitcnt: {
        wave.retireCompleted(now);
        if (wave.pending.size() <= ins.maxOutstanding) {
            commit();
            ++wave.pc;
            busy_for(ins.latency);
        } else {
            const std::size_t gate_idx =
                wave.pending.size() - ins.maxOutstanding - 1;
            setWaveState(slot, WaveState::WaitMem);
            readyAt_[slot] = wave.pending[gate_idx].completion;
            wakeScanAt = std::min(wakeScanAt, readyAt_[slot]);
            memWakeAt_ = std::min(memWakeAt_, readyAt_[slot]);
            wave.stallEnter = now;
            wave.stallGateStore = wave.pending[gate_idx].isStore;
        }
        break;
      }

      case isa::OpType::Barrier: {
        ResidentWg &wg = wgs[wave.wgIndex];
        setWaveState(slot, WaveState::WaitBarrier);
        wave.barrierEnter = now;
        ++wg.arrived;
        if (wg.arrived + wg.done >= wg.waveCount)
            releaseBarrier(wave.wgIndex, now);
        break;
      }

      case isa::OpType::Branch: {
        std::uint32_t &trips = wave.loopTrips[ins.loopId];
        panicIf(trips == 0, "loop trip counter underflow");
        --trips;
        if (trips > 0) {
            wave.pc = static_cast<std::uint32_t>(ins.target);
        } else {
            trips = wave.loopTripsInit[ins.loopId];
            ++wave.pc;
        }
        commit();
        busy_for(ins.latency);
        break;
      }

      case isa::OpType::EndPgm: {
        commit();
        setWaveState(slot, WaveState::Idle);
        ResidentWg &wg = wgs[wave.wgIndex];
        ++wg.done;
        if (wg.done == wg.waveCount) {
            wg.valid = false;
            ++ctx.dispatch.wgCompleted;
        }
        break;
      }
    }

}

StepResult
ComputeUnit::step(CuContext &ctx, Tick now)
{
    StepResult result;
    cuDirty_ = true;

    drainLoadCompletions(now);
    closeSleep(now);
    wakeWaves(now);

    if (now < freqStallUntil) {
        result.next = freqStallUntil;
        return result;
    }

    const std::uint32_t completed_before = ctx.dispatch.wgCompleted;
    const std::uint32_t num_simds = std::max(ctx.cfg.simdsPerCu, 1u);

    // Refill free slots from the dispatcher before issuing.
    if (freeSlots > 0 && ctx.dispatch.wgUndispatched > 0)
        tryDispatch(ctx, now);

    // Each SIMD issues at most one instruction this cycle,
    // oldest-ready-first among its resident waves. The cached ready
    // count skips the per-SIMD scans entirely on wake-only steps.
    bool issued_any = false;
    if (numReady > 0) {
        for (std::uint32_t simd = 0; simd < num_simds; ++simd) {
            const int ready = pickReadyWave(simd);
            if (ready >= 0) {
                issue(ctx, static_cast<std::uint32_t>(ready), now);
                issued_any = true;
                epBusy += period_;
            }
        }
    }

    if (issued_any) {
        if (outstandingLoads > 0)
            epOverlap += period_;
        result.next = now + period_;
        // Completing the last workgroup of a launch advances the
        // dispatcher to the next kernel; every CU must be woken.
        if (ctx.dispatch.wgCompleted != completed_before &&
            ctx.dispatch.curLaunch < ctx.app.launches.size()) {
            const isa::Kernel &cur =
                ctx.app.launches[ctx.dispatch.curLaunch];
            if (ctx.dispatch.wgCompleted == cur.numWorkgroups) {
                ++ctx.dispatch.curLaunch;
                ctx.dispatch.wgCompleted = 0;
                if (ctx.dispatch.curLaunch < ctx.app.launches.size()) {
                    ctx.dispatch.wgUndispatched =
                        ctx.app.launches[ctx.dispatch.curLaunch]
                        .numWorkgroups;
                    result.launchFinished = true;
                }
            }
        }
        return result;
    }

    // No ready wave: sleep until the earliest wake, classifying the
    // gate for STALL/CRISP accounting. Only Busy/WaitMem slots (the
    // pending mask) have a wake time; scan ascending like the old
    // full-array loop so ties resolve identically.
    // Packed (readyAt << 16 | slot) min: lowest wake, ties to the
    // lowest slot — the same winner the old ascending strict-< scan
    // produced — without a data-dependent branch per wave.
    std::uint64_t wake_key = ~std::uint64_t{0};
    for (std::size_t wi = 0; wi < pendMask_.wordCount(); ++wi) {
        std::uint64_t w = pendMask_.word(wi);
        while (w != 0) {
            const std::size_t i =
                (wi << 6) +
                static_cast<std::size_t>(std::countr_zero(w));
            w &= w - 1;
            wake_key = std::min(
                wake_key,
                (static_cast<std::uint64_t>(readyAt_[i]) << 16) | i);
        }
    }
    Tick wake = tickInf;
    bool wake_is_mem = false;
    bool wake_is_store = false;
    if (wake_key != ~std::uint64_t{0}) {
        const std::size_t i = wake_key & 0xffff;
        wake = readyAt_[i];
        wake_is_mem = wstate_[i] == WaveState::WaitMem;
        wake_is_store = wake_is_mem && slots[i].stallGateStore;
    }

    if (wake == tickInf) {
        // Fully drained (or only barrier waiters, which would be a
        // deadlock and cannot happen with well-formed kernels). With
        // no ready and no pending slots, anything still occupied is
        // blocked at a barrier.
        panicIf(occMask_.any(),
                "barrier deadlock: all remaining waves at s_barrier");
        result.next = tickInf;
        return result;
    }

    sleeping = true;
    sleepStart = now;
    sleepUntil = wake;
    sleepGate = !wake_is_mem ? SleepGate::None
        : (wake_is_store ? SleepGate::Store : SleepGate::Load);
    result.next = wake;
    return result;
}

void
ComputeUnit::harvest(CuContext &ctx, Tick boundary, CuEpochRecord &cu_out,
                     std::vector<WaveEpochRecord> &waves_out)
{
    cuDirty_ = true;
    drainLoadCompletions(boundary);
    wakeWaves(boundary);

    // Close open accrual intervals at the boundary and restart them.
    if (sleeping) {
        const Tick end = std::min(boundary, sleepUntil);
        if (end > sleepStart) {
            if (sleepGate == SleepGate::Load)
                epLoadStall += end - sleepStart;
            else if (sleepGate == SleepGate::Store)
                epStoreStall += end - sleepStart;
        }
        sleepStart = std::max(sleepStart, end);
    }
    if (memActive) {
        epMemInterval += boundary - memStart;
        memStart = boundary;
    }
    if (leadActive) {
        const Tick end = std::min(leadUntil, boundary);
        if (end > leadStart)
            epLeadLoad += end - leadStart;
        if (leadUntil <= boundary)
            leadActive = false;
        else
            leadStart = boundary;
    }

    cu_out.committed = epCommitted;
    cu_out.vmemLoads = epLoads;
    cu_out.vmemStores = epStores;
    cu_out.busy = epBusy;
    cu_out.loadStall = epLoadStall;
    cu_out.storeStall = epStoreStall;
    cu_out.leadLoad = epLeadLoad;
    cu_out.memInterval = epMemInterval;
    cu_out.overlap = epOverlap;
    cu_out.mem = ctx.mem.activity(cuId);
    cu_out.freq = freq_;

    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        Wavefront &w = slots[i];
        const WaveState state = wstate_[i];
        if (!w.epActive && state == WaveState::Idle)
            continue;
        dirtySlots_.set(i);
        // Clip in-progress waits at the boundary.
        if (state == WaveState::WaitMem) {
            const Tick end = std::min(boundary, readyAt_[i]);
            if (end > w.stallEnter)
                w.epMemStall += end - w.stallEnter;
            w.stallEnter = std::max(w.stallEnter, end);
        } else if (state == WaveState::WaitBarrier) {
            if (boundary > w.barrierEnter)
                w.epBarrierStall += boundary - w.barrierEnter;
            w.barrierEnter = boundary;
        }

        WaveEpochRecord rec;
        rec.cu = cuId;
        rec.slot = i;
        rec.startPc = w.epStartPc;
        rec.startPcAddr =
            ctx.app.launches[w.launchIndex].pcAddr(w.epStartPc);
        rec.committed = w.epCommitted;
        rec.memStall = w.epMemStall;
        rec.barrierStall = w.epBarrierStall;
        rec.ageRank = state == WaveState::Idle ? 0 : ageRankOf(i);
        rec.active = true;
        waves_out.push_back(rec);

        // Reset per-epoch wave accounting.
        w.epCommitted = 0;
        w.epMemStall = 0;
        w.epBarrierStall = 0;
        w.epStartPc = w.pc;
        w.epActive = state != WaveState::Idle;
    }

    epCommitted = 0;
    epLoads = 0;
    epStores = 0;
    epBusy = 0;
    epOverlap = 0;
    epLoadStall = 0;
    epStoreStall = 0;
    epLeadLoad = 0;
    epMemInterval = 0;
}

void
ComputeUnit::fingerprint(std::uint64_t &h) const
{
    auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    mix(cuId);
    mix(freq_);
    mix(static_cast<std::uint64_t>(period_));
    mix(static_cast<std::uint64_t>(freqStallUntil));
    mix(static_cast<std::uint64_t>(nextEventAt));
    mix(freeSlots);
    mix(seqCounter);
    mix(lifeCommitted_);
    mix(static_cast<std::uint64_t>(lastCommit_));

    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Wavefront &w = slots[i];
        mix(static_cast<std::uint64_t>(wstate_[i]));
        mix(w.pc);
        mix(static_cast<std::uint64_t>(readyAt_[i]));
        mix(w.pending.size());
        for (const PendingMem &p : w.pending) {
            mix(static_cast<std::uint64_t>(p.completion));
            mix(p.isStore ? 1 : 0);
        }
        mix(w.loopTrips.size());
        for (std::uint32_t t : w.loopTrips)
            mix(t);
        for (std::uint32_t t : w.loopTripsInit)
            mix(t);
        mix(w.globalId);
        mix(seq_[i]);
        mix(w.wgIndex);
        mix(w.launchIndex);
        mix(w.memSeq);
        mix(w.epCommitted);
        mix(static_cast<std::uint64_t>(w.epMemStall));
        mix(static_cast<std::uint64_t>(w.epBarrierStall));
        mix(w.epStartPc);
        mix(w.epActive ? 1 : 0);
        mix(static_cast<std::uint64_t>(w.stallEnter));
        mix(static_cast<std::uint64_t>(w.barrierEnter));
        mix(w.stallGateStore ? 1 : 0);
    }

    mix(wgs.size());
    for (const ResidentWg &wg : wgs) {
        mix(wg.valid ? 1 : 0);
        mix(wg.launchIndex);
        mix(wg.waveCount);
        mix(wg.arrived);
        mix(wg.done);
    }

    mix(loadCompletions.size());
    for (Tick t : loadCompletions)
        mix(static_cast<std::uint64_t>(t));
    mix(storeCompletions.size());
    for (Tick t : storeCompletions)
        mix(static_cast<std::uint64_t>(t));
    mix(outstandingLoads);
    mix(outstandingTotal);

    mix(sleeping ? 1 : 0);
    mix(static_cast<std::uint64_t>(sleepStart));
    mix(static_cast<std::uint64_t>(sleepUntil));
    mix(static_cast<std::uint64_t>(sleepGate));
    mix(memActive ? 1 : 0);
    mix(static_cast<std::uint64_t>(memStart));
    mix(leadActive ? 1 : 0);
    mix(static_cast<std::uint64_t>(leadStart));
    mix(static_cast<std::uint64_t>(leadUntil));

    mix(epCommitted);
    mix(epLoads);
    mix(epStores);
    mix(static_cast<std::uint64_t>(epBusy));
    mix(static_cast<std::uint64_t>(epOverlap));
    mix(static_cast<std::uint64_t>(epLoadStall));
    mix(static_cast<std::uint64_t>(epStoreStall));
    mix(static_cast<std::uint64_t>(epLeadLoad));
    mix(static_cast<std::uint64_t>(epMemInterval));
}

void
ComputeUnit::restoreDeltaFrom(const ComputeUnit &base,
                              const BitMask &dirty_slots)
{
    // Scalars and small vectors copy wholesale: together they are a
    // few hundred bytes, far below the cost of tracking them
    // individually. Keep this list in sync with the member list (the
    // restore-exactness grid asserts fingerprint equality).
    cuId = base.cuId;
    freq_ = base.freq_;
    period_ = base.period_;
    freqStallUntil = base.freqStallUntil;
    nextEventAt = base.nextEventAt;
    freeSlots = base.freeSlots;
    numReady = base.numReady;
    wakeScanAt = base.wakeScanAt;
    memWakeAt_ = base.memWakeAt_;
    seqCounter = base.seqCounter;
    lifeCommitted_ = base.lifeCommitted_;
    lastCommit_ = base.lastCommit_;
    outstandingLoads = base.outstandingLoads;
    outstandingTotal = base.outstandingTotal;
    sleeping = base.sleeping;
    sleepStart = base.sleepStart;
    sleepUntil = base.sleepUntil;
    sleepGate = base.sleepGate;
    memActive = base.memActive;
    memStart = base.memStart;
    leadActive = base.leadActive;
    leadStart = base.leadStart;
    leadUntil = base.leadUntil;
    epCommitted = base.epCommitted;
    epLoads = base.epLoads;
    epStores = base.epStores;
    epBusy = base.epBusy;
    epOverlap = base.epOverlap;
    epLoadStall = base.epLoadStall;
    epStoreStall = base.epStoreStall;
    epLeadLoad = base.epLeadLoad;
    epMemInterval = base.epMemInterval;

    wgs = base.wgs;
    loadCompletions = base.loadCompletions;
    storeCompletions = base.storeCompletions;

    // SoA arrays and masks: contiguous memcpy-class assignments.
    wstate_ = base.wstate_;
    readyAt_ = base.readyAt_;
    seq_ = base.seq_;
    readyMask_ = base.readyMask_;
    pendMask_ = base.pendMask_;
    memMask_ = base.memMask_;
    occMask_ = base.occMask_;
    // simdMask_ is configuration-derived and identical by shape.

    // Cold wave records: only the slots either side touched.
    dirty_slots.forEachSet([&](std::size_t i) {
        slots[i] = base.slots[i];
    });
    // The caller (SnapshotPool) took this CU's dirty marks before the
    // copy, and raw restores must not re-mark: after this call the CU
    // is identical to base, i.e. clean relative to it.
}

void
ComputeUnit::appendSnapshots(const isa::Application &app,
                             std::vector<WaveSnapshot> &out) const
{
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        if (wstate_[i] == WaveState::Idle)
            continue;
        const Wavefront &w = slots[i];
        WaveSnapshot snap;
        snap.cu = cuId;
        snap.slot = i;
        snap.pc = w.pc;
        snap.pcAddr = app.launches[w.launchIndex].pcAddr(w.pc);
        snap.ageRank = ageRankOf(i);
        out.push_back(snap);
    }
}

} // namespace pcstall::gpu
