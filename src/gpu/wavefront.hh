/**
 * @file
 * Wavefront execution state. A wavefront is an in-order instruction
 * stream with a private PC, explicit outstanding-memory counters
 * (s_waitcnt semantics), and per-loop trip counters. All state is
 * value-semantic for oracle snapshotting.
 */

#ifndef PCSTALL_GPU_WAVEFRONT_HH
#define PCSTALL_GPU_WAVEFRONT_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hh"

namespace pcstall::gpu
{

/** Sentinel "never" tick. */
inline constexpr Tick tickInf = std::numeric_limits<Tick>::max();

/** Wavefront scheduling states. */
enum class WaveState : std::uint8_t
{
    /** Slot is empty. */
    Idle,
    /** Can issue its next instruction. */
    Ready,
    /** Pipeline-busy until readyAt (ALU/LDS dependency latency). */
    Busy,
    /** Blocked at s_waitcnt until enough memory ops complete. */
    WaitMem,
    /** Blocked at s_barrier until the workgroup arrives. */
    WaitBarrier,
};

/** One outstanding vector memory operation. */
struct PendingMem
{
    Tick completion = 0;
    bool isStore = false;

    bool operator<(const PendingMem &other) const
    {
        return completion < other.completion;
    }
};

/**
 * Cold per-wavefront state. The scheduling-hot fields every per-tick
 * scan reads - state, wake tick and dispatch order - live in SoA
 * arrays inside ComputeUnit (wstate_/readyAt_/seq_ plus the
 * ready/pending/occupied bitmasks), so scans touch a few cache lines
 * instead of striding through these ~200-byte records. A Wavefront
 * is only loaded when its wave actually issues, wakes or harvests.
 */
struct Wavefront
{
    std::uint32_t pc = 0;

    /** Outstanding vector memory ops, sorted by completion tick. */
    std::vector<PendingMem> pending;

    /** Remaining trips per kernel loop (reloaded on loop exit). */
    std::vector<std::uint32_t> loopTrips;
    /** Initial trip counts for this wave (per-wave divergence applied). */
    std::vector<std::uint32_t> loopTripsInit;

    /** Unique id across the whole run (address-stream seed). */
    std::uint64_t globalId = 0;
    /** Index of the wave's resident workgroup within its CU. */
    std::uint32_t wgIndex = 0;
    /** Which application launch this wave belongs to. */
    std::uint32_t launchIndex = 0;

    /** Monotone vector-memory issue counter (address generation). */
    std::uint64_t memSeq = 0;

    // --- Per-epoch accounting (reset at every harvest) ---
    std::uint64_t epCommitted = 0;
    Tick epMemStall = 0;
    Tick epBarrierStall = 0;
    /** PC at the start of the current epoch (or at dispatch). */
    std::uint32_t epStartPc = 0;
    /** True if the wave existed at any point during this epoch. */
    bool epActive = false;
    /** Marker: when the current WaitMem stall started (accrual). */
    Tick stallEnter = 0;
    /** Marker: when the current WaitBarrier wait started (accrual). */
    Tick barrierEnter = 0;
    /** True when the op gating the current WaitMem stall is a store. */
    bool stallGateStore = false;

    /**
     * Reset to the default-constructed state while keeping the
     * vectors' allocated capacity. Dispatch recycles slots many times
     * per run (and the oracle's snapshot pool restores chips by
     * assignment), so the hot path must not reallocate per dispatch
     * the way `*this = Wavefront{}` would.
     */
    void
    resetKeepCapacity()
    {
        pc = 0;
        pending.clear();
        loopTrips.clear();
        loopTripsInit.clear();
        globalId = 0;
        wgIndex = 0;
        launchIndex = 0;
        memSeq = 0;
        epCommitted = 0;
        epMemStall = 0;
        epBarrierStall = 0;
        epStartPc = 0;
        epActive = false;
        stallEnter = 0;
        barrierEnter = 0;
        stallGateStore = false;
    }

    /** Number of outstanding ops, ignoring ones completed by @p now. */
    std::uint32_t
    outstandingAt(Tick now) const
    {
        std::uint32_t n = 0;
        for (const PendingMem &p : pending)
            if (p.completion > now)
                ++n;
        return n;
    }

    /** Drop ops completed by @p now (pending is kept sorted). */
    void
    retireCompleted(Tick now)
    {
        std::size_t keep = 0;
        while (keep < pending.size() && pending[keep].completion <= now)
            ++keep;
        if (keep > 0)
            pending.erase(pending.begin(),
                          pending.begin() + static_cast<std::ptrdiff_t>(keep));
    }
};

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_WAVEFRONT_HH
