/**
 * @file
 * A flat time-bucketed event queue for the GPU event loop.
 *
 * Each compute unit has exactly one pending activation time, so the
 * event loop needs a monotone priority structure over at most numCus
 * keys with decrease-key (the launch-finished broadcast reschedules
 * every CU to "now"). The classic binary heap pays push_heap/pop_heap
 * per event plus stale-entry skips; this queue instead hashes times
 * into a ring of fixed-width buckets, each holding a CU bitmask, so
 * scheduling is two word-ops and popping scans one (usually the
 * current) bucket word.
 *
 * Ordering contract: popMin() returns scheduled entries in strictly
 * ascending (tick, id) lexicographic order, exactly the order the
 * previous std::priority_queue produced, provided no entry is ever
 * scheduled earlier than the most recently popped tick (the event
 * loop guarantees this: a step at time t only schedules times >= t).
 * Times at or beyond the ring horizon park in an overflow mask and
 * migrate into the ring as the cursor advances.
 */

#ifndef PCSTALL_GPU_EVENT_QUEUE_HH
#define PCSTALL_GPU_EVENT_QUEUE_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/bit_mask.hh"
#include "common/types.hh"

namespace pcstall::gpu
{

/** Bucketed one-event-per-id priority queue over ticks. */
class TickBucketQueue
{
  public:
    /**
     * Prepare for a run over @p n ids starting at time @p start.
     * Drops any previously scheduled entries; buffers are reused.
     */
    void
    reset(std::uint32_t n, Tick start)
    {
        words_ = BitMask::wordsFor(n);
        ring_.assign(kBuckets * words_, 0);
        overflow_.assign(words_, 0);
        when_.assign(n, kNever);
        posAbs_.assign(n, 0);
        cursor_ = bucketOf(start);
        overflowFloor_ = kNoFloor;
        count_ = 0;
    }

    bool empty() const { return count_ == 0; }

    /**
     * Schedule (or reschedule) @p id at time @p t. @p t must be at or
     * after the most recently popped tick (monotone event loop).
     */
    void
    schedule(std::uint32_t id, Tick t)
    {
        if (when_[id] != kNever)
            removeBit(id);
        else
            ++count_;
        when_[id] = t;
        std::uint64_t abs = bucketOf(t);
        if (abs < cursor_)
            abs = cursor_;
        placeBit(id, abs);
    }

    /**
     * Pop the scheduled entry with the smallest (tick, id). Returns
     * false when nothing is scheduled.
     */
    bool
    popMin(Tick &t_out, std::uint32_t &id_out)
    {
        if (count_ == 0)
            return false;

        // Find the first non-empty ring bucket at or after the cursor.
        std::size_t step = 0;
        for (; step < kBuckets; ++step) {
            if (bucketAny(cursor_ + step))
                break;
        }
        if (step == kBuckets) {
            // Ring drained: jump the cursor to the earliest overflow
            // entry and pull the near ones in.
            std::uint64_t min_abs = kNoFloor;
            for (std::size_t wi = 0; wi < words_; ++wi) {
                std::uint64_t w = overflow_[wi];
                while (w != 0) {
                    const std::uint32_t id = static_cast<std::uint32_t>(
                        (wi << 6) + std::countr_zero(w));
                    const std::uint64_t abs = bucketOf(when_[id]);
                    if (abs < min_abs)
                        min_abs = abs;
                    w &= w - 1;
                }
            }
            cursor_ = min_abs;
            migrateOverflow();
        } else if (step > 0) {
            cursor_ += step;
            if (overflowFloor_ < cursor_ + kBuckets)
                migrateOverflow();
        }

        // The first non-empty bucket holds the global minimum: ring
        // buckets partition time in cursor order and every overflow
        // entry lies at or beyond cursor + kBuckets.
        const std::uint64_t *bucket =
            &ring_[(cursor_ & (kBuckets - 1)) * words_];
        Tick best_t = kNever;
        std::uint32_t best_id = 0;
        for (std::size_t wi = 0; wi < words_; ++wi) {
            std::uint64_t w = bucket[wi];
            while (w != 0) {
                const std::uint32_t id = static_cast<std::uint32_t>(
                    (wi << 6) + std::countr_zero(w));
                if (when_[id] < best_t) {
                    best_t = when_[id];
                    best_id = id;
                }
                w &= w - 1;
            }
        }
        removeBit(best_id);
        when_[best_id] = kNever;
        --count_;
        t_out = best_t;
        id_out = best_id;
        return true;
    }

  private:
    static constexpr Tick kNever = std::numeric_limits<Tick>::max();
    static constexpr std::uint64_t kNoFloor =
        std::numeric_limits<std::uint64_t>::max();
    /** log2 of the bucket width in ticks (1024 ticks ~ 1 ns). */
    static constexpr unsigned kLogWidth = 10;
    /** Ring size in buckets (power of two; horizon ~262 ns). */
    static constexpr std::size_t kBuckets = 256;

    static std::uint64_t
    bucketOf(Tick t)
    {
        return static_cast<std::uint64_t>(t) >> kLogWidth;
    }

    bool
    bucketAny(std::uint64_t abs) const
    {
        const std::uint64_t *bucket =
            &ring_[(abs & (kBuckets - 1)) * words_];
        for (std::size_t wi = 0; wi < words_; ++wi)
            if (bucket[wi] != 0)
                return true;
        return false;
    }

    void
    placeBit(std::uint32_t id, std::uint64_t abs)
    {
        const std::uint64_t bit = 1ULL << (id & 63);
        if (abs - cursor_ >= kBuckets) {
            overflow_[id >> 6] |= bit;
            posAbs_[id] = kNoFloor;
            if (abs < overflowFloor_)
                overflowFloor_ = abs;
        } else {
            ring_[(abs & (kBuckets - 1)) * words_ + (id >> 6)] |= bit;
            posAbs_[id] = abs;
        }
    }

    void
    removeBit(std::uint32_t id)
    {
        const std::uint64_t bit = 1ULL << (id & 63);
        const std::uint64_t abs = posAbs_[id];
        if (abs == kNoFloor)
            overflow_[id >> 6] &= ~bit;
        else
            ring_[(abs & (kBuckets - 1)) * words_ + (id >> 6)] &= ~bit;
    }

    /** Pull overflow entries inside the new horizon into the ring. */
    void
    migrateOverflow()
    {
        std::uint64_t floor = kNoFloor;
        for (std::size_t wi = 0; wi < words_; ++wi) {
            std::uint64_t w = overflow_[wi];
            while (w != 0) {
                const std::uint32_t id = static_cast<std::uint32_t>(
                    (wi << 6) + std::countr_zero(w));
                w &= w - 1;
                const std::uint64_t abs = bucketOf(when_[id]);
                if (abs - cursor_ < kBuckets) {
                    overflow_[wi] &= ~(1ULL << (id & 63));
                    placeBit(id, abs);
                } else if (abs < floor) {
                    floor = abs;
                }
            }
        }
        overflowFloor_ = floor;
    }

    std::size_t words_ = 0;
    /** kBuckets bitmask rows, flattened (row = abs & (kBuckets-1)). */
    std::vector<std::uint64_t> ring_;
    /** Entries at or beyond cursor_ + kBuckets buckets. */
    std::vector<std::uint64_t> overflow_;
    /** Scheduled tick per id (kNever = not scheduled). */
    std::vector<Tick> when_;
    /** Where each id's bit lives: bucket number or kNoFloor. */
    std::vector<std::uint64_t> posAbs_;
    /** Absolute bucket number of the current time position. */
    std::uint64_t cursor_ = 0;
    /** Lower bound on the earliest overflow entry's bucket. */
    std::uint64_t overflowFloor_ = kNoFloor;
    std::size_t count_ = 0;
};

} // namespace pcstall::gpu

#endif // PCSTALL_GPU_EVENT_QUEUE_HH
