#include "isa/kernel.hh"

#include <map>
#include <set>

#include "common/logging.hh"

namespace pcstall::isa
{

const char *
opTypeName(OpType op)
{
    switch (op) {
      case OpType::VAlu: return "v_alu";
      case OpType::SAlu: return "s_alu";
      case OpType::Lds: return "lds";
      case OpType::VMemLoad: return "v_load";
      case OpType::VMemStore: return "v_store";
      case OpType::Waitcnt: return "s_waitcnt";
      case OpType::Barrier: return "s_barrier";
      case OpType::Branch: return "s_branch";
      case OpType::EndPgm: return "s_endpgm";
    }
    return "?";
}

const char *
accessPatternName(AccessPattern pattern)
{
    switch (pattern) {
      case AccessPattern::Streaming: return "streaming";
      case AccessPattern::Strided: return "strided";
      case AccessPattern::Random: return "random";
      case AccessPattern::SharedHot: return "shared-hot";
    }
    return "?";
}

void
Kernel::validate() const
{
    fatalIf(code.empty(), "kernel '" + name + "' has no instructions");
    fatalIf(code.back().op != OpType::EndPgm,
            "kernel '" + name + "' does not end with s_endpgm");
    fatalIf(wavesPerWorkgroup == 0 || numWorkgroups == 0,
            "kernel '" + name + "' has an empty launch grid");

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &ins = code[i];
        if (ins.op == OpType::Branch) {
            fatalIf(ins.target < 0 ||
                    static_cast<std::size_t>(ins.target) >= code.size(),
                    "kernel '" + name + "' branch target out of range");
            fatalIf(static_cast<std::size_t>(ins.target) >= i,
                    "kernel '" + name + "' has a forward loop back-edge");
            fatalIf(ins.loopId >= loops.size(),
                    "kernel '" + name + "' branch references unknown loop");
        }
        if (isVMem(ins.op)) {
            fatalIf(ins.mem.regionId >= regions.size(),
                    "kernel '" + name + "' memory op references unknown "
                    "region");
        }
        if (ins.op == OpType::EndPgm) {
            fatalIf(i + 1 != code.size(),
                    "kernel '" + name + "' has s_endpgm before the last "
                    "instruction");
        }
    }

    for (const LoopSpec &loop : loops) {
        fatalIf(loop.baseTrips == 0,
                "kernel '" + name + "' has a zero-trip loop");
        fatalIf(loop.tripVariation >= loop.baseTrips,
                "kernel '" + name + "' loop variation >= base trips");
    }

    for (const MemRegion &region : regions) {
        fatalIf(region.sizeBytes == 0,
                "kernel '" + name + "' region '" + region.name +
                "' is empty");
    }
}

std::size_t
Application::uniqueKernelCount() const
{
    std::set<std::string> names;
    for (const Kernel &k : launches)
        names.insert(k.name);
    return names.size();
}

void
Application::assignCodeBases()
{
    // Kernels are packed contiguously (256 B aligned) in a dedicated
    // code segment, as a loader would place them; same-named launches
    // share one address. Packing matters: page-aligned spacing would
    // make every kernel alias onto the same PC-table indices, since
    // table indexing uses the low PC bits.
    std::map<std::string, std::uint64_t> bases;
    std::uint64_t next = 0x4000'0000ULL;
    for (Kernel &k : launches) {
        auto [it, inserted] = bases.try_emplace(k.name, next);
        if (inserted) {
            const std::uint64_t size =
                static_cast<std::uint64_t>(k.code.size()) *
                instrSizeBytes;
            next += (size + 0xFFULL) & ~0xFFULL;
        }
        k.codeBase = it->second;
    }
}

} // namespace pcstall::isa
