/**
 * @file
 * Fluent builder for kernels. The workload generators (Table II) are
 * written against this DSL, e.g.:
 *
 * @code
 *   KernelBuilder b("force");
 *   auto pos = b.region("pos", 8 << 20);
 *   b.loop(120, 16);
 *       b.load(pos, AccessPattern::Streaming);
 *       b.load(pos, AccessPattern::Random);
 *       b.waitcnt(0);
 *       b.valu(4, 12);
 *   b.endLoop();
 *   Kernel k = b.build();
 * @endcode
 */

#ifndef PCSTALL_ISA_KERNEL_BUILDER_HH
#define PCSTALL_ISA_KERNEL_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace pcstall::isa
{

/** Builds a structurally valid Kernel instruction by instruction. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** Declare a memory region; returns its region id. */
    std::uint16_t region(const std::string &name, std::uint64_t size_bytes);

    /** Append @p count vector ALU ops of @p latency cycles each. */
    KernelBuilder &valu(std::uint16_t latency, std::uint32_t count = 1);

    /** Append @p count scalar ALU ops (1 cycle each). */
    KernelBuilder &salu(std::uint32_t count = 1);

    /** Append @p count LDS ops of @p latency cycles each. */
    KernelBuilder &lds(std::uint16_t latency, std::uint32_t count = 1);

    /** Append a vector load from @p region_id with @p pattern. */
    KernelBuilder &load(std::uint16_t region_id, AccessPattern pattern,
                        std::uint32_t stride_bytes = 64);

    /** Append a vector store to @p region_id with @p pattern. */
    KernelBuilder &store(std::uint16_t region_id, AccessPattern pattern,
                         std::uint32_t stride_bytes = 64);

    /** Append s_waitcnt: block until outstanding <= @p max_outstanding. */
    KernelBuilder &waitcnt(std::uint16_t max_outstanding = 0);

    /** Append a workgroup barrier. */
    KernelBuilder &barrier();

    /** Open a loop; its body is everything until the matching endLoop. */
    KernelBuilder &loop(std::uint32_t base_trips,
                        std::uint32_t trip_variation = 0);

    /** Close the innermost open loop (emits the back-edge branch). */
    KernelBuilder &endLoop();

    /** Set launch geometry. */
    KernelBuilder &grid(std::uint32_t workgroups,
                        std::uint32_t waves_per_workgroup = 4);

    /** Set the kernel seed (address/trip randomness). */
    KernelBuilder &seed(std::uint64_t value);

    /**
     * Finish: closes nothing implicitly (open loops are an error),
     * appends s_endpgm, validates, and returns the kernel.
     */
    Kernel build();

  private:
    Kernel kernel;
    /** Stack of (loop head code index, loop id) for open loops. */
    std::vector<std::pair<std::uint32_t, std::uint16_t>> openLoops;
    /** Running base for auto-placed regions in the flat address space. */
    std::uint64_t nextRegionBase = 0x1000'0000ULL;
    bool built = false;
};

} // namespace pcstall::isa

#endif // PCSTALL_ISA_KERNEL_BUILDER_HH
