/**
 * @file
 * Kernel and application containers: a kernel is a flat instruction
 * vector plus its memory regions, loop descriptors and launch geometry;
 * an application is an ordered sequence of kernel launches (Table II
 * lists applications with 1..27 unique kernels).
 */

#ifndef PCSTALL_ISA_KERNEL_HH
#define PCSTALL_ISA_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace pcstall::isa
{

/** A contiguous global-memory buffer a kernel accesses. */
struct MemRegion
{
    std::string name;
    /** Base byte address in the flat simulated address space. */
    std::uint64_t base = 0;
    /** Extent in bytes. */
    std::uint64_t sizeBytes = 0;
};

/** Loop trip-count descriptor; trips may vary per wavefront. */
struct LoopSpec
{
    /** Mean trip count. */
    std::uint32_t baseTrips = 1;
    /**
     * Half-width of the per-wavefront uniform trip-count variation
     * (Monte Carlo style divergence, e.g. quickS). Zero means all
     * wavefronts iterate identically.
     */
    std::uint32_t tripVariation = 0;
};

/** A compiled kernel ready for dispatch. */
struct Kernel
{
    std::string name;
    std::vector<Instruction> code;
    std::vector<MemRegion> regions;
    std::vector<LoopSpec> loops;

    /**
     * Byte address the kernel's code is loaded at. Assigned by
     * Application::assignCodeBases() so PCs of different kernels do
     * not alias in PC-indexed predictor tables.
     */
    std::uint64_t codeBase = 0;

    /** Byte address of the instruction at code index @p pc_index. */
    std::uint64_t pcAddr(std::uint32_t pc_index) const
    {
        return codeBase + pcAddress(pc_index);
    }

    /** Wavefronts per workgroup (barriers synchronize within these). */
    std::uint32_t wavesPerWorkgroup = 4;
    /** Total workgroups in the launch grid. */
    std::uint32_t numWorkgroups = 64;
    /** Seed mixed into per-wavefront randomness (addresses, trips). */
    std::uint64_t seed = 1;

    /** Total wavefronts this launch creates. */
    std::uint64_t totalWaves() const
    {
        return static_cast<std::uint64_t>(wavesPerWorkgroup) * numWorkgroups;
    }

    /**
     * Validate structural invariants (terminating EndPgm, branch
     * targets in range, loop/region ids in range). Calls fatal() with
     * a description on violation; used by the builder and tests.
     */
    void validate() const;
};

/** An application: kernels launched back to back. */
struct Application
{
    std::string name;
    /** Kernels in launch order (a kernel may appear multiple times). */
    std::vector<Kernel> launches;

    /** Number of distinct kernel names (Table II's braces column). */
    std::size_t uniqueKernelCount() const;

    /**
     * Assign each launch a code base address; launches of the same
     * kernel (same name) share one base, as relaunching a kernel does
     * not relocate its code.
     */
    void assignCodeBases();
};

} // namespace pcstall::isa

#endif // PCSTALL_ISA_KERNEL_HH
