#include "isa/kernel_builder.hh"

#include "common/logging.hh"

namespace pcstall::isa
{

KernelBuilder::KernelBuilder(std::string name)
{
    kernel.name = std::move(name);
}

std::uint16_t
KernelBuilder::region(const std::string &name, std::uint64_t size_bytes)
{
    fatalIf(size_bytes == 0, "region '" + name + "' must not be empty");
    MemRegion r;
    r.name = name;
    r.base = nextRegionBase;
    r.sizeBytes = size_bytes;
    // Regions are placed back to back with a guard gap so patterns in
    // different regions never alias in the caches by construction.
    nextRegionBase += (size_bytes + 0xFFFFFULL) & ~0xFFFFFULL;
    kernel.regions.push_back(std::move(r));
    return static_cast<std::uint16_t>(kernel.regions.size() - 1);
}

KernelBuilder &
KernelBuilder::valu(std::uint16_t latency, std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        Instruction ins;
        ins.op = OpType::VAlu;
        ins.latency = latency;
        kernel.code.push_back(ins);
    }
    return *this;
}

KernelBuilder &
KernelBuilder::salu(std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        Instruction ins;
        ins.op = OpType::SAlu;
        ins.latency = 1;
        kernel.code.push_back(ins);
    }
    return *this;
}

KernelBuilder &
KernelBuilder::lds(std::uint16_t latency, std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        Instruction ins;
        ins.op = OpType::Lds;
        ins.latency = latency;
        kernel.code.push_back(ins);
    }
    return *this;
}

KernelBuilder &
KernelBuilder::load(std::uint16_t region_id, AccessPattern pattern,
                    std::uint32_t stride_bytes)
{
    Instruction ins;
    ins.op = OpType::VMemLoad;
    ins.latency = 1;
    ins.mem.regionId = region_id;
    ins.mem.pattern = pattern;
    ins.mem.strideBytes = stride_bytes;
    kernel.code.push_back(ins);
    return *this;
}

KernelBuilder &
KernelBuilder::store(std::uint16_t region_id, AccessPattern pattern,
                     std::uint32_t stride_bytes)
{
    Instruction ins;
    ins.op = OpType::VMemStore;
    ins.latency = 1;
    ins.mem.regionId = region_id;
    ins.mem.pattern = pattern;
    ins.mem.strideBytes = stride_bytes;
    kernel.code.push_back(ins);
    return *this;
}

KernelBuilder &
KernelBuilder::waitcnt(std::uint16_t max_outstanding)
{
    Instruction ins;
    ins.op = OpType::Waitcnt;
    ins.latency = 1;
    ins.maxOutstanding = max_outstanding;
    kernel.code.push_back(ins);
    return *this;
}

KernelBuilder &
KernelBuilder::barrier()
{
    // A barrier inside a loop whose trip count varies per wavefront
    // would deadlock: some waves would arrive more often than others.
    for (const auto &[head, loop_id] : openLoops) {
        fatalIf(kernel.loops[loop_id].tripVariation > 0,
                "kernel '" + kernel.name + "' places a barrier inside "
                "a divergent loop");
    }
    Instruction ins;
    ins.op = OpType::Barrier;
    ins.latency = 1;
    kernel.code.push_back(ins);
    return *this;
}

KernelBuilder &
KernelBuilder::loop(std::uint32_t base_trips, std::uint32_t trip_variation)
{
    LoopSpec spec;
    spec.baseTrips = base_trips;
    spec.tripVariation = trip_variation;
    kernel.loops.push_back(spec);
    const auto loop_id = static_cast<std::uint16_t>(kernel.loops.size() - 1);
    openLoops.emplace_back(
        static_cast<std::uint32_t>(kernel.code.size()), loop_id);
    return *this;
}

KernelBuilder &
KernelBuilder::endLoop()
{
    fatalIf(openLoops.empty(),
            "endLoop() without a matching loop() in kernel '" +
            kernel.name + "'");
    auto [head, loop_id] = openLoops.back();
    openLoops.pop_back();
    fatalIf(head == kernel.code.size(),
            "empty loop body in kernel '" + kernel.name + "'");
    Instruction ins;
    ins.op = OpType::Branch;
    ins.latency = 1;
    ins.target = static_cast<std::int32_t>(head);
    ins.loopId = loop_id;
    kernel.code.push_back(ins);
    return *this;
}

KernelBuilder &
KernelBuilder::grid(std::uint32_t workgroups,
                    std::uint32_t waves_per_workgroup)
{
    kernel.numWorkgroups = workgroups;
    kernel.wavesPerWorkgroup = waves_per_workgroup;
    return *this;
}

KernelBuilder &
KernelBuilder::seed(std::uint64_t value)
{
    kernel.seed = value;
    return *this;
}

Kernel
KernelBuilder::build()
{
    panicIf(built, "KernelBuilder::build() called twice");
    fatalIf(!openLoops.empty(),
            "kernel '" + kernel.name + "' built with unclosed loops");
    Instruction end;
    end.op = OpType::EndPgm;
    end.latency = 1;
    kernel.code.push_back(end);
    kernel.validate();
    built = true;
    return std::move(kernel);
}

} // namespace pcstall::isa
