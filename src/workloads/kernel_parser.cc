#include "workloads/kernel_parser.hh"

#include <cstdint>
#include <fstream>
#include <memory>
#include <map>
#include <sstream>
#include <vector>

#include "isa/kernel_builder.hh"

namespace pcstall::workloads
{

namespace
{

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream ss(line);
    std::string token;
    while (ss >> token) {
        if (token[0] == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

/** Parse "16", "64K", "8M" into bytes. */
bool
parseSize(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    std::uint64_t multiplier = 1;
    std::string digits = text;
    const char suffix = text.back();
    if (suffix == 'K' || suffix == 'k') {
        multiplier = 1024;
        digits = text.substr(0, text.size() - 1);
    } else if (suffix == 'M' || suffix == 'm') {
        multiplier = 1024 * 1024;
        digits = text.substr(0, text.size() - 1);
    } else if (suffix == 'G' || suffix == 'g') {
        multiplier = 1024ULL * 1024 * 1024;
        digits = text.substr(0, text.size() - 1);
    }
    if (digits.empty())
        return false;
    std::uint64_t value = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value * multiplier;
    return true;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    return parseSize(text, out) && out <= 0xFFFFFFFFULL;
}

bool
parsePattern(const std::string &text, isa::AccessPattern &out)
{
    if (text == "stream" || text == "streaming") {
        out = isa::AccessPattern::Streaming;
    } else if (text == "strided") {
        out = isa::AccessPattern::Strided;
    } else if (text == "random") {
        out = isa::AccessPattern::Random;
    } else if (text == "sharedhot" || text == "shared") {
        out = isa::AccessPattern::SharedHot;
    } else {
        return false;
    }
    return true;
}

} // namespace

ParseResult
parseApplication(std::istream &in)
{
    ParseResult result;
    std::map<std::string, isa::Kernel> kernels;
    std::unique_ptr<isa::KernelBuilder> builder;
    std::map<std::string, std::uint16_t> regions;
    std::string kernel_name;
    int open_loops = 0;

    isa::Application app;
    bool have_app = false;

    std::string line;
    int line_no = 0;
    auto fail = [&](const std::string &message) {
        result.error =
            "line " + std::to_string(line_no) + ": " + message;
        return result;
    };

    while (std::getline(in, line)) {
        ++line_no;
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &word = tokens[0];

        if (word == "kernel") {
            if (builder)
                return fail("nested kernel block");
            if (tokens.size() != 2)
                return fail("kernel needs a name");
            kernel_name = tokens[1];
            builder = std::make_unique<isa::KernelBuilder>(kernel_name);
            regions.clear();
            open_loops = 0;
            continue;
        }

        if (word == "app") {
            // app NAME = K1 K2 ...
            if (builder)
                return fail("app line inside a kernel block");
            if (tokens.size() < 4 || tokens[2] != "=")
                return fail("expected: app NAME = KERNEL...");
            app.name = tokens[1];
            for (std::size_t i = 3; i < tokens.size(); ++i) {
                const auto it = kernels.find(tokens[i]);
                if (it == kernels.end())
                    return fail("unknown kernel '" + tokens[i] + "'");
                app.launches.push_back(it->second);
            }
            have_app = true;
            continue;
        }

        if (!builder)
            return fail("statement outside a kernel block");

        if (word == "endkernel") {
            if (open_loops != 0)
                return fail("endkernel with unclosed loops");
            kernels.emplace(kernel_name, builder->build());
            builder.reset();
        } else if (word == "grid") {
            std::uint64_t wgs = 0, waves = 4;
            if (tokens.size() < 2 || !parseUint(tokens[1], wgs) ||
                (tokens.size() > 2 && !parseUint(tokens[2], waves))) {
                return fail("expected: grid WORKGROUPS [WAVES]");
            }
            builder->grid(static_cast<std::uint32_t>(wgs),
                          static_cast<std::uint32_t>(waves));
        } else if (word == "seed") {
            std::uint64_t seed = 0;
            if (tokens.size() != 2 || !parseSize(tokens[1], seed))
                return fail("expected: seed N");
            builder->seed(seed);
        } else if (word == "region") {
            std::uint64_t size = 0;
            if (tokens.size() != 3 || !parseSize(tokens[2], size) ||
                size == 0) {
                return fail("expected: region NAME SIZE (nonzero)");
            }
            regions[tokens[1]] = builder->region(tokens[1], size);
        } else if (word == "loop") {
            std::uint64_t trips = 0, variation = 0;
            if (tokens.size() < 2 || !parseUint(tokens[1], trips) ||
                (tokens.size() > 2 &&
                 !parseUint(tokens[2], variation))) {
                return fail("expected: loop TRIPS [VARIATION]");
            }
            builder->loop(static_cast<std::uint32_t>(trips),
                          static_cast<std::uint32_t>(variation));
            ++open_loops;
        } else if (word == "endloop") {
            if (open_loops == 0)
                return fail("endloop without loop");
            builder->endLoop();
            --open_loops;
        } else if (word == "valu" || word == "lds") {
            std::uint64_t lat = 0, count = 1;
            if (tokens.size() < 2 || !parseUint(tokens[1], lat) ||
                (tokens.size() > 2 && !parseUint(tokens[2], count))) {
                return fail("expected: " + word + " LATENCY [COUNT]");
            }
            if (word == "valu") {
                builder->valu(static_cast<std::uint16_t>(lat),
                              static_cast<std::uint32_t>(count));
            } else {
                builder->lds(static_cast<std::uint16_t>(lat),
                             static_cast<std::uint32_t>(count));
            }
        } else if (word == "salu") {
            std::uint64_t count = 1;
            if (tokens.size() > 1 && !parseUint(tokens[1], count))
                return fail("expected: salu [COUNT]");
            builder->salu(static_cast<std::uint32_t>(count));
        } else if (word == "load" || word == "store") {
            isa::AccessPattern pattern;
            std::uint64_t stride = 64;
            if (tokens.size() < 3 ||
                regions.find(tokens[1]) == regions.end() ||
                !parsePattern(tokens[2], pattern) ||
                (tokens.size() > 3 && !parseSize(tokens[3], stride))) {
                return fail("expected: " + word +
                            " REGION PATTERN [STRIDE]");
            }
            if (word == "load") {
                builder->load(regions[tokens[1]], pattern,
                              static_cast<std::uint32_t>(stride));
            } else {
                builder->store(regions[tokens[1]], pattern,
                               static_cast<std::uint32_t>(stride));
            }
        } else if (word == "waitcnt") {
            std::uint64_t n = 0;
            if (tokens.size() > 1 && !parseUint(tokens[1], n))
                return fail("expected: waitcnt [N]");
            builder->waitcnt(static_cast<std::uint16_t>(n));
        } else if (word == "barrier") {
            builder->barrier();
        } else {
            return fail("unknown statement '" + word + "'");
        }
    }

    if (builder)
        return fail("unterminated kernel block");
    if (!have_app)
        return fail("missing 'app NAME = ...' line");
    if (app.launches.empty())
        return fail("application has no launches");

    app.assignCodeBases();
    result.app = std::move(app);
    return result;
}

ParseResult
parseApplication(const std::string &text)
{
    std::istringstream in(text);
    return parseApplication(in);
}

ParseResult
parseApplicationFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult result;
        result.error = "cannot open '" + path + "'";
        return result;
    }
    return parseApplication(in);
}

} // namespace pcstall::workloads
