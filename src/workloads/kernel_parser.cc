#include "workloads/kernel_parser.hh"

#include <cstdint>
#include <fstream>
#include <memory>
#include <map>
#include <sstream>
#include <vector>

#include "isa/kernel_builder.hh"

namespace pcstall::workloads
{

namespace
{

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream ss(line);
    std::string token;
    while (ss >> token) {
        if (token[0] == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

/** Parse "16", "64K", "8M" into bytes. */
bool
parseSize(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    std::uint64_t multiplier = 1;
    std::string digits = text;
    const char suffix = text.back();
    if (suffix == 'K' || suffix == 'k') {
        multiplier = 1024;
        digits = text.substr(0, text.size() - 1);
    } else if (suffix == 'M' || suffix == 'm') {
        multiplier = 1024 * 1024;
        digits = text.substr(0, text.size() - 1);
    } else if (suffix == 'G' || suffix == 'g') {
        multiplier = 1024ULL * 1024 * 1024;
        digits = text.substr(0, text.size() - 1);
    }
    if (digits.empty())
        return false;
    std::uint64_t value = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value * multiplier;
    return true;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    return parseSize(text, out) && out <= 0xFFFFFFFFULL;
}

bool
parsePattern(const std::string &text, isa::AccessPattern &out)
{
    if (text == "stream" || text == "streaming") {
        out = isa::AccessPattern::Streaming;
    } else if (text == "strided") {
        out = isa::AccessPattern::Strided;
    } else if (text == "random") {
        out = isa::AccessPattern::Random;
    } else if (text == "sharedhot" || text == "shared") {
        out = isa::AccessPattern::SharedHot;
    } else {
        return false;
    }
    return true;
}

} // namespace

ParseResult
parseApplication(std::istream &in)
{
    ParseResult result;
    std::map<std::string, isa::Kernel> kernels;
    std::unique_ptr<isa::KernelBuilder> builder;
    std::map<std::string, std::uint16_t> regions;
    std::string kernel_name;
    // Open loops: (trip variation, statements emitted when opened).
    // Tracked here so structural errors (barrier in a divergent loop,
    // empty loop bodies) surface as "line N:" diagnostics instead of
    // reaching the builder's fatal() checks.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> open_loops;
    std::uint64_t emitted = 0;

    isa::Application app;
    bool have_app = false;

    std::string line;
    int line_no = 0;
    auto fail = [&](const std::string &message) {
        result.error =
            "line " + std::to_string(line_no) + ": " + message;
        return result;
    };

    while (std::getline(in, line)) {
        ++line_no;
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &word = tokens[0];

        if (word == "kernel") {
            if (builder)
                return fail("nested kernel block");
            if (tokens.size() != 2)
                return fail("kernel needs a name");
            kernel_name = tokens[1];
            if (kernels.count(kernel_name))
                return fail("duplicate kernel '" + kernel_name + "'");
            builder = std::make_unique<isa::KernelBuilder>(kernel_name);
            regions.clear();
            open_loops.clear();
            emitted = 0;
            continue;
        }

        if (word == "app") {
            // app NAME = K1 K2 ...
            if (builder)
                return fail("app line inside a kernel block");
            if (have_app)
                return fail("duplicate app line");
            if (tokens.size() < 4 || tokens[2] != "=")
                return fail("expected: app NAME = KERNEL...");
            app.name = tokens[1];
            for (std::size_t i = 3; i < tokens.size(); ++i) {
                const auto it = kernels.find(tokens[i]);
                if (it == kernels.end())
                    return fail("unknown kernel '" + tokens[i] + "'");
                app.launches.push_back(it->second);
            }
            have_app = true;
            continue;
        }

        if (!builder)
            return fail("statement outside a kernel block");

        if (word == "endkernel") {
            if (!open_loops.empty())
                return fail("endkernel with unclosed loops");
            if (emitted == 0)
                return fail("kernel '" + kernel_name + "' has no body");
            kernels.emplace(kernel_name, builder->build());
            builder.reset();
        } else if (word == "grid") {
            std::uint64_t wgs = 0, waves = 4;
            if (tokens.size() < 2 || !parseUint(tokens[1], wgs) ||
                (tokens.size() > 2 && !parseUint(tokens[2], waves))) {
                return fail("expected: grid WORKGROUPS [WAVES]");
            }
            if (wgs == 0)
                return fail("grid needs at least one workgroup");
            if (waves == 0 || waves > 64)
                return fail("grid waves must be in [1, 64]");
            builder->grid(static_cast<std::uint32_t>(wgs),
                          static_cast<std::uint32_t>(waves));
        } else if (word == "seed") {
            std::uint64_t seed = 0;
            if (tokens.size() != 2 || !parseSize(tokens[1], seed))
                return fail("expected: seed N");
            builder->seed(seed);
        } else if (word == "region") {
            std::uint64_t size = 0;
            if (tokens.size() != 3 || !parseSize(tokens[2], size) ||
                size == 0) {
                return fail("expected: region NAME SIZE (nonzero)");
            }
            regions[tokens[1]] = builder->region(tokens[1], size);
        } else if (word == "loop") {
            std::uint64_t trips = 0, variation = 0;
            if (tokens.size() < 2 || !parseUint(tokens[1], trips) ||
                (tokens.size() > 2 &&
                 !parseUint(tokens[2], variation))) {
                return fail("expected: loop TRIPS [VARIATION]");
            }
            if (trips == 0)
                return fail("loop needs at least one trip");
            if (variation >= trips)
                return fail("loop variation must be below the trip "
                            "count");
            builder->loop(static_cast<std::uint32_t>(trips),
                          static_cast<std::uint32_t>(variation));
            open_loops.emplace_back(variation, emitted);
        } else if (word == "endloop") {
            if (open_loops.empty())
                return fail("endloop without loop");
            if (open_loops.back().second == emitted)
                return fail("empty loop body");
            builder->endLoop();
            open_loops.pop_back();
            ++emitted; // the loop's closing branch
        } else if (word == "valu" || word == "lds") {
            std::uint64_t lat = 0, count = 1;
            if (tokens.size() < 2 || !parseUint(tokens[1], lat) ||
                (tokens.size() > 2 && !parseUint(tokens[2], count))) {
                return fail("expected: " + word + " LATENCY [COUNT]");
            }
            if (lat == 0 || lat > 0xFFFF)
                return fail(word + " latency must be in [1, 65535]");
            if (count == 0)
                return fail(word + " count must be >= 1");
            if (word == "valu") {
                builder->valu(static_cast<std::uint16_t>(lat),
                              static_cast<std::uint32_t>(count));
            } else {
                builder->lds(static_cast<std::uint16_t>(lat),
                             static_cast<std::uint32_t>(count));
            }
            ++emitted;
        } else if (word == "salu") {
            std::uint64_t count = 1;
            if (tokens.size() > 1 && !parseUint(tokens[1], count))
                return fail("expected: salu [COUNT]");
            if (count == 0)
                return fail("salu count must be >= 1");
            builder->salu(static_cast<std::uint32_t>(count));
            ++emitted;
        } else if (word == "load" || word == "store") {
            isa::AccessPattern pattern;
            std::uint64_t stride = 64;
            if (tokens.size() < 3 ||
                regions.find(tokens[1]) == regions.end() ||
                !parsePattern(tokens[2], pattern) ||
                (tokens.size() > 3 && !parseSize(tokens[3], stride))) {
                return fail("expected: " + word +
                            " REGION PATTERN [STRIDE]");
            }
            if (stride == 0 || stride > 0xFFFFFFFFULL)
                return fail(word + " stride must be in [1, 2^32)");
            if (word == "load") {
                builder->load(regions[tokens[1]], pattern,
                              static_cast<std::uint32_t>(stride));
            } else {
                builder->store(regions[tokens[1]], pattern,
                               static_cast<std::uint32_t>(stride));
            }
            ++emitted;
        } else if (word == "waitcnt") {
            std::uint64_t n = 0;
            if (tokens.size() > 1 && !parseUint(tokens[1], n))
                return fail("expected: waitcnt [N]");
            if (n > 0xFFFF)
                return fail("waitcnt bound must be below 65536");
            builder->waitcnt(static_cast<std::uint16_t>(n));
            ++emitted;
        } else if (word == "barrier") {
            // A barrier inside a divergent loop would deadlock (waves
            // arrive different numbers of times); reject it here with
            // a line number instead of dying in the builder.
            for (const auto &[variation, at] : open_loops) {
                if (variation > 0)
                    return fail("barrier inside a divergent loop");
            }
            builder->barrier();
            ++emitted;
        } else {
            return fail("unknown statement '" + word + "'");
        }
    }

    if (builder)
        return fail("unterminated kernel block");
    if (!have_app)
        return fail("missing 'app NAME = ...' line");
    if (app.launches.empty())
        return fail("application has no launches");

    app.assignCodeBases();
    result.app = std::move(app);
    return result;
}

ParseResult
parseApplication(const std::string &text)
{
    std::istringstream in(text);
    return parseApplication(in);
}

ParseResult
parseApplicationFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult result;
        result.error = "cannot open '" + path + "'";
        return result;
    }
    return parseApplication(in);
}

} // namespace pcstall::workloads
