#include "workloads/workloads.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/kernel_builder.hh"
#include "workloads/kernel_parser.hh"

namespace pcstall::workloads
{

namespace
{

using isa::AccessPattern;
using isa::Application;
using isa::Kernel;
using isa::KernelBuilder;

/**
 * Iterative GPU applications launch their kernels once per timestep /
 * iteration / layer; every launch is a global synchronization point
 * that puts all wavefronts back in phase at PC 0. This is what makes
 * program behaviour repetitive across iterations (paper Figure 9) and
 * gives the PC-indexed predictor its hits, while the drain/refill
 * around each boundary is exactly where last-value prediction fails.
 */
void
repeatLaunch(Application &app, const Kernel &kernel, int launches)
{
    for (int i = 0; i < launches; ++i)
        app.launches.push_back(kernel);
}

/** Workgroups for @p rounds full-occupancy waves of the whole GPU. */
std::uint32_t
gridFor(const WorkloadParams &p, double rounds,
        std::uint32_t waves_per_wg = 0)
{
    if (waves_per_wg == 0)
        waves_per_wg = p.wavesPerWorkgroup;
    const double wgs_per_cu =
        static_cast<double>(p.waveSlotsPerCu / waves_per_wg);
    const double wgs = rounds * wgs_per_cu * p.numCus;
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(wgs)));
}

/** Scale a trip count, keeping it at least 1. */
std::uint32_t
trips(const WorkloadParams &p, double base)
{
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(base * p.scale)));
}

/** Scale a launch count, keeping it at least 1. */
int
launches(const WorkloadParams &p, double base)
{
    return std::max(1, static_cast<int>(std::llround(base * p.scale)));
}

constexpr std::uint64_t MiB = 1024 * 1024;

// =====================================================================
// HPC applications (ECP proxy apps)
// =====================================================================

/**
 * Molecular dynamics: one force kernel launched once per timestep.
 * Each launch alternates a memory-bound neighbour-gather phase with a
 * compute-bound force phase (the microsecond-scale phase alternation
 * of Figure 5).
 */
Application
makeComd(const WorkloadParams &p)
{
    KernelBuilder b("comd_force");
    const auto pos = b.region("positions", 16 * MiB);
    const auto neigh = b.region("neighbors", 32 * MiB);
    const auto force = b.region("forces", 16 * MiB);

    // Unrolled cell-pair phases: each gather/force region lasts about
    // one DVFS epoch and sits at its own PC range, so an epoch
    // starting inside region i consistently covers the i -> i+1
    // transition - PC-predictable but hostile to last-value
    // prediction (the paper's Figure 9 structure).
    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0xC0);
    for (int cell = 0; cell < 4; ++cell) {
        b.loop(7); // gather neighbours (memory region, ~1.5 us)
            b.load(neigh, AccessPattern::Streaming, 16);
            b.load(pos, AccessPattern::Random);
            b.waitcnt(0);
            b.valu(2, 3);
        b.endLoop();
        b.loop(38); // force computation (compute region, ~1.2 us)
            b.valu(4, 4);
            b.lds(8, 1);
        b.endLoop();
    }
    b.loop(8); // scatter forces (short store region)
        b.store(force, AccessPattern::Streaming, 16);
        b.salu(2);
    b.endLoop();

    Application app;
    app.name = "comd";
    repeatLaunch(app, b.build(), launches(p, 8));
    app.assignCodeBases();
    return app;
}

/** Multigrid smoother: bandwidth-bound streaming sweeps per level. */
Application
makeHpgmg(const WorkloadParams &p)
{
    KernelBuilder b("hpgmg_smooth");
    const auto grid_in = b.region("grid_in", 48 * MiB);
    const auto grid_out = b.region("grid_out", 48 * MiB);

    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0x41B1);
    b.loop(trips(p, 55));
        b.load(grid_in, AccessPattern::Streaming, 64);
        b.load(grid_in, AccessPattern::Streaming, 64);
        b.load(grid_in, AccessPattern::Streaming, 64);
        b.load(grid_in, AccessPattern::Streaming, 64);
        b.waitcnt(0);
        b.valu(2, 7);
        b.store(grid_out, AccessPattern::Streaming, 64);
        b.salu(1);
    b.endLoop();

    Application app;
    app.name = "hpgmg";
    repeatLaunch(app, b.build(), launches(p, 5));
    app.assignCodeBases();
    return app;
}

/** 27 distinct hydrodynamics kernels, alternating characters. */
Application
makeLulesh(const WorkloadParams &p)
{
    Application app;
    app.name = "lulesh";
    for (int k = 0; k < 27; ++k) {
        KernelBuilder b("lulesh_k" + std::to_string(k));
        const auto nodes = b.region("nodes", 24 * MiB);
        const auto elems = b.region("elems", 24 * MiB);

        b.grid(gridFor(p, 0.30), p.wavesPerWorkgroup)
            .seed(p.seed ^ (0x100ULL + static_cast<std::uint64_t>(k)));
        // Kernel character cycles through compute / balanced / memory.
        const int character = k % 3;
        if (character == 0) { // compute (e.g. CalcElemShapeFunction)
            b.loop(trips(p, 17));
                b.load(elems, AccessPattern::Streaming, 32);
                b.waitcnt(0);
                b.valu(4, 22 + (k % 5) * 4);
                b.store(elems, AccessPattern::Streaming, 32);
            b.endLoop();
        } else if (character == 1) { // balanced gather-compute
            b.loop(trips(p, 14));
                b.load(nodes, AccessPattern::Random);
                b.load(nodes, AccessPattern::Random);
                b.waitcnt(0);
                b.valu(4, 10 + (k % 4) * 2);
                b.store(elems, AccessPattern::Streaming, 32);
            b.endLoop();
        } else { // memory-bound scatter/gather
            b.loop(trips(p, 11));
                b.load(nodes, AccessPattern::Random);
                b.load(elems, AccessPattern::Strided, 256);
                b.waitcnt(0);
                b.valu(2, 4);
                b.store(nodes, AccessPattern::Strided, 256);
            b.endLoop();
        }
        app.launches.push_back(b.build());
    }
    app.assignCodeBases();
    return app;
}

/** Finite element mini-app: CG iterations of SpMV / dot / axpy. */
Application
makeMinife(const WorkloadParams &p)
{
    Application app;
    app.name = "minife";

    KernelBuilder spmv_b("minife_spmv");
    {
        const auto mat = spmv_b.region("matrix", 64 * MiB);
        const auto vec = spmv_b.region("vector", 8 * MiB);
        const auto out = spmv_b.region("result", 8 * MiB);
        spmv_b.grid(gridFor(p, 0.7), p.wavesPerWorkgroup)
            .seed(p.seed ^ 0x4DB1);
        spmv_b.loop(trips(p, 16));
            spmv_b.load(mat, AccessPattern::Streaming, 64);
            spmv_b.load(vec, AccessPattern::Random);
            spmv_b.load(vec, AccessPattern::Random);
            spmv_b.waitcnt(0);
            spmv_b.valu(4, 6);
            spmv_b.store(out, AccessPattern::Streaming, 64);
        spmv_b.endLoop();
    }
    KernelBuilder dot_b("minife_dot");
    {
        const auto x = dot_b.region("x", 8 * MiB);
        const auto y = dot_b.region("y", 8 * MiB);
        dot_b.grid(gridFor(p, 0.7), p.wavesPerWorkgroup)
            .seed(p.seed ^ 0x4DB2);
        dot_b.loop(trips(p, 12));
            dot_b.load(x, AccessPattern::Streaming, 32);
            dot_b.load(y, AccessPattern::Streaming, 32);
            dot_b.waitcnt(0);
            dot_b.valu(4, 8);
            dot_b.lds(8, 2);
        dot_b.endLoop();
        dot_b.barrier();
        dot_b.lds(8, 4);
        dot_b.valu(4, 6);
    }
    KernelBuilder axpy_b("minife_axpy");
    {
        const auto x = axpy_b.region("x", 8 * MiB);
        const auto y = axpy_b.region("y", 8 * MiB);
        axpy_b.grid(gridFor(p, 0.7), p.wavesPerWorkgroup)
            .seed(p.seed ^ 0x4DB3);
        axpy_b.loop(trips(p, 11));
            axpy_b.load(x, AccessPattern::Streaming, 32);
            axpy_b.load(y, AccessPattern::Streaming, 32);
            axpy_b.waitcnt(0);
            axpy_b.valu(4, 5);
            axpy_b.store(y, AccessPattern::Streaming, 32);
        axpy_b.endLoop();
    }

    const Kernel spmv = spmv_b.build();
    const Kernel dot = dot_b.build();
    const Kernel axpy = axpy_b.build();
    for (int iter = 0; iter < launches(p, 3); ++iter) {
        app.launches.push_back(spmv);
        app.launches.push_back(dot);
        app.launches.push_back(axpy);
    }
    app.assignCodeBases();
    return app;
}

/** Monte Carlo cross-section lookups: random-access memory bound. */
Application
makeXsbench(const WorkloadParams &p)
{
    KernelBuilder b("xsbench_lookup");
    const auto grids = b.region("nuclide_grids", 96 * MiB);
    const auto results = b.region("results", 8 * MiB);

    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0xA5);
    b.loop(trips(p, 45));
        b.load(grids, AccessPattern::Random);
        b.load(grids, AccessPattern::Random);
        b.load(grids, AccessPattern::Random);
        b.load(grids, AccessPattern::Random);
        b.waitcnt(0);
        b.valu(2, 6);
        b.salu(2);
        b.store(results, AccessPattern::Streaming, 64);
    b.endLoop();

    Application app;
    app.name = "xsbench";
    repeatLaunch(app, b.build(), launches(p, 3));
    app.assignCodeBases();
    return app;
}

/**
 * Cosmology: a heavily compute-bound short-range force kernel
 * (launched per sub-step) plus a memory-bound grid-exchange kernel -
 * the spiky high-sensitivity profile of Figure 6(b).
 */
Application
makeHacc(const WorkloadParams &p)
{
    KernelBuilder force_b("hacc_force");
    {
        const auto part = force_b.region("particles", 16 * MiB);
        force_b.grid(gridFor(p, 1.0, 8), 8).seed(p.seed ^ 0xF0);
        for (int blk = 0; blk < 3; ++blk) {
            force_b.loop(4); // neighbour gather (short memory region)
                force_b.load(part, AccessPattern::Streaming, 16);
                force_b.load(part, AccessPattern::Random);
                force_b.waitcnt(0);
                force_b.valu(2, 2);
            force_b.endLoop();
            force_b.loop(50); // polynomial force burst (~1.5 us)
                force_b.valu(4, 5);
                force_b.lds(8, 1);
            force_b.endLoop();
        }
        force_b.barrier();
        force_b.loop(8);
            force_b.store(part, AccessPattern::Streaming, 16);
            force_b.salu(1);
        force_b.endLoop();
    }
    KernelBuilder ex_b("hacc_grid_exchange");
    {
        const auto grid = ex_b.region("grid", 32 * MiB);
        ex_b.grid(gridFor(p, 0.5), p.wavesPerWorkgroup)
            .seed(p.seed ^ 0xF1);
        ex_b.loop(trips(p, 20));
            ex_b.load(grid, AccessPattern::Strided, 512);
            ex_b.load(grid, AccessPattern::Strided, 512);
            ex_b.waitcnt(0);
            ex_b.valu(2, 4);
            ex_b.store(grid, AccessPattern::Strided, 512);
        ex_b.endLoop();
    }

    const Kernel force = force_b.build();
    const Kernel exchange = ex_b.build();
    Application app;
    app.name = "hacc";
    for (int step = 0; step < launches(p, 3); ++step) {
        app.launches.push_back(force);
        app.launches.push_back(force);
        app.launches.push_back(exchange);
    }
    app.assignCodeBases();
    return app;
}

/** Monte Carlo particle transport: extreme per-wave divergence. */
Application
makeQuickS(const WorkloadParams &p)
{
    KernelBuilder b("quicksilver_cycle");
    const auto mats = b.region("materials", 48 * MiB);
    const auto tallies = b.region("tallies", 8 * MiB);

    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0x51B5);
    // Particle histories have wildly different lengths: the trip
    // variation is the source of the paper's highest inter-wavefront
    // sensitivity variation (Figure 11a), and the ragged per-launch
    // drain it causes is chaotic for reactive prediction.
    b.loop(trips(p, 40), trips(p, 32));
        b.load(mats, AccessPattern::Random);
        b.waitcnt(0);
        b.valu(4, 6);
        b.load(mats, AccessPattern::Random);
        b.waitcnt(0);
        b.valu(4, 5);
        b.store(tallies, AccessPattern::Streaming, 64);
        b.salu(2);
    b.endLoop();

    Application app;
    app.name = "quickS";
    repeatLaunch(app, b.build(), launches(p, 4));
    app.assignCodeBases();
    return app;
}

/** Unstructured mesh hydro: 5 kernels per cycle, 2 cycles. */
Application
makePennant(const WorkloadParams &p)
{
    Application app;
    app.name = "pennant";
    struct Spec { const char *name; int va; int loads; bool random; };
    static constexpr Spec specs[] = {
        {"pennant_gather", 6, 3, true},
        {"pennant_corner_force", 20, 1, false},
        {"pennant_sum_crnr", 8, 2, true},
        {"pennant_calc_accel", 14, 2, false},
        {"pennant_adv_pos", 10, 2, false},
    };
    std::vector<Kernel> kernels;
    for (std::size_t si = 0; si < std::size(specs); ++si) {
        const Spec &s = specs[si];
        KernelBuilder b(s.name);
        const auto mesh = b.region("mesh", 24 * MiB);
        const auto side = b.region("sides", 24 * MiB);
        b.grid(gridFor(p, 0.35), p.wavesPerWorkgroup)
            .seed(p.seed ^ mixHash(0x9E77ULL + si));
        b.loop(trips(p, 22));
            for (int l = 0; l < s.loads; ++l) {
                b.load(mesh, s.random ? AccessPattern::Random
                                      : AccessPattern::Streaming, 32);
            }
            b.waitcnt(0);
            b.valu(4, static_cast<std::uint32_t>(s.va));
            b.store(side, AccessPattern::Streaming, 32);
        b.endLoop();
        kernels.push_back(b.build());
    }
    for (int cycle = 0; cycle < launches(p, 2); ++cycle)
        for (const Kernel &k : kernels)
            app.launches.push_back(k);
    app.assignCodeBases();
    return app;
}

/** Discrete ordinates transport: one sweep kernel per octant. */
Application
makeSnapc(const WorkloadParams &p)
{
    KernelBuilder b("snap_sweep");
    const auto flux = b.region("flux", 32 * MiB);
    const auto xs = b.region("cross_sections", 16 * MiB);

    b.grid(gridFor(p, 1.0, 8), 8).seed(p.seed ^ 0x5C);
    b.loop(trips(p, 18));
        b.load(flux, AccessPattern::Streaming, 32);
        b.load(xs, AccessPattern::SharedHot);
        b.waitcnt(0);
        b.valu(4, 12);
        b.lds(8, 4);
        b.barrier();
        b.valu(4, 6);
        b.store(flux, AccessPattern::Streaming, 32);
    b.endLoop();

    Application app;
    app.name = "snapc";
    repeatLaunch(app, b.build(), launches(p, 8));
    app.assignCodeBases();
    return app;
}

// =====================================================================
// Machine intelligence applications (DeepBench / DNNMark)
// =====================================================================

/** Tiled double-precision GEMM: compute bound, heterogeneous tiles. */
Application
makeDgemm(const WorkloadParams &p)
{
    KernelBuilder b("dgemm_nn");
    const auto a = b.region("A", 32 * MiB);
    const auto bm = b.region("B", 32 * MiB);
    const auto c = b.region("C", 32 * MiB);

    b.grid(gridFor(p, 1.0, 16), 16).seed(p.seed ^ 0xD6);
    // Unrolled k-tiles: each tile's load/FMA pair is its own PC range
    // and lasts roughly one epoch.
    for (int tile = 0; tile < 5; ++tile) {
        b.loop(5); // tile loads (memory, kept in phase by barriers)
            b.load(a, AccessPattern::Streaming, 16);
            b.load(bm, AccessPattern::Streaming, 16);
            b.lds(8, 2);
        b.endLoop();
        b.waitcnt(0);
        b.barrier();
        b.loop(45); // FMA region (~1.4 us)
            b.valu(4, 4);
            b.lds(8, 1);
        b.endLoop();
        b.barrier();
    }
    b.store(c, AccessPattern::Streaming, 32);

    Application app;
    app.name = "dgemm";
    repeatLaunch(app, b.build(), launches(p, 4));
    app.assignCodeBases();
    return app;
}

/**
 * Batch-norm backward, one launch per layer: a memory-bound batch
 * reduction pass then a compute-bound normalization pass - the
 * sawtooth sensitivity profile of Figures 6(c) and 8.
 */
Application
makeBwdBN(const WorkloadParams &p)
{
    KernelBuilder b("batchnorm_bwd");
    const auto x = b.region("x", 6 * MiB);
    const auto dy = b.region("dy", 6 * MiB);
    const auto dx = b.region("dx", 6 * MiB);

    b.grid(gridFor(p, 1.0, 16), 16).seed(p.seed ^ 0xB1);
    // Two channel blocks, each a reduction pass (memory region) then
    // a normalization pass (compute region), each pass ~1-2 epochs.
    for (int blk = 0; blk < 2; ++blk) {
        b.loop(9);
            b.load(x, AccessPattern::Strided, 128);
            b.load(dy, AccessPattern::Strided, 128);
            b.waitcnt(0);
            b.valu(2, 2);
            b.lds(8, 1);
        b.endLoop();
        b.barrier();
        b.lds(8, 6);
        b.valu(4, 8);
        b.barrier();
        b.loop(30);
            b.load(x, AccessPattern::Streaming, 16);
            b.waitcnt(0);
            b.valu(4, 6);
            b.store(dx, AccessPattern::Streaming, 16);
        b.endLoop();
    }

    Application app;
    app.name = "BwdBN";
    repeatLaunch(app, b.build(), launches(p, 4));
    app.assignCodeBases();
    return app;
}

/** Pooling backward: perfectly steady streaming loop. */
Application
makeBwdPool(const WorkloadParams &p)
{
    KernelBuilder b("pool_bwd");
    const auto dy = b.region("dy", 8 * MiB);
    const auto dx = b.region("dx", 8 * MiB);

    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0xB2);
    b.loop(trips(p, 45));
        b.load(dy, AccessPattern::Streaming, 16);
        b.waitcnt(0);
        b.valu(4, 6);
        b.store(dx, AccessPattern::Streaming, 16);
        b.salu(1);
    b.endLoop();

    Application app;
    app.name = "BwdPool";
    repeatLaunch(app, b.build(), launches(p, 5));
    app.assignCodeBases();
    return app;
}

/** Softmax backward, one launch per layer: rowwise reductions. */
Application
makeBwdSoft(const WorkloadParams &p)
{
    KernelBuilder b("softmax_bwd");
    const auto y = b.region("y", 6 * MiB);
    const auto dy = b.region("dy", 6 * MiB);
    const auto dx = b.region("dx", 6 * MiB);

    b.grid(gridFor(p, 1.0, 8), 8).seed(p.seed ^ 0xB3);
    for (int row = 0; row < 2; ++row) {
        // Rowwise dot-product reduction (memory region) ...
        b.loop(9);
            b.load(y, AccessPattern::Streaming, 32);
            b.load(dy, AccessPattern::Streaming, 32);
            b.waitcnt(0);
            b.valu(4, 3);
            b.lds(8, 1);
        b.endLoop();
        b.barrier();
        b.lds(8, 4);
        b.valu(4, 10);
        // ... then the elementwise scale (compute region).
        b.loop(24);
            b.valu(4, 4);
            b.store(dx, AccessPattern::Streaming, 32);
        b.endLoop();
    }

    Application app;
    app.name = "BwdSoft";
    repeatLaunch(app, b.build(), launches(p, 6));
    app.assignCodeBases();
    return app;
}

/** Batch-norm forward: lighter two-pass variant of BwdBN. */
Application
makeFwdBN(const WorkloadParams &p)
{
    KernelBuilder b("batchnorm_fwd");
    const auto x = b.region("x", 6 * MiB);
    const auto y = b.region("y", 6 * MiB);

    b.grid(gridFor(p, 1.0, 16), 16).seed(p.seed ^ 0xB4);
    for (int blk = 0; blk < 2; ++blk) {
        // Mean/variance pass (memory region) ...
        b.loop(8);
            b.load(x, AccessPattern::Strided, 128);
            b.waitcnt(0);
            b.valu(2, 2);
            b.lds(8, 1);
        b.endLoop();
        b.barrier();
        b.valu(4, 6);
        // ... then the normalization pass (balanced region).
        b.loop(22);
            b.load(x, AccessPattern::Streaming, 16);
            b.waitcnt(0);
            b.valu(4, 5);
            b.store(y, AccessPattern::Streaming, 16);
        b.endLoop();
    }

    Application app;
    app.name = "FwdBN";
    repeatLaunch(app, b.build(), launches(p, 4));
    app.assignCodeBases();
    return app;
}

/** Pooling forward: steady, lighter compute than BwdPool. */
Application
makeFwdPool(const WorkloadParams &p)
{
    KernelBuilder b("pool_fwd");
    const auto x = b.region("x", 8 * MiB);
    const auto y = b.region("y", 8 * MiB);

    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0xB5);
    b.loop(trips(p, 50));
        b.load(x, AccessPattern::Streaming, 16);
        b.load(x, AccessPattern::Streaming, 16);
        b.waitcnt(0);
        b.valu(4, 4);
        b.store(y, AccessPattern::Streaming, 64);
        b.salu(1);
    b.endLoop();

    Application app;
    app.name = "FwdPool";
    repeatLaunch(app, b.build(), launches(p, 5));
    app.assignCodeBases();
    return app;
}

/** Softmax forward: bandwidth heavy; L2-thrashing at high clocks. */
Application
makeFwdSoft(const WorkloadParams &p)
{
    KernelBuilder b("softmax_fwd");
    // Working set deliberately ~1.5x the L2 so that raising CU clocks
    // raises the L2 re-reference rate past capacity (Section 6.2's
    // second-order effect at 2.2 GHz).
    const auto x = b.region("x", 6 * MiB);
    const auto y = b.region("y", 6 * MiB);

    b.grid(gridFor(p, 1.0), p.wavesPerWorkgroup).seed(p.seed ^ 0xB6);
    b.loop(trips(p, 55));
        b.load(x, AccessPattern::Random);
        b.load(x, AccessPattern::Random);
        b.waitcnt(0);
        b.valu(4, 7);
        b.lds(8, 1);
        b.store(y, AccessPattern::Random);
    b.endLoop();

    Application app;
    app.name = "FwdSoft";
    repeatLaunch(app, b.build(), launches(p, 5));
    app.assignCodeBases();
    return app;
}

} // namespace

const std::vector<WorkloadInfo> &
workloadTable()
{
    static const std::vector<WorkloadInfo> table = {
        {"comd", "Molecular Dynamics", "HPC", 1},
        {"hpgmg", "Full MultiGrid", "HPC", 1},
        {"lulesh", "Shock Hydrodynamics", "HPC", 27},
        {"minife", "Finite Element", "HPC", 3},
        {"xsbench", "Monte Carlo Transport", "HPC", 1},
        {"hacc", "Cosmology Code", "HPC", 2},
        {"quickS", "Monte Carlo Quicksilver", "HPC", 1},
        {"pennant", "Unstructured Mesh", "HPC", 5},
        {"snapc", "Discrete Ordinates", "HPC", 1},
        {"dgemm", "Double Prec. MatrixMul", "MI", 1},
        {"BwdBN", "Batch-Norm Back", "MI", 1},
        {"BwdPool", "Pooling Backward", "MI", 1},
        {"BwdSoft", "Softmax Backward", "MI", 1},
        {"FwdBN", "Batch-Norm Forward", "MI", 1},
        {"FwdPool", "Pooling Forward", "MI", 1},
        {"FwdSoft", "Softmax Forward", "MI", 1},
    };
    return table;
}

bool
isWorkload(const std::string &name)
{
    for (const WorkloadInfo &info : workloadTable())
        if (info.name == name)
            return true;
    return false;
}

isa::Application
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "comd") return makeComd(params);
    if (name == "hpgmg") return makeHpgmg(params);
    if (name == "lulesh") return makeLulesh(params);
    if (name == "minife") return makeMinife(params);
    if (name == "xsbench") return makeXsbench(params);
    if (name == "hacc") return makeHacc(params);
    if (name == "quickS") return makeQuickS(params);
    if (name == "pennant") return makePennant(params);
    if (name == "snapc") return makeSnapc(params);
    if (name == "dgemm") return makeDgemm(params);
    if (name == "BwdBN") return makeBwdBN(params);
    if (name == "BwdPool") return makeBwdPool(params);
    if (name == "BwdSoft") return makeBwdSoft(params);
    if (name == "FwdBN") return makeFwdBN(params);
    if (name == "FwdPool") return makeFwdPool(params);
    if (name == "FwdSoft") return makeFwdSoft(params);
    fatal("unknown workload '" + name + "'");
}

std::vector<isa::Application>
makeAllWorkloads(const WorkloadParams &params)
{
    std::vector<isa::Application> apps;
    for (const WorkloadInfo &info : workloadTable())
        apps.push_back(makeWorkload(info.name, params));
    return apps;
}

WorkloadLoadResult
loadWorkload(const std::string &spec, const WorkloadParams &params)
{
    WorkloadLoadResult out;
    if (isWorkload(spec)) {
        out.app = makeWorkload(spec, params);
        return out;
    }
    if (spec.find('/') != std::string::npos ||
        spec.find('.') != std::string::npos) {
        ParseResult parsed = parseApplicationFile(spec);
        if (!parsed.ok()) {
            out.error = spec + ": " + parsed.error;
            return out;
        }
        out.app = std::move(*parsed.app);
        return out;
    }
    out.error = "unknown workload '" + spec +
        "' (not a Table II name, and not a kernel-script path)";
    return out;
}

} // namespace pcstall::workloads
