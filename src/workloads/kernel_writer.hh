/**
 * @file
 * Serialize kernels/applications back into the text format accepted
 * by the parser (`docs/workload_format.md`), so the built-in Table II
 * generators can be exported, edited and re-run. Round-trip property:
 * parseApplication(writeApplication(app)) reconstructs the same
 * structure.
 */

#ifndef PCSTALL_WORKLOADS_KERNEL_WRITER_HH
#define PCSTALL_WORKLOADS_KERNEL_WRITER_HH

#include <ostream>
#include <string>

#include "isa/kernel.hh"

namespace pcstall::workloads
{

/** Write one kernel block (kernel NAME ... endkernel). */
void writeKernel(std::ostream &os, const isa::Kernel &kernel);

/** Write a whole application (kernel blocks + app line). */
void writeApplication(std::ostream &os, const isa::Application &app);

/** Convenience: application to string. */
std::string applicationToText(const isa::Application &app);

} // namespace pcstall::workloads

#endif // PCSTALL_WORKLOADS_KERNEL_WRITER_HH
