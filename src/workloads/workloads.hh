/**
 * @file
 * Synthetic reconstructions of the paper's workload suite (Table II):
 * nine ECP-proxy HPC applications and seven DeepBench/DNNMark machine
 * intelligence kernels. Each generator reproduces the *phase
 * signature* the paper attributes to the application (compute/memory
 * mix, loop structure, kernel count, inter-wavefront divergence,
 * working-set size) rather than its numerics - DVFS phase prediction
 * only observes timing behaviour.
 *
 * Signatures encoded here (from the paper's text):
 *  - dgemm: compute-bound with heterogeneous tile phases (Fig 16);
 *  - hacc:  compute-bound, spiky sensitivity (Fig 6b);
 *  - hpgmg, xsbench: memory-bound, low frequencies win (Fig 16);
 *  - quickS: highest inter-wavefront variation (Fig 11a);
 *  - BwdPool: constant instruction rate -> settles on one state;
 *  - FwdSoft: L2-thrashing at high frequency (Section 6.2);
 *  - lulesh/minife/pennant: multi-kernel sequences (27/3/5 kernels).
 */

#ifndef PCSTALL_WORKLOADS_WORKLOADS_HH
#define PCSTALL_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace pcstall::workloads
{

/** Scaling knobs shared by all generators. */
struct WorkloadParams
{
    /** CU count of the target GPU (sizes launch grids for occupancy). */
    std::uint32_t numCus = 64;
    /** Work multiplier (1.0 = default ~100-300 us at 1.7 GHz). */
    double scale = 1.0;
    /** Seed for address/divergence randomness. */
    std::uint64_t seed = 42;
    /** Wavefronts per workgroup. */
    std::uint32_t wavesPerWorkgroup = 4;
    /** Wave slots per CU (sets full-occupancy workgroup counts). */
    std::uint32_t waveSlotsPerCu = 40;
};

/** Table II metadata for one workload. */
struct WorkloadInfo
{
    std::string name;
    std::string description;
    /** "HPC" or "MI". */
    std::string suite;
    /** Unique kernel count (the braces column of Table II). */
    std::size_t uniqueKernels = 1;
};

/** All workload names in Table II order (HPC first, then MI). */
const std::vector<WorkloadInfo> &workloadTable();

/** True if @p name is a known workload. */
bool isWorkload(const std::string &name);

/**
 * Build the named workload. Calls fatal() for unknown names. The
 * returned application has code bases assigned and validates.
 */
isa::Application makeWorkload(const std::string &name,
                              const WorkloadParams &params);

/** Convenience: every workload in Table II order. */
std::vector<isa::Application> makeAllWorkloads(
    const WorkloadParams &params);

/** Result of resolving a workload spec: an application or an error. */
struct WorkloadLoadResult
{
    std::optional<isa::Application> app;
    /** Empty on success; a one-line diagnostic otherwise. */
    std::string error;

    bool ok() const { return app.has_value(); }
};

/**
 * Resolve @p spec - either a Table II workload name or a path to a
 * kernel-script file (anything containing '/' or '.') - into an
 * application. Unlike makeWorkload(), never exits the process: a bad
 * name or an unparseable file comes back as a diagnostic, so one bad
 * workload fails one run instead of the whole harness.
 */
WorkloadLoadResult loadWorkload(const std::string &spec,
                                const WorkloadParams &params);

} // namespace pcstall::workloads

#endif // PCSTALL_WORKLOADS_WORKLOADS_HH
