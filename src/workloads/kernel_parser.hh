/**
 * @file
 * A small text format for describing kernels and applications, so
 * workloads can be authored without recompiling (the "bring your own
 * workload" path). Example:
 *
 * @code
 *   # CoMD-like timestep
 *   kernel force
 *     grid 160 4
 *     seed 7
 *     region pos 16M
 *     region neigh 32M
 *     loop 22
 *       load neigh stream 16
 *       load pos random
 *       waitcnt 0
 *       valu 2 3
 *     endloop
 *     loop 85
 *       valu 4 4
 *       lds 8 1
 *     endloop
 *     store pos stream 16
 *   endkernel
 *
 *   app comd = force force force
 * @endcode
 *
 * Supported statements inside a kernel: grid W V, seed N,
 * region NAME SIZE (K/M suffixes), loop TRIPS [VARIATION], endloop,
 * valu LAT COUNT, salu COUNT, lds LAT COUNT,
 * load REGION PATTERN [STRIDE], store REGION PATTERN [STRIDE],
 * waitcnt N, barrier. Patterns: stream, strided, random, sharedhot.
 * The file ends with one `app NAME = K1 K2 ...` line naming the
 * launch sequence.
 */

#ifndef PCSTALL_WORKLOADS_KERNEL_PARSER_HH
#define PCSTALL_WORKLOADS_KERNEL_PARSER_HH

#include <istream>
#include <optional>
#include <string>

#include "isa/kernel.hh"

namespace pcstall::workloads
{

/** Result of a parse: an application or a diagnostic. */
struct ParseResult
{
    std::optional<isa::Application> app;
    /** Empty on success; "line N: message" otherwise. */
    std::string error;

    bool ok() const { return app.has_value(); }
};

/** Parse an application description from a stream. */
ParseResult parseApplication(std::istream &in);

/** Parse from a string (convenience for tests and tools). */
ParseResult parseApplication(const std::string &text);

/** Parse from a file path. */
ParseResult parseApplicationFile(const std::string &path);

} // namespace pcstall::workloads

#endif // PCSTALL_WORKLOADS_KERNEL_PARSER_HH
