#include "workloads/kernel_writer.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace pcstall::workloads
{

namespace
{

/** Format a byte count with the largest exact suffix. */
std::string
sizeText(std::uint64_t bytes)
{
    if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0)
        return std::to_string(bytes >> 30) + "G";
    if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0)
        return std::to_string(bytes >> 20) + "M";
    if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0)
        return std::to_string(bytes >> 10) + "K";
    return std::to_string(bytes);
}

const char *
patternText(isa::AccessPattern pattern)
{
    switch (pattern) {
      case isa::AccessPattern::Streaming: return "stream";
      case isa::AccessPattern::Strided: return "strided";
      case isa::AccessPattern::Random: return "random";
      case isa::AccessPattern::SharedHot: return "sharedhot";
    }
    return "stream";
}

} // namespace

void
writeKernel(std::ostream &os, const isa::Kernel &kernel)
{
    os << "kernel " << kernel.name << '\n';
    os << "  grid " << kernel.numWorkgroups << ' '
       << kernel.wavesPerWorkgroup << '\n';
    os << "  seed " << kernel.seed << '\n';
    for (const isa::MemRegion &region : kernel.regions) {
        os << "  region " << region.name << ' '
           << sizeText(region.sizeBytes) << '\n';
    }

    // Loop heads: builder-generated code has properly nested loops,
    // each closed by exactly one back-edge branch.
    std::map<std::uint32_t, std::uint16_t> head_to_loop;
    for (const isa::Instruction &ins : kernel.code) {
        if (ins.op == isa::OpType::Branch) {
            head_to_loop[static_cast<std::uint32_t>(ins.target)] =
                ins.loopId;
        }
    }

    int depth = 1;
    auto indent = [&]() {
        for (int i = 0; i < depth; ++i)
            os << "  ";
    };

    // Merge runs of identical ALU ops into count form.
    const auto &code = kernel.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const auto head = head_to_loop.find(
            static_cast<std::uint32_t>(i));
        if (head != head_to_loop.end()) {
            const isa::LoopSpec &loop = kernel.loops[head->second];
            indent();
            os << "loop " << loop.baseTrips;
            if (loop.tripVariation > 0)
                os << ' ' << loop.tripVariation;
            os << '\n';
            ++depth;
        }

        const isa::Instruction &ins = code[i];
        switch (ins.op) {
          case isa::OpType::VAlu:
          case isa::OpType::SAlu:
          case isa::OpType::Lds: {
            std::size_t run = 1;
            while (i + run < code.size() &&
                   code[i + run].op == ins.op &&
                   code[i + run].latency == ins.latency &&
                   head_to_loop.find(static_cast<std::uint32_t>(
                       i + run)) == head_to_loop.end()) {
                ++run;
            }
            indent();
            if (ins.op == isa::OpType::VAlu)
                os << "valu " << ins.latency << ' ' << run << '\n';
            else if (ins.op == isa::OpType::Lds)
                os << "lds " << ins.latency << ' ' << run << '\n';
            else
                os << "salu " << run << '\n';
            i += run - 1;
            break;
          }
          case isa::OpType::VMemLoad:
          case isa::OpType::VMemStore:
            indent();
            os << (ins.op == isa::OpType::VMemLoad ? "load " : "store ")
               << kernel.regions[ins.mem.regionId].name << ' '
               << patternText(ins.mem.pattern) << ' '
               << ins.mem.strideBytes << '\n';
            break;
          case isa::OpType::Waitcnt:
            indent();
            os << "waitcnt " << ins.maxOutstanding << '\n';
            break;
          case isa::OpType::Barrier:
            indent();
            os << "barrier\n";
            break;
          case isa::OpType::Branch:
            --depth;
            indent();
            os << "endloop\n";
            break;
          case isa::OpType::EndPgm:
            break;
        }
    }
    os << "endkernel\n";
}

void
writeApplication(std::ostream &os, const isa::Application &app)
{
    std::set<std::string> written;
    for (const isa::Kernel &k : app.launches) {
        if (written.insert(k.name).second) {
            writeKernel(os, k);
            os << '\n';
        }
    }
    os << "app " << app.name << " =";
    for (const isa::Kernel &k : app.launches)
        os << ' ' << k.name;
    os << '\n';
}

std::string
applicationToText(const isa::Application &app)
{
    std::ostringstream os;
    writeApplication(os, app);
    return os.str();
}

} // namespace pcstall::workloads
