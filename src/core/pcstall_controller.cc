#include "core/pcstall_controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "faults/fault_injector.hh"

namespace pcstall::core
{

PcstallConfig
PcstallConfig::forEpoch(Tick epoch_len, std::uint32_t wave_slots)
{
    PcstallConfig cfg;
    cfg.estimator.waveSlots = wave_slots;
    // The table stores age-normalized (intrinsic) sensitivities: what
    // the wave would contribute were it the oldest. That is bounded
    // by roughly (epoch cycles per SIMD issue share) / f_GHz; scale
    // the 8-bit quantization range with the epoch so resolution stays
    // proportionate.
    const double epoch_us =
        static_cast<double>(epoch_len) / static_cast<double>(tickUs);
    cfg.table.maxSensitivity = 256.0 * std::max(epoch_us, 0.125);
    cfg.table.maxLevel = 512.0 * std::max(epoch_us, 0.125);
    // Per-wave estimates carry scheduling noise at microsecond
    // windows; blending successive updates into the shared entry
    // filters it (a hardware-cheap shift-add).
    cfg.table.updateBlend = 0.5;
    return cfg;
}

PcstallController::PcstallController(const PcstallConfig &config,
                                     std::uint32_t num_cus)
    : cfg(config)
{
    fatalIf(cfg.cusPerTable == 0, "PCSTALL needs >= 1 CU per table");
    fatalIf(num_cus % cfg.cusPerTable != 0,
            "PCSTALL: CU count must divide evenly across PC tables");
    const std::uint32_t num_tables = num_cus / cfg.cusPerTable;
    tables.reserve(num_tables);
    for (std::uint32_t i = 0; i < num_tables; ++i)
        tables.emplace_back(cfg.table);
}

std::string
PcstallController::name() const
{
    return cfg.accurateEstimates ? "ACCPC" : "PCSTALL";
}

double
PcstallController::contention(std::uint32_t age_rank) const
{
    if (!cfg.adaptiveContention || ageShare.empty())
        return models::contentionFactor(cfg.estimator, age_rank);
    const std::size_t idx = std::min<std::size_t>(
        age_rank, ageShare.size() - 1);
    return ageShare[idx];
}

void
PcstallController::learnContention(const dvfs::EpochContext &ctx)
{
    if (!cfg.adaptiveContention)
        return;
    // Per-age committed sums across the whole GPU this epoch.
    std::vector<double> by_age(cfg.estimator.waveSlots, 0.0);
    std::vector<double> count(cfg.estimator.waveSlots, 0.0);
    for (const gpu::WaveEpochRecord &w : ctx.record.waves) {
        if (!w.active)
            continue;
        const std::size_t idx = std::min<std::size_t>(
            w.ageRank, by_age.size() - 1);
        by_age[idx] += static_cast<double>(w.committed);
        count[idx] += 1.0;
    }
    double peak = 0.0;
    for (std::size_t a = 0; a < by_age.size(); ++a) {
        if (count[a] > 0.0)
            by_age[a] /= count[a];
        peak = std::max(peak, by_age[a]);
    }
    if (peak <= 0.0)
        return;

    const bool first = ageShare.empty();
    if (first)
        ageShare.assign(cfg.estimator.waveSlots, 1.0);
    for (std::size_t a = 0; a < ageShare.size(); ++a) {
        if (count[a] == 0.0)
            continue; // no observation for this rank this epoch
        const double share =
            std::clamp(by_age[a] / peak, 0.02, 1.0);
        // Adopt the first observation outright, then track slowly.
        ageShare[a] = first ? share
            : (1.0 - cfg.contentionAlpha) * ageShare[a] +
              cfg.contentionAlpha * share;
    }
}

void
PcstallController::observeWatchdog(const dvfs::EpochContext &ctx)
{
    if (!cfg.watchdog.enabled)
        return;
    if (!havePrev) {
        havePrev = true;
        return;
    }

    // Telemetry plausibility: the GPU model clips every time-class
    // counter at the epoch boundary, so every clean record satisfies
    // these per-CU invariants exactly (see ComputeUnit epoch harvest).
    // Independently corrupted counters violate them whenever the two
    // sides are close. The tolerance absorbs the one issue slot that
    // may straddle the boundary.
    const Tick span = ctx.record.end - ctx.record.start;
    const Tick tol = span / 64;
    std::size_t implausible = 0;
    for (const gpu::CuEpochRecord &cu : ctx.record.cus) {
        if (cu.loadStall + cu.storeStall > span + tol ||
            cu.overlap > cu.busy + tol ||
            cu.leadLoad > cu.memInterval + tol ||
            cu.memInterval > span + tol) {
            ++implausible;
        }
    }

    // Score the previous epoch's phase model at the frequency each
    // domain actually ran, so realized-but-not-requested states (DVFS
    // transition faults) do not read as prediction error.
    double error_sum = 0.0;
    std::size_t scored = 0;
    for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
        const double realized = dvfs::sumOverDomain(
            ctx.domains, d, [&](std::uint32_t cu) {
                return static_cast<double>(ctx.record.cus[cu].committed);
            });
        if (realized <= 0.0)
            continue; // idle domain: nothing to score
        const double f =
            freqGHzD(ctx.record.cus[ctx.domains.firstCu(d)].freq);
        const double pred =
            std::max(prevLevel[d] + prevSens[d] * f, 0.0);
        error_sum += std::abs(pred - realized) / realized;
        ++scored;
    }
    if (scored == 0 && implausible == 0)
        return; // fully idle epoch: leave the streaks alone

    const bool bad = implausible > 0 ||
        (scored > 0 && error_sum / static_cast<double>(scored) >
                           cfg.watchdog.errorThreshold);
    badStreak = bad ? badStreak + 1 : 0;
    goodStreak = bad ? 0 : goodStreak + 1;
    if (!fallback_ && badStreak >= cfg.watchdog.tripAfter) {
        fallback_ = true;
        ++trips_;
        goodStreak = 0;
    } else if (fallback_ && goodStreak >= cfg.watchdog.recoverAfter) {
        fallback_ = false;
        badStreak = 0;
    }
}

std::vector<dvfs::DomainDecision>
PcstallController::decide(const dvfs::EpochContext &ctx)
{
    observeWatchdog(ctx);
    learnContention(ctx);

    // ------------------------------------------------------------------
    // UPDATE: store each wave's elapsed-epoch sensitivity, normalized
    // by its scheduling age, at its starting PC.
    // ------------------------------------------------------------------
    const std::uint32_t offset = cfg.table.offsetBits;
    auto granule_of = [offset](std::uint64_t pc_addr) {
        return pc_addr >> offset;
    };

    lastModel.clear();
    if (cfg.accurateEstimates) {
        panicIf(ctx.elapsedAccurate == nullptr,
                "ACCPC requires elapsed-epoch accurate estimates");
        for (const auto &ws : ctx.elapsedAccurate->waves) {
            const double c = contention(ws.ageRank);
            tableFor(ws.cu).update(ws.startPcAddr,
                                   std::max(ws.sensitivity, 0.0) / c,
                                   ws.level / c);
            lastModel[{ws.cu, ws.slot}] =
                {std::max(ws.sensitivity, 0.0), ws.level,
                 granule_of(ws.startPcAddr)};
        }
    } else {
        for (const gpu::WaveEpochRecord &w : ctx.record.waves) {
            if (!w.active)
                continue;
            // A wave that committed almost nothing while not being
            // memory/barrier-blocked was starved of issue slots by
            // older waves; its epoch says nothing about the code at
            // its PC, so do not pollute the shared table entry.
            if (w.committed < 4 &&
                w.memStall + w.barrierStall < ctx.epochLen / 2) {
                continue;
            }
            const Freq f1 = ctx.record.cus[w.cu].freq;
            const double raw = models::waveSensitivity(
                w, cfg.estimator, ctx.epochLen, f1);
            const double level = models::waveLevel(
                w, cfg.estimator, ctx.epochLen, f1);
            const double c = contention(w.ageRank);
            tableFor(w.cu).update(w.startPcAddr, raw / c, level / c);
            lastModel[{w.cu, w.slot}] =
                {raw, level, granule_of(w.startPcAddr)};
        }
    }

    // ------------------------------------------------------------------
    // LOOKUP: each resident wave predicts the next epoch's phase model
    // I(f) = I0 + S*f from its next PC; models sum per domain (the
    // metric is commutative, Section 4.2).
    // ------------------------------------------------------------------
    std::vector<double> domain_sens(ctx.domains.numDomains(), 0.0);
    std::vector<double> domain_level(ctx.domains.numDomains(), 0.0);
    for (const gpu::WaveSnapshot &snap : ctx.snapshots) {
        const auto it = lastModel.find({snap.cu, snap.slot});
        const bool same_region = it != lastModel.end() &&
            it->second.granule == granule_of(snap.pcAddr);
        const std::uint32_t d = ctx.domains.domainOf(snap.cu);
        dvfs::DomainAudit *aud =
            ctx.audit ? &ctx.audit->domains[d] : nullptr;
        if (aud && aud->pcKey == 0)
            aud->pcKey = snap.pcAddr;

        double sens = 0.0;
        double level = 0.0;
        if (cfg.lookupOnRegionChange && same_region) {
            // The wave is still in the region its last epoch started
            // in: its own fresh estimate beats the (older, shared)
            // table entry.
            sens = it->second.sens;
            level = it->second.level;
            if (aud)
                ++aud->sameRegion;
        } else if (const auto hit =
                       tableFor(snap.cu).lookup(snap.pcAddr)) {
            const double c = contention(snap.ageRank);
            sens = hit->sensitivity * c;
            level = hit->level * c;
            if (aud) {
                ++aud->lookups;
                ++aud->hits;
            }
        } else {
            if (aud)
                ++aud->lookups;
            if (cfg.reactiveFallback && it != lastModel.end()) {
                sens = it->second.sens;
                level = it->second.level;
                if (aud)
                    ++aud->reactive;
            }
        }
        domain_sens[d] += sens;
        domain_level[d] += level;
    }

    // Shadow the phase model even when the fallback decides: the
    // watchdog keeps scoring the predictor in the background so a
    // recovered table can win control back.
    prevSens = domain_sens;
    prevLevel = domain_level;
    if (ctx.audit) {
        for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
            ctx.audit->domains[d].predictedSens = domain_sens[d];
            ctx.audit->domains[d].predictedLevel = domain_level[d];
        }
    }

    if (fallback_) {
        ++fallbackEpochs_;
        if (ctx.audit)
            ctx.audit->fallbackActive = true;
        return stallFallback.decide(ctx);
    }

    // ------------------------------------------------------------------
    // SELECT: I(f) = I0 + S * f, objective-driven (the frequency
    // choice itself is orthogonal to the prediction, Section 5.2).
    // ------------------------------------------------------------------
    const std::size_t num_states = ctx.table.numStates();
    std::vector<dvfs::DomainDecision> out(ctx.domains.numDomains());
    for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
        const double i_elapsed = dvfs::sumOverDomain(
            ctx.domains, d, [&](std::uint32_t cu) {
                return static_cast<double>(ctx.record.cus[cu].committed);
            });

        std::vector<double> instr_at(num_states, 0.0);
        for (std::size_t s = 0; s < num_states; ++s) {
            const double f = freqGHzD(ctx.table.state(s).freq);
            instr_at[s] =
                std::max(domain_level[d] + domain_sens[d] * f, 0.0);
        }

        dvfs::DomainScoreInputs in;
        in.instrAtState = instr_at;
        in.baselineInstr = i_elapsed;
        in.baselineActivity = dvfs::domainActivity(ctx.domains, d,
                                                   ctx.record);
        in.numCus = ctx.domains.cusPerDomain();
        in.staticShare = ctx.power.params().memStatic /
            ctx.domains.numDomains();
        in.epochLen = ctx.epochLen;
        in.temperature = ctx.temperature;
        in.perfDegradationLimit = ctx.perfDegradationLimit;
        in.nominalState = ctx.nominalState;
        in.avgChipPower = ctx.avgChipPower;
        if (ctx.avgDomainInstr)
            in.avgInstr = (*ctx.avgDomainInstr)[d];

        out[d].state = dvfs::chooseState(ctx.table, ctx.power, in,
                                         ctx.objective);
        out[d].predictedInstr = instr_at[out[d].state];
    }
    return out;
}

void
PcstallController::applyStorageFaults(faults::FaultInjector &injector)
{
    for (predict::PcSensitivityTable &t : tables)
        bitFlips_ += injector.corrupt(t);
}

std::uint64_t
PcstallController::storageScrubs() const
{
    std::uint64_t total = 0;
    for (const auto &t : tables)
        total += t.scrubCount();
    return total;
}

double
PcstallController::tableHitRatio() const
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    for (const auto &t : tables) {
        lookups += t.lookupCount();
        hits += t.lookupHitCount();
    }
    return lookups == 0 ? 0.0
        : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::uint64_t
PcstallController::storageBytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : tables)
        total += t.storageBytes();
    return total;
}

} // namespace pcstall::core
