#include "core/pcstall_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcstall::core
{

PcstallConfig
PcstallConfig::forEpoch(Tick epoch_len, std::uint32_t wave_slots)
{
    PcstallConfig cfg;
    cfg.estimator.waveSlots = wave_slots;
    // The table stores age-normalized (intrinsic) sensitivities: what
    // the wave would contribute were it the oldest. That is bounded
    // by roughly (epoch cycles per SIMD issue share) / f_GHz; scale
    // the 8-bit quantization range with the epoch so resolution stays
    // proportionate.
    const double epoch_us =
        static_cast<double>(epoch_len) / static_cast<double>(tickUs);
    cfg.table.maxSensitivity = 256.0 * std::max(epoch_us, 0.125);
    cfg.table.maxLevel = 512.0 * std::max(epoch_us, 0.125);
    // Per-wave estimates carry scheduling noise at microsecond
    // windows; blending successive updates into the shared entry
    // filters it (a hardware-cheap shift-add).
    cfg.table.updateBlend = 0.5;
    return cfg;
}

PcstallController::PcstallController(const PcstallConfig &config,
                                     std::uint32_t num_cus)
    : cfg(config)
{
    fatalIf(cfg.cusPerTable == 0, "PCSTALL needs >= 1 CU per table");
    fatalIf(num_cus % cfg.cusPerTable != 0,
            "PCSTALL: CU count must divide evenly across PC tables");
    const std::uint32_t num_tables = num_cus / cfg.cusPerTable;
    tables.reserve(num_tables);
    for (std::uint32_t i = 0; i < num_tables; ++i)
        tables.emplace_back(cfg.table);
}

std::string
PcstallController::name() const
{
    return cfg.accurateEstimates ? "ACCPC" : "PCSTALL";
}

double
PcstallController::contention(std::uint32_t age_rank) const
{
    if (!cfg.adaptiveContention || ageShare.empty())
        return models::contentionFactor(cfg.estimator, age_rank);
    const std::size_t idx = std::min<std::size_t>(
        age_rank, ageShare.size() - 1);
    return ageShare[idx];
}

void
PcstallController::learnContention(const dvfs::EpochContext &ctx)
{
    if (!cfg.adaptiveContention)
        return;
    // Per-age committed sums across the whole GPU this epoch.
    std::vector<double> by_age(cfg.estimator.waveSlots, 0.0);
    std::vector<double> count(cfg.estimator.waveSlots, 0.0);
    for (const gpu::WaveEpochRecord &w : ctx.record.waves) {
        if (!w.active)
            continue;
        const std::size_t idx = std::min<std::size_t>(
            w.ageRank, by_age.size() - 1);
        by_age[idx] += static_cast<double>(w.committed);
        count[idx] += 1.0;
    }
    double peak = 0.0;
    for (std::size_t a = 0; a < by_age.size(); ++a) {
        if (count[a] > 0.0)
            by_age[a] /= count[a];
        peak = std::max(peak, by_age[a]);
    }
    if (peak <= 0.0)
        return;

    const bool first = ageShare.empty();
    if (first)
        ageShare.assign(cfg.estimator.waveSlots, 1.0);
    for (std::size_t a = 0; a < ageShare.size(); ++a) {
        if (count[a] == 0.0)
            continue; // no observation for this rank this epoch
        const double share =
            std::clamp(by_age[a] / peak, 0.02, 1.0);
        // Adopt the first observation outright, then track slowly.
        ageShare[a] = first ? share
            : (1.0 - cfg.contentionAlpha) * ageShare[a] +
              cfg.contentionAlpha * share;
    }
}

std::vector<dvfs::DomainDecision>
PcstallController::decide(const dvfs::EpochContext &ctx)
{
    learnContention(ctx);

    // ------------------------------------------------------------------
    // UPDATE: store each wave's elapsed-epoch sensitivity, normalized
    // by its scheduling age, at its starting PC.
    // ------------------------------------------------------------------
    const std::uint32_t offset = cfg.table.offsetBits;
    auto granule_of = [offset](std::uint64_t pc_addr) {
        return pc_addr >> offset;
    };

    lastModel.clear();
    if (cfg.accurateEstimates) {
        panicIf(ctx.elapsedAccurate == nullptr,
                "ACCPC requires elapsed-epoch accurate estimates");
        for (const auto &ws : ctx.elapsedAccurate->waves) {
            const double c = contention(ws.ageRank);
            tableFor(ws.cu).update(ws.startPcAddr,
                                   std::max(ws.sensitivity, 0.0) / c,
                                   ws.level / c);
            lastModel[{ws.cu, ws.slot}] =
                {std::max(ws.sensitivity, 0.0), ws.level,
                 granule_of(ws.startPcAddr)};
        }
    } else {
        for (const gpu::WaveEpochRecord &w : ctx.record.waves) {
            if (!w.active)
                continue;
            // A wave that committed almost nothing while not being
            // memory/barrier-blocked was starved of issue slots by
            // older waves; its epoch says nothing about the code at
            // its PC, so do not pollute the shared table entry.
            if (w.committed < 4 &&
                w.memStall + w.barrierStall < ctx.epochLen / 2) {
                continue;
            }
            const Freq f1 = ctx.record.cus[w.cu].freq;
            const double raw = models::waveSensitivity(
                w, cfg.estimator, ctx.epochLen, f1);
            const double level = models::waveLevel(
                w, cfg.estimator, ctx.epochLen, f1);
            const double c = contention(w.ageRank);
            tableFor(w.cu).update(w.startPcAddr, raw / c, level / c);
            lastModel[{w.cu, w.slot}] =
                {raw, level, granule_of(w.startPcAddr)};
        }
    }

    // ------------------------------------------------------------------
    // LOOKUP: each resident wave predicts the next epoch's phase model
    // I(f) = I0 + S*f from its next PC; models sum per domain (the
    // metric is commutative, Section 4.2).
    // ------------------------------------------------------------------
    std::vector<double> domain_sens(ctx.domains.numDomains(), 0.0);
    std::vector<double> domain_level(ctx.domains.numDomains(), 0.0);
    for (const gpu::WaveSnapshot &snap : ctx.snapshots) {
        const auto it = lastModel.find({snap.cu, snap.slot});
        const bool same_region = it != lastModel.end() &&
            it->second.granule == granule_of(snap.pcAddr);

        double sens = 0.0;
        double level = 0.0;
        if (cfg.lookupOnRegionChange && same_region) {
            // The wave is still in the region its last epoch started
            // in: its own fresh estimate beats the (older, shared)
            // table entry.
            sens = it->second.sens;
            level = it->second.level;
        } else if (const auto hit =
                       tableFor(snap.cu).lookup(snap.pcAddr)) {
            const double c = contention(snap.ageRank);
            sens = hit->sensitivity * c;
            level = hit->level * c;
        } else if (cfg.reactiveFallback && it != lastModel.end()) {
            sens = it->second.sens;
            level = it->second.level;
        }
        const std::uint32_t d = ctx.domains.domainOf(snap.cu);
        domain_sens[d] += sens;
        domain_level[d] += level;
    }

    // ------------------------------------------------------------------
    // SELECT: I(f) = I0 + S * f, objective-driven (the frequency
    // choice itself is orthogonal to the prediction, Section 5.2).
    // ------------------------------------------------------------------
    const std::size_t num_states = ctx.table.numStates();
    std::vector<dvfs::DomainDecision> out(ctx.domains.numDomains());
    for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
        const double i_elapsed = dvfs::sumOverDomain(
            ctx.domains, d, [&](std::uint32_t cu) {
                return static_cast<double>(ctx.record.cus[cu].committed);
            });

        std::vector<double> instr_at(num_states, 0.0);
        for (std::size_t s = 0; s < num_states; ++s) {
            const double f = freqGHzD(ctx.table.state(s).freq);
            instr_at[s] =
                std::max(domain_level[d] + domain_sens[d] * f, 0.0);
        }

        dvfs::DomainScoreInputs in;
        in.instrAtState = instr_at;
        in.baselineInstr = i_elapsed;
        in.baselineActivity = dvfs::domainActivity(ctx.domains, d,
                                                   ctx.record);
        in.numCus = ctx.domains.cusPerDomain();
        in.staticShare = ctx.power.params().memStatic /
            ctx.domains.numDomains();
        in.epochLen = ctx.epochLen;
        in.temperature = ctx.temperature;
        in.perfDegradationLimit = ctx.perfDegradationLimit;
        in.nominalState = ctx.nominalState;
        in.avgChipPower = ctx.avgChipPower;
        if (ctx.avgDomainInstr)
            in.avgInstr = (*ctx.avgDomainInstr)[d];

        out[d].state = dvfs::chooseState(ctx.table, ctx.power, in,
                                         ctx.objective);
        out[d].predictedInstr = instr_at[out[d].state];
    }
    return out;
}

double
PcstallController::tableHitRatio() const
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    for (const auto &t : tables) {
        lookups += t.lookupCount();
        hits += t.lookupHitCount();
    }
    return lookups == 0 ? 0.0
        : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::uint64_t
PcstallController::storageBytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : tables)
        total += t.storageBytes();
    return total;
}

} // namespace pcstall::core
