/**
 * @file
 * PCSTALL: the paper's contribution. A wavefront-level, PC-indexed
 * sensitivity predictor driving per-domain DVFS decisions
 * (Sections 4.2-4.4, Figure 12).
 *
 * Per epoch boundary:
 *  1. UPDATE - each wavefront active in the elapsed epoch estimates
 *     its sensitivity with the wavefront STALL model, normalizes it by
 *     scheduling age, and stores it in the PC table indexed by the PC
 *     the epoch started at.
 *  2. LOOKUP - each resident wavefront indexes the table with its
 *     *next* PC; the retrieved per-wave sensitivities are de-
 *     normalized by current age and summed into the domain
 *     sensitivity (the metric is commutative, Section 4.2).
 *  3. SELECT - predicted instructions at each candidate state
 *     I(f) = I_elapsed + S * (f - f_elapsed) feed the objective
 *     function, which is orthogonal to the prediction (Section 5.2).
 *
 * With cfg.accurateEstimates = true this becomes ACCPC: the table is
 * filled with fork-pre-execute measured wavefront sensitivities
 * instead of the STALL-model estimates (Table III).
 */

#ifndef PCSTALL_CORE_PCSTALL_CONTROLLER_HH
#define PCSTALL_CORE_PCSTALL_CONTROLLER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "dvfs/controller.hh"
#include "models/reactive_controller.hh"
#include "models/wave_estimator.hh"
#include "predict/pc_table.hh"

namespace pcstall::core
{

/**
 * Divergence watchdog: graceful degradation for PCSTALL. An epoch is
 * flagged bad on either of two signals:
 *
 *  - model divergence: the controller scores its own previous
 *    phase-model prediction against the realized instruction count
 *    (evaluated at the frequency the domain actually ran at, so DVFS
 *    transition faults do not count against the predictor) and the
 *    mean relative error exceeds @p errorThreshold;
 *  - implausible telemetry: a CU's counters violate the timing
 *    invariants every clean record satisfies by construction
 *    (loadStall + storeStall <= epoch, overlap <= busy,
 *    leadLoad <= memInterval <= epoch). Independent
 *    per-counter corruption breaks these whenever two sides are
 *    close, so this is a sharp detector with no clean-run false
 *    positives.
 *
 * After @p tripAfter consecutive bad epochs, decisions switch to the
 * reactive STALL policy; the PC table keeps learning in the
 * background, and @p recoverAfter consecutive good epochs switch
 * back (hysteresis, so a borderline predictor does not flap).
 */
struct WatchdogConfig
{
    bool enabled = false;
    /**
     * Mean relative prediction error that counts as a bad epoch.
     * Deliberately loose - phase-spiky workloads predict no better
     * than ~50% fault-free, and that is the predictor's job, not a
     * fault; the threshold only catches a model that has become
     * nonsense (e.g. corrupted table storage).
     */
    double errorThreshold = 0.75;
    /** Consecutive bad epochs before falling back to STALL. */
    std::uint32_t tripAfter = 3;
    /** Consecutive good epochs before trusting the table again. */
    std::uint32_t recoverAfter = 8;
};

/** Full PCSTALL configuration. */
struct PcstallConfig
{
    predict::PcTableConfig table;
    models::WaveEstimatorConfig estimator;
    /** One PC table per this many CUs (paper: tables may be shared). */
    std::uint32_t cusPerTable = 1;
    /** ACCPC mode: fill the table from oracle wave sensitivities. */
    bool accurateEstimates = false;
    /**
     * Learn the age-rank contention factors from observed per-age
     * throughput shares (an EWMA over epochs) instead of the static
     * linear model. This is the paper's "normalized depending on the
     * relative age" with a self-calibrating correction; hardware cost
     * is one small counter per wave slot. Ablation toggle.
     */
    bool adaptiveContention = true;
    /** EWMA weight for the adaptive contention update. */
    double contentionAlpha = 0.25;
    /**
     * On table miss, fall back to the wave's own last-epoch estimate
     * (reactive fallback) instead of predicting zero.
     */
    bool reactiveFallback = true;
    /**
     * While a wave's PC stays inside the granule its previous epoch
     * started in, its own last-epoch model is the best predictor (the
     * region has not changed); the table entry is consulted only when
     * the PC has moved - precisely where last-value prediction fails.
     * Hardware cost: one compare against the starting-PC register
     * PCSTALL already keeps per wave (Table I). Ablation toggle.
     */
    bool lookupOnRegionChange = true;
    /** Divergence watchdog with STALL fallback (off by default). */
    WatchdogConfig watchdog;

    /**
     * Scale the quantization range for an epoch length (longer epochs
     * commit proportionally more instructions per wave).
     */
    static PcstallConfig forEpoch(Tick epoch_len,
                                  std::uint32_t wave_slots = 40);
};

/** The PCSTALL (or ACCPC) DVFS controller. */
class PcstallController : public dvfs::DvfsController
{
  public:
    PcstallController(const PcstallConfig &config, std::uint32_t num_cus);

    std::string name() const override;

    dvfs::SweepNeed sweepNeed() const override
    {
        return cfg.accurateEstimates ? dvfs::SweepNeed::Elapsed
                                     : dvfs::SweepNeed::None;
    }

    bool needsWaveLevel() const override { return cfg.accurateEstimates; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;

    void applyStorageFaults(faults::FaultInjector &injector) override;

    std::uint64_t watchdogTrips() const override { return trips_; }
    std::uint64_t fallbackEpochs() const override
    {
        return fallbackEpochs_;
    }
    std::uint64_t storageBitFlips() const override { return bitFlips_; }
    std::uint64_t storageScrubs() const override;

    /** True while decisions come from the STALL fallback (test hook). */
    bool inFallback() const { return fallback_; }

    /** Aggregate PC-table hit ratio across all instances. */
    double tableHitRatio() const;

    /** Current contention factor for an age rank (test hook). */
    double contention(std::uint32_t age_rank) const;

    /** Total predictor storage in bytes across all instances. */
    std::uint64_t storageBytes() const;

    const PcstallConfig &config() const { return cfg; }

    /** The PC-table instances (snapshot/restore, see src/trace). */
    const std::vector<predict::PcSensitivityTable> &pcTables() const
    {
        return tables;
    }
    std::vector<predict::PcSensitivityTable> &pcTables()
    {
        return tables;
    }

  private:
    predict::PcSensitivityTable &tableFor(std::uint32_t cu)
    {
        return tables[cu / cfg.cusPerTable];
    }

    /** Refresh the adaptive age-share EWMA from an epoch record. */
    void learnContention(const dvfs::EpochContext &ctx);

    /**
     * Score the previous epoch's phase-model prediction against what
     * the elapsed epoch realized and advance the watchdog's
     * trip/recover hysteresis.
     */
    void observeWatchdog(const dvfs::EpochContext &ctx);

    /** A wave's elapsed-epoch phase model and where it started. */
    struct WaveModel
    {
        double sens = 0.0;
        double level = 0.0;
        /** PC-table granule the elapsed epoch started at. */
        std::uint64_t granule = ~0ULL;
    };

    PcstallConfig cfg;
    std::vector<predict::PcSensitivityTable> tables;
    /** Last-epoch model per (cu, slot): used directly while the wave
     *  stays in the same code region, and as the miss fallback. */
    std::map<std::pair<std::uint32_t, std::uint32_t>, WaveModel>
        lastModel;
    /** Measured throughput share per age rank (adaptive contention). */
    std::vector<double> ageShare;

    // --- divergence watchdog state ---------------------------------
    /** Reactive policy decisions come from while tripped. */
    models::ReactiveController stallFallback{
        models::EstimationKind::Stall};
    /** Previous epoch's per-domain phase model (prediction shadow). */
    std::vector<double> prevSens;
    std::vector<double> prevLevel;
    bool havePrev = false;
    bool fallback_ = false;
    std::uint32_t badStreak = 0;
    std::uint32_t goodStreak = 0;
    std::uint64_t trips_ = 0;
    std::uint64_t fallbackEpochs_ = 0;
    std::uint64_t bitFlips_ = 0;
};

} // namespace pcstall::core

#endif // PCSTALL_CORE_PCSTALL_CONTROLLER_HH
