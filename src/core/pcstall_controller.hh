/**
 * @file
 * PCSTALL: the paper's contribution. A wavefront-level, PC-indexed
 * sensitivity predictor driving per-domain DVFS decisions
 * (Sections 4.2-4.4, Figure 12).
 *
 * Per epoch boundary:
 *  1. UPDATE - each wavefront active in the elapsed epoch estimates
 *     its sensitivity with the wavefront STALL model, normalizes it by
 *     scheduling age, and stores it in the PC table indexed by the PC
 *     the epoch started at.
 *  2. LOOKUP - each resident wavefront indexes the table with its
 *     *next* PC; the retrieved per-wave sensitivities are de-
 *     normalized by current age and summed into the domain
 *     sensitivity (the metric is commutative, Section 4.2).
 *  3. SELECT - predicted instructions at each candidate state
 *     I(f) = I_elapsed + S * (f - f_elapsed) feed the objective
 *     function, which is orthogonal to the prediction (Section 5.2).
 *
 * With cfg.accurateEstimates = true this becomes ACCPC: the table is
 * filled with fork-pre-execute measured wavefront sensitivities
 * instead of the STALL-model estimates (Table III).
 */

#ifndef PCSTALL_CORE_PCSTALL_CONTROLLER_HH
#define PCSTALL_CORE_PCSTALL_CONTROLLER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "dvfs/controller.hh"
#include "models/wave_estimator.hh"
#include "predict/pc_table.hh"

namespace pcstall::core
{

/** Full PCSTALL configuration. */
struct PcstallConfig
{
    predict::PcTableConfig table;
    models::WaveEstimatorConfig estimator;
    /** One PC table per this many CUs (paper: tables may be shared). */
    std::uint32_t cusPerTable = 1;
    /** ACCPC mode: fill the table from oracle wave sensitivities. */
    bool accurateEstimates = false;
    /**
     * Learn the age-rank contention factors from observed per-age
     * throughput shares (an EWMA over epochs) instead of the static
     * linear model. This is the paper's "normalized depending on the
     * relative age" with a self-calibrating correction; hardware cost
     * is one small counter per wave slot. Ablation toggle.
     */
    bool adaptiveContention = true;
    /** EWMA weight for the adaptive contention update. */
    double contentionAlpha = 0.25;
    /**
     * On table miss, fall back to the wave's own last-epoch estimate
     * (reactive fallback) instead of predicting zero.
     */
    bool reactiveFallback = true;
    /**
     * While a wave's PC stays inside the granule its previous epoch
     * started in, its own last-epoch model is the best predictor (the
     * region has not changed); the table entry is consulted only when
     * the PC has moved - precisely where last-value prediction fails.
     * Hardware cost: one compare against the starting-PC register
     * PCSTALL already keeps per wave (Table I). Ablation toggle.
     */
    bool lookupOnRegionChange = true;

    /**
     * Scale the quantization range for an epoch length (longer epochs
     * commit proportionally more instructions per wave).
     */
    static PcstallConfig forEpoch(Tick epoch_len,
                                  std::uint32_t wave_slots = 40);
};

/** The PCSTALL (or ACCPC) DVFS controller. */
class PcstallController : public dvfs::DvfsController
{
  public:
    PcstallController(const PcstallConfig &config, std::uint32_t num_cus);

    std::string name() const override;

    dvfs::SweepNeed sweepNeed() const override
    {
        return cfg.accurateEstimates ? dvfs::SweepNeed::Elapsed
                                     : dvfs::SweepNeed::None;
    }

    bool needsWaveLevel() const override { return cfg.accurateEstimates; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;

    /** Aggregate PC-table hit ratio across all instances. */
    double tableHitRatio() const;

    /** Current contention factor for an age rank (test hook). */
    double contention(std::uint32_t age_rank) const;

    /** Total predictor storage in bytes across all instances. */
    std::uint64_t storageBytes() const;

    const PcstallConfig &config() const { return cfg; }

  private:
    predict::PcSensitivityTable &tableFor(std::uint32_t cu)
    {
        return tables[cu / cfg.cusPerTable];
    }

    /** Refresh the adaptive age-share EWMA from an epoch record. */
    void learnContention(const dvfs::EpochContext &ctx);

    /** A wave's elapsed-epoch phase model and where it started. */
    struct WaveModel
    {
        double sens = 0.0;
        double level = 0.0;
        /** PC-table granule the elapsed epoch started at. */
        std::uint64_t granule = ~0ULL;
    };

    PcstallConfig cfg;
    std::vector<predict::PcSensitivityTable> tables;
    /** Last-epoch model per (cu, slot): used directly while the wave
     *  stays in the same code region, and as the miss fallback. */
    std::map<std::pair<std::uint32_t, std::uint32_t>, WaveModel>
        lastModel;
    /** Measured throughput share per age rank (adaptive contention). */
    std::vector<double> ageShare;
};

} // namespace pcstall::core

#endif // PCSTALL_CORE_PCSTALL_CONTROLLER_HH
