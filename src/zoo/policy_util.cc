#include "zoo/policy_util.hh"

namespace pcstall::zoo
{

std::vector<dvfs::DomainDecision>
chooseFromInstrAt(const dvfs::EpochContext &ctx,
                  const std::vector<std::vector<double>> &instr_at,
                  double perf_limit_override)
{
    std::vector<dvfs::DomainDecision> out(ctx.domains.numDomains());
    for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
        dvfs::DomainScoreInputs in;
        in.instrAtState = instr_at[d];
        in.baselineInstr = domainCommitted(ctx, d);
        in.baselineActivity =
            dvfs::domainActivity(ctx.domains, d, ctx.record);
        in.numCus = ctx.domains.cusPerDomain();
        in.staticShare =
            ctx.power.params().memStatic / ctx.domains.numDomains();
        in.epochLen = ctx.epochLen;
        in.temperature = ctx.temperature;
        in.perfDegradationLimit = perf_limit_override >= 0.0
            ? perf_limit_override : ctx.perfDegradationLimit;
        in.nominalState = ctx.nominalState;
        in.avgChipPower = ctx.avgChipPower;
        if (ctx.avgDomainInstr != nullptr)
            in.avgInstr = (*ctx.avgDomainInstr)[d];

        out[d].state = dvfs::chooseState(ctx.table, ctx.power, in,
                                         ctx.objective);
        out[d].predictedInstr = instr_at[d][out[d].state];
    }
    return out;
}

double
domainCommitted(const dvfs::EpochContext &ctx, std::uint32_t d)
{
    return dvfs::sumOverDomain(ctx.domains, d, [&](std::uint32_t cu) {
        return static_cast<double>(ctx.record.cus[cu].committed);
    });
}

std::size_t
domainActualState(const dvfs::EpochContext &ctx, std::uint32_t d)
{
    const Freq freq =
        ctx.record.cus[ctx.domains.firstCu(d)].freq;
    if (freq == 0)
        return ctx.nominalState;
    return ctx.table.nearestIndex(freq);
}

void
DivergenceWatchdog::observe(double mean_rel_error)
{
    if (!enabled)
        return;
    if (mean_rel_error > errorThreshold) {
        goodStreak = 0;
        if (!fallback && ++badStreak >= tripAfter) {
            fallback = true;
            ++trips_;
        }
    } else {
        badStreak = 0;
        if (fallback && ++goodStreak >= recoverAfter)
            fallback = false;
    }
}

} // namespace pcstall::zoo
