/**
 * @file
 * DSO: a static+dynamic fusion DVFS policy after "DSO: A GPU Energy
 * Efficiency Optimizer by Fusing Dynamic and Static Information"
 * (arXiv:2407.13096). The insight transplanted here: static program
 * features predict a kernel's memory intensity before any epoch has
 * run, and fusing that prior with measured dynamic counters is more
 * robust than either alone - the static side fills in where dynamic
 * telemetry is cold or noisy, the dynamic side corrects where the
 * static model mispredicts actual contention.
 *
 * Static side (at construction, from the Application): each kernel
 * launch gets a loop-trip-weighted instruction-mix analysis - every
 * instruction's cost is weighted by the product of the mean trip
 * counts of the loops enclosing it, memory operations cost `memcost`
 * CU cycles against the ALU ops' encoded latencies - yielding a
 * static memory-time fraction per kernel, indexed by code range.
 *
 * Dynamic side (per epoch): the measured STALL decomposition
 * (loadStall / epoch), exactly the baseline reactive telemetry.
 *
 * Fusion (per CU, per epoch): resident waves' PCs map the CU to its
 * kernel's static fraction, and
 *     asyncFrac = beta * static + (1 - beta) * dynamic
 * feeds the standard I(f2) = I * T / (T_async + T_core * f1/f2)
 * scaling model. Without an Application (app-less tooling contexts)
 * the policy degrades to the pure dynamic side after a warn.
 *
 * Config knobs: beta=0.5 (static weight), memcost=400 (static cycles
 * charged per memory op). Divergence watchdog wired to --watchdog.
 */

#ifndef PCSTALL_ZOO_DSO_CONTROLLER_HH
#define PCSTALL_ZOO_DSO_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "models/reactive_controller.hh"
#include "zoo/policy_util.hh"

namespace pcstall::isa
{
struct Application;
}

namespace pcstall::zoo
{

/** DSO configuration (see file comment). */
struct DsoConfig
{
    /** Weight of the static prior in the fused async fraction. */
    double beta = 0.5;
    /** Static cycle cost charged per vector-memory instruction. */
    double memCostCycles = 400.0;
    /** Divergence watchdog (wired to --watchdog). */
    bool watchdog = false;
};

/** Static + dynamic fusion controller. */
class DsoController : public dvfs::DvfsController
{
  public:
    /** @p app may be null: the policy then runs dynamic-only. */
    DsoController(const DsoConfig &config, const isa::Application *app);

    std::string name() const override { return "DSO"; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;

    std::uint64_t watchdogTrips() const override
    {
        return watchdog.trips();
    }
    std::uint64_t fallbackEpochs() const override
    {
        return watchdog.fallbackEpochs();
    }

    /** Distinct kernels with a static profile (test hook). */
    std::size_t staticKernelCount() const { return kernels.size(); }

    /** The static memory-time fraction for a code byte address, or
     *  -1.0 when no kernel covers it (test hook / lookup core). */
    double staticFracAt(std::uint64_t pc_addr) const;

  private:
    /** One kernel's static profile, indexed by code byte range. */
    struct StaticKernel
    {
        std::uint64_t base = 0;
        std::uint64_t end = 0;
        /** Loop-weighted fraction of time spent on memory ops. */
        double memFrac = 0.0;
    };

    DsoConfig cfg;
    /** Sorted by base; deduplicated (launches share code bases). */
    std::vector<StaticKernel> kernels;
    bool warnedNoApp = false;
    /** Last epoch's per-domain predictions (watchdog scoring). */
    std::vector<std::vector<double>> prevInstrAt;
    DivergenceWatchdog watchdog;
    models::ReactiveController stallFallback{
        models::EstimationKind::Stall};
};

} // namespace pcstall::zoo

#endif // PCSTALL_ZOO_DSO_CONTROLLER_HH
