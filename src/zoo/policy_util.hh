/**
 * @file
 * Shared plumbing for the src/zoo related-work controllers: the
 * instr-at-state -> objective -> decision step every policy ends
 * with (the same shape ReactiveController uses), and a reusable
 * divergence watchdog mirroring PCSTALL's trip/recover hysteresis so
 * zoo policies degrade to the reactive STALL fallback instead of
 * acting on a model that has stopped describing the workload.
 */

#ifndef PCSTALL_ZOO_POLICY_UTIL_HH
#define PCSTALL_ZOO_POLICY_UTIL_HH

#include <cstdint>
#include <vector>

#include "dvfs/controller.hh"

namespace pcstall::zoo
{

/**
 * Score @p instr_at (one predicted-instruction vector per domain,
 * indexed by V/f state) under the context's objective and return one
 * decision per domain, with predictedInstr filled from the chosen
 * state. @p perf_limit_override, when >= 0, replaces the context's
 * EnergyUnderPerfBound degradation limit (deadline-margin support).
 */
std::vector<dvfs::DomainDecision>
chooseFromInstrAt(const dvfs::EpochContext &ctx,
                  const std::vector<std::vector<double>> &instr_at,
                  double perf_limit_override = -1.0);

/** Instructions committed by one domain in the elapsed epoch. */
double domainCommitted(const dvfs::EpochContext &ctx, std::uint32_t d);

/**
 * The V/f state index one domain actually ran the elapsed epoch at
 * (nearest table entry to its CUs' recorded frequency) - the state a
 * prediction must be evaluated at when scoring the predictor, so DVFS
 * transition faults do not count against the model.
 */
std::size_t domainActualState(const dvfs::EpochContext &ctx,
                              std::uint32_t d);

/**
 * Divergence watchdog with PCSTALL's semantics: after tripAfter
 * consecutive epochs whose mean relative prediction error exceeds
 * errorThreshold, decisions switch to a fallback policy; recoverAfter
 * consecutive good epochs switch back (hysteresis, no flapping).
 */
struct DivergenceWatchdog
{
    bool enabled = false;
    /** Mean relative prediction error that counts as a bad epoch
     *  (loose on purpose; see core/pcstall_controller.hh). */
    double errorThreshold = 0.75;
    std::uint32_t tripAfter = 3;
    std::uint32_t recoverAfter = 8;

    /** Advance the hysteresis with one epoch's mean relative error. */
    void observe(double mean_rel_error);

    /** True while decisions should come from the fallback policy. */
    bool inFallback() const { return fallback; }
    /** Count one epoch decided by the fallback. */
    void noteFallbackEpoch() { ++fallbackEpochs_; }

    std::uint64_t trips() const { return trips_; }
    std::uint64_t fallbackEpochs() const { return fallbackEpochs_; }

  private:
    bool fallback = false;
    std::uint32_t badStreak = 0;
    std::uint32_t goodStreak = 0;
    std::uint64_t trips_ = 0;
    std::uint64_t fallbackEpochs_ = 0;
};

} // namespace pcstall::zoo

#endif // PCSTALL_ZOO_POLICY_UTIL_HH
