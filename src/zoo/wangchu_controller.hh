/**
 * @file
 * WANGCHU: the analytical core/memory-overlap performance model of
 * Wang & Chu, "GPGPU Performance Estimation with Core and Memory
 * Frequency Scaling" (arXiv:1701.05308), recast as a per-epoch DVFS
 * policy. Their model decomposes kernel time into a core-clock
 * component, a memory component and their measured overlap:
 *
 *   T(f_core) = T_core * f1/f_core + T_mem - overlap(f_core) + T_other
 *
 * Here T_core is the CU's issue-busy time (scales with the core
 * clock), T_mem the union of in-flight-load intervals (fixed-clock
 * memory), the overlap scales with the core clock but can never
 * exceed the memory window, and T_other is the residual (barrier and
 * idle time, held frequency-invariant). At the elapsed frequency the
 * decomposition reproduces the epoch exactly, so same-state
 * predictions are the identity.
 *
 * The controller is memoryless - every decision is a pure function of
 * the elapsed epoch record - hence trivially replay-safe; there is no
 * predictor storage to corrupt, so --ecc has nothing to protect and a
 * divergence watchdog would only ever fall back from the model onto a
 * simpler one (the model *is* the simple one). No config knobs.
 */

#ifndef PCSTALL_ZOO_WANGCHU_CONTROLLER_HH
#define PCSTALL_ZOO_WANGCHU_CONTROLLER_HH

#include <string>
#include <vector>

#include "zoo/policy_util.hh"

namespace pcstall::zoo
{

/** Analytical core+memory frequency-scaling controller. */
class WangChuController : public dvfs::DvfsController
{
  public:
    std::string name() const override { return "WANGCHU"; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;
};

/**
 * The model core: instructions one CU would have committed had the
 * elapsed epoch run at @p f2 (test hook; also used by decide()).
 */
double wangChuInstrAt(const gpu::CuEpochRecord &record, Tick epoch_len,
                      Freq f2);

} // namespace pcstall::zoo

#endif // PCSTALL_ZOO_WANGCHU_CONTROLLER_HH
