#include "zoo/regr_controller.hh"

#include <algorithm>
#include <cmath>

#include "common/stats_util.hh"
#include "models/estimation.hh"
#include "obs/context.hh"

namespace pcstall::zoo
{

RegrController::RegrController(const RegrConfig &config,
                               std::uint32_t num_domains)
    : cfg(config), domains_(num_domains)
{
    cfg.historyLength = std::max(cfg.historyLength, 2u);
    cfg.forget = clampTo(cfg.forget, 0.01, 1.0);
    cfg.deadlineMargin = clampTo(cfg.deadlineMargin, 0.0, 0.5);
    watchdog.enabled = cfg.watchdog;
}

bool
RegrController::fitDomain(const DomainState &dom, double &a,
                          double &b) const
{
    if (dom.ring.size() < 2)
        return false;
    // Forgetting-weighted normal equations; newest sample weight 1.
    double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
    double w = 1.0;
    double fmin = dom.ring.back().freqGhz;
    double fmax = fmin;
    for (std::size_t i = dom.ring.size(); i-- > 0; w *= cfg.forget) {
        const Sample &s = dom.ring[i];
        fmin = std::min(fmin, s.freqGhz);
        fmax = std::max(fmax, s.freqGhz);
        sw += w;
        swx += w * s.freqGhz;
        swy += w * s.instr;
        swxx += w * s.freqGhz * s.freqGhz;
        swxy += w * s.freqGhz * s.instr;
    }
    // Rank: the fit needs real frequency spread (half a V/f step),
    // else the slope is noise amplified by 1/det.
    if (fmax - fmin < 0.05)
        return false;
    const double det = sw * swxx - swx * swx;
    if (det <= 1e-12)
        return false;
    b = (sw * swxy - swx * swy) / det;
    a = (swy - b * swx) / sw;
    // Throughput never falls with frequency; a negative learned slope
    // is noise (or a memory-bound plateau) - flatten it.
    if (b < 0.0) {
        b = 0.0;
        a = swy / sw;
    }
    return true;
}

std::vector<dvfs::DomainDecision>
RegrController::decide(const dvfs::EpochContext &ctx)
{
    const std::size_t num_states = ctx.table.numStates();
    const std::uint32_t num_domains = ctx.domains.numDomains();
    obs::Registry &registry = obs::reg();
    ++epochIndex;

    // 1. Learn: append the elapsed epoch's (frequency, throughput)
    //    observation, and score the previous prediction for the
    //    watchdog (at the state the domain actually ran, so transition
    //    faults do not count against the model).
    double err_sum = 0.0;
    std::uint32_t err_n = 0;
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        DomainState &dom = domains_[d];
        const double committed = domainCommitted(ctx, d);
        const Freq freq = ctx.record.cus[ctx.domains.firstCu(d)].freq;
        if (committed > 0.0 && freq > 0) {
            dom.ring.push_back({freqGHzD(freq), committed});
            if (dom.ring.size() > cfg.historyLength)
                dom.ring.erase(dom.ring.begin());
            registry.counter("controller.regr.samples").add(1);
        }
        if (!dom.prevInstrAt.empty() && committed > 0.0) {
            const double predicted =
                dom.prevInstrAt[domainActualState(ctx, d)];
            err_sum += std::abs(predicted - committed) / committed;
            ++err_n;
        }
    }
    if (err_n > 0)
        watchdog.observe(err_sum / static_cast<double>(err_n));

    // 2. Predict: the learned regression where it has rank, the STALL
    //    decomposition where it does not (cold start / no diversity).
    std::vector<std::vector<double>> instr_at(
        num_domains, std::vector<double>(num_states, 0.0));
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        double a = 0.0, b = 0.0;
        const bool fitted = fitDomain(domains_[d], a, b);
        if (ctx.audit) {
            // A successful fit is this design's "table hit"; the
            // STALL anchor is its reactive path.
            dvfs::DomainAudit &aud = ctx.audit->domains[d];
            ++aud.lookups;
            if (fitted) {
                ++aud.hits;
                aud.predictedSens = b;
                aud.predictedLevel = a;
            } else {
                ++aud.reactive;
            }
        }
        if (fitted) {
            ++fitDecisions_;
            registry.counter("controller.regr.fit_decisions").add(1);
        } else {
            registry.counter("controller.regr.anchor_decisions").add(1);
        }
        for (std::size_t s = 0; s < num_states; ++s) {
            const Freq f2 = ctx.table.state(s).freq;
            if (fitted) {
                instr_at[d][s] = std::max(0.0, a + b * freqGHzD(f2));
            } else {
                instr_at[d][s] = dvfs::sumOverDomain(
                    ctx.domains, d, [&](std::uint32_t cu) {
                        return models::cuInstrAt(
                            models::EstimationKind::Stall,
                            ctx.record.cus[cu], ctx.epochLen, f2);
                    });
            }
        }
        domains_[d].prevInstrAt = instr_at[d];
    }

    // 3. Select. While the watchdog is tripped the reactive STALL
    //    fallback decides; otherwise the objective scores the model,
    //    with the deadline margin tightening the perf bound.
    if (watchdog.inFallback()) {
        watchdog.noteFallbackEpoch();
        registry.counter("controller.regr.fallback_epochs").add(1);
        if (ctx.audit)
            ctx.audit->fallbackActive = true;
        return stallFallback.decide(ctx);
    }
    double limit_override = -1.0;
    if (ctx.objective == dvfs::Objective::EnergyUnderPerfBound) {
        limit_override = std::max(
            0.0, ctx.perfDegradationLimit - cfg.deadlineMargin);
    }
    std::vector<dvfs::DomainDecision> out =
        chooseFromInstrAt(ctx, instr_at, limit_override);

    // 4. Probe: periodically nudge each domain one state (alternating
    //    direction) so the regression keeps frequency diversity.
    if (cfg.probePeriod > 0 &&
        epochIndex % cfg.probePeriod == cfg.probePeriod - 1) {
        const bool up = (epochIndex / cfg.probePeriod) % 2 == 0;
        for (std::uint32_t d = 0; d < num_domains; ++d) {
            std::size_t probed = out[d].state;
            if (up && probed + 1 < num_states)
                ++probed;
            else if (!up && probed > 0)
                --probed;
            out[d].state = probed;
            out[d].predictedInstr = instr_at[d][probed];
        }
        registry.counter("controller.regr.probe_epochs").add(1);
    }
    return out;
}

} // namespace pcstall::zoo
