#include "zoo/wangchu_controller.hh"

#include <algorithm>

#include "obs/context.hh"

namespace pcstall::zoo
{

double
wangChuInstrAt(const gpu::CuEpochRecord &record, Tick epoch_len,
               Freq f2)
{
    if (record.committed == 0 || record.freq == 0 || f2 == 0)
        return 0.0;
    const double epoch = static_cast<double>(epoch_len);
    const double t_core = static_cast<double>(record.busy);
    const double t_mem = static_cast<double>(record.memInterval);
    // Measured overlap can exceed neither component it overlaps.
    const double ov = std::min(static_cast<double>(record.overlap),
                               std::min(t_core, t_mem));
    const double t_other =
        std::max(0.0, epoch - (t_core + t_mem - ov));
    const double ratio = static_cast<double>(record.freq) /
        static_cast<double>(f2);
    // Issue time and its memory-overlapped share both scale with the
    // core clock; the overlap credit stays bounded by the (fixed
    // clock) memory window.
    const double t_core2 = t_core * ratio;
    const double ov2 = std::min(ov * ratio, t_mem);
    const double t2 = std::max(t_core2 + t_mem - ov2 + t_other, 1.0);
    return static_cast<double>(record.committed) * epoch / t2;
}

std::vector<dvfs::DomainDecision>
WangChuController::decide(const dvfs::EpochContext &ctx)
{
    const std::size_t num_states = ctx.table.numStates();
    const std::uint32_t num_domains = ctx.domains.numDomains();
    obs::Registry &registry = obs::reg();
    registry.counter("controller.wangchu.epochs").add(1);

    std::vector<std::vector<double>> instr_at(
        num_domains, std::vector<double>(num_states, 0.0));
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        double t_core = 0.0;
        double t_mem_excl = 0.0;
        for (std::size_t s = 0; s < num_states; ++s) {
            const Freq f2 = ctx.table.state(s).freq;
            instr_at[d][s] = dvfs::sumOverDomain(
                ctx.domains, d, [&](std::uint32_t cu) {
                    return wangChuInstrAt(ctx.record.cus[cu],
                                          ctx.epochLen, f2);
                });
        }
        dvfs::sumOverDomain(ctx.domains, d, [&](std::uint32_t cu) {
            const gpu::CuEpochRecord &rec = ctx.record.cus[cu];
            t_core += static_cast<double>(rec.busy);
            t_mem_excl += static_cast<double>(rec.memInterval) -
                static_cast<double>(
                    std::min(rec.overlap,
                             std::min(rec.busy, rec.memInterval)));
            return 0.0;
        });
        if (t_mem_excl > t_core) {
            registry.counter("controller.wangchu.mem_bound_domains")
                .add(1);
        }
    }
    return chooseFromInstrAt(ctx, instr_at);
}

} // namespace pcstall::zoo
