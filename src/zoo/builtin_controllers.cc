/**
 * @file
 * Factories for every builtin design and their registration from
 * controllers.def. registerBuiltinControllers() is called (once) by
 * ControllerRegistry::instance(), giving this translation unit a
 * strong reference so a static-library link never drops it - the
 * pitfall of purely static-init registration in archive libraries.
 */

#include <cstdlib>
#include <memory>

#include "common/logging.hh"
#include "core/pcstall_controller.hh"
#include "models/history_controller.hh"
#include "models/reactive_controller.hh"
#include "oracle/oracle_controllers.hh"
#include "sim/experiment.hh"
#include "zoo/dso_controller.hh"
#include "zoo/regr_controller.hh"
#include "zoo/registry.hh"
#include "zoo/wangchu_controller.hh"

namespace pcstall::dvfs
{

namespace
{

using Ptr = std::unique_ptr<DvfsController>;

Ptr
makeStall(const ControllerContext &)
{
    return std::make_unique<models::ReactiveController>(
        models::EstimationKind::Stall);
}

Ptr
makeLead(const ControllerContext &)
{
    return std::make_unique<models::ReactiveController>(
        models::EstimationKind::Lead);
}

Ptr
makeCrit(const ControllerContext &)
{
    return std::make_unique<models::ReactiveController>(
        models::EstimationKind::Crit);
}

Ptr
makeCrisp(const ControllerContext &)
{
    return std::make_unique<models::ReactiveController>(
        models::EstimationKind::Crisp);
}

Ptr
makeAccReac(const ControllerContext &)
{
    return std::make_unique<oracle::AccurateReactiveController>();
}

Ptr
makeOracle(const ControllerContext &)
{
    return std::make_unique<oracle::OracleController>();
}

Ptr
makePcstallLike(const ControllerContext &ctx, bool accurate)
{
    core::PcstallConfig pc = core::PcstallConfig::forEpoch(
        ctx.cfg.epochLen, ctx.cfg.gpu.waveSlotsPerCu);
    pc.accurateEstimates = accurate;
    pc.watchdog.enabled = ctx.cfg.watchdogFallback;
    pc.table.parityProtected = ctx.cfg.eccProtectTables;
    return std::make_unique<core::PcstallController>(
        pc, ctx.cfg.gpu.numCus);
}

Ptr
makePcstall(const ControllerContext &ctx)
{
    return makePcstallLike(ctx, false);
}

Ptr
makeAccPc(const ControllerContext &ctx)
{
    return makePcstallLike(ctx, true);
}

Ptr
makeGpht(const ControllerContext &ctx)
{
    models::HistoryConfig hcfg;
    hcfg.estimator.waveSlots = ctx.cfg.gpu.waveSlotsPerCu;
    return std::make_unique<models::HistoryController>(
        hcfg, ctx.cfg.gpu.numCus / ctx.cfg.cusPerDomain);
}

Ptr
makeStatic(const ControllerContext &ctx)
{
    if (ctx.config.empty()) {
        warnLimited("static-no-state",
                    "STATIC needs a state index (STATIC[n] or "
                    "STATIC:n)");
        return nullptr;
    }
    char *end = nullptr;
    const unsigned long state =
        std::strtoul(ctx.config.c_str(), &end, 10);
    if (end == ctx.config.c_str() || *end != '\0') {
        warnLimited("static-bad-state",
                    "STATIC: malformed state index '" + ctx.config +
                        "'");
        return nullptr;
    }
    return std::make_unique<StaticController>(
        static_cast<std::size_t>(state));
}

Ptr
makeRegr(const ControllerContext &ctx)
{
    const ConfigKnobs knobs(ctx.config);
    zoo::RegrConfig cfg;
    cfg.historyLength = static_cast<std::uint32_t>(
        knobs.getInt("hist", cfg.historyLength));
    cfg.forget = knobs.getDouble("forget", cfg.forget);
    cfg.deadlineMargin = knobs.getDouble("margin", cfg.deadlineMargin);
    cfg.probePeriod = static_cast<std::uint32_t>(
        knobs.getInt("probe", cfg.probePeriod));
    cfg.watchdog = ctx.cfg.watchdogFallback;
    knobs.warnUnused("REGR");
    return std::make_unique<zoo::RegrController>(
        cfg, ctx.cfg.gpu.numCus / ctx.cfg.cusPerDomain);
}

Ptr
makeDso(const ControllerContext &ctx)
{
    const ConfigKnobs knobs(ctx.config);
    zoo::DsoConfig cfg;
    cfg.beta = knobs.getDouble("beta", cfg.beta);
    cfg.memCostCycles = knobs.getDouble("memcost", cfg.memCostCycles);
    cfg.watchdog = ctx.cfg.watchdogFallback;
    knobs.warnUnused("DSO");
    return std::make_unique<zoo::DsoController>(cfg, ctx.app);
}

Ptr
makeWangChu(const ControllerContext &ctx)
{
    const ConfigKnobs knobs(ctx.config);
    knobs.warnUnused("WANGCHU");
    return std::make_unique<zoo::WangChuController>();
}

} // namespace

void
registerBuiltinControllers(ControllerRegistry &registry)
{
#define PCSTALL_CONTROLLER(name, paper, needs_config, factory,         \
                           summary, config_help)                       \
    registry.add(ControllerInfo{#name, summary, config_help, paper,    \
                                needs_config},                         \
                 factory);
#include "zoo/controllers.def"
#undef PCSTALL_CONTROLLER
}

} // namespace pcstall::dvfs
