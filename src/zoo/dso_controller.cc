#include "zoo/dso_controller.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "isa/kernel.hh"
#include "models/estimation.hh"
#include "obs/context.hh"

namespace pcstall::zoo
{

namespace
{

/**
 * Loop-trip-weighted static memory-time fraction of one kernel: every
 * instruction inside a loop body [target .. branch] is weighted by
 * that loop's mean trip count (nested loops multiply), memory ops are
 * charged @p mem_cost cycles, everything else its encoded latency.
 */
double
staticMemFrac(const isa::Kernel &kernel, double mem_cost)
{
    std::vector<double> weight(kernel.code.size(), 1.0);
    for (std::size_t i = 0; i < kernel.code.size(); ++i) {
        const isa::Instruction &instr = kernel.code[i];
        if (instr.op != isa::OpType::Branch || instr.target < 0 ||
            static_cast<std::size_t>(instr.target) > i) {
            continue;
        }
        double trips = 1.0;
        if (instr.loopId < kernel.loops.size()) {
            trips = std::max<double>(
                1.0, kernel.loops[instr.loopId].baseTrips);
        }
        for (std::size_t j = instr.target; j <= i; ++j)
            weight[j] *= trips;
    }
    double mem = 0.0;
    double core = 0.0;
    for (std::size_t i = 0; i < kernel.code.size(); ++i) {
        const isa::Instruction &instr = kernel.code[i];
        switch (instr.op) {
        case isa::OpType::VMemLoad:
        case isa::OpType::VMemStore:
            mem += weight[i] * mem_cost;
            break;
        case isa::OpType::Waitcnt:
        case isa::OpType::Barrier:
        case isa::OpType::EndPgm:
            break; // join points: time charged to what they wait on
        default:
            core += weight[i] * static_cast<double>(instr.latency);
            break;
        }
    }
    const double total = mem + core;
    return total > 0.0 ? mem / total : 0.0;
}

} // namespace

DsoController::DsoController(const DsoConfig &config,
                             const isa::Application *app)
    : cfg(config)
{
    cfg.beta = clampTo(cfg.beta, 0.0, 1.0);
    cfg.memCostCycles = std::max(cfg.memCostCycles, 1.0);
    watchdog.enabled = cfg.watchdog;
    if (app == nullptr)
        return;
    for (const isa::Kernel &kernel : app->launches) {
        const std::uint64_t end = kernel.codeBase +
            kernel.code.size() * isa::instrSizeBytes;
        const auto dup = std::find_if(
            kernels.begin(), kernels.end(),
            [&](const StaticKernel &k) {
                return k.base == kernel.codeBase;
            });
        if (dup != kernels.end())
            continue; // relaunch of an analysed kernel
        kernels.push_back({kernel.codeBase, end,
                           staticMemFrac(kernel, cfg.memCostCycles)});
    }
    std::sort(kernels.begin(), kernels.end(),
              [](const StaticKernel &a, const StaticKernel &b) {
                  return a.base < b.base;
              });
    obs::reg()
        .gauge("controller.dso.static_kernels")
        .set(static_cast<double>(kernels.size()));
}

double
DsoController::staticFracAt(std::uint64_t pc_addr) const
{
    // Binary search the sorted, disjoint code ranges.
    std::size_t lo = 0;
    std::size_t hi = kernels.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (kernels[mid].end <= pc_addr)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < kernels.size() && kernels[lo].base <= pc_addr)
        return kernels[lo].memFrac;
    return -1.0;
}

std::vector<dvfs::DomainDecision>
DsoController::decide(const dvfs::EpochContext &ctx)
{
    const std::size_t num_states = ctx.table.numStates();
    const std::uint32_t num_cus = ctx.domains.numCus();
    const std::uint32_t num_domains = ctx.domains.numDomains();
    obs::Registry &registry = obs::reg();

    if (kernels.empty() && !warnedNoApp) {
        warnedNoApp = true;
        warnLimited("dso-no-app",
                    "DSO: no application for static analysis; "
                    "running dynamic-only");
    }

    // Watchdog: score last epoch's prediction at the realized state.
    if (!prevInstrAt.empty()) {
        double err_sum = 0.0;
        std::uint32_t err_n = 0;
        for (std::uint32_t d = 0; d < num_domains; ++d) {
            const double committed = domainCommitted(ctx, d);
            if (committed <= 0.0)
                continue;
            const double predicted =
                prevInstrAt[d][domainActualState(ctx, d)];
            err_sum += std::abs(predicted - committed) / committed;
            ++err_n;
        }
        if (err_n > 0)
            watchdog.observe(err_sum / static_cast<double>(err_n));
    }

    // Static prior per CU: mean static fraction over the kernels the
    // CU's resident waves are executing right now.
    std::vector<double> static_frac(num_cus, -1.0);
    if (!kernels.empty()) {
        std::vector<double> sum(num_cus, 0.0);
        std::vector<std::uint32_t> n(num_cus, 0);
        for (const gpu::WaveSnapshot &wave : ctx.snapshots) {
            const double frac = staticFracAt(wave.pcAddr);
            dvfs::DomainAudit *aud = ctx.audit
                ? &ctx.audit->domains[ctx.domains.domainOf(wave.cu)]
                : nullptr;
            if (aud) {
                ++aud->lookups;
                if (aud->pcKey == 0)
                    aud->pcKey = wave.pcAddr;
            }
            if (frac >= 0.0) {
                sum[wave.cu] += frac;
                ++n[wave.cu];
                if (aud)
                    ++aud->hits;
                registry.counter("controller.dso.lookup_hits").add(1);
            } else {
                registry.counter("controller.dso.lookup_misses").add(1);
            }
        }
        for (std::uint32_t cu = 0; cu < num_cus; ++cu) {
            if (n[cu] > 0)
                static_frac[cu] = sum[cu] / n[cu];
        }
    }

    // Fuse and scale per CU, aggregate per domain.
    const double epoch = static_cast<double>(ctx.epochLen);
    std::vector<std::vector<double>> instr_at(
        num_domains, std::vector<double>(num_states, 0.0));
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        for (std::size_t s = 0; s < num_states; ++s) {
            const Freq f2 = ctx.table.state(s).freq;
            instr_at[d][s] = dvfs::sumOverDomain(
                ctx.domains, d, [&](std::uint32_t cu) {
                    const gpu::CuEpochRecord &rec = ctx.record.cus[cu];
                    if (rec.committed == 0 || rec.freq == 0)
                        return 0.0;
                    const double dyn = clampTo(
                        static_cast<double>(rec.loadStall) / epoch,
                        0.0, 1.0);
                    const double stat = static_frac[cu];
                    const double fused = stat >= 0.0
                        ? cfg.beta * stat + (1.0 - cfg.beta) * dyn
                        : dyn;
                    const double t_async = fused * epoch;
                    const double ratio =
                        static_cast<double>(rec.freq) /
                        static_cast<double>(f2);
                    const double t2 =
                        t_async + (epoch - t_async) * ratio;
                    return static_cast<double>(rec.committed) * epoch /
                        std::max(t2, 1.0);
                });
        }
    }
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        // prevInstrAt is sized lazily so the first epoch scores no
        // prediction (there is none yet).
        if (prevInstrAt.size() != num_domains)
            prevInstrAt.assign(num_domains, {});
        prevInstrAt[d] = instr_at[d];
    }
    registry.counter("controller.dso.decisions").add(num_domains);

    if (watchdog.inFallback()) {
        watchdog.noteFallbackEpoch();
        registry.counter("controller.dso.fallback_epochs").add(1);
        if (ctx.audit)
            ctx.audit->fallbackActive = true;
        return stallFallback.decide(ctx);
    }
    return chooseFromInstrAt(ctx, instr_at);
}

} // namespace pcstall::zoo
