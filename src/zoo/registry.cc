#include "zoo/registry.hh"

#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace pcstall::dvfs
{

// Defined in builtin_controllers.cc (same library). Called from
// instance(), which gives the builtin TU a strong reference so a
// static-library link can never drop its registrations.
void registerBuiltinControllers(ControllerRegistry &registry);

ParsedDesign
splitDesign(const std::string &design)
{
    ParsedDesign parsed;
    // Legacy bracket spelling: STATIC[7] == STATIC:7.
    if (design.rfind("STATIC[", 0) == 0 && design.back() == ']') {
        parsed.base = "STATIC";
        parsed.config = design.substr(7, design.size() - 8);
        return parsed;
    }
    const std::size_t colon = design.find(':');
    if (colon == std::string::npos) {
        parsed.base = design;
    } else {
        parsed.base = design.substr(0, colon);
        parsed.config = design.substr(colon + 1);
    }
    return parsed;
}

ConfigKnobs::ConfigKnobs(const std::string &text)
{
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            malformed.push_back(item);
            continue;
        }
        values[item.substr(0, eq)] = item.substr(eq + 1);
    }
    // The bare "STATIC:7" form: a single bare value parses as the
    // anonymous knob "" so factories with one natural argument (the
    // static state index) can accept it.
    if (values.empty() && malformed.size() == 1 &&
        malformed.front().find('=') == std::string::npos) {
        values[""] = malformed.front();
        malformed.clear();
    }
}

bool
ConfigKnobs::has(const std::string &key) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return false;
    consumed[key] = true;
    return true;
}

double
ConfigKnobs::getDouble(const std::string &key, double def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed[key] = true;
    try {
        std::size_t used = 0;
        const double v = std::stod(it->second, &used);
        if (used == it->second.size())
            return v;
    } catch (...) {
    }
    warnLimited("knob-parse-" + key,
                "config knob " + key + "=" + it->second +
                    ": not a number (using the default)");
    return def;
}

std::int64_t
ConfigKnobs::getInt(const std::string &key, std::int64_t def) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    consumed[key] = true;
    try {
        std::size_t used = 0;
        const long long v = std::stoll(it->second, &used);
        if (used == it->second.size())
            return v;
    } catch (...) {
    }
    warnLimited("knob-parse-" + key,
                "config knob " + key + "=" + it->second +
                    ": not an integer (using the default)");
    return def;
}

void
ConfigKnobs::warnUnused(const std::string &controller) const
{
    for (const auto &[key, value] : values) {
        if (consumed.count(key) == 0) {
            warnLimited("knob-unknown-" + controller + "-" + key,
                        controller + ": unknown config knob '" + key +
                            "' ignored");
        }
    }
    for (const std::string &item : malformed) {
        warnLimited("knob-malformed-" + controller,
                    controller + ": malformed config entry '" + item +
                        "' ignored (expected key=value)");
    }
}

ControllerRegistry &
ControllerRegistry::instance()
{
    static ControllerRegistry registry;
    static const bool builtins = [] {
        registerBuiltinControllers(registry);
        return true;
    }();
    (void)builtins;
    return registry;
}

bool
ControllerRegistry::add(ControllerInfo info, ControllerFactoryFn factory)
{
    const std::lock_guard<std::mutex> lock(mutex);
    for (const Entry &entry : order) {
        if (entry.info.name == info.name) {
            warnLimited("registry-dup-" + info.name,
                        "controller '" + info.name +
                            "' is already registered (first "
                            "registration wins)");
            return false;
        }
    }
    order.push_back({std::move(info), std::move(factory)});
    return true;
}

bool
ControllerRegistry::has(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex);
    for (const Entry &entry : order) {
        if (entry.info.name == name)
            return true;
    }
    return false;
}

std::vector<ControllerInfo>
ControllerRegistry::entries() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    std::vector<ControllerInfo> out;
    out.reserve(order.size());
    for (const Entry &entry : order)
        out.push_back(entry.info);
    return out;
}

ControllerRegistry::MakeResult
ControllerRegistry::make(const std::string &design,
                         const sim::RunConfig &cfg,
                         const isa::Application *app) const
{
    const ParsedDesign parsed = splitDesign(design);
    ControllerFactoryFn factory;
    {
        const std::lock_guard<std::mutex> lock(mutex);
        for (const Entry &entry : order) {
            if (entry.info.name == parsed.base) {
                factory = entry.factory;
                break;
            }
        }
    }
    MakeResult out;
    if (factory == nullptr) {
        out.error = "unknown design '" + design +
            "'; registered: " + knownNames() +
            " (try --list-controllers)";
        return out;
    }
    ControllerContext ctx{cfg, parsed.config, app};
    out.controller = factory(ctx);
    if (out.controller == nullptr && out.error.empty()) {
        out.error = "design '" + design +
            "': factory declined the configuration";
    }
    return out;
}

std::string
ControllerRegistry::knownNames() const
{
    std::string out;
    for (const ControllerInfo &info : entries()) {
        if (!out.empty())
            out += ", ";
        out += info.name;
    }
    return out;
}

std::vector<std::string>
ControllerRegistry::tournamentNames() const
{
    std::vector<std::string> out;
    for (const ControllerInfo &info : entries()) {
        if (!info.needsConfig)
            out.push_back(info.name);
    }
    return out;
}

} // namespace pcstall::dvfs
