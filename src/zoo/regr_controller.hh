/**
 * @file
 * REGR: an online counter-regression DVFS policy after Ilager et al.,
 * "A Data-Driven Frequency Scaling Approach for Deadline-aware Energy
 * Efficient Scheduling on GPUs" (arXiv:2004.08177), transplanted from
 * their offline-profiled kernel model to this simulator's per-epoch
 * telemetry.
 *
 * Per V/f domain the controller keeps a short forgetting-weighted
 * history of (frequency, committed instructions) observations and
 * fits I(f) = a + b*f by weighted least squares - a data-driven model
 * of the domain's frequency sensitivity learned from the frequencies
 * the domain actually visited. The fit drives the objective function
 * directly; while it is rank-deficient (too few samples, or every
 * sample at one frequency) predictions are anchored on the reactive
 * STALL decomposition instead, so cold starts behave like the
 * baseline reactive design.
 *
 * Two transplanted ideas from the paper:
 *  - deadline awareness: under EnergyUnderPerfBound the allowed
 *    degradation is tightened by a safety margin (knob `margin`),
 *    because a learned regression can overestimate throughput and a
 *    deadline miss is worse than a few per-mille of energy;
 *  - active profiling: every `probe` epochs the chosen state is
 *    nudged one step (alternating up/down) so the history keeps
 *    frequency diversity even in steady phases - the online analogue
 *    of the paper's profiling runs. Deterministic (epoch-counter
 *    driven), so replays reproduce decisions bit-for-bit.
 *
 * Config knobs: hist=8 (ring length), forget=0.9 (per-epoch weight
 * decay), margin=0.02 (deadline safety margin), probe=16 (probe
 * period; 0 = off).
 */

#ifndef PCSTALL_ZOO_REGR_CONTROLLER_HH
#define PCSTALL_ZOO_REGR_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "models/reactive_controller.hh"
#include "zoo/policy_util.hh"

namespace pcstall::zoo
{

/** REGR configuration (see file comment for the knob semantics). */
struct RegrConfig
{
    std::uint32_t historyLength = 8;
    double forget = 0.9;
    double deadlineMargin = 0.02;
    std::uint32_t probePeriod = 16;
    /** Divergence watchdog (wired to --watchdog). */
    bool watchdog = false;
};

/** Online frequency/throughput regression controller. */
class RegrController : public dvfs::DvfsController
{
  public:
    RegrController(const RegrConfig &config, std::uint32_t num_domains);

    std::string name() const override { return "REGR"; }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;

    std::uint64_t watchdogTrips() const override
    {
        return watchdog.trips();
    }
    std::uint64_t fallbackEpochs() const override
    {
        return watchdog.fallbackEpochs();
    }

    /** Domains whose last decision used the regression fit
     *  (vs. the STALL anchor); test hook. */
    std::uint64_t fitDecisions() const { return fitDecisions_; }

    const RegrConfig &config() const { return cfg; }

  private:
    /** One observation: domain frequency (GHz) and instructions. */
    struct Sample
    {
        double freqGhz = 0.0;
        double instr = 0.0;
    };

    /** Per-domain learning state. */
    struct DomainState
    {
        /** Newest-last observation ring. */
        std::vector<Sample> ring;
        /** Last epoch's predicted instructions per V/f state (empty
         *  until the first decision); watchdog scoring input. */
        std::vector<double> prevInstrAt;
    };

    /** Weighted least-squares fit over a domain's ring; returns false
     *  when rank-deficient (caller anchors on STALL instead). */
    bool fitDomain(const DomainState &dom, double &a, double &b) const;

    RegrConfig cfg;
    std::vector<DomainState> domains_;
    std::uint64_t epochIndex = 0;
    std::uint64_t fitDecisions_ = 0;
    DivergenceWatchdog watchdog;
    /** Decisions come from here while the watchdog is tripped. */
    models::ReactiveController stallFallback{
        models::EstimationKind::Stall};
};

} // namespace pcstall::zoo

#endif // PCSTALL_ZOO_REGR_CONTROLLER_HH
