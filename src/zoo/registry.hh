/**
 * @file
 * The controller zoo: a plug-in registry mapping design names to
 * controller factories (docs/controllers.md).
 *
 * Every DVFS policy the harnesses can run - the seven Table III
 * designs, the GPHT extension, the STATIC[n] baselines and the
 * related-work policies under src/zoo - is a registered entry keyed
 * by its design name. bench::makeController() and every SweepRunner
 * cell resolve through the registry, so adding a policy means adding
 * one registration (a controllers.def line for builtins, or a
 * static-init ControllerRegistrar in any linked translation unit) and
 * zero harness changes: the new name immediately works in every
 * figure harness, in bench/tournament, in --replay re-drives and in
 * the results store.
 *
 * Design strings carry an optional per-controller configuration
 * suffix: "NAME:key=value,key=value" (e.g. "REGR:hist=16,forget=0.8").
 * The registry splits the string, hands the config text to the
 * factory, and the harness folds it into the cell's RNG derivation
 * and store fingerprint, so differently-configured variants of one
 * controller are distinct experiment identities end to end.
 *
 * The class lives in pcstall::dvfs (it is part of the controller
 * vocabulary) but is built as the pcstall_zoo library, above
 * sim/core/models/oracle, because factories see the full
 * sim::RunConfig.
 */

#ifndef PCSTALL_ZOO_REGISTRY_HH
#define PCSTALL_ZOO_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dvfs/controller.hh"

namespace pcstall::sim
{
struct RunConfig;
}
namespace pcstall::isa
{
struct Application;
}

namespace pcstall::dvfs
{

/** Everything a controller factory may consult. */
struct ControllerContext
{
    /** The full run configuration of the cell about to execute. */
    const sim::RunConfig &cfg;
    /** The design string's config suffix ("hist=16,forget=0.8" for
     *  "REGR:hist=16,forget=0.8"; empty when none was given). */
    std::string config;
    /**
     * The application about to run, when the caller knows it (sweep
     * cells do). Null in app-less contexts (replay tooling); factories
     * needing static program features must degrade gracefully.
     */
    const isa::Application *app = nullptr;
};

/** Builds one controller instance from a context. */
using ControllerFactoryFn =
    std::function<std::unique_ptr<DvfsController>(
        const ControllerContext &)>;

/** Registry metadata of one design (shown by --list-controllers). */
struct ControllerInfo
{
    /** Design name (registry key, e.g. "PCSTALL", "REGR"). */
    std::string name;
    /** One-line description. */
    std::string summary;
    /** Config-knob vocabulary ("key=default,..."); empty = none. */
    std::string configHelp;
    /** One of the paper's Table III designs. */
    bool paperDesign = false;
    /**
     * Unusable without an explicit configuration (e.g. STATIC needs a
     * state index). Such designs are excluded from all-controller
     * sweeps like bench/tournament.
     */
    bool needsConfig = false;
};

/** A design string split at its first ':' (or "STATIC[n]" bracket). */
struct ParsedDesign
{
    /** Registry key ("REGR" for "REGR:hist=16"). */
    std::string base;
    /** Config suffix ("hist=16"; "7" for "STATIC[7]"). */
    std::string config;
};

/**
 * Split @p design into its registry key and config suffix. "NAME" and
 * "NAME:cfg" split at the first ':'; the legacy "STATIC[n]" spelling
 * parses as base "STATIC" with config "n".
 */
ParsedDesign splitDesign(const std::string &design);

/**
 * Parsed "key=value,key=value" controller configuration with typed,
 * recoverable accessors in the CliOptions spirit: a malformed or
 * unknown knob is a warn, never a fatal, and the value reverts to the
 * factory's default.
 */
class ConfigKnobs
{
  public:
    /** Parse @p text ("" = no knobs). Malformed entries (no '=') are
     *  recorded and reported by warnUnused(). */
    explicit ConfigKnobs(const std::string &text);

    /** Floating-point knob; @p def when absent or malformed. */
    double getDouble(const std::string &key, double def) const;
    /** Integer knob; @p def when absent or malformed. */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    /** True when @p key was given. */
    bool has(const std::string &key) const;

    /**
     * Warn (rate-limited, once per site) about knobs no accessor
     * consumed and about malformed entries; factories call this last
     * so a config typo is visible but never fatal.
     */
    void warnUnused(const std::string &controller) const;

  private:
    std::map<std::string, std::string> values;
    mutable std::map<std::string, bool> consumed;
    std::vector<std::string> malformed;
};

/**
 * The process-wide design-name -> factory registry. Thread-safe; the
 * builtin entries (controllers.def) are registered on first use, and
 * plug-in translation units self-register at static init through
 * ControllerRegistrar.
 */
class ControllerRegistry
{
  public:
    /** The singleton, with builtins registered. */
    static ControllerRegistry &instance();

    /**
     * Register a design. Duplicate names are rejected (first
     * registration wins) with a warn and a false return, so a plug-in
     * cannot silently shadow a builtin.
     */
    bool add(ControllerInfo info, ControllerFactoryFn factory);

    /** True when @p name (a base name, no config suffix) is known. */
    bool has(const std::string &name) const;

    /** Every registered design, in registration order. */
    std::vector<ControllerInfo> entries() const;

    /** Result of one make(). */
    struct MakeResult
    {
        std::unique_ptr<DvfsController> controller;
        /** One-line diagnostic when no controller was built. */
        std::string error;
        bool ok() const { return controller != nullptr; }
    };

    /**
     * Build the controller @p design names. The design string may
     * carry a config suffix (splitDesign()). Unknown names yield an
     * error listing every registered name - a recoverable diagnostic,
     * not a fatal - as does a factory that declines (e.g. STATIC
     * without a state index).
     */
    MakeResult make(const std::string &design,
                    const sim::RunConfig &cfg,
                    const isa::Application *app = nullptr) const;

    /** Comma-joined registered names (for diagnostics). */
    std::string knownNames() const;

    /**
     * Designs eligible for an every-controller sweep: all registered
     * entries that are complete without an explicit config, in
     * registration order (paper designs first).
     */
    std::vector<std::string> tournamentNames() const;

  private:
    ControllerRegistry() = default;

    struct Entry
    {
        ControllerInfo info;
        ControllerFactoryFn factory;
    };

    mutable std::mutex mutex;
    std::vector<Entry> order;
};

/**
 * Static-init self-registration hook for plug-in controllers:
 *
 *   static const dvfs::ControllerRegistrar myPolicy(
 *       {.name = "MYPOLICY", .summary = "..."},
 *       [](const dvfs::ControllerContext &ctx) { ... });
 *
 * Builtins use the same mechanism through src/zoo/controllers.def.
 */
struct ControllerRegistrar
{
    ControllerRegistrar(ControllerInfo info, ControllerFactoryFn factory)
    {
        ControllerRegistry::instance().add(std::move(info),
                                           std::move(factory));
    }
};

} // namespace pcstall::dvfs

#endif // PCSTALL_ZOO_REGISTRY_HH
