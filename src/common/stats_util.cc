#include "stats_util.hh"

#include <cmath>

namespace pcstall
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

LinearFit
linearFit(std::span<const double> xs, std::span<const double> ys)
{
    LinearFit fit;
    fit.n = std::min(xs.size(), ys.size());
    if (fit.n == 0)
        return fit;

    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < fit.n; ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double n = static_cast<double>(fit.n);
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < fit.n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    if (fit.n < 2 || sxx == 0.0) {
        fit.slope = 0.0;
        fit.intercept = my;
        fit.r2 = 0.0;
        return fit;
    }

    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    // R^2 = explained variance / total variance; a constant y series is a
    // perfect fit by convention here (slope 0 predicts it exactly).
    fit.r2 = (syy == 0.0) ? 1.0 : (fit.slope * sxy) / syy;
    return fit;
}

double
avgRelativeChange(std::span<const double> values)
{
    if (values.size() < 2)
        return 0.0;
    double scale = 0.0;
    for (double v : values)
        scale += std::abs(v);
    scale /= static_cast<double>(values.size());
    if (scale == 0.0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < values.size(); ++i)
        acc += std::abs(values[i + 1] - values[i]);
    return acc / (static_cast<double>(values.size() - 1) * scale);
}

double
relativeDiff(double a, double b)
{
    const double scale = (std::abs(a) + std::abs(b)) / 2.0;
    if (scale == 0.0)
        return 0.0;
    return std::abs(a - b) / scale;
}

} // namespace pcstall
