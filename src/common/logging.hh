/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config);
 *            throws FatalError so embedding code (sweep executors,
 *            servers, tests) can contain the failure to one run.
 * warn()   - something is questionable but simulation can continue.
 * inform() - neutral status output.
 *
 * Library code must never terminate the process on a user error: a
 * parallel sweep survives one bad cell only if the error travels as an
 * exception. Harness and tool main()s catch FatalError at top level
 * and turn it into exit code 1 (see bench::guardedMain).
 */

#ifndef PCSTALL_COMMON_LOGGING_HH
#define PCSTALL_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pcstall
{

/** Severity classes used by the logging helpers. */
enum class LogLevel { Debug, Info, Warn, Fatal, Panic };

namespace detail
{
/** Emit one formatted log line to stderr (stdout for Debug/Info). */
void logLine(LogLevel level, const std::string &msg);
} // namespace detail

/**
 * Minimum severity that gets printed (default Info, so debug() is
 * silent unless requested). Fatal and Panic are never suppressed:
 * filtering applies to the *output* only - fatal() still throws and
 * panic() still aborts at any level. Initialized lazily from the
 * PCSTALL_LOG environment variable; --log-level overrides it.
 */
LogLevel logLevel();

/** Set the minimum printed severity. */
void setLogLevel(LogLevel level);

/**
 * Set the level from its CLI/env spelling ("debug", "info", "warn",
 * "error"; "error" shows only fatal/panic). Returns false and leaves
 * the level unchanged when @p name is not one of those.
 */
bool setLogLevelByName(const std::string &name);

/**
 * Thrown by fatal(): an unrecoverable user/configuration error. The
 * message has already been logged when the exception is in flight, so
 * catch sites only decide *scope* (skip one sweep cell, or exit 1 from
 * main) and need not re-print what().
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Report an unrecoverable internal error and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user/configuration error and throw
 *  FatalError. Never returns; never calls std::exit. */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/**
 * Rate-limited warn: at most @p limit lines per (@p key, warn scope)
 * (use a fixed string literal per call site), then one "suppressing
 * further ..." notice. Fault-injection sweeps emit the same
 * transition-failure warning thousands of times; this keeps the first
 * occurrences and the count without drowning the terminal.
 *
 * Limits are scoped per *run*, not per process lifetime: each sweep
 * cell runs inside its own warn scope (obs::ScopedContext pushes one),
 * so a 500-cell sweep reports the first occurrences of a problem in
 * every affected cell rather than only in whichever cell happened to
 * warn first.
 */
void warnLimited(const std::string &key, const std::string &msg,
                 std::uint64_t limit = 10);

/** Number of warnLimited() calls suppressed for @p key in the current
 *  warn scope so far. */
std::uint64_t suppressedWarnCount(const std::string &key);

/**
 * Enter a fresh warn-rate-limit scope on this thread and return the
 * previous scope's id for popWarnScope(). Every run boundary
 * (obs::ScopedContext) pushes a scope so warnLimited() tallies are
 * per-(site, run); scope 0 is the process-wide default.
 */
std::uint64_t pushWarnScope();

/** Restore the warn scope @p previous (from pushWarnScope()). */
void popWarnScope(std::uint64_t previous);

/** Test hook: clear all warnLimited() per-(key, scope) tallies. */
void resetWarnLimits();

/** Report neutral status information. */
void inform(const std::string &msg);

/** Verbose diagnostic output; silent unless logLevel() is Debug. */
void debug(const std::string &msg);

/**
 * Abort with a message when @p cond is true - i.e. @p cond asserts
 * the *failure*, not the invariant (always on, unlike assert).
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** Throw FatalError with a message when @p cond is true (see panicIf). */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace pcstall

#endif // PCSTALL_COMMON_LOGGING_HH
