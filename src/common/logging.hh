/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is questionable but simulation can continue.
 * inform() - neutral status output.
 */

#ifndef PCSTALL_COMMON_LOGGING_HH
#define PCSTALL_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pcstall
{

/** Severity classes used by the logging helpers. */
enum class LogLevel { Info, Warn, Fatal, Panic };

namespace detail
{
/** Emit one formatted log line to stderr (stdout for Info). */
void logLine(LogLevel level, const std::string &msg);
} // namespace detail

/** Report an unrecoverable internal error and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/** Report neutral status information. */
void inform(const std::string &msg);

/**
 * Abort with a message when @p cond is true - i.e. @p cond asserts
 * the *failure*, not the invariant (always on, unlike assert).
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** Exit with a message when @p cond is true (see panicIf). */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace pcstall

#endif // PCSTALL_COMMON_LOGGING_HH
