/**
 * @file
 * A small flat bitset over 64-bit words, sized at runtime.
 *
 * Used both for the ComputeUnit scheduling masks (ready / pending /
 * occupied wave slots) and for the snapshot dirty-region bitmaps
 * (wave slots per CU, cache sets per bank). The hot operations -
 * set, clear, test, word access and set-bit iteration - are all
 * inline and branch-light; the word array is a plain vector so the
 * mask itself is value-semantic and snapshots by assignment.
 */

#ifndef PCSTALL_COMMON_BIT_MASK_HH
#define PCSTALL_COMMON_BIT_MASK_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pcstall
{

/** Runtime-sized bitset with inline word-level access. */
class BitMask
{
  public:
    /** Words needed to hold @p bits bits. */
    static constexpr std::size_t
    wordsFor(std::size_t bits)
    {
        return (bits + 63) / 64;
    }

    /** Resize to @p bits bits, clearing every bit. */
    void
    resize(std::size_t bits)
    {
        bits_ = bits;
        words_.assign(wordsFor(bits), 0);
    }

    std::size_t size() const { return bits_; }
    std::size_t wordCount() const { return words_.size(); }

    void set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
    void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

    bool
    test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1ULL;
    }

    /** Set every bit (the tail of the last word stays clear). */
    void
    setAll()
    {
        if (words_.empty())
            return;
        for (std::uint64_t &w : words_)
            w = ~0ULL;
        const std::size_t tail = bits_ & 63;
        if (tail != 0)
            words_.back() = (1ULL << tail) - 1;
    }

    /** Clear every bit, keeping the size. */
    void
    clearAll()
    {
        for (std::uint64_t &w : words_)
            w = 0;
    }

    bool
    any() const
    {
        for (const std::uint64_t w : words_)
            if (w != 0)
                return true;
        return false;
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (const std::uint64_t w : words_)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    std::uint64_t word(std::size_t wi) const { return words_[wi]; }
    std::uint64_t &word(std::size_t wi) { return words_[wi]; }

    /** OR another mask in. An empty (unsized) mask adopts the other's
     *  size first, so accumulation buffers need no explicit sizing. */
    BitMask &
    operator|=(const BitMask &other)
    {
        if (words_.size() < other.words_.size()) {
            words_.resize(other.words_.size(), 0);
            bits_ = other.bits_;
        }
        for (std::size_t wi = 0; wi < other.words_.size(); ++wi)
            words_[wi] |= other.words_[wi];
        return *this;
    }

    bool
    operator==(const BitMask &other) const
    {
        return bits_ == other.bits_ && words_ == other.words_;
    }

    /**
     * Call @p fn(index) for every set bit in ascending order. @p fn
     * may mutate this mask: each word is captured before its bits are
     * visited, so in-flight set/reset of visited words is safe.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w != 0) {
                const std::size_t i =
                    (wi << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                fn(i);
                w &= w - 1;
            }
        }
    }

    /** Call @p fn(index) for every *clear* bit below size(), ascending. */
    template <typename Fn>
    void
    forEachClear(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = ~words_[wi];
            while (w != 0) {
                const std::size_t i =
                    (wi << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                if (i >= bits_)
                    return;
                fn(i);
                w &= w - 1;
            }
        }
    }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t bits_ = 0;
};

} // namespace pcstall

#endif // PCSTALL_COMMON_BIT_MASK_HH
