/**
 * @file
 * Deterministic, value-semantic random number generation.
 *
 * The simulator state must be snapshot-able by plain copy (the oracle
 * fork-pre-execute methodology re-executes an epoch from an identical
 * starting condition), so every source of randomness lives inside the
 * copied state as a small value type. SplitMix64 is used because it is
 * tiny (one 64-bit word), fast, and has excellent statistical quality
 * for simulation purposes.
 */

#ifndef PCSTALL_COMMON_RNG_HH
#define PCSTALL_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace pcstall
{

/**
 * SplitMix64 pseudo-random generator.
 *
 * Copyable single-word state; copying an Rng yields an identical
 * future random stream, which is exactly what oracle snapshotting
 * requires.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for determinism). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction; bias is negligible for the
        // bounds used in this project (< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Derive an independent child generator (for per-entity streams). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ULL);
    }

    /**
     * Derive an independent generator from a root seed and a string
     * key (plus an optional second key and integer salt). Unlike
     * fork(), split() is a pure function of its arguments - it does
     * not advance any shared state - so a sweep cell keyed on
     * (seed, workload, controller) draws the same stream no matter
     * which thread runs it or in what order cells execute.
     */
    static Rng
    split(std::uint64_t seed, std::string_view key,
          std::string_view key2 = {}, std::uint64_t salt = 0);

    bool operator==(const Rng &other) const = default;

  private:
    std::uint64_t state;
};

/**
 * Stateless 64-bit mix hash, used for reproducible pseudo-random
 * address generation keyed on (wave, instruction, iteration) tuples.
 */
constexpr std::uint64_t
mixHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Combine two values into one hash (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mixHash(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/** FNV-1a over a string, for keying derived random streams. */
constexpr std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

inline Rng
Rng::split(std::uint64_t seed, std::string_view key,
           std::string_view key2, std::uint64_t salt)
{
    std::uint64_t h = hashCombine(seed, hashString(key));
    h = hashCombine(h, hashString(key2));
    h = hashCombine(h, salt);
    // Guard the degenerate all-zero state (SplitMix64 tolerates it,
    // but a nonzero floor keeps the first outputs well mixed).
    return Rng(h | 1ULL);
}

} // namespace pcstall

#endif // PCSTALL_COMMON_RNG_HH
