/**
 * @file
 * Small numerical helpers used across experiments: means, geomeans,
 * linear regression (for the sensitivity fits), and relative-change
 * metrics (Figures 7, 10 and 11 of the paper).
 */

#ifndef PCSTALL_COMMON_STATS_UTIL_HH
#define PCSTALL_COMMON_STATS_UTIL_HH

#include <cstddef>
#include <span>
#include <vector>

namespace pcstall
{

/** Result of an ordinary least squares fit y = intercept + slope * x. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination; 1.0 for a perfect fit. */
    double r2 = 0.0;
    /** Number of points the fit was computed from. */
    std::size_t n = 0;
};

/** Arithmetic mean; returns 0 for an empty span. */
double mean(std::span<const double> xs);

/** Geometric mean of positive values; returns 0 for an empty span. */
double geomean(std::span<const double> xs);

/** Sample standard deviation; returns 0 for fewer than two values. */
double stddev(std::span<const double> xs);

/**
 * Ordinary least squares fit of y against x.
 * Degenerate inputs (fewer than two points, or zero x-variance) yield
 * slope 0 with intercept equal to the mean of y.
 */
LinearFit linearFit(std::span<const double> xs, std::span<const double> ys);

/**
 * Average relative change between consecutive values:
 *   mean over i of |v[i+1] - v[i]| / scale
 * where scale is the mean absolute value of the series. This is the
 * metric the paper uses for sensitivity variability (Figure 7).
 * Returns 0 for series shorter than two elements or an all-zero series.
 */
double avgRelativeChange(std::span<const double> values);

/**
 * Relative difference of two scalars against their mean magnitude.
 * Returns 0 when both are 0.
 */
double relativeDiff(double a, double b);

/** Clamp @p v into [lo, hi]. */
constexpr double
clampTo(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace pcstall

#endif // PCSTALL_COMMON_STATS_UTIL_HH
