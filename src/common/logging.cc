#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

namespace pcstall
{

namespace
{
/** Serializes log lines so parallel sweep cells cannot interleave
 *  fragments of two messages on one terminal line. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

int
levelFromName(const std::string &name)
{
    if (name == "debug")
        return static_cast<int>(LogLevel::Debug);
    if (name == "info")
        return static_cast<int>(LogLevel::Info);
    if (name == "warn")
        return static_cast<int>(LogLevel::Warn);
    if (name == "error")
        return static_cast<int>(LogLevel::Fatal);
    return -1;
}

/** Printed-severity threshold; -1 = not yet read from PCSTALL_LOG. */
std::atomic<int> g_level{-1};

int
currentLevel()
{
    int level = g_level.load(std::memory_order_relaxed);
    if (level >= 0)
        return level;
    level = static_cast<int>(LogLevel::Info);
    if (const char *env = std::getenv("PCSTALL_LOG")) {
        const int from_env = levelFromName(env);
        if (from_env >= 0) {
            level = from_env;
        } else {
            const std::lock_guard<std::mutex> lock(logMutex());
            std::fprintf(stderr,
                         "warn: PCSTALL_LOG=%s is not one of "
                         "debug|info|warn|error; using info\n",
                         env);
        }
    }
    g_level.store(level, std::memory_order_relaxed);
    return level;
}

struct WarnLimits
{
    std::mutex mutex;
    /** (scope, key) -> (calls seen, limit from the first call). */
    std::map<std::pair<std::uint64_t, std::string>,
             std::pair<std::uint64_t, std::uint64_t>>
        counts;
};

WarnLimits &
warnLimits()
{
    static WarnLimits w;
    return w;
}

/** Scope ids handed out by pushWarnScope(); 0 = process default. */
std::atomic<std::uint64_t> g_warn_scope_ids{0};
thread_local std::uint64_t t_warn_scope = 0;
} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(currentLevel());
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
setLogLevelByName(const std::string &name)
{
    const int level = levelFromName(name);
    if (level < 0)
        return false;
    g_level.store(level, std::memory_order_relaxed);
    return true;
}

namespace detail
{

void
logLine(LogLevel level, const std::string &msg)
{
    // Fatal/Panic always print; lower severities honour the level.
    if (level < LogLevel::Fatal &&
        static_cast<int>(level) < currentLevel())
        return;
    const char *prefix = "";
    FILE *stream = stderr;
    switch (level) {
      case LogLevel::Debug:
        prefix = "debug: ";
        stream = stdout;
        break;
      case LogLevel::Info:
        prefix = "info: ";
        stream = stdout;
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
    }
    const std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stream, "%s%s\n", prefix, msg.c_str());
    std::fflush(stream);
}

} // namespace detail

void
panic(const std::string &msg)
{
    detail::logLine(LogLevel::Panic, msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    detail::logLine(LogLevel::Fatal, msg);
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    detail::logLine(LogLevel::Warn, msg);
}

void
warnLimited(const std::string &key, const std::string &msg,
            std::uint64_t limit)
{
    std::uint64_t seen = 0;
    {
        WarnLimits &w = warnLimits();
        const std::lock_guard<std::mutex> lock(w.mutex);
        const auto it = w.counts
                            .emplace(std::make_pair(t_warn_scope, key),
                                     std::make_pair(0, limit))
                            .first;
        seen = it->second.first++;
    }
    if (seen < limit) {
        warn(msg);
        if (seen + 1 == limit)
            warn("suppressing further \"" + key +
                 "\" warnings (limit " + std::to_string(limit) +
                 " reached)");
    }
}

std::uint64_t
suppressedWarnCount(const std::string &key)
{
    WarnLimits &w = warnLimits();
    const std::lock_guard<std::mutex> lock(w.mutex);
    const auto it = w.counts.find(std::make_pair(t_warn_scope, key));
    if (it == w.counts.end())
        return 0;
    const auto [seen, limit] = it->second;
    return seen > limit ? seen - limit : 0;
}

std::uint64_t
pushWarnScope()
{
    const std::uint64_t previous = t_warn_scope;
    t_warn_scope =
        g_warn_scope_ids.fetch_add(1, std::memory_order_relaxed) + 1;
    return previous;
}

void
popWarnScope(std::uint64_t previous)
{
    t_warn_scope = previous;
}

void
resetWarnLimits()
{
    WarnLimits &w = warnLimits();
    const std::lock_guard<std::mutex> lock(w.mutex);
    w.counts.clear();
}

void
inform(const std::string &msg)
{
    detail::logLine(LogLevel::Info, msg);
}

void
debug(const std::string &msg)
{
    detail::logLine(LogLevel::Debug, msg);
}

} // namespace pcstall
