#include "logging.hh"

#include <cstdio>

namespace pcstall
{

namespace detail
{

void
logLine(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    FILE *stream = stderr;
    switch (level) {
      case LogLevel::Info:
        prefix = "info: ";
        stream = stdout;
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
    }
    std::fprintf(stream, "%s%s\n", prefix, msg.c_str());
    std::fflush(stream);
}

} // namespace detail

void
panic(const std::string &msg)
{
    detail::logLine(LogLevel::Panic, msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    detail::logLine(LogLevel::Fatal, msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    detail::logLine(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    detail::logLine(LogLevel::Info, msg);
}

} // namespace pcstall
