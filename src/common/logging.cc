#include "logging.hh"

#include <cstdio>
#include <mutex>

namespace pcstall
{

namespace
{
/** Serializes log lines so parallel sweep cells cannot interleave
 *  fragments of two messages on one terminal line. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

namespace detail
{

void
logLine(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    FILE *stream = stderr;
    switch (level) {
      case LogLevel::Info:
        prefix = "info: ";
        stream = stdout;
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
    }
    const std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stream, "%s%s\n", prefix, msg.c_str());
    std::fflush(stream);
}

} // namespace detail

void
panic(const std::string &msg)
{
    detail::logLine(LogLevel::Panic, msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    detail::logLine(LogLevel::Fatal, msg);
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    detail::logLine(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    detail::logLine(LogLevel::Info, msg);
}

} // namespace pcstall
