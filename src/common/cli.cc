#include "cli.hh"

#include <cstdlib>

namespace pcstall
{

CliOptions::CliOptions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            std::string name = arg.substr(2);
            std::string value = "1";
            auto eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
            } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                       != 0) {
                value = argv[++i];
            }
            values[name] = value;
        } else {
            extras.push_back(arg);
        }
    }
}

bool
CliOptions::has(const std::string &name) const
{
    return values.count(name) > 0;
}

std::string
CliOptions::get(const std::string &name, const std::string &def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
}

std::int64_t
CliOptions::getInt(const std::string &name, std::int64_t def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    char *end = nullptr;
    const std::int64_t parsed =
        std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
        parseErrors.push_back("--" + name + ": '" + it->second +
                              "' is not an integer");
        return def;
    }
    return parsed;
}

double
CliOptions::getDouble(const std::string &name, double def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    char *end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        parseErrors.push_back("--" + name + ": '" + it->second +
                              "' is not a number");
        return def;
    }
    return parsed;
}

} // namespace pcstall
