#include "cli.hh"

#include <cstdlib>

namespace pcstall
{

CliOptions::CliOptions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            std::string name = arg.substr(2);
            std::string value = "1";
            auto eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
            } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                       != 0) {
                value = argv[++i];
            }
            values[name] = value;
        } else {
            extras.push_back(arg);
        }
    }
}

bool
CliOptions::has(const std::string &name) const
{
    return values.count(name) > 0;
}

std::string
CliOptions::get(const std::string &name, const std::string &def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
}

std::int64_t
CliOptions::getInt(const std::string &name, std::int64_t def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : std::strtoll(it->second.c_str(),
                                                   nullptr, 10);
}

double
CliOptions::getDouble(const std::string &name, double def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : std::strtod(it->second.c_str(),
                                                  nullptr);
}

} // namespace pcstall
