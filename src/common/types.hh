/**
 * @file
 * Fundamental scalar types and unit helpers shared by every module.
 *
 * The simulator keeps a single global timebase in picoseconds so that
 * compute units clocked in different V/f domains (and the fixed-clock
 * memory subsystem) can interleave events exactly. Frequencies are kept
 * in Hz as 64-bit integers because the V/f table is a discrete set of
 * states (100 MHz steps).
 */

#ifndef PCSTALL_COMMON_TYPES_HH
#define PCSTALL_COMMON_TYPES_HH

#include <cstdint>

namespace pcstall
{

/** Global simulated time in picoseconds. */
using Tick = std::int64_t;

/** A count of clock cycles in some (context-dependent) clock domain. */
using Cycles = std::int64_t;

/** Clock frequency in Hz. */
using Freq = std::uint64_t;

/** Supply voltage in volts. */
using Volts = double;

/** Energy in joules. */
using Joules = double;

/** Power in watts. */
using Watts = double;

/** Ticks per second (picosecond timebase). */
inline constexpr Tick ticksPerSecond = 1'000'000'000'000LL;

/** Convenience literals for common time spans. */
inline constexpr Tick tickNs = 1'000LL;
inline constexpr Tick tickUs = 1'000'000LL;
inline constexpr Tick tickMs = 1'000'000'000LL;

/** Convenience literals for common frequencies. */
inline constexpr Freq freqMHz = 1'000'000ULL;
inline constexpr Freq freqGHz = 1'000'000'000ULL;

/**
 * Clock period in ticks for a frequency, rounded to the nearest tick.
 * At the GHz-range frequencies used here the rounding error is < 0.1%.
 */
constexpr Tick
clockPeriod(Freq freq)
{
    return static_cast<Tick>((ticksPerSecond + freq / 2) / freq);
}

/** Number of whole cycles of @p freq that fit in @p span ticks. */
constexpr Cycles
cyclesIn(Tick span, Freq freq)
{
    return span / clockPeriod(freq);
}

/** Frequency expressed in GHz as a double (for arithmetic models). */
constexpr double
freqGHzD(Freq freq)
{
    return static_cast<double>(freq) / 1e9;
}

/** Seconds expressed as a double for a tick span. */
constexpr double
tickSeconds(Tick span)
{
    return static_cast<double>(span) / static_cast<double>(ticksPerSecond);
}

} // namespace pcstall

#endif // PCSTALL_COMMON_TYPES_HH
