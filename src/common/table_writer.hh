/**
 * @file
 * Console table / CSV emission used by the benchmark harnesses to print
 * the rows and series the paper's tables and figures report.
 */

#ifndef PCSTALL_COMMON_TABLE_WRITER_HH
#define PCSTALL_COMMON_TABLE_WRITER_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pcstall
{

/**
 * Collects rows of string cells and prints them as an aligned text
 * table (for terminal reading) or as CSV (for plotting pipelines).
 */
class TableWriter
{
  public:
    /** Create a table with the given column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell by cell. */
    TableWriter &beginRow();
    /** Append a string cell to the row being built. */
    TableWriter &cell(const std::string &value);
    /** Append a formatted numeric cell (fixed, @p precision decimals). */
    TableWriter &cell(double value, int precision = 3);
    /** Append an integer cell. */
    TableWriter &cell(long long value);
    /** Finish the row being built. */
    void endRow();

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Print as an aligned, padded text table. */
    void print(std::ostream &os) const;

    /** Print as comma-separated values (headers first). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> pending;
    bool building = false;
};

/** Format a double with fixed precision (helper for ad-hoc output). */
std::string formatFixed(double value, int precision = 3);

/** Format a fraction as a percentage string, e.g. 0.316 -> "31.6%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace pcstall

#endif // PCSTALL_COMMON_TABLE_WRITER_HH
