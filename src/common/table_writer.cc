#include "table_writer.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace pcstall
{

std::string
formatFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    return formatFixed(fraction * 100.0, precision) + "%";
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers(std::move(headers))
{
    panicIf(this->headers.empty(), "TableWriter needs at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers.size(),
            "TableWriter row width mismatch");
    rows.push_back(std::move(cells));
}

TableWriter &
TableWriter::beginRow()
{
    panicIf(building, "TableWriter::beginRow while a row is in progress");
    building = true;
    pending.clear();
    return *this;
}

TableWriter &
TableWriter::cell(const std::string &value)
{
    panicIf(!building, "TableWriter::cell outside beginRow/endRow");
    pending.push_back(value);
    return *this;
}

TableWriter &
TableWriter::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

TableWriter &
TableWriter::cell(long long value)
{
    return cell(std::to_string(value));
}

void
TableWriter::endRow()
{
    panicIf(!building, "TableWriter::endRow without beginRow");
    building = false;
    addRow(std::move(pending));
    pending = {};
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers);
    for (const auto &row : rows)
        emit_row(row);
}

} // namespace pcstall
