/**
 * @file
 * Tiny command-line option parser shared by the benchmark harnesses and
 * examples, supporting "--name value" and "--flag" style options.
 */

#ifndef PCSTALL_COMMON_CLI_HH
#define PCSTALL_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcstall
{

/**
 * Parses argv into a name -> value map and offers typed accessors with
 * defaults. Unknown options are accepted (the figure harnesses share a
 * common option vocabulary but only consume a subset each).
 *
 * Malformed values are recoverable, not fatal: a typed accessor that
 * cannot parse its value returns the default and records a diagnostic
 * in errors(), so a harness can report every bad option and keep
 * running (or bail out cleanly) instead of exiting mid-parse.
 */
class CliOptions
{
  public:
    CliOptions(int argc, char **argv);

    /** True when --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String option; returns @p def when absent. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Integer option; returns @p def when absent or malformed. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Floating-point option; returns @p def when absent or malformed. */
    double getDouble(const std::string &name, double def) const;

    /** Positional (non --option) arguments in order. */
    const std::vector<std::string> &positional() const { return extras; }

    /** Diagnostics for values a typed accessor could not parse. */
    const std::vector<std::string> &errors() const { return parseErrors; }

    /**
     * Record a caller-side validation diagnostic (e.g. "--shard 3/2:
     * index must be < count") so it is reported through the same
     * recoverable errors() channel as malformed values.
     */
    void noteError(const std::string &message) const
    {
        parseErrors.push_back(message);
    }

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> extras;
    /** Mutable: accessors are logically const but record bad values. */
    mutable std::vector<std::string> parseErrors;
};

} // namespace pcstall

#endif // PCSTALL_COMMON_CLI_HH
