/**
 * @file
 * Tiny command-line option parser shared by the benchmark harnesses and
 * examples, supporting "--name value" and "--flag" style options.
 */

#ifndef PCSTALL_COMMON_CLI_HH
#define PCSTALL_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcstall
{

/**
 * Parses argv into a name -> value map and offers typed accessors with
 * defaults. Unknown options are accepted (the figure harnesses share a
 * common option vocabulary but only consume a subset each).
 */
class CliOptions
{
  public:
    CliOptions(int argc, char **argv);

    /** True when --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String option; returns @p def when absent. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Integer option; returns @p def when absent. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Floating-point option; returns @p def when absent. */
    double getDouble(const std::string &name, double def) const;

    /** Positional (non --option) arguments in order. */
    const std::vector<std::string> &positional() const { return extras; }

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> extras;
};

} // namespace pcstall

#endif // PCSTALL_COMMON_CLI_HH
