/**
 * @file
 * The DVFS controller interface every evaluated design implements
 * (Table III), plus the "accurate estimate" record the oracle's
 * fork-pre-execute machinery supplies to ACCREAC/ACCPC/ORACLE.
 */

#ifndef PCSTALL_DVFS_CONTROLLER_HH
#define PCSTALL_DVFS_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dvfs/decision_audit.hh"
#include "dvfs/domain_map.hh"
#include "dvfs/objective.hh"
#include "gpu/epoch_stats.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"

namespace pcstall::faults
{
class FaultInjector;
} // namespace pcstall::faults

namespace pcstall::dvfs
{

/**
 * Accurate (fork-pre-execute) estimates of one epoch, produced by the
 * oracle machinery in src/oracle. domainInstr[d][s] is the number of
 * instructions domain d committed when sampled at V/f state s.
 */
struct AccurateEstimates
{
    std::vector<std::vector<double>> domainInstr;

    /** Wave-level sensitivity measured across the sampled states. */
    struct WaveSens
    {
        std::uint32_t cu = 0;
        std::uint32_t slot = 0;
        /** PC byte address the wave started the sampled epoch at. */
        std::uint64_t startPcAddr = 0;
        /** d(instructions)/d(frequency in GHz) from the regression. */
        double sensitivity = 0.0;
        /** Regression intercept: the instruction floor I0. */
        double level = 0.0;
        /** Age rank at the start of the sampled epoch. */
        std::uint32_t ageRank = 0;
    };
    std::vector<WaveSens> waves;

    bool empty() const { return domainInstr.empty(); }
};

/** Everything a controller sees at an epoch boundary. */
struct EpochContext
{
    /** Statistics of the epoch that just ended. */
    const gpu::EpochRecord &record;
    /** Waves resident right now (their PCs key the next epoch). */
    const std::vector<gpu::WaveSnapshot> &snapshots;

    const DomainMap &domains;
    const power::VfTable &table;
    const power::PowerModel &power;

    Tick epochLen = 0;
    double temperature = 45.0;
    Objective objective = Objective::Ed2p;
    double perfDegradationLimit = 0.05;
    /** Nominal state index (static baseline / perf-bound reference). */
    std::size_t nominalState = 0;

    /**
     * Accurate estimates of the epoch that just ended (taken at its
     * start); null unless the controller requested them.
     */
    const AccurateEstimates *elapsedAccurate = nullptr;
    /**
     * Accurate estimates of the upcoming epoch (taken right now);
     * null unless the controller requested them. Only the ORACLE
     * design may consume these - they are not implementable.
     */
    const AccurateEstimates *upcomingAccurate = nullptr;

    /** Running average chip power over the run so far (0 = cold). */
    Watts avgChipPower = 0.0;
    /** Running average instructions/epoch per domain (null = cold).
     *  Used by the marginal objectives to price time. */
    const std::vector<double> *avgDomainInstr = nullptr;

    /**
     * Decision-audit scratch (decision_audit.hh); null when provenance
     * is disabled. Controllers that consult predictor state should
     * describe what they looked up: `if (ctx.audit) ...`.
     */
    DecisionAudit *audit = nullptr;
};

/** One domain's decision for the next epoch. */
struct DomainDecision
{
    /** Chosen V/f state index. */
    std::size_t state = 0;
    /**
     * Predicted instructions the domain will commit next epoch at the
     * chosen state (< 0 when the controller makes no prediction).
     * The experiment driver scores prediction accuracy against this.
     */
    double predictedInstr = -1.0;
};

/** Which fork-pre-execute sweeps a controller needs per epoch. */
enum class SweepNeed : std::uint8_t
{
    /** No oracle machinery (implementable designs). */
    None,
    /** Needs accurate estimates of each *elapsed* epoch. */
    Elapsed,
    /** Needs accurate estimates of each *upcoming* epoch (oracle). */
    Upcoming,
};

/** Interface for all Table III designs. */
class DvfsController
{
  public:
    virtual ~DvfsController() = default;

    /** Display name (matches Table III). */
    virtual std::string name() const = 0;

    /** Which sweeps the driver must perform for this controller. */
    virtual SweepNeed sweepNeed() const { return SweepNeed::None; }

    /** True when sweeps must also regress per-wavefront sensitivity. */
    virtual bool needsWaveLevel() const { return false; }

    /**
     * Called at every epoch boundary after harvesting; returns one
     * decision per V/f domain for the upcoming epoch.
     */
    virtual std::vector<DomainDecision> decide(const EpochContext &ctx)
        = 0;

    /**
     * Expose any predictor storage to the fault injector (called once
     * per epoch boundary, before decide()). Stateless controllers
     * have nothing to corrupt; the default is a no-op.
     */
    virtual void applyStorageFaults(faults::FaultInjector &injector)
    {
        (void)injector;
    }

    /** Times a divergence watchdog tripped into its fallback policy. */
    virtual std::uint64_t watchdogTrips() const { return 0; }

    /** Epochs decided by the fallback policy instead of the primary. */
    virtual std::uint64_t fallbackEpochs() const { return 0; }

    /** Storage bits flipped in this controller's predictor tables. */
    virtual std::uint64_t storageBitFlips() const { return 0; }

    /** Corrupted entries caught and scrubbed by parity protection. */
    virtual std::uint64_t storageScrubs() const { return 0; }
};

/**
 * Repair a decision vector in place so it is always legal to apply:
 * wrong-length vectors are resized (new slots run at
 * @p fallback_state), out-of-range state indices are clamped into the
 * table, and non-finite instruction predictions are dropped. Returns
 * the number of repairs, so the driver can count how often a
 * controller emitted something illegal.
 */
std::size_t sanitizeDecisions(std::vector<DomainDecision> &decisions,
                              const power::VfTable &table,
                              std::size_t num_domains,
                              std::size_t fallback_state);

/** Always runs every domain at one fixed state (static baselines). */
class StaticController : public DvfsController
{
  public:
    explicit StaticController(std::size_t state) : state_(state) {}

    std::string name() const override;
    std::vector<DomainDecision> decide(const EpochContext &ctx) override;

  private:
    std::size_t state_;
};

/** Sum a per-CU quantity over the CUs of one domain. */
template <typename Fn>
double
sumOverDomain(const DomainMap &domains, std::uint32_t domain, Fn &&fn)
{
    double sum = 0.0;
    const std::uint32_t first = domains.firstCu(domain);
    for (std::uint32_t cu = first; cu < first + domains.cusPerDomain();
         ++cu) {
        sum += fn(cu);
    }
    return sum;
}

/** Aggregate memory activity over the CUs of one domain. */
memory::MemActivity domainActivity(const DomainMap &domains,
                                   std::uint32_t domain,
                                   const gpu::EpochRecord &record);

} // namespace pcstall::dvfs

#endif // PCSTALL_DVFS_CONTROLLER_HH
