#include "dvfs/hierarchical.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pcstall::dvfs
{

namespace
{

DvfsController &
requireInner(std::unique_ptr<DvfsController> &owned)
{
    fatalIf(owned == nullptr,
            "hierarchical manager needs an inner controller");
    return *owned;
}

} // namespace

HierarchicalPowerManager::HierarchicalPowerManager(
    DvfsController &inner, const HierarchicalConfig &config)
    : inner(inner), cfg(config)
{
    fatalIf(cfg.powerCap <= 0.0, "power cap must be positive");
    fatalIf(cfg.reviewEpochs == 0, "review window must be >= 1 epoch");
}

HierarchicalPowerManager::HierarchicalPowerManager(
    std::unique_ptr<DvfsController> inner_owned,
    const HierarchicalConfig &config)
    : owned(std::move(inner_owned)), inner(requireInner(owned)),
      cfg(config)
{
    fatalIf(cfg.powerCap <= 0.0, "power cap must be positive");
    fatalIf(cfg.reviewEpochs == 0, "review window must be >= 1 epoch");
}

Watts
HierarchicalPowerManager::epochPower(const EpochContext &ctx) const
{
    const Tick len = ctx.record.end - ctx.record.start;
    if (len <= 0)
        return 0.0;
    Joules energy = 0.0;
    memory::MemActivity total;
    for (const gpu::CuEpochRecord &cu : ctx.record.cus) {
        const Volts v = ctx.table.voltageAt(cu.freq);
        energy += ctx.power.cuEpochEnergy(
            v, cu.freq, cu.committed, cu.mem, len,
            ctx.temperature).total();
        total += cu.mem;
    }
    energy += ctx.power.memEpochEnergy(total, len);
    return energy / tickSeconds(len);
}

std::vector<DomainDecision>
HierarchicalPowerManager::decide(const EpochContext &ctx)
{
    if (!ceilingInit) {
        ceiling = ctx.table.numStates() - 1;
        ceilingInit = true;
    }

    // --- coarse layer: integrate power, review periodically ---
    const Tick len = ctx.record.end - ctx.record.start;
    windowEnergy += epochPower(ctx) * tickSeconds(len);
    windowSeconds += tickSeconds(len);
    if (++windowEpochs >= cfg.reviewEpochs) {
        lastPower = windowSeconds > 0.0 ? windowEnergy / windowSeconds
                                        : 0.0;
        if (lastPower > cfg.powerCap && ceiling > 0) {
            --ceiling; // over budget: narrow the window
        } else if (lastPower < cfg.powerCap * cfg.widenBelow &&
                   ceiling + 1 < ctx.table.numStates()) {
            ++ceiling; // comfortable headroom: widen it again
        }
        windowEnergy = 0.0;
        windowSeconds = 0.0;
        windowEpochs = 0;
    }

    // --- fine layer: the wrapped controller, clamped to the window ---
    std::vector<DomainDecision> decisions = inner.decide(ctx);
    for (DomainDecision &d : decisions) {
        if (d.state > ceiling) {
            d.state = ceiling;
            // The inner controller's instruction prediction was for
            // its own choice; no prediction is claimed for the
            // clamped state.
            d.predictedInstr = -1.0;
        }
    }
    return decisions;
}

} // namespace pcstall::dvfs
