/**
 * @file
 * DVFS objective functions (paper Section 5.2). For fixed-time epochs
 * the per-epoch decision reduces to minimizing P(f)/I(f)^(n+1) for an
 * ED^nP objective: with work W = I instructions done in epoch T, the
 * delay per unit work is T/I and energy per unit work is P*T/I, so
 *   EDP  per work unit ~ P * T^2 / I^2   -> minimize P/I^2
 *   ED2P per work unit ~ P * T^3 / I^3   -> minimize P/I^3.
 * The EnergyUnderPerfBound objective instead minimizes power among
 * states whose predicted throughput stays within a degradation limit
 * of the nominal frequency (Figure 18a).
 */

#ifndef PCSTALL_DVFS_OBJECTIVE_HH
#define PCSTALL_DVFS_OBJECTIVE_HH

#include <cstdint>
#include <span>

#include "common/types.hh"
#include "memory/memory_system.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"

namespace pcstall::dvfs
{

/** Supported objective functions. */
enum class Objective : std::uint8_t
{
    /** Minimize energy-delay product. */
    Edp,
    /** Minimize energy-delay^2 product. */
    Ed2p,
    /** Minimize energy-delay^3 product. */
    Ed3p,
    /** Minimize energy subject to a performance-degradation bound. */
    EnergyUnderPerfBound,
    /**
     * Marginal-cost formulations (extension; see docs/architecture.md
     * section 4): for a global objective E * T^n, the correct
     * per-epoch greedy minimizes E(f) - n * Pavg * T_epoch * I(f)/Iavg,
     * pricing the time each extra instruction saves at n times the
     * chip's average power. Requires the running averages in
     * DomainScoreInputs; falls back to the ratio heuristic when they
     * are unavailable (cold start).
     */
    MarginalEdp,
    MarginalEd2p,
};

/** Name of an objective. */
const char *objectiveName(Objective objective);

/** Inputs needed to score candidate states for one V/f domain. */
struct DomainScoreInputs
{
    /**
     * Predicted instructions committed by the domain in the next
     * epoch, one entry per V/f state (same order as the table).
     */
    std::span<const double> instrAtState;

    /** Instructions the domain committed in the elapsed epoch. */
    double baselineInstr = 0.0;
    /** The domain's memory activity in the elapsed epoch (scaled by
     *  predicted throughput to estimate activity at other states). */
    memory::MemActivity baselineActivity;
    /** Number of CUs in the domain. */
    std::uint32_t numCus = 1;

    /**
     * The domain's share of frequency-independent chip power (the
     * fixed-clock memory domain's static power divided across
     * domains). Work done slowly still pays this floor, which is what
     * couples the per-epoch greedy choice to global ED^nP.
     */
    Watts staticShare = 0.0;

    Tick epochLen = 0;
    double temperature = 45.0;

    /** For EnergyUnderPerfBound: allowed fractional slowdown. */
    double perfDegradationLimit = 0.05;
    /** For EnergyUnderPerfBound: index of the nominal state. */
    std::size_t nominalState = 0;

    /** Running average chip power (W); 0 = unknown (cold start). */
    Watts avgChipPower = 0.0;
    /** Running average instructions/epoch for this domain; 0 =
     *  unknown. Used by the marginal objectives to price time. */
    double avgInstr = 0.0;
};

/**
 * Predicted energy the domain (CUs + attributed memory-side dynamic
 * energy) would consume in one epoch at state @p state, assuming
 * memory activity scales with predicted instruction throughput.
 */
Joules domainEpochEnergy(const power::VfTable &table,
                         const power::PowerModel &model,
                         const DomainScoreInputs &in, std::size_t state);

/**
 * Pick the V/f state optimizing @p objective for one domain.
 * @return the chosen state index.
 */
std::size_t chooseState(const power::VfTable &table,
                        const power::PowerModel &model,
                        const DomainScoreInputs &in, Objective objective);

/**
 * Score every candidate state under @p objective into @p out (size
 * table.numStates(); lower is better). This is the audit/regret
 * scorer behind the provenance subsystem (docs/provenance.md): on the
 * ratio and marginal objectives its argmin agrees with chooseState(),
 * and for EnergyUnderPerfBound infeasible states are charged a finite
 * energy * (floor / predicted) penalty instead of being excluded, so
 * hindsight scoring (where the chosen state may turn out infeasible)
 * always yields finite, comparable scores.
 */
void scoreStates(const power::VfTable &table,
                 const power::PowerModel &model,
                 const DomainScoreInputs &in, Objective objective,
                 std::span<double> out);

} // namespace pcstall::dvfs

#endif // PCSTALL_DVFS_OBJECTIVE_HH
