/**
 * @file
 * The decision-audit seam: a per-epoch scratch record controllers fill
 * in while deciding, so the run can explain *why* each frequency was
 * chosen (docs/provenance.md).
 *
 * The experiment/replay drivers own one DecisionAudit per run and
 * expose it through EpochContext::audit. It is null when provenance is
 * disabled, so the hot path costs controllers exactly one pointer
 * check; when armed, the ledger resets it before decide() and folds it
 * into the epoch's DecisionRecord after applyDecisions(). Controllers
 * without predictor state can ignore it entirely - the ledger still
 * records the generic inputs (stall/memory counters, candidate scores,
 * chosen state, realized outcome) for every design.
 */

#ifndef PCSTALL_DVFS_DECISION_AUDIT_HH
#define PCSTALL_DVFS_DECISION_AUDIT_HH

#include <cstdint>
#include <vector>

namespace pcstall::dvfs
{

/** What one domain's controller consulted while deciding. */
struct DomainAudit
{
    /** PC-table key of the domain's first resident wave (0 = none). */
    std::uint64_t pcKey = 0;
    /** Predictor-table lookups performed for this domain's waves. */
    std::uint32_t lookups = 0;
    /** Lookups that hit a stored entry. */
    std::uint32_t hits = 0;
    /** Waves predicted from their own fresh same-region model. */
    std::uint32_t sameRegion = 0;
    /** Waves predicted by the reactive fallback path (table miss). */
    std::uint32_t reactive = 0;
    /** Predicted phase-model slope: d(instructions)/d(f in GHz). */
    double predictedSens = 0.0;
    /** Predicted phase-model intercept (instruction floor I0). */
    double predictedLevel = 0.0;
};

/**
 * Per-epoch audit scratch. reset() is called by the ledger before
 * every decide(); controllers accumulate into domains[d] for the
 * domains they decide.
 */
struct DecisionAudit
{
    std::vector<DomainAudit> domains;
    /** True when a watchdog fallback policy made this decision. */
    bool fallbackActive = false;

    void
    reset(std::size_t num_domains)
    {
        domains.assign(num_domains, DomainAudit{});
        fallbackActive = false;
    }
};

} // namespace pcstall::dvfs

#endif // PCSTALL_DVFS_DECISION_AUDIT_HH
