/**
 * @file
 * Mapping between compute units and V/f domains. The paper evaluates
 * per-CU domains (the common case) up to 32-CU domains (Figure 18b);
 * domains are equal-sized contiguous groups of CUs.
 */

#ifndef PCSTALL_DVFS_DOMAIN_MAP_HH
#define PCSTALL_DVFS_DOMAIN_MAP_HH

#include <cstdint>

#include "common/logging.hh"

namespace pcstall::dvfs
{

/** Equal-sized contiguous CU -> domain mapping. */
class DomainMap
{
  public:
    DomainMap(std::uint32_t num_cus, std::uint32_t cus_per_domain)
        : numCus_(num_cus), cusPerDomain_(cus_per_domain)
    {
        fatalIf(cus_per_domain == 0, "V/f domain must contain >= 1 CU");
        fatalIf(num_cus % cus_per_domain != 0,
                "CU count must divide evenly into V/f domains");
    }

    std::uint32_t numCus() const { return numCus_; }
    std::uint32_t cusPerDomain() const { return cusPerDomain_; }
    std::uint32_t numDomains() const { return numCus_ / cusPerDomain_; }

    std::uint32_t domainOf(std::uint32_t cu) const
    {
        return cu / cusPerDomain_;
    }

    std::uint32_t firstCu(std::uint32_t domain) const
    {
        return domain * cusPerDomain_;
    }

  private:
    std::uint32_t numCus_;
    std::uint32_t cusPerDomain_;
};

} // namespace pcstall::dvfs

#endif // PCSTALL_DVFS_DOMAIN_MAP_HH
