#include "dvfs/controller.hh"

namespace pcstall::dvfs
{

std::string
StaticController::name() const
{
    return "STATIC[" + std::to_string(state_) + "]";
}

std::vector<DomainDecision>
StaticController::decide(const EpochContext &ctx)
{
    std::vector<DomainDecision> out(ctx.domains.numDomains());
    for (DomainDecision &d : out)
        d.state = state_;
    return out;
}

memory::MemActivity
domainActivity(const DomainMap &domains, std::uint32_t domain,
               const gpu::EpochRecord &record)
{
    memory::MemActivity total;
    const std::uint32_t first = domains.firstCu(domain);
    for (std::uint32_t cu = first; cu < first + domains.cusPerDomain();
         ++cu) {
        total += record.cus[cu].mem;
    }
    return total;
}

} // namespace pcstall::dvfs
