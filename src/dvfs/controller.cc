#include "dvfs/controller.hh"

#include <cmath>

namespace pcstall::dvfs
{

std::size_t
sanitizeDecisions(std::vector<DomainDecision> &decisions,
                  const power::VfTable &table, std::size_t num_domains,
                  std::size_t fallback_state)
{
    std::size_t repairs = 0;
    if (decisions.size() != num_domains) {
        ++repairs;
        decisions.resize(num_domains,
                         DomainDecision{fallback_state, -1.0});
    }
    const std::size_t top = table.numStates() - 1;
    for (DomainDecision &d : decisions) {
        if (d.state > top) {
            d.state = top;
            ++repairs;
        }
        if (!std::isfinite(d.predictedInstr)) {
            d.predictedInstr = -1.0;
            ++repairs;
        }
    }
    return repairs;
}

std::string
StaticController::name() const
{
    return "STATIC[" + std::to_string(state_) + "]";
}

std::vector<DomainDecision>
StaticController::decide(const EpochContext &ctx)
{
    std::vector<DomainDecision> out(ctx.domains.numDomains());
    for (DomainDecision &d : out)
        d.state = state_;
    return out;
}

memory::MemActivity
domainActivity(const DomainMap &domains, std::uint32_t domain,
               const gpu::EpochRecord &record)
{
    memory::MemActivity total;
    const std::uint32_t first = domains.firstCu(domain);
    for (std::uint32_t cu = first; cu < first + domains.cusPerDomain();
         ++cu) {
        total += record.cus[cu].mem;
    }
    return total;
}

} // namespace pcstall::dvfs
