#include "dvfs/objective.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace pcstall::dvfs
{

const char *
objectiveName(Objective objective)
{
    switch (objective) {
      case Objective::Edp: return "EDP";
      case Objective::Ed2p: return "ED2P";
      case Objective::Ed3p: return "ED3P";
      case Objective::EnergyUnderPerfBound: return "Energy@PerfBound";
      case Objective::MarginalEdp: return "EDP(marginal)";
      case Objective::MarginalEd2p: return "ED2P(marginal)";
    }
    return "?";
}

Joules
domainEpochEnergy(const power::VfTable &table,
                  const power::PowerModel &model,
                  const DomainScoreInputs &in, std::size_t state)
{
    const power::VfState &vf = table.state(state);
    const double instr = std::max(in.instrAtState[state], 0.0);
    // Memory activity scales with instruction throughput (the mix of
    // the work segment is assumed frequency-invariant).
    const double scale = in.baselineInstr > 0.0
        ? instr / in.baselineInstr : 1.0;

    memory::MemActivity scaled;
    auto scale_count = [&](std::uint64_t c) {
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(c) * scale));
    };
    scaled.l1Hits = scale_count(in.baselineActivity.l1Hits);
    scaled.l1Misses = scale_count(in.baselineActivity.l1Misses);
    scaled.l2Hits = scale_count(in.baselineActivity.l2Hits);
    scaled.l2Misses = scale_count(in.baselineActivity.l2Misses);
    scaled.stores = scale_count(in.baselineActivity.stores);
    scaled.storesCombined =
        scale_count(in.baselineActivity.storesCombined);

    const power::CuEnergy cu_energy = model.cuEpochEnergy(
        vf.voltage, vf.freq,
        static_cast<std::uint64_t>(std::llround(instr)),
        scaled, in.epochLen, in.temperature);

    // Attribute the memory domain's *dynamic* energy for this CU
    // group's traffic (its share of static memory power is not
    // affected by this domain's choice and is omitted from the score).
    const double mem_dynamic =
        model.params().eL2 * static_cast<double>(
            scaled.l2Hits + scaled.l2Misses + scaled.stores -
            scaled.storesCombined) +
        model.params().eDram * static_cast<double>(scaled.l2Misses);

    return cu_energy.total() + mem_dynamic +
        in.staticShare * tickSeconds(in.epochLen);
}

std::size_t
chooseState(const power::VfTable &table, const power::PowerModel &model,
            const DomainScoreInputs &in, Objective objective)
{
    panicIf(in.instrAtState.size() != table.numStates(),
            "chooseState: instruction prediction vector size mismatch");

    // A fully idle domain (no work predicted anywhere) parks at the
    // lowest-power state.
    double max_instr = 0.0;
    for (double v : in.instrAtState)
        max_instr = std::max(max_instr, v);
    if (max_instr <= 0.0)
        return 0;

    if (objective == Objective::EnergyUnderPerfBound) {
        const double nominal = in.instrAtState[in.nominalState];
        const double floor_instr =
            nominal * (1.0 - in.perfDegradationLimit);
        std::size_t best = in.nominalState;
        double best_energy = std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < table.numStates(); ++s) {
            if (in.instrAtState[s] < floor_instr)
                continue;
            const double energy = domainEpochEnergy(table, model, in, s);
            if (energy < best_energy) {
                best_energy = energy;
                best = s;
            }
        }
        return best;
    }

    const bool marginal =
        (objective == Objective::MarginalEdp ||
         objective == Objective::MarginalEd2p) &&
        in.avgChipPower > 0.0 && in.avgInstr > 0.0;
    if (marginal) {
        // Price the time saved per instruction at n * average power:
        // the exact first-order greedy for minimizing E * T^n.
        const double n_exp =
            objective == Objective::MarginalEd2p ? 2.0 : 1.0;
        const double time_price = n_exp * in.avgChipPower *
            tickSeconds(in.epochLen) / in.avgInstr;
        std::size_t best = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < table.numStates(); ++s) {
            const double instr = std::max(in.instrAtState[s], 0.0);
            const double energy = domainEpochEnergy(table, model, in, s);
            const double score = energy - time_price * instr;
            if (score < best_score) {
                best_score = score;
                best = s;
            }
        }
        return best;
    }

    int exponent = 2;
    if (objective == Objective::Ed2p ||
        objective == Objective::MarginalEd2p) {
        exponent = 3;
    } else if (objective == Objective::Ed3p) {
        exponent = 4;
    }

    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        const double instr = std::max(in.instrAtState[s], 1e-9);
        const double energy = domainEpochEnergy(table, model, in, s);
        const double score =
            energy / std::pow(instr, static_cast<double>(exponent));
        if (score < best_score) {
            best_score = score;
            best = s;
        }
    }
    return best;
}

void
scoreStates(const power::VfTable &table, const power::PowerModel &model,
            const DomainScoreInputs &in, Objective objective,
            std::span<double> out)
{
    panicIf(in.instrAtState.size() != table.numStates() ||
                out.size() != table.numStates(),
            "scoreStates: state vector size mismatch");

    if (objective == Objective::EnergyUnderPerfBound) {
        const double nominal =
            std::max(in.instrAtState[in.nominalState], 0.0);
        const double floor_instr =
            nominal * (1.0 - in.perfDegradationLimit);
        for (std::size_t s = 0; s < table.numStates(); ++s) {
            const double instr = std::max(in.instrAtState[s], 1e-9);
            const double energy =
                domainEpochEnergy(table, model, in, s);
            // Feasible states score as plain energy (same order as
            // chooseState); infeasible ones pay a finite shortfall
            // penalty instead of being excluded.
            const double penalty = std::max(1.0, floor_instr / instr);
            out[s] = energy * penalty;
        }
        return;
    }

    const bool marginal =
        (objective == Objective::MarginalEdp ||
         objective == Objective::MarginalEd2p) &&
        in.avgChipPower > 0.0 && in.avgInstr > 0.0;
    if (marginal) {
        const double n_exp =
            objective == Objective::MarginalEd2p ? 2.0 : 1.0;
        const double time_price = n_exp * in.avgChipPower *
            tickSeconds(in.epochLen) / in.avgInstr;
        for (std::size_t s = 0; s < table.numStates(); ++s) {
            const double instr = std::max(in.instrAtState[s], 0.0);
            out[s] = domainEpochEnergy(table, model, in, s) -
                time_price * instr;
        }
        return;
    }

    int exponent = 2;
    if (objective == Objective::Ed2p ||
        objective == Objective::MarginalEd2p) {
        exponent = 3;
    } else if (objective == Objective::Ed3p) {
        exponent = 4;
    }
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        const double instr = std::max(in.instrAtState[s], 1e-9);
        const double energy = domainEpochEnergy(table, model, in, s);
        out[s] = energy / std::pow(instr, static_cast<double>(exponent));
    }
}

} // namespace pcstall::dvfs
