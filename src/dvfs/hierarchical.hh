/**
 * @file
 * Hierarchical power management (paper Section 5.4): commercial GPUs
 * run a firmware power manager at millisecond scales that sets power
 * objectives; the hardware fine-grain DVFS controller then operates
 * within the frequency range that budget allows. The paper emulates
 * this by restricting the V/f range; this class implements the actual
 * mechanism: it wraps any fine-grain controller, estimates average
 * chip power over a coarse review window from the epoch records, and
 * widens or narrows the ceiling state to track a power cap.
 */

#ifndef PCSTALL_DVFS_HIERARCHICAL_HH
#define PCSTALL_DVFS_HIERARCHICAL_HH

#include <cstdint>
#include <memory>

#include "dvfs/controller.hh"

namespace pcstall::dvfs
{

/** Configuration of the coarse-grain layer. */
struct HierarchicalConfig
{
    /** Average chip power target (W). */
    Watts powerCap = 150.0;
    /** Review window (paper: milliseconds; default 50 epochs). */
    std::uint32_t reviewEpochs = 50;
    /** Hysteresis: widen the window only below this cap fraction. */
    double widenBelow = 0.92;
};

/**
 * Wraps a fine-grain controller and clamps its decisions into the
 * currently allowed state window.
 */
class HierarchicalPowerManager : public DvfsController
{
  public:
    HierarchicalPowerManager(DvfsController &inner,
                             const HierarchicalConfig &config);

    /**
     * Owning variant: the manager keeps the fine-grain controller
     * alive itself. This lets controller factories (sweep cells,
     * replay tools) hand back one self-contained DvfsController for
     * "NAME+CAP" designs.
     */
    HierarchicalPowerManager(std::unique_ptr<DvfsController> inner,
                             const HierarchicalConfig &config);

    std::string name() const override
    {
        return inner.name() + "+CAP";
    }

    SweepNeed sweepNeed() const override { return inner.sweepNeed(); }
    bool needsWaveLevel() const override
    {
        return inner.needsWaveLevel();
    }

    std::vector<DomainDecision> decide(const EpochContext &ctx) override;

    // Fault/degradation plumbing passes through to the wrapped
    // fine-grain controller (the coarse layer holds no storage).
    void applyStorageFaults(faults::FaultInjector &injector) override
    {
        inner.applyStorageFaults(injector);
    }
    std::uint64_t watchdogTrips() const override
    {
        return inner.watchdogTrips();
    }
    std::uint64_t fallbackEpochs() const override
    {
        return inner.fallbackEpochs();
    }
    std::uint64_t storageBitFlips() const override
    {
        return inner.storageBitFlips();
    }
    std::uint64_t storageScrubs() const override
    {
        return inner.storageScrubs();
    }

    const HierarchicalConfig &config() const { return cfg; }

    /** The wrapped fine-grain controller. */
    const DvfsController &innerController() const { return inner; }
    DvfsController &innerController() { return inner; }

    /** Highest state the fine-grain layer may currently use. */
    std::size_t ceilingState() const { return ceiling; }

    /** Average chip power estimated over the last review window. */
    Watts lastWindowPower() const { return lastPower; }

  private:
    /** Estimate the chip power of the elapsed epoch from its record. */
    Watts epochPower(const EpochContext &ctx) const;

    /** Set only by the owning constructor; `inner` refers into it then. */
    std::unique_ptr<DvfsController> owned;
    DvfsController &inner;
    HierarchicalConfig cfg;
    std::size_t ceiling = 0;
    bool ceilingInit = false;
    double windowEnergy = 0.0;
    double windowSeconds = 0.0;
    std::uint32_t windowEpochs = 0;
    Watts lastPower = 0.0;
};

} // namespace pcstall::dvfs

#endif // PCSTALL_DVFS_HIERARCHICAL_HH
