/**
 * @file
 * Fork-pre-execute oracle methodology (paper Section 5.1, Figure 13).
 *
 * At an epoch boundary the simulator state is snapshotted ("forked")
 * once per V/f state. Sample k runs the upcoming epoch with domain d
 * operating at state (k + d) mod S -- the paper's frequency shuffle,
 * which exposes each domain to every state exactly once while the
 * other domains' frequencies vary, approximating the 10^64-path
 * search with S samples (97.6% accurate in the paper with 10).
 *
 * The samples yield, per domain, the instructions committed at every
 * state (the accurate I(f) curve), and per wavefront a linear-
 * regression sensitivity (dI/df) across the sampled frequencies.
 */

#ifndef PCSTALL_ORACLE_FORK_PRE_EXECUTE_HH
#define PCSTALL_ORACLE_FORK_PRE_EXECUTE_HH

#include "common/types.hh"
#include "dvfs/controller.hh"
#include "dvfs/domain_map.hh"
#include "gpu/gpu_chip.hh"
#include "power/vf_table.hh"

namespace pcstall::oracle
{

/** Options for the sweep. */
struct SweepOptions
{
    /** Shuffle frequencies across domains (paper's approach). If
     *  false, sample k runs every domain at state k. */
    bool shuffle = true;
    /** Also regress per-wavefront sensitivities (needed by ACCPC and
     *  the characterization studies; costs some bookkeeping). */
    bool waveLevel = true;
};

/**
 * Run the fork-pre-execute sweep for the epoch
 * [chip.now(), chip.now() + epoch_len) and return the accurate
 * estimates. @p chip is copied per sample and left untouched.
 */
dvfs::AccurateEstimates
forkPreExecuteSweep(const gpu::GpuChip &chip,
                    const dvfs::DomainMap &domains,
                    const power::VfTable &table, Tick epoch_len,
                    const SweepOptions &options = SweepOptions{});

/**
 * Per-domain linear sensitivity (d instructions / d f_GHz) fitted
 * over the accurate I(f) points of @p estimates for one domain,
 * with the fit's R^2 (Figure 5's metric).
 */
struct DomainSensitivity
{
    double sensitivity = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
};

DomainSensitivity domainSensitivity(const dvfs::AccurateEstimates &est,
                                    const power::VfTable &table,
                                    std::uint32_t domain);

} // namespace pcstall::oracle

#endif // PCSTALL_ORACLE_FORK_PRE_EXECUTE_HH
