/**
 * @file
 * Fork-pre-execute oracle methodology (paper Section 5.1, Figure 13).
 *
 * At an epoch boundary the simulator state is snapshotted ("forked")
 * once per V/f state. Sample k runs the upcoming epoch with domain d
 * operating at state (k + d) mod S -- the paper's frequency shuffle,
 * which exposes each domain to every state exactly once while the
 * other domains' frequencies vary, approximating the 10^64-path
 * search with S samples (97.6% accurate in the paper with 10).
 *
 * The samples yield, per domain, the instructions committed at every
 * state (the accurate I(f) curve), and per wavefront a linear-
 * regression sensitivity (dI/df) across the sampled frequencies.
 */

#ifndef PCSTALL_ORACLE_FORK_PRE_EXECUTE_HH
#define PCSTALL_ORACLE_FORK_PRE_EXECUTE_HH

#include "common/types.hh"
#include "dvfs/controller.hh"
#include "dvfs/domain_map.hh"
#include "gpu/gpu_chip.hh"
#include "power/vf_table.hh"

namespace pcstall::sim
{
class ParallelExecutor;
} // namespace pcstall::sim

namespace pcstall::oracle
{

class SnapshotPool;

/** Options for the sweep. */
struct SweepOptions
{
    /** Shuffle frequencies across domains (paper's approach). If
     *  false, sample k runs every domain at state k. */
    bool shuffle = true;
    /** Also regress per-wavefront sensitivities (needed by ACCPC and
     *  the characterization studies; costs some bookkeeping). */
    bool waveLevel = true;
    /** Snapshot-restore into this pool's scratch chips instead of
     *  deep-copying the chip per sample. Decisions, metrics and wave
     *  fits are byte-identical to the copy path; null keeps the
     *  legacy per-sample copies. */
    SnapshotPool *pool = nullptr;
    /** Run the S independent samples on this executor (ignored unless
     *  @ref pool is set). The reduction runs on the calling thread in
     *  submission order, so results stay byte-identical to the serial
     *  path regardless of the thread count. Null = serial. */
    sim::ParallelExecutor *executor = nullptr;
    /** Fingerprint-verify that the sweep leaves @p chip untouched
     *  even in NDEBUG builds (always verified in debug builds). */
    bool verifyRestore = false;
};

/**
 * Run the fork-pre-execute sweep for the epoch
 * [chip.now(), chip.now() + epoch_len) and return the accurate
 * estimates.
 *
 * @param chip       Simulator state at the epoch boundary. Left
 *                   untouched: each sample runs on either a
 *                   per-sample copy or a pooled scratch chip restored
 *                   from @p chip (see SweepOptions::pool); debug
 *                   builds verify this with state fingerprints.
 * @param domains    CU-to-clock-domain mapping for the sweep.
 * @param table      V/f operating points; one sample per state.
 * @param epoch_len  Length of the pre-executed epoch in ticks.
 * @param options    Sweep behavior (shuffle, wave fits, pooling,
 *                   in-cell parallelism, restore verification).
 * @return Per-domain I(f) curves and optional per-wave sensitivities.
 */
dvfs::AccurateEstimates
forkPreExecuteSweep(const gpu::GpuChip &chip,
                    const dvfs::DomainMap &domains,
                    const power::VfTable &table, Tick epoch_len,
                    const SweepOptions &options = SweepOptions{});

/**
 * Per-domain linear sensitivity (d instructions / d f_GHz) fitted
 * over the accurate I(f) points of one domain, with the fit's R^2
 * (Figure 5's metric).
 */
struct DomainSensitivity
{
    double sensitivity = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
};

/**
 * Fit a DomainSensitivity from a sweep's accurate estimates.
 *
 * @param est     Estimates returned by forkPreExecuteSweep().
 * @param table   V/f table the sweep sampled (supplies the f axis).
 * @param domain  Domain index to fit; must be < est.domainInstr.size().
 * @return Linear fit of instructions versus frequency for @p domain.
 */
DomainSensitivity domainSensitivity(const dvfs::AccurateEstimates &est,
                                    const power::VfTable &table,
                                    std::uint32_t domain);

} // namespace pcstall::oracle

#endif // PCSTALL_ORACLE_FORK_PRE_EXECUTE_HH
