#include "oracle/snapshot_pool.hh"

#include "common/logging.hh"

namespace pcstall::oracle
{

gpu::GpuChip &
SnapshotPool::restore(std::size_t i, const gpu::GpuChip &base)
{
    panicIf(i >= slots_.size(), "snapshot pool slot out of range");
    Slot &slot = slots_[i];
    if (!slot.chip) {
        slot.chip = std::make_unique<gpu::GpuChip>(base);
    } else {
        // Copy assignment: every vector inside the chip assigns into
        // its existing allocation, so steady-state restores are pure
        // memcpy-like work with no heap traffic.
        *slot.chip = base;
    }
    return *slot.chip;
}

gpu::EpochRecord &
SnapshotPool::record(std::size_t i)
{
    panicIf(i >= slots_.size(), "snapshot pool slot out of range");
    return slots_[i].record;
}

std::vector<WaveSample> &
SnapshotPool::waves(std::size_t i)
{
    panicIf(i >= slots_.size(), "snapshot pool slot out of range");
    return slots_[i].waves;
}

void
SnapshotPool::ensureSlots(std::size_t n)
{
    if (slots_.size() < n)
        slots_.resize(n);
}

void
SnapshotPool::clear()
{
    slots_.clear();
    scratch_ = Scratch{};
}

} // namespace pcstall::oracle
