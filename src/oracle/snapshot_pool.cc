#include "oracle/snapshot_pool.hh"

#include "common/logging.hh"

namespace pcstall::oracle
{

void
SnapshotPool::beginSweep(const gpu::GpuChip &base)
{
    if (!delta_)
        return;
    const std::uint64_t seq = base.takeDirty(baseTake_);
    // The chain is unbroken only if this is the same base chip as the
    // previous sweep and we observed every take in between: then the
    // dirt taken now covers exactly what the base did since the slots
    // were last synced.
    const bool continuous =
        base.snapshotUid() == baseUid_ && seq == baseSeq_ + 1;
    baseUid_ = base.snapshotUid();
    baseSeq_ = seq;
    ++sweepSeq_;
    for (Slot &slot : slots_) {
        if (!continuous)
            slot.canDelta = false;
        else if (slot.canDelta)
            slot.pending |= baseTake_;
        slot.syncSeq = sweepSeq_;
    }
}

gpu::GpuChip &
SnapshotPool::restore(std::size_t i, const gpu::GpuChip &base)
{
    panicIf(i >= slots_.size(), "snapshot pool slot out of range");
    Slot &slot = slots_[i];
    if (!slot.chip) {
        slot.chip = std::make_unique<gpu::GpuChip>(base);
        slot.pending.clearAll();
        slot.canDelta = delta_;
        slot.syncSeq = 0;
        fullRestores_.fetch_add(1, std::memory_order_relaxed);
        return *slot.chip;
    }

    // Delta is sound only when the slot was synced for this very
    // sweep against this very base chip and the base has no untaken
    // dirt (i.e. it was not mutated after beginSweep).
    const bool use_delta = delta_ && slot.canDelta &&
        sweepSeq_ > 0 && slot.syncSeq == sweepSeq_ &&
        base.snapshotUid() == baseUid_ && !base.hasPendingDirty();
    if (use_delta) {
        // Regions to copy: what this slot's chip touched since its
        // last take (the previous sample's pre-execution) plus what
        // the base did while the slot sat out.
        slot.chip->takeDirty(slot.takeBuf);
        slot.takeBuf |= slot.pending;
        slot.chip->restoreDeltaFrom(base, slot.takeBuf);
        deltaRestores_.fetch_add(1, std::memory_order_relaxed);
    } else {
        // Copy assignment: every vector inside the chip assigns into
        // its existing allocation, so steady-state restores are pure
        // memcpy-like work with no heap traffic. The assignment also
        // copies the base's (clean) dirty marks, re-anchoring the
        // slot's delta chain.
        *slot.chip = base;
        slot.canDelta = delta_;
        fullRestores_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.pending.clearAll();
    // Consume the sync: a restore without a fresh beginSweep in
    // between must not take the delta path again.
    slot.syncSeq = 0;
    return *slot.chip;
}

gpu::EpochRecord &
SnapshotPool::record(std::size_t i)
{
    panicIf(i >= slots_.size(), "snapshot pool slot out of range");
    return slots_[i].record;
}

std::vector<WaveSample> &
SnapshotPool::waves(std::size_t i)
{
    panicIf(i >= slots_.size(), "snapshot pool slot out of range");
    return slots_[i].waves;
}

void
SnapshotPool::ensureSlots(std::size_t n)
{
    if (slots_.size() < n)
        slots_.resize(n);
}

void
SnapshotPool::ensureSlots(std::size_t n, const gpu::GpuChip &base)
{
    ensureSlots(n);
    for (Slot &slot : slots_) {
        if (!slot.chip) {
            slot.chip = std::make_unique<gpu::GpuChip>(base);
            // Pre-warm counts as a full restore at an arbitrary point
            // in the base's history; the next beginSweep + full
            // restore anchors the delta chain properly.
            slot.pending.clearAll();
            slot.canDelta = false;
            slot.syncSeq = 0;
        }
    }
}

void
SnapshotPool::clear()
{
    for (Slot &slot : slots_) {
        slot.record.waves.clear();
        slot.record.cus.clear();
        slot.waves.clear();
        slot.pending.clearAll();
        slot.canDelta = false;
        slot.syncSeq = 0;
    }
    scratch_.merged.clear();
    scratch_.fitFreqs.clear();
    scratch_.fitInstr.clear();
    scratch_.stateFreq.clear();
    scratch_.stateGHz.clear();
    scratch_.sampleWallNs.clear();
    baseUid_ = 0;
    baseSeq_ = 0;
    sweepSeq_ = 0;
}

} // namespace pcstall::oracle
