#include "oracle/oracle_controllers.hh"

#include "common/logging.hh"

namespace pcstall::oracle
{

std::vector<dvfs::DomainDecision>
decideFromAccurate(const dvfs::EpochContext &ctx,
                   const dvfs::AccurateEstimates &est)
{
    std::vector<dvfs::DomainDecision> out(ctx.domains.numDomains());
    for (std::uint32_t d = 0; d < ctx.domains.numDomains(); ++d) {
        dvfs::DomainScoreInputs in;
        in.instrAtState = est.domainInstr[d];
        in.baselineInstr = dvfs::sumOverDomain(
            ctx.domains, d, [&](std::uint32_t cu) {
                return static_cast<double>(ctx.record.cus[cu].committed);
            });
        in.baselineActivity = dvfs::domainActivity(ctx.domains, d,
                                                   ctx.record);
        in.numCus = ctx.domains.cusPerDomain();
        in.staticShare = ctx.power.params().memStatic /
            ctx.domains.numDomains();
        in.epochLen = ctx.epochLen;
        in.temperature = ctx.temperature;
        in.perfDegradationLimit = ctx.perfDegradationLimit;
        in.nominalState = ctx.nominalState;
        in.avgChipPower = ctx.avgChipPower;
        if (ctx.avgDomainInstr)
            in.avgInstr = (*ctx.avgDomainInstr)[d];

        out[d].state = dvfs::chooseState(ctx.table, ctx.power, in,
                                         ctx.objective);
        out[d].predictedInstr = est.domainInstr[d][out[d].state];
    }
    return out;
}

std::vector<dvfs::DomainDecision>
OracleController::decide(const dvfs::EpochContext &ctx)
{
    panicIf(ctx.upcomingAccurate == nullptr,
            "ORACLE requires upcoming-epoch accurate estimates");
    return decideFromAccurate(ctx, *ctx.upcomingAccurate);
}

std::vector<dvfs::DomainDecision>
AccurateReactiveController::decide(const dvfs::EpochContext &ctx)
{
    panicIf(ctx.elapsedAccurate == nullptr,
            "ACCREAC requires elapsed-epoch accurate estimates");
    return decideFromAccurate(ctx, *ctx.elapsedAccurate);
}

} // namespace pcstall::oracle
