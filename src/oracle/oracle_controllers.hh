/**
 * @file
 * The three accurate-estimate designs of Table III:
 *  - ORACLE:  uses accurate estimates of the *upcoming* epoch
 *             (near-optimal, not implementable);
 *  - ACCREAC: uses accurate estimates of the *elapsed* epoch,
 *             applied reactively (a perfect last-value predictor);
 *  - ACCPC is realized by PcstallController(accurateEstimates=true).
 */

#ifndef PCSTALL_ORACLE_ORACLE_CONTROLLERS_HH
#define PCSTALL_ORACLE_ORACLE_CONTROLLERS_HH

#include "dvfs/controller.hh"

namespace pcstall::oracle
{

/**
 * Shared frequency-selection step from accurate I(f) curves.
 *
 * @param ctx  The epoch context (power model, V/f table, objective).
 * @param est  Accurate per-domain I(f) estimates from a sweep.
 * @return One chosen V/f state per domain (chooseState per domain).
 */
std::vector<dvfs::DomainDecision>
decideFromAccurate(const dvfs::EpochContext &ctx,
                   const dvfs::AccurateEstimates &est);

/** Near-optimal oracle: accurate estimates of the upcoming epoch. */
class OracleController : public dvfs::DvfsController
{
  public:
    std::string name() const override { return "ORACLE"; }

    dvfs::SweepNeed sweepNeed() const override
    {
        return dvfs::SweepNeed::Upcoming;
    }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;
};

/** Perfect reactive design: accurate estimates applied last-value. */
class AccurateReactiveController : public dvfs::DvfsController
{
  public:
    std::string name() const override { return "ACCREAC"; }

    dvfs::SweepNeed sweepNeed() const override
    {
        return dvfs::SweepNeed::Elapsed;
    }

    std::vector<dvfs::DomainDecision>
    decide(const dvfs::EpochContext &ctx) override;
};

} // namespace pcstall::oracle

#endif // PCSTALL_ORACLE_ORACLE_CONTROLLERS_HH
